package mobicore

import (
	"testing"
	"time"

	"mobicore/internal/platform"
)

// TestPlatformAliasReconciliation locks the CLI aliases and the platform
// display names to each other: both spellings must resolve through both
// lookup paths (the root Config.Platform resolver and platform.ByName), so
// the two name sets cannot drift apart again.
func TestPlatformAliasReconciliation(t *testing.T) {
	for _, alias := range Platforms() {
		byAlias, err := lookupPlatform(alias)
		if err != nil {
			t.Errorf("lookupPlatform(%q): %v", alias, err)
			continue
		}
		// The display name must work in the root resolver too.
		byDisplay, err := lookupPlatform(byAlias.Name)
		if err != nil {
			t.Errorf("lookupPlatform(%q): %v", byAlias.Name, err)
			continue
		}
		if byDisplay.Name != byAlias.Name {
			t.Errorf("alias %q and display %q resolve to different profiles", alias, byAlias.Name)
		}
		// And the alias must work through platform.ByName.
		if p, err := platform.ByName(alias); err != nil || p.Name != byAlias.Name {
			t.Errorf("platform.ByName(%q) = %q, %v; want %q", alias, p.Name, err, byAlias.Name)
		}
		if got := platform.Alias(byAlias.Name); got != alias {
			t.Errorf("platform.Alias(%q) = %q, want %q", byAlias.Name, got, alias)
		}
	}
	// The root mapping is the platform package's mapping, verbatim.
	if len(Platforms()) != len(platform.Profiles()) {
		t.Errorf("root exposes %d platforms, platform package has %d", len(Platforms()), len(platform.Profiles()))
	}
}

// TestSD855AliasLock pins the three-cluster profile's two spellings to
// each other explicitly (the loop above covers it generically; this entry
// keeps the pair from being renamed without notice).
func TestSD855AliasLock(t *testing.T) {
	p, err := platform.ByName("sd855")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Snapdragon 855" {
		t.Errorf(`ByName("sd855").Name = %q, want "Snapdragon 855"`, p.Name)
	}
	if got := platform.Alias("Snapdragon 855"); got != "sd855" {
		t.Errorf(`Alias("Snapdragon 855") = %q, want "sd855"`, got)
	}
	if len(p.Clusters) != 3 {
		t.Errorf("sd855 clusters = %d, want 3 (silver/gold/prime)", len(p.Clusters))
	}
}

// TestSD855Device drives the three-cluster profile through the public API
// under each named policy and both placement rules.
func TestSD855Device(t *testing.T) {
	for _, pol := range []string{PolicyMobiCore, PolicyMobiCoreThreshold, PolicyAndroidDefault, PolicyOracle, "schedutil+load"} {
		for _, sched := range []string{SchedGreedy, SchedEAS} {
			dev, err := NewDevice(Config{Platform: "sd855", Policy: pol, Sched: sched, Seed: 5}, BusyLoop(0.3, 4))
			if err != nil {
				t.Fatalf("%s/%s: %v", pol, sched, err)
			}
			rep, err := dev.Run(time.Second)
			if err != nil {
				t.Fatalf("%s/%s: %v", pol, sched, err)
			}
			if len(rep.ClusterNames) != 3 {
				t.Errorf("%s/%s: cluster names = %v, want 3 clusters", pol, sched, rep.ClusterNames)
			}
			if rep.Placer != sched {
				t.Errorf("%s/%s: report placer = %q", pol, sched, rep.Placer)
			}
		}
	}
	if _, err := NewDevice(Config{Platform: "sd855", Sched: "warp"}, BusyLoop(0.3, 1)); err == nil {
		t.Error("unknown sched accepted")
	}
}

// TestNexus6PDevice drives the big.LITTLE profile through the public API
// under each named policy that supports it.
func TestNexus6PDevice(t *testing.T) {
	for _, pol := range []string{PolicyMobiCore, PolicyMobiCoreThreshold, PolicyAndroidDefault, PolicyOracle, "schedutil+load"} {
		dev, err := NewDevice(Config{Platform: "nexus6p", Policy: pol, Seed: 5}, BusyLoop(0.3, 4))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		rep, err := dev.Run(time.Second)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if len(rep.ClusterNames) != 2 {
			t.Errorf("%s: cluster names = %v, want 2 clusters", pol, rep.ClusterNames)
		}
	}
}
