// bench_test.go regenerates every table and figure of the thesis through
// the testing.B harness — `go test -bench=. -benchmem` prints each
// experiment's headline numbers as custom metrics — and benchmarks the
// ablations called out in DESIGN.md §6.
//
// Benchmarks report via b.ReportMetric, so a bench run doubles as a
// reproduction run: mW figures, savings percentages, FPS ratios, and the
// raw simulation throughput (simulated-vs-wall speedup).
package mobicore

import (
	"testing"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/cpufreq"
	"mobicore/internal/experiment"
	"mobicore/internal/hotplug"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/scenario"
	"mobicore/internal/sim"
	"mobicore/internal/workload"
)

// benchScale keeps bench iterations affordable while exercising every
// control loop; the recorded EXPERIMENTS.md numbers come from scale-1 runs
// of cmd/mobibench.
const benchScale = 0.1

func benchOpts() experiment.Options {
	return experiment.Options{Scale: benchScale, Seed: 42}
}

// runExperiment is the shared bench body: run the experiment b.N times and
// attach its key metric.
func runExperiment(b *testing.B, id string, metric func(experiment.Result) (string, float64)) {
	b.Helper()
	var last experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if metric != nil && last != nil {
		name, value := metric(last)
		b.ReportMetric(value, name)
	}
}

// --- one bench per paper item ----------------------------------------------

func BenchmarkTable1Specs(b *testing.B) {
	runExperiment(b, "table1", nil)
}

func BenchmarkTable2Bandwidth(b *testing.B) {
	runExperiment(b, "table2", func(r experiment.Result) (string, float64) {
		steps := r.(*experiment.Table2Result).Steps
		min := 1.0
		for _, s := range steps {
			if s.Quota < min {
				min = s.Quota
			}
		}
		return "min-quota", min
	})
}

func BenchmarkStaticPowerAnchor(b *testing.B) {
	runExperiment(b, "static", func(r experiment.Result) (string, float64) {
		return "fmax-leak-mW", r.(*experiment.StaticAnchorResult).FmaxLeakW * 1000
	})
}

func BenchmarkFig1PhoneEvolution(b *testing.B) {
	runExperiment(b, "fig1", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.Fig1Result).Rows
		for _, row := range rows {
			if row.Name == "Nexus 5" {
				return "nexus5-mW", row.AvgPowerW * 1000
			}
		}
		return "nexus5-mW", 0
	})
}

func BenchmarkFig2Thermal(b *testing.B) {
	runExperiment(b, "fig2", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.Fig2Result).Rows
		for _, row := range rows {
			if row.Name == "Nexus 5" {
				return "nexus5-predC", row.PredictedC
			}
		}
		return "nexus5-predC", 0
	})
}

func BenchmarkFig3UtilSweep(b *testing.B) {
	runExperiment(b, "fig3", func(r experiment.Result) (string, float64) {
		cells := r.(*experiment.Fig3Result).Cells
		return "cells", float64(len(cells))
	})
}

func BenchmarkFig4CoreSweep(b *testing.B) {
	runExperiment(b, "fig4", func(r experiment.Result) (string, float64) {
		cells := r.(*experiment.Fig4Result).Cells
		throttled := 0
		for _, c := range cells {
			if c.Throttled {
				throttled++
			}
		}
		return "throttled-cells", float64(throttled)
	})
}

func BenchmarkFig5OperatingPoints(b *testing.B) {
	runExperiment(b, "fig5", func(r experiment.Result) (string, float64) {
		return "feasible-points", float64(len(r.(*experiment.Fig5Result).Points))
	})
}

func BenchmarkFig6PerfPower(b *testing.B) {
	runExperiment(b, "fig6", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.Fig6Result).Rows
		return "fmax-score", rows[len(rows)-1].Score
	})
}

func BenchmarkFig7Ratio(b *testing.B) {
	runExperiment(b, "fig7", func(r experiment.Result) (string, float64) {
		return "peak4c-MHz", float64(r.(*experiment.Fig7Result).PeakFreq4Core()) / 1e6
	})
}

func BenchmarkFig9aStatic(b *testing.B) {
	runExperiment(b, "fig9a", func(r experiment.Result) (string, float64) {
		return "avg-saving-pct", r.(*experiment.Fig9aResult).AverageSavings() * 100
	})
}

func BenchmarkFig9bGeekbench(b *testing.B) {
	runExperiment(b, "fig9b", func(r experiment.Result) (string, float64) {
		return "power-saving-pct", r.(*experiment.Fig9bResult).PowerSavings() * 100
	})
}

func BenchmarkFig10GamePower(b *testing.B) {
	runExperiment(b, "fig10", func(r experiment.Result) (string, float64) {
		return "avg-saving-pct", r.(*experiment.Fig10Result).AverageSavings() * 100
	})
}

func BenchmarkFig11FPS(b *testing.B) {
	runExperiment(b, "fig11", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.Fig11Result).Rows
		sum := 0.0
		for _, g := range rows {
			sum += g.FPSRatio()
		}
		return "avg-fps-ratio", sum / float64(len(rows))
	})
}

func BenchmarkFig12Hardware(b *testing.B) {
	runExperiment(b, "fig12", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.Fig12Result).Rows
		sum := 0.0
		for _, g := range rows {
			sum += g.FreqReductionFrac()
		}
		return "avg-freq-red-pct", sum / float64(len(rows)) * 100
	})
}

func BenchmarkFig13Load(b *testing.B) {
	runExperiment(b, "fig13", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.Fig13Result).Rows
		sum := 0.0
		for _, g := range rows {
			sum += g.LoadReduction()
		}
		return "avg-load-red-pct", sum / float64(len(rows)) * 100
	})
}

// --- ablations (DESIGN.md §6) ----------------------------------------------

// ablationRun measures average power of a MobiCore variant on the standard
// mid-load benchmark (Nexus 5 platform).
func ablationRun(b *testing.B, build func(plat platform.Platform) (policy.Manager, error)) float64 {
	b.Helper()
	return ablationRunOn(b, platform.Nexus5(), build)
}

// ablationRunOn is ablationRun on an explicit platform.
func ablationRunOn(b *testing.B, plat platform.Platform, build func(plat platform.Platform) (policy.Manager, error)) float64 {
	b.Helper()
	mgr, err := build(plat)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.3,
		Threads:    4,
		RefFreq:    plat.Table.Max().Freq,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.Config{Platform: plat, Manager: mgr, Workloads: []workload.Workload{wl}, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := s.Run(10 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	return rep.AvgPowerW
}

func nexus5Model(b *testing.B, plat platform.Platform) *power.Model {
	b.Helper()
	m, err := power.NewModel(plat.Power, plat.Table)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationQuotaOff isolates Algorithm 4.1.2: MobiCore with the
// bandwidth controller disabled (quota pinned to 1 via MinQuota=LowUtil
// gate removal).
func BenchmarkAblationQuotaOff(b *testing.B) {
	var withQuota, withoutQuota float64
	for i := 0; i < b.N; i++ {
		withQuota = ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
			return core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
		})
		withoutQuota = ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
			tun := core.DefaultTunables()
			tun.LowUtil = 0.0001 // gate never opens: quota stays 1
			return core.NewWithModel(plat.Table, tun, nexus5Model(b, plat))
		})
	}
	b.ReportMetric(withQuota*1000, "quota-on-mW")
	b.ReportMetric(withoutQuota*1000, "quota-off-mW")
}

// BenchmarkAblationOffThreshold sweeps the §5.2 core-offline rule at
// 5/10/20% on the threshold (model-free) variant.
func BenchmarkAblationOffThreshold(b *testing.B) {
	var at5, at10, at20 float64
	for i := 0; i < b.N; i++ {
		run := func(th float64) float64 {
			return ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
				tun := core.DefaultTunables()
				tun.OffThreshold = th
				return core.New(plat.Table, tun)
			})
		}
		at5, at10, at20 = run(0.05), run(0.10), run(0.20)
	}
	b.ReportMetric(at5*1000, "off5-mW")
	b.ReportMetric(at10*1000, "off10-mW")
	b.ReportMetric(at20*1000, "off20-mW")
}

// BenchmarkAblationLawVsOracle compares Eq. 9's closed form (threshold
// variant) against the §4.2 exhaustive optimizer.
func BenchmarkAblationLawVsOracle(b *testing.B) {
	var law, oracle float64
	for i := 0; i < b.N; i++ {
		law = ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
			return core.New(plat.Table, core.DefaultTunables())
		})
		oracle = ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
			return core.NewOracle(plat.Table, nexus5Model(b, plat), 0.15)
		})
	}
	b.ReportMetric(law*1000, "eq9-mW")
	b.ReportMetric(oracle*1000, "oracle-mW")
}

// BenchmarkAblationRaceToIdle tests §4.1.2's claim that keeping cores
// online-idle (race-to-idle) cannot match off-lining on a per-core-rail
// platform — and its counterfactual: on a shared-rail platform with cheap
// idle states, the gap collapses. Compares MobiCore against
// ondemand+all-cores-online on both the calibrated Nexus 5 and the
// shared-rail variant.
func BenchmarkAblationRaceToIdle(b *testing.B) {
	// Same governor (ondemand) either offlining idle cores via the load
	// hotplug or keeping them online-idle — the §4.1.2 DCS isolation.
	run := func(plat platform.Platform, offline bool) float64 {
		return ablationRunOn(b, plat, func(plat platform.Platform) (policy.Manager, error) {
			gov, err := cpufreq.New("ondemand", plat.Table)
			if err != nil {
				return nil, err
			}
			if offline {
				plug, err := hotplug.NewLoad(hotplug.DefaultLoadTunables())
				if err != nil {
					return nil, err
				}
				return policy.Compose(gov, plug)
			}
			return policy.Compose(gov, hotplugAllOn{})
		})
	}
	var offPer, idlePer, offShared, idleShared float64
	for i := 0; i < b.N; i++ {
		offPer = run(platform.Nexus5(), true)
		idlePer = run(platform.Nexus5(), false)
		offShared = run(platform.Nexus5SharedRail(), true)
		idleShared = run(platform.Nexus5SharedRail(), false)
	}
	b.ReportMetric((idlePer/offPer-1)*100, "idle-penalty-pct")
	b.ReportMetric((idleShared/offShared-1)*100, "idle-penalty-shared-rail-pct")
	b.ReportMetric(offPer*1000, "offlining-mW")
	b.ReportMetric(idlePer*1000, "race-to-idle-mW")
}

// hotplugInput aliases the hotplug observation type for the stub below.
type hotplugInput = hotplug.Input

// hotplugAllOn keeps every core online — the race-to-idle configuration.
type hotplugAllOn struct{}

func (hotplugAllOn) Name() string { return "all-on" }
func (hotplugAllOn) TargetCores(in hotplugInput) (int, error) {
	return len(in.Online), nil
}
func (hotplugAllOn) Reset() {}

// BenchmarkAblationSamplePeriod sweeps the governor sampling period.
func BenchmarkAblationSamplePeriod(b *testing.B) {
	plat := platform.Nexus5()
	run := func(period time.Duration) float64 {
		mgr, err := core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
		if err != nil {
			b.Fatal(err)
		}
		wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
			TargetUtil: 0.3, Threads: 4, RefFreq: plat.Table.Max().Freq,
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sim.Config{
			Platform: plat, Manager: mgr, Workloads: []workload.Workload{wl},
			Seed: 42, SamplePeriod: period,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(10 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		return rep.AvgPowerW
	}
	var p20, p50, p100 float64
	for i := 0; i < b.N; i++ {
		p20, p50, p100 = run(20*time.Millisecond), run(50*time.Millisecond), run(100*time.Millisecond)
	}
	b.ReportMetric(p20*1000, "20ms-mW")
	b.ReportMetric(p50*1000, "50ms-mW")
	b.ReportMetric(p100*1000, "100ms-mW")
}

// BenchmarkExtensionSchedutil compares MobiCore against the post-thesis
// mainline governor (schedutil) — the modern baseline the thesis would be
// evaluated against today.
func BenchmarkExtensionSchedutil(b *testing.B) {
	var mobi, sutil float64
	for i := 0; i < b.N; i++ {
		mobi = ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
			return core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
		})
		sutil = ablationRun(b, func(plat platform.Platform) (policy.Manager, error) {
			gov, err := cpufreq.New("schedutil", plat.Table)
			if err != nil {
				return nil, err
			}
			plug, err := hotplug.NewLoad(hotplug.DefaultLoadTunables())
			if err != nil {
				return nil, err
			}
			return policy.Compose(gov, plug)
		})
	}
	b.ReportMetric(mobi*1000, "mobicore-mW")
	b.ReportMetric(sutil*1000, "schedutil-mW")
}

// BenchmarkBigLittleGaming regenerates the big.LITTLE extension experiment:
// MobiCore vs three stock governor stacks on the Snapdragon 810-class
// profile under Real Racing 3.
func BenchmarkBigLittleGaming(b *testing.B) {
	runExperiment(b, "biglittle", func(r experiment.Result) (string, float64) {
		rows := r.(*experiment.BigLittleResult).Rows
		return "mobicore-mW", rows[0].AvgW * 1000
	})
}

// perTick measures the steady-state cost of one simulation tick on a
// platform — the hot path the cluster refactor must not slow down on
// homogeneous profiles. ns/op is the evidence.
func perTick(b *testing.B, plat platform.Platform, mgr policy.Manager, threads int) {
	b.Helper()
	perTickPlaced(b, plat, mgr, threads, "")
}

// perTickPlaced is perTick with an explicit scheduler placement rule.
func perTickPlaced(b *testing.B, plat platform.Platform, mgr policy.Manager, threads int, placer string) {
	b.Helper()
	perTickFused(b, plat, mgr, threads, placer, false)
}

// perTickFused is the full-knob tick benchmark body: noFuse disables the
// engine's quiescent-tick fast path so the fused and unfused costs of the
// same session are directly comparable.
func perTickFused(b *testing.B, plat platform.Platform, mgr policy.Manager, threads int, placer string, noFuse bool) {
	b.Helper()
	ref := plat.ClusterSpecs()[0].Table.Max().Freq
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.5, Threads: threads, RefFreq: ref,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.Config{Platform: plat, Manager: mgr, Workloads: []workload.Workload{wl}, Seed: 1, Placer: placer, NoFuse: noFuse})
	if err != nil {
		b.Fatal(err)
	}
	// Reserve the sampled series for the whole measured run — the
	// steady-state arrangement every fleet session gets from
	// SessionSpec.NewIn — so series growth does not pollute the per-tick
	// cost, then warm past the boot transient so b.N ticks measure steady
	// state.
	s.Reserve(100*time.Millisecond + time.Duration(b.N)*time.Millisecond)
	if _, err := s.Run(100 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	// allocs/op guards the pooled per-tick scratch (threads, scheduler
	// budget/online/freq/runnable, core snapshots, utilization);
	// TestStepAllocs in internal/sim enforces the budget and the
	// hotalloc analyzer (cmd/mobilint) guards the annotated functions.
	b.ReportAllocs()
	b.ResetTimer()
	fastStart := s.FastTicks()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.FastTicks()-fastStart)/float64(b.N), "fast-tick-ratio")
}

// BenchmarkPerTickNexus5 is the homogeneous per-tick baseline (4 cores,
// single cluster) under the full MobiCore manager.
func BenchmarkPerTickNexus5(b *testing.B) {
	plat := platform.Nexus5()
	mgr, err := core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
	if err != nil {
		b.Fatal(err)
	}
	perTick(b, plat, mgr, 4)
}

// BenchmarkPerTickNexus5NoFuse is BenchmarkPerTickNexus5 with the
// quiescent-tick fast path disabled: every tick pays full scheduling and
// power-model evaluation. The ratio against BenchmarkPerTickNexus5 is the
// fast path's speedup on a steady duty-cycled workload.
func BenchmarkPerTickNexus5NoFuse(b *testing.B) {
	plat := platform.Nexus5()
	mgr, err := core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
	if err != nil {
		b.Fatal(err)
	}
	perTickFused(b, plat, mgr, 4, "", true)
}

// BenchmarkPerTickNexus5Ondemand is the homogeneous per-tick baseline under
// the stock governor stack.
func BenchmarkPerTickNexus5Ondemand(b *testing.B) {
	plat := platform.Nexus5()
	mgr, err := policy.AndroidDefault(plat.Table)
	if err != nil {
		b.Fatal(err)
	}
	perTick(b, plat, mgr, 4)
}

// BenchmarkPerTickNexus6P measures the heterogeneous tick (8 cores, two
// clusters) under the clustered MobiCore.
func BenchmarkPerTickNexus6P(b *testing.B) {
	plat := platform.Nexus6P()
	mgr, err := core.NewClusteredForPlatform(plat, core.DefaultTunables(), core.DefaultClusterTunables(), true)
	if err != nil {
		b.Fatal(err)
	}
	perTick(b, plat, mgr, 4)
}

// BenchmarkScenarioTick measures the per-tick cost of the phase-switching
// day-in-the-life scenario under the full MobiCore manager: segment
// bookkeeping, lazy thread fan-out, and the steady-hint handshake with the
// quiescent-tick fast path. The fast-tick-ratio metric shows how much of a
// synthetic user's day fuses (screen-off idle should; bursts must not).
func BenchmarkScenarioTick(b *testing.B) {
	plat := platform.Nexus5()
	mgr, err := core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
	if err != nil {
		b.Fatal(err)
	}
	w, err := scenario.FromProfile(scenario.DayInTheLife())
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.Config{Platform: plat, Manager: mgr, Workloads: []workload.Workload{w}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s.Reserve(100*time.Millisecond + time.Duration(b.N)*time.Millisecond)
	if _, err := s.Run(100 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	fastStart := s.FastTicks()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.FastTicks()-fastStart)/float64(b.N), "fast-tick-ratio")
}

// BenchmarkPlaceEAS measures the per-tick cost of the EAS placement hot
// path: the three-cluster sd855 profile under per-domain governors with
// the energy-aware placer installed. Compare against
// BenchmarkPlaceGreedySD855 for the placement rule's own overhead.
func BenchmarkPlaceEAS(b *testing.B) {
	plat := platform.SD855()
	mgr, err := core.NewClusteredForPlatform(plat, core.DefaultTunables(), core.DefaultClusterTunables(), true)
	if err != nil {
		b.Fatal(err)
	}
	perTickPlaced(b, plat, mgr, 6, "eas")
}

// BenchmarkPlaceGreedySD855 is the greedy-placer baseline for
// BenchmarkPlaceEAS on the same platform, manager, and workload.
func BenchmarkPlaceGreedySD855(b *testing.B) {
	plat := platform.SD855()
	mgr, err := core.NewClusteredForPlatform(plat, core.DefaultTunables(), core.DefaultClusterTunables(), true)
	if err != nil {
		b.Fatal(err)
	}
	perTickPlaced(b, plat, mgr, 6, "greedy")
}

// BenchmarkSimulatorThroughput measures raw engine speed: simulated time
// per wall second for a 4-core device under MobiCore and a game.
func BenchmarkSimulatorThroughput(b *testing.B) {
	plat := platform.Nexus5()
	for i := 0; i < b.N; i++ {
		mgr, err := core.NewWithModel(plat.Table, core.DefaultTunables(), nexus5Model(b, plat))
		if err != nil {
			b.Fatal(err)
		}
		wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
			TargetUtil: 0.5, Threads: 4, RefFreq: plat.Table.Max().Freq,
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sim.Config{Platform: plat, Manager: mgr, Workloads: []workload.Workload{wl}, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim-sec/wall-sec")
}
