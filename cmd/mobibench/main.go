// Command mobibench regenerates the tables and figures of the MobiCore
// thesis. Each experiment id matches the paper's numbering:
//
//	mobibench list
//	mobibench table1 fig1 fig9a
//	mobibench -scale 0.2 all
//
// At -scale 1 (the default) sessions run for the paper's durations
// (1-minute sweeps, 2-minute gaming sessions of simulated time); smaller
// scales shorten every session proportionally for quick looks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mobicore"
	"mobicore/internal/profile"
)

func main() {
	os.Exit(run())
}

func run() int {
	scale := flag.Float64("scale", 1.0, "session duration multiplier (1.0 = paper timings)")
	seed := flag.Int64("seed", 42, "workload randomness seed")
	seeds := flag.Int("seeds", 1, "consecutive seeds for the fleet-driven experiments (biglittle, easplace, sustained, dayinlife); >1 appends cross-seed 95% CIs and paired deltas")
	parallel := flag.Int("parallel", 0, "fleet worker pool for multi-cell experiments (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit results as JSON documents instead of text")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memProf := flag.String("memprofile", "", "write an allocs heap profile to this path on exit")
	flag.Usage = usage
	flag.Parse()

	stopProf, err := profile.Start(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobibench:", err)
		return 1
	}
	defer stopProf()
	defer func() {
		if err := profile.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "mobibench:", err)
		}
	}()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	if args[0] == "list" {
		for _, id := range mobicore.ExperimentIDs() {
			fmt.Println(id)
		}
		return 0
	}
	ids := args
	if args[0] == "all" {
		ids = mobicore.ExperimentIDs()
	}
	opt := mobicore.ExperimentOptions{Scale: *scale, Seed: *seed, Seeds: *seeds, Parallel: *parallel}
	for _, id := range ids {
		res, err := mobicore.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobibench: %s: %v\n", id, err)
			return 1
		}
		if *asJSON {
			if err := writeJSON(res); err != nil {
				fmt.Fprintf(os.Stderr, "mobibench: encoding %s: %v\n", id, err)
				return 1
			}
			continue
		}
		fmt.Printf("== %s: %s\n", res.ID(), res.Title())
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mobibench: rendering %s: %v\n", id, err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

// writeJSON emits one experiment as a JSON document; the result structs
// are exported, so their fields marshal directly for plotting pipelines.
func writeJSON(res mobicore.ExperimentResult) error {
	doc := struct {
		ID    string      `json:"id"`
		Title string      `json:"title"`
		Data  interface{} `json:"data"`
	}{ID: res.ID(), Title: res.Title(), Data: res}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mobibench [flags] <experiment>...

Experiments (paper numbering):
  %v
  all   — run everything
  list  — print the ids

Flags:
`, mobicore.ExperimentIDs())
	flag.PrintDefaults()
}
