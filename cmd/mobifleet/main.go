// Command mobifleet runs an ad-hoc simulation matrix — the cross-product
// of platforms × policies × placement rules × seeds — on the parallel
// batch driver and prints every cell plus cross-seed aggregate statistics:
//
//	mobifleet -platforms nexus5,nexus6p -policies mobicore,android-default -seeds 5 -dur 30s
//	mobifleet -platforms all -policies mobicore -workload game -game "Subway Surf" -dur 1m
//	mobifleet -platforms nexus6p,sd855 -policies schedutil+load -scheds greedy,eas -dur 30s
//	mobifleet -seeds 8 -parallel 4 -json -dur 10s
//
// Scenario workloads (see cmd/mobitrace for the trace generator):
//
//	mobifleet -workload scenario -scenario dayinlife -seeds 20 -dur 1m
//	mobifleet -policies pin-max+mpdecision,ondemand+offline -trace traces/dayinlife-s17.jsonl -dur 1m
//	mobifleet -trace-dir traces/ -store out/ -dur 1m
//
// -workload scenario walks the profile live off each cell's session rng, so
// the seed axis fans out into distinct synthetic users; -trace / -trace-dir
// replay recorded JSONL traces instead (one workload column per trace),
// which is how a fleet sweep of thousands of users stays exactly
// reproducible cell by cell.
//
// -seeds N runs every cell at N consecutive seeds starting from -seed;
// the report aggregates mean/stddev/min/max/p50/p95 — plus the mean's 95%
// confidence interval — of energy, FPS, drop rate, and throttle residency
// across them, and appends paired matched-seed deltas (policy vs policy,
// placer vs placer) with their own CIs. -parallel bounds the worker pool
// (default GOMAXPROCS); parallelism never changes output, only wall-clock
// time. SIGINT cancels cleanly and reports the cells that finished.
//
// The study pipeline:
//
//	mobifleet -platforms nexus6p -policies all -seeds 100 -dur 30s -store out/
//	mobifleet -platforms nexus6p -policies all -seeds 100 -dur 30s -store out/ -resume -csv out/cells.csv
//
// -store persists every completed cell to <store>/cells.jsonl keyed by a
// canonical identity hash (merged across invocations, byte-stable at any
// parallelism); -resume answers already-stored cells from the store and
// executes only the missing ones — a fully-cached matrix executes zero
// sessions and reproduces the cold run's CSV byte for byte. -traces adds
// per-cell gzip JSONL power traces under <store>/traces. -csv exports the
// per-cell rows ("-" for stdout).
//
// -json emits the fleet result as one JSON document (cells in matrix
// order, then aggregates and paired comparisons).
//
// Store tooling (no cells execute for any of these):
//
//	mobifleet -shard 0/2 ... -store a/   # run only shard 0 of 2
//	mobifleet -report out/               # render a store's aggregates
//	mobifleet -merge dst/ src1/ src2/    # merge shard stores, refusing conflicts
//	mobifleet -diff old/ new/            # paired B-A deltas with 95% CIs
//	mobifleet -diff -gate 1 old/ new/    # exit 3 if energy moved >1% with CI excluding zero
//
// -shard i/n partitions the matrix keyspace into n contiguous ranges and
// runs only range i — disjoint shards merged with -merge are byte-identical
// to the unsharded store. -report rebuilds the full text report (or -json,
// -csv) straight from a store. -diff pairs two stores cell-by-cell; with
// -gate it becomes a CI perf-regression gate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mobicore"
	"mobicore/internal/natsort"
	"mobicore/internal/profile"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		platforms = flag.String("platforms", "nexus5", "comma-separated device profiles, or \"all\"")
		policies  = flag.String("policies", "android-default", "comma-separated CPU management policies, or \"all\"")
		scheds    = flag.String("scheds", "greedy", "comma-separated placement rules: greedy, eas, or \"all\"")
		seeds     = flag.Int("seeds", 1, "number of consecutive seeds per cell")
		seed      = flag.Int64("seed", 1, "first workload randomness seed")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		dur       = flag.Duration("dur", 30*time.Second, "session duration (simulated) per cell")
		wlName    = flag.String("workload", "busyloop", "workload: busyloop, game, geekbench, scenario")
		util      = flag.Float64("util", 0.5, "busyloop target utilization [0,1]")
		threads   = flag.Int("threads", 4, "busyloop/geekbench thread count")
		gameName  = flag.String("game", "Subway Surf", "game title for -workload game")
		iters     = flag.Int("iterations", 3, "geekbench iterations per thread")
		scenName  = flag.String("scenario", "dayinlife", "scenario profile for -workload scenario (generator mode: each seed is a distinct synthetic user)")
		traceFile = flag.String("trace", "", "replay one recorded scenario trace (JSONL) as the workload")
		traceDir  = flag.String("trace-dir", "", "replay every *.jsonl scenario trace in this directory, one workload column per trace")
		asJSON    = flag.Bool("json", false, "emit the fleet result as a JSON document")
		list      = flag.Bool("list", false, "list platforms, policies, scheds, and games")
		storeDir  = flag.String("store", "", "persistent result store directory (JSONL per cell, merged across runs)")
		resume    = flag.Bool("resume", false, "load cached cells from -store and execute only the missing ones")
		traces    = flag.Bool("traces", false, "export per-cell power traces (gzip JSONL) under <store>/traces")
		csvPath   = flag.String("csv", "", "write per-cell results as CSV to this path (\"-\" for stdout)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProf   = flag.String("memprofile", "", "write an allocs heap profile to this path on exit")
		shardSpec = flag.String("shard", "", "run only key-range shard i of n, as \"i/n\" (0-based)")
		report    = flag.String("report", "", "render the report from this result store, executing nothing")
		diff      = flag.Bool("diff", false, "diff two stores given as positional args: -diff [-gate pct] storeA storeB")
		gate      = flag.Float64("gate", 0, "with -diff: exit 3 when energy moved more than this percent with a CI excluding zero")
		merge     = flag.Bool("merge", false, "merge stores given as positional args: -merge dst src...")
	)
	flag.Parse()

	stopProf, err := profile.Start(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobifleet:", err)
		return 1
	}
	defer stopProf()
	defer func() {
		if err := profile.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
		}
	}()

	if *list {
		fmt.Println("platforms: ", mobicore.Platforms())
		fmt.Println("policies:  ", mobicore.Policies(), `plus "<governor>+<hotplug>"; "all" =`, allPolicies())
		fmt.Println("hotplugs:  ", mobicore.Hotplugs())
		fmt.Println("scheds:    ", mobicore.Scheds())
		fmt.Println("games:     ", mobicore.GameNames())
		fmt.Println("scenarios: ", mobicore.ScenarioProfiles())
		return 0
	}

	// Store tooling: report, diff, and merge work entirely from persisted
	// results — no cell ever executes on these paths.
	if *merge {
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "mobifleet: -merge needs a destination and at least one source store")
			return 1
		}
		added, err := mobicore.MergeFleetStores(flag.Arg(0), flag.Args()[1:]...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
		fmt.Printf("mobifleet: merged %d new records into %s\n", added, flag.Arg(0))
		return 0
	}
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "mobifleet: -diff needs exactly two store directories")
			return 1
		}
		d, err := mobicore.DiffFleetStores(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(d); err != nil {
				fmt.Fprintln(os.Stderr, "mobifleet:", err)
				return 1
			}
		} else if err := d.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
		if *gate > 0 {
			if regs := d.Regressions(*gate / 100); len(regs) > 0 {
				for _, g := range regs {
					fmt.Fprintf(os.Stderr, "mobifleet: gate: %s / %s / %s / %s energy moved %+.2f%% (ci95 excludes zero)\n",
						g.Platform, g.Policy, g.Workload, g.Placer, g.EnergyJ.Rel*100)
				}
				return 3
			}
		}
		return 0
	}
	if *report != "" {
		res, err := mobicore.LoadFleetResult(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "mobifleet:", err)
				return 1
			}
		} else if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
		if *csvPath != "" {
			if err := writeCSV(res, *csvPath); err != nil {
				fmt.Fprintln(os.Stderr, "mobifleet:", err)
				return 1
			}
		}
		return 0
	}

	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "mobifleet: -seeds must be at least 1")
		return 1
	}

	wls, err := workloadFactories(*wlName, *scenName, *util, *threads, *gameName, *iters, *traceFile, *traceDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobifleet:", err)
		return 1
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}
	cfg := mobicore.FleetConfig{
		Platforms: expandList(*platforms, mobicore.Platforms()),
		Policies:  expandList(*policies, allPolicies()),
		Scheds:    expandList(*scheds, mobicore.Scheds()),
		Seeds:     seedList,
		Duration:  *dur,
		Parallel:  *parallel,
		Store:     *storeDir,
		Resume:    *resume,
		Traces:    *traces,
	}
	if *shardSpec != "" {
		idx, count, err := parseShard(*shardSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
		cfg.ShardIndex, cfg.ShardCount = idx, count
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := mobicore.RunFleet(ctx, cfg, wls...)
	canceled := errors.Is(err, context.Canceled)
	if err != nil && !canceled {
		fmt.Fprintln(os.Stderr, "mobifleet:", err)
		return 1
	}
	if canceled {
		fmt.Fprintf(os.Stderr, "mobifleet: interrupted — %d of %d cells completed\n",
			len(res.Cells), res.Total)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
	} else if err := res.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobifleet:", err)
		return 1
	}
	if *csvPath != "" {
		if err := writeCSV(res, *csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "mobifleet:", err)
			return 1
		}
	}
	if canceled {
		return 130
	}
	return 0
}

// writeCSV exports the per-cell results to a file, or stdout for "-".
func writeCSV(res *mobicore.FleetResult, path string) error {
	if path == "-" {
		return res.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// allPolicies is what "-policies all" expands to: the named stacks, the
// stock per-cluster governor stacks the paper's comparisons run against
// (ondemand+load is android-default, so it is not repeated), and the two
// blunt baselines the scenario experiments rank — max pinning with hotplug
// disabled and ondemand with the load-packing offliner.
func allPolicies() []string {
	return append(mobicore.Policies(),
		"conservative+load", "interactive+load", "schedutil+load",
		"pin-max+mpdecision", "ondemand+offline")
}

// workloadFactories resolves the workload flags into the fleet's workload
// dimension: recorded-trace replays (one column per trace) when -trace or
// -trace-dir is set, otherwise the single recipe -workload names.
func workloadFactories(name, scen string, util float64, threads int, game string, iters int, traceFile, traceDir string) ([]mobicore.FleetWorkload, error) {
	if traceDir != "" {
		entries, err := os.ReadDir(traceDir)
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
				names = append(names, e.Name())
			}
		}
		natsort.Strings(names)
		out := make([]mobicore.FleetWorkload, 0, len(names))
		for _, n := range names {
			wl, err := traceFactory(filepath.Join(traceDir, n))
			if err != nil {
				return nil, err
			}
			out = append(out, wl)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no *.jsonl scenario traces in %s", traceDir)
		}
		return out, nil
	}
	if traceFile != "" {
		wl, err := traceFactory(traceFile)
		if err != nil {
			return nil, err
		}
		return []mobicore.FleetWorkload{wl}, nil
	}
	wl, err := workloadFactory(name, scen, util, threads, game, iters)
	if err != nil {
		return nil, err
	}
	return []mobicore.FleetWorkload{wl}, nil
}

// traceFactory builds a replay workload column from one recorded scenario
// trace. The file's base name labels the column, so a directory of
// per-seed exports ("dayinlife-s17.jsonl") keeps every cell distinct.
func traceFactory(path string) (mobicore.FleetWorkload, error) {
	f, err := os.Open(path)
	if err != nil {
		return mobicore.FleetWorkload{}, err
	}
	tr, err := mobicore.ReadScenarioTrace(f)
	f.Close()
	if err != nil {
		return mobicore.FleetWorkload{}, fmt.Errorf("%s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), ".jsonl")
	return mobicore.NewFleetWorkload(name, func() ([]mobicore.Workload, error) {
		w, err := mobicore.NewScenarioReplay(tr)
		if err != nil {
			return nil, err
		}
		return []mobicore.Workload{w}, nil
	}), nil
}

// workloadFactory builds the per-cell workload recipe from the flags.
func workloadFactory(name, scen string, util float64, threads int, game string, iters int) (mobicore.FleetWorkload, error) {
	switch name {
	case "busyloop":
		// Validate once, up front, instead of once per cell.
		if _, err := mobicore.NewBusyLoop(util, threads); err != nil {
			return mobicore.FleetWorkload{}, err
		}
		return mobicore.NewFleetWorkload(fmt.Sprintf("busyloop-%.0f%%x%d", util*100, threads),
			func() ([]mobicore.Workload, error) {
				w, err := mobicore.NewBusyLoop(util, threads)
				if err != nil {
					return nil, err
				}
				return []mobicore.Workload{w}, nil
			}), nil
	case "game":
		if _, err := mobicore.NewGame(game); err != nil {
			return mobicore.FleetWorkload{}, err
		}
		return mobicore.NewFleetWorkload(game, func() ([]mobicore.Workload, error) {
			g, err := mobicore.NewGame(game)
			if err != nil {
				return nil, err
			}
			return []mobicore.Workload{g}, nil
		}), nil
	case "geekbench":
		if _, err := mobicore.NewGeekBenchRun(threads, iters); err != nil {
			return mobicore.FleetWorkload{}, err
		}
		return mobicore.NewFleetWorkload(fmt.Sprintf("geekbench-x%d", threads),
			func() ([]mobicore.Workload, error) {
				gb, err := mobicore.NewGeekBenchRun(threads, iters)
				if err != nil {
					return nil, err
				}
				return []mobicore.Workload{gb}, nil
			}), nil
	case "scenario":
		if _, err := mobicore.NewScenario(scen); err != nil {
			return mobicore.FleetWorkload{}, err
		}
		return mobicore.NewFleetWorkload("scenario-"+scen,
			func() ([]mobicore.Workload, error) {
				w, err := mobicore.NewScenario(scen)
				if err != nil {
					return nil, err
				}
				return []mobicore.Workload{w}, nil
			}), nil
	}
	return mobicore.FleetWorkload{}, fmt.Errorf("unknown workload %q (want busyloop, game, geekbench, scenario)", name)
}

// parseShard parses "-shard i/n" into a 0-based index and a shard count.
func parseShard(s string) (idx, count int, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard wants \"i/n\" (e.g. 0/4), got %q", s)
	}
	idx, errI := strconv.Atoi(s[:i])
	count, errN := strconv.Atoi(s[i+1:])
	if errI != nil || errN != nil || count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("-shard wants \"i/n\" with 0 <= i < n, got %q", s)
	}
	return idx, count, nil
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// expandList is splitList with "all" expanding to the full set in natural
// order (nexus5 before nexus6p, seed labels numeric).
func expandList(s string, all []string) []string {
	if strings.TrimSpace(s) == "all" {
		out := append([]string(nil), all...)
		natsort.Strings(out)
		return out
	}
	return splitList(s)
}
