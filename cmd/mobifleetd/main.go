// Command mobifleetd runs one side of a horizontally scaled fleet study.
//
// Coordinator mode (the default) owns the study: it cuts the simulation
// matrix into key-range shards, serves them over HTTP/JSON, collects the
// workers' store fragments into its result store, and exits when every
// shard has completed:
//
//	mobifleetd -listen :7077 -store out/ -shards 8 \
//	    -platforms nexus5,nexus6p -policies android-default,mobicore \
//	    -seeds 50 -dur 30s
//
// Worker mode executes shards for a coordinator until the study is done:
//
//	mobifleetd -worker http://127.0.0.1:7077 -dir /tmp/w1 -name w1
//
// Workers carry no study configuration — they fetch the job from the
// coordinator, verify every shard manifest against their own expansion of
// it, skip cells the coordinator's store already holds, and stream their
// JSONL fragments back (with retry on transient failures). The
// coordinator's merged store is byte-identical to a single-process run of
// the same matrix, whatever the worker count or completion order. Render
// it with `mobifleet -report <store>`; diff it against another study with
// `mobifleet -diff`.
//
// A restarted coordinator resumes: shards its store already fully covers
// are never re-issued. A worker that dies mid-shard forfeits its lease
// (-lease) and another worker picks the shard up, resuming from whatever
// the coordinator had stored.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobicore"
	"mobicore/internal/fleet/remote"
	"mobicore/internal/natsort"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		worker   = flag.String("worker", "", "run as a worker for this coordinator URL (empty = coordinator mode)")
		dir      = flag.String("dir", "", "worker scratch directory for shard fragment stores")
		name     = flag.String("name", "", "worker name shown in coordinator status")
		parallel = flag.Int("parallel", 0, "worker in-process pool size per shard (0 = GOMAXPROCS)")

		listen   = flag.String("listen", "127.0.0.1:7077", "coordinator listen address")
		storeDir = flag.String("store", "", "coordinator result store directory")
		shards   = flag.Int("shards", 4, "number of key-range shards to cut the matrix into")
		lease    = flag.Duration("lease", time.Minute, "shard lease timeout before re-issuing to another worker")

		platforms = flag.String("platforms", "nexus5", "comma-separated device profiles, or \"all\"")
		policies  = flag.String("policies", "android-default", "comma-separated CPU management policies, or \"all\"")
		scheds    = flag.String("scheds", "greedy", "comma-separated placement rules: greedy, eas, or \"all\"")
		seeds     = flag.Int("seeds", 1, "number of consecutive seeds per cell")
		seed      = flag.Int64("seed", 1, "first workload randomness seed")
		dur       = flag.Duration("dur", 30*time.Second, "session duration (simulated) per cell")
		wlName    = flag.String("workload", "busyloop", "workload: busyloop, game, geekbench")
		util      = flag.Float64("util", 0.5, "busyloop target utilization [0,1]")
		threads   = flag.Int("threads", 4, "busyloop/geekbench thread count")
		gameName  = flag.String("game", "Subway Surf", "game title for -workload game")
		iters     = flag.Int("iterations", 3, "geekbench iterations per thread")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *worker != "" {
		return runWorker(ctx, *worker, *dir, *name, *parallel)
	}

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "mobifleetd: coordinator mode needs -store")
		return 1
	}
	job := remote.JobSpec{
		Platforms:  expandList(*platforms, mobicore.Platforms()),
		Policies:   expandList(*policies, allPolicies()),
		Placers:    expandList(*scheds, mobicore.Scheds()),
		Seeds:      seedRange(*seed, *seeds),
		DurationNS: int64(*dur),
	}
	job.Workloads, _ = workloadSpec(*wlName, *util, *threads, *gameName, *iters)
	if job.Workloads == nil {
		fmt.Fprintf(os.Stderr, "mobifleetd: unknown workload %q (want busyloop, game, geekbench)\n", *wlName)
		return 1
	}
	coord, err := remote.NewCoordinator(remote.CoordinatorConfig{
		Job:          job,
		StoreDir:     *storeDir,
		Shards:       *shards,
		LeaseTimeout: *lease,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobifleetd:", err)
		return 1
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobifleetd:", err)
		return 1
	}
	srv := &http.Server{Handler: coord}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("mobifleetd: coordinating %d shards on http://%s (store %s)\n",
		*shards, ln.Addr(), *storeDir)

	code := 0
	select {
	case <-coord.Done():
		fmt.Println("mobifleetd: study complete")
		// Linger past the workers' poll interval so everyone still in a
		// claim loop hears "done" and exits cleanly instead of hitting a
		// closed listener.
		time.Sleep(time.Second)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mobifleetd: interrupted — store holds completed shards; restart to resume")
		code = 130
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mobifleetd:", err)
		code = 1
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shCtx)
	if err := coord.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mobifleetd:", err)
		return 1
	}
	return code
}

func runWorker(ctx context.Context, url, dir, name string, parallel int) int {
	if dir == "" {
		d, err := os.MkdirTemp("", "mobifleetd-worker-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobifleetd:", err)
			return 1
		}
		defer os.RemoveAll(d)
		dir = d
	}
	stats, err := remote.RunWorker(ctx, remote.WorkerConfig{
		Coordinator: url,
		Dir:         dir,
		Parallel:    parallel,
		Name:        name,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mobifleetd:", err)
		return 1
	}
	fmt.Printf("mobifleetd: worker done — %d shards, %d cells (%d answered from coordinator cache)\n",
		stats.Shards, stats.Cells, stats.Cached)
	if errors.Is(err, context.Canceled) {
		return 130
	}
	return 0
}

// workloadSpec lowers the CLI workload flags to wire form; nil for an
// unknown recipe name.
func workloadSpec(name string, util float64, threads int, game string, iters int) ([]remote.WorkloadSpec, bool) {
	switch name {
	case "busyloop":
		return []remote.WorkloadSpec{{Kind: "busyloop", Util: util, Threads: threads}}, true
	case "game":
		return []remote.WorkloadSpec{{Kind: "game", Game: game}}, true
	case "geekbench":
		return []remote.WorkloadSpec{{Kind: "geekbench", Threads: threads, Iterations: iters}}, true
	}
	return nil, false
}

func seedRange(first int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = first + int64(i)
	}
	return out
}

// allPolicies mirrors mobifleet's "-policies all" expansion.
func allPolicies() []string {
	return append(mobicore.Policies(),
		"conservative+load", "interactive+load", "schedutil+load")
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func expandList(s string, all []string) []string {
	if strings.TrimSpace(s) == "all" {
		out := append([]string(nil), all...)
		natsort.Strings(out)
		return out
	}
	return splitList(s)
}
