// Command mobilint is the repo's own static-analysis gate: it loads
// every package of the module from source (stdlib-only — go/ast and
// go/types, no export data, no network) and runs the project-specific
// analyzers that enforce byte-determinism and the hot-path allocation
// diet. Findings print as file:line: analyzer: message and the exit
// status is non-zero when any survive.
//
// Usage:
//
//	mobilint [-only detrand,maporder] [-skip hotalloc] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Suppress a documented false positive with a trailing or preceding
// comment: //mobilint:ignore <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobicore/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to skip")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mobilint [flags] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilint:", err)
		os.Exit(2)
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "mobilint: selection leaves no analyzers to run")
		os.Exit(2)
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilint:", err)
		os.Exit(2)
	}

	findings := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		rel, err := filepath.Rel(modRoot, f.Position.Filename)
		if err == nil {
			f.Position.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mobilint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
