package main

import (
	"os/exec"
	"testing"
)

// TestMobilintExitsZeroOnTree runs the actual driver over the whole
// module and requires a silent, zero-status pass — the contract the CI
// gate step depends on. The test's working directory is cmd/mobilint,
// inside the module, so findModuleRoot resolves the repo root.
func TestMobilintExitsZeroOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the driver over the whole module")
	}
	out, err := exec.Command("go", "run", ".", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("mobilint ./... failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("mobilint ./... printed output on a clean tree:\n%s", out)
	}
}
