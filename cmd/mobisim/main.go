// Command mobisim runs one simulation session and prints its report:
//
//	mobisim -platform nexus5 -policy mobicore -workload busyloop -util 0.3 -dur 30s
//	mobisim -policy android-default -workload game -game "Subway Surf" -dur 2m
//	mobisim -policy mobicore -workload geekbench -trace power.csv
//	mobisim -platform nexus6p -policy mobicore -workload game -game "Real Racing 3"
//
// The -policy flag accepts mobicore, mobicore-threshold, android-default,
// oracle, or any "<governor>+<hotplug>" pair such as "interactive+load" or
// "userspace+fixed-2".
//
// The -platform flag accepts either spelling of a profile — the alias
// ("nexus6p") or the display name ("Nexus 6P"). On big.LITTLE platforms
// like nexus6p, MobiCore and the stock governors drive each cluster as its
// own frequency domain, each cluster has its own thermal zone (the big
// cluster throttles long before the LITTLE one), and the report gains
// per-cluster frequency/core/temperature/throttle-residency/energy lines.
// The three-cluster "sd855" profile (prime/gold/silver) exercises the same
// machinery across three domains.
//
// The -sched flag selects the scheduler's placement rule: "greedy" (the
// default LITTLE-first rule) or "eas" (energy-aware placement against the
// platform's energy model):
//
//	mobisim -platform sd855 -sched eas -policy schedutil+load -workload game
//
// -json emits the session report as a JSON document instead of text.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobicore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		platformName = flag.String("platform", "nexus5", "device profile (see -list)")
		policyName   = flag.String("policy", "android-default", "CPU management policy")
		workloadName = flag.String("workload", "busyloop", "workload: busyloop, game, geekbench, trace")
		util         = flag.Float64("util", 0.5, "busyloop target utilization [0,1]")
		threads      = flag.Int("threads", 4, "busyloop/trace thread count")
		traceIn      = flag.String("trace-in", "", "demand trace CSV to replay for -workload trace")
		gameName     = flag.String("game", "Subway Surf", "game title for -workload game")
		iterations   = flag.Int("iterations", 3, "geekbench iterations per thread")
		dur          = flag.Duration("dur", 30*time.Second, "session duration (simulated)")
		seed         = flag.Int64("seed", 1, "workload randomness seed")
		schedName    = flag.String("sched", "greedy", "scheduler placement rule: greedy or eas")
		noThrottle   = flag.Bool("no-throttle", false, "disable the thermal frequency cap")
		tracePath    = flag.String("trace", "", "write the power trace CSV to this file")
		asJSON       = flag.Bool("json", false, "emit the session report as a JSON document")
		list         = flag.Bool("list", false, "list platforms, policies, governors, and games")
	)
	flag.Parse()

	if *list {
		fmt.Println("platforms: ", mobicore.Platforms())
		fmt.Println("policies:  ", mobicore.Policies(), `plus "<governor>+<hotplug>"`)
		fmt.Println("governors: ", mobicore.Governors())
		fmt.Println("games:     ", mobicore.GameNames())
		fmt.Println("scheds:    ", mobicore.Scheds())
		return 0
	}

	var (
		wl   mobicore.Workload
		game *mobicore.Game
		gb   *mobicore.GeekBenchRun
		err  error
	)
	switch *workloadName {
	case "busyloop":
		wl, err = mobicore.NewBusyLoop(*util, *threads)
	case "game":
		game, err = mobicore.NewGame(*gameName)
		wl = game
	case "geekbench":
		gb, err = mobicore.NewGeekBenchRun(*threads, *iterations)
		wl = gb
	case "trace":
		wl, err = loadTrace(*traceIn, *threads)
	default:
		err = fmt.Errorf("unknown workload %q (want busyloop, game, geekbench, trace)", *workloadName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		return 1
	}

	dev, err := mobicore.NewDevice(mobicore.Config{
		Platform:               *platformName,
		Policy:                 *policyName,
		Seed:                   *seed,
		Sched:                  *schedName,
		DisableThermalThrottle: *noThrottle,
	}, wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		return 1
	}

	// SIGINT cancels the session between ticks; the partial report still
	// renders so an interrupted long run is not a lost run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var rep *mobicore.Report
	if gb != nil {
		var done bool
		rep, done, err = dev.RunUntilDoneCtx(ctx, *dur)
		if err == nil && !done {
			fmt.Fprintln(os.Stderr, "mobisim: warning: benchmark did not finish within -dur")
		}
	} else {
		rep, err = dev.RunCtx(ctx, *dur)
	}
	interrupted := errors.Is(err, context.Canceled)
	if interrupted {
		fmt.Fprintf(os.Stderr, "mobisim: interrupted at %v of %v — reporting partial session\n",
			rep.Duration, *dur)
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		return 1
	}

	if *asJSON {
		if err := writeJSON(rep, game, gb); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim:", err)
			return 1
		}
	} else {
		if err := rep.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim:", err)
			return 1
		}
		if game != nil {
			fmt.Printf("avg fps:         %.1f (dropped %d of %d frames)\n",
				game.AvgFPS(), game.DroppedFrames(), game.EmittedFrames())
		}
		if gb != nil {
			score, err := gb.ScoreAfter(rep.Duration)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mobisim:", err)
				return 1
			}
			fmt.Printf("benchmark score: %.0f\n", score)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobisim:", err)
			return 1
		}
		defer f.Close()
		if err := dev.WritePowerTraceCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim:", err)
			return 1
		}
		// In JSON mode stdout carries exactly one JSON document; the
		// confirmation goes to stderr so the stream stays parseable.
		if *asJSON {
			fmt.Fprintf(os.Stderr, "power trace:     %s\n", *tracePath)
		} else {
			fmt.Printf("power trace:     %s\n", *tracePath)
		}
	}
	if interrupted {
		return 130
	}
	return 0
}

// writeJSON emits the session report (plus workload-specific figures when
// available) as one indented JSON document, mirroring mobibench's -json.
func writeJSON(rep *mobicore.Report, game *mobicore.Game, gb *mobicore.GeekBenchRun) error {
	doc := struct {
		Report        *mobicore.Report `json:"report"`
		AvgFPS        *float64         `json:"avg_fps,omitempty"`
		DroppedFrames *int             `json:"dropped_frames,omitempty"`
		EmittedFrames *int             `json:"emitted_frames,omitempty"`
		Score         *float64         `json:"benchmark_score,omitempty"`
	}{Report: rep}
	if game != nil {
		fps := game.AvgFPS()
		dropped, emitted := game.DroppedFrames(), game.EmittedFrames()
		doc.AvgFPS = &fps
		doc.DroppedFrames = &dropped
		doc.EmittedFrames = &emitted
	}
	if gb != nil {
		score, err := gb.ScoreAfter(rep.Duration)
		if err != nil {
			return err
		}
		doc.Score = &score
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// loadTrace builds a replay workload from a recorded demand CSV.
func loadTrace(path string, threads int) (mobicore.Workload, error) {
	if path == "" {
		return nil, fmt.Errorf("-workload trace requires -trace-in")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	steps, err := mobicore.ParseTraceCSV(f)
	if err != nil {
		return nil, err
	}
	return mobicore.NewScripted("trace:"+path, threads, steps)
}
