// Command mobitrace generates replayable day-in-the-life scenario traces:
// seeded deterministic phase walks serialized as JSONL, the record half of
// the record/replay pipeline mobifleet's -trace / -trace-dir flags consume.
//
//	mobitrace -profile dayinlife -seed 17 -dur 2m            # one trace to stdout
//	mobitrace -profile dayinlife -seeds 50 -dur 2m -out t/   # fleet sweep: t/dayinlife-s1.jsonl ...
//	mobitrace -list                                          # list profiles
//
// The same profile, seed, and duration always produce byte-identical
// output, so a sweep can be regenerated anywhere and compared with cmp.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mobicore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		profile = flag.String("profile", "dayinlife", "scenario profile to walk")
		seed    = flag.Int64("seed", 1, "first generator seed")
		seeds   = flag.Int("seeds", 1, "number of consecutive seeds to generate")
		dur     = flag.Duration("dur", 2*time.Minute, "simulated time each trace covers")
		out     = flag.String("out", "", "output directory (<profile>-s<seed>.jsonl per trace); empty writes a single trace to stdout")
		list    = flag.Bool("list", false, "list scenario profiles")
	)
	flag.Parse()

	if *list {
		fmt.Println("profiles:", mobicore.ScenarioProfiles())
		return 0
	}
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "mobitrace: -seeds must be at least 1")
		return 1
	}
	if *out == "" && *seeds != 1 {
		fmt.Fprintln(os.Stderr, "mobitrace: -seeds > 1 needs -out (one file per seed)")
		return 1
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mobitrace:", err)
			return 1
		}
	}
	for i := 0; i < *seeds; i++ {
		s := *seed + int64(i)
		tr, err := mobicore.GenerateScenarioTrace(*profile, s, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobitrace:", err)
			return 1
		}
		if *out == "" {
			if err := mobicore.WriteScenarioTrace(os.Stdout, tr); err != nil {
				fmt.Fprintln(os.Stderr, "mobitrace:", err)
				return 1
			}
			continue
		}
		path := filepath.Join(*out, fmt.Sprintf("%s-s%d.jsonl", *profile, s))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobitrace:", err)
			return 1
		}
		if err := mobicore.WriteScenarioTrace(f, tr); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "mobitrace:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mobitrace:", err)
			return 1
		}
	}
	return 0
}
