// Custom platform: the library is not limited to the thesis' handsets —
// define a custom game profile and study how MobiCore behaves on each
// built-in platform generation, reproducing the Figure 1 argument that
// power policy matters more with every added core.
package main

import (
	"fmt"
	"log"
	"time"

	"mobicore"
)

func main() {
	// An imaginary mid-weight title: 30 FPS pacing, moderately parallel.
	profile := mobicore.GameProfile{
		Name:         "Voxel Rally",
		TargetFPS:    30,
		FrameCycles:  1.4e8,
		ParallelFrac: 0.65,
		Workers:      2,
		SwingAmp:     0.2,
		SwingPeriod:  8 * time.Second,
		BurstEvery:   6 * time.Second,
		BurstLen:     time.Second,
		BurstMult:    2.0,
		NoiseStd:     0.05,
		MaxQueue:     3,
	}

	fmt.Printf("%-12s %-16s %9s %6s %6s\n", "platform", "policy", "avg mW", "fps", "cores")
	for _, plat := range mobicore.Platforms() {
		for _, policy := range []string{mobicore.PolicyAndroidDefault, mobicore.PolicyMobiCore} {
			g, err := mobicore.NewCustomGame(profile)
			if err != nil {
				log.Fatal(err)
			}
			dev, err := mobicore.NewDevice(mobicore.Config{
				Platform: plat,
				Policy:   policy,
				Seed:     3,
			}, g)
			if err != nil {
				log.Fatal(err)
			}
			report, err := dev.Run(30 * time.Second)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-16s %9.1f %6.1f %6.2f\n",
				plat, policy, report.AvgPowerW*1000, g.AvgFPS(), report.AvgOnlineCores)
		}
	}
}
