// Gaming: play each of the thesis' five evaluation titles for a gaming
// session under both policies and print the Figure 10–12 view — power,
// FPS, average frequency, and core usage per game.
package main

import (
	"fmt"
	"log"
	"time"

	"mobicore"
)

const sessionLen = 60 * time.Second

func main() {
	fmt.Printf("%-16s %-16s %9s %6s %-10s %6s\n",
		"game", "policy", "avg mW", "fps", "avg freq", "cores")
	for _, game := range mobicore.GameNames() {
		var watts [2]float64
		for i, policy := range []string{mobicore.PolicyAndroidDefault, mobicore.PolicyMobiCore} {
			g, err := mobicore.NewGame(game)
			if err != nil {
				log.Fatal(err)
			}
			dev, err := mobicore.NewDevice(mobicore.Config{
				Policy: policy,
				Seed:   42,
			}, g)
			if err != nil {
				log.Fatal(err)
			}
			report, err := dev.Run(sessionLen)
			if err != nil {
				log.Fatal(err)
			}
			watts[i] = report.AvgPowerW
			fmt.Printf("%-16s %-16s %9.1f %6.1f %-10v %6.2f\n",
				game, policy, report.AvgPowerW*1000, g.AvgFPS(),
				mobicore.Hz(report.AvgFreqHz), report.AvgOnlineCores)
		}
		fmt.Printf("%-16s saving: %.1f%%\n\n", "", (1-watts[1]/watts[0])*100)
	}
}
