// Governors: sweep every stock cpufreq governor (plus MobiCore and the
// §4.2 oracle) over the same oscillating workload and print the
// power/throughput frontier each policy lands on — a compact version of
// the trade-off study in §3 of the thesis.
package main

import (
	"fmt"
	"log"
	"time"

	"mobicore"
)

func main() {
	policies := []string{
		"powersave+load",
		"conservative+load",
		"ondemand+load", // == android-default
		"interactive+load",
		"schedutil+load",
		"performance+mpdecision",
		mobicore.PolicyOracle,
		mobicore.PolicyMobiCore,
	}
	fmt.Printf("%-24s %9s %12s %10s %7s\n", "policy", "avg mW", "Gcycles", "Mcyc/J", "cores")
	for _, policy := range policies {
		wl, err := mobicore.NewSinusoid("wave", 4, 2.5e9, 0.6, 6*time.Second, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := mobicore.NewDevice(mobicore.Config{
			Policy: policy,
			Seed:   7,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		report, err := dev.Run(30 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		efficiency := report.ExecutedCycles / report.EnergyJ / 1e6
		fmt.Printf("%-24s %9.1f %12.2f %10.1f %7.2f\n",
			policy, report.AvgPowerW*1000, report.ExecutedCycles/1e9,
			efficiency, report.AvgOnlineCores)
	}
}
