// Quickstart: simulate a Nexus 5 running a steady workload under the stock
// Android policy and under MobiCore, and compare average power — the
// essence of the thesis' Figure 9a in a dozen lines.
package main

import (
	"fmt"
	"log"
	"time"

	"mobicore"
)

func main() {
	var watts [2]float64
	for i, policy := range []string{mobicore.PolicyAndroidDefault, mobicore.PolicyMobiCore} {
		wl, err := mobicore.NewBusyLoop(0.30, 4) // 30% duty across 4 threads
		if err != nil {
			log.Fatal(err)
		}
		dev, err := mobicore.NewDevice(mobicore.Config{
			Platform: "nexus5",
			Policy:   policy,
			Seed:     1,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		report, err := dev.Run(30 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		watts[i] = report.AvgPowerW
		fmt.Printf("%-16s %7.1f mW  avg freq %-10v avg cores %.2f\n",
			policy, report.AvgPowerW*1000, mobicore.Hz(report.AvgFreqHz), report.AvgOnlineCores)
	}
	fmt.Printf("\nMobiCore power saving: %.1f%%\n", (1-watts[1]/watts[0])*100)
}
