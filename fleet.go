package mobicore

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
)

// FleetConfig declares a batch simulation matrix by name: the cross-product
// of platforms × policies × placement rules × seeds, each cell one session
// of Duration over the caller's workload factories. RunFleet executes the
// matrix on a bounded worker pool; see internal/fleet for the engine.
type FleetConfig struct {
	// Platforms names device profiles (aliases or display names; see
	// Platforms). Empty means ["nexus5"].
	Platforms []string
	// Policies names CPU managers — the Policy* constants or
	// "<governor>+<hotplug>" forms. Empty means [PolicyAndroidDefault].
	Policies []string
	// Scheds names scheduler placement rules (SchedGreedy, SchedEAS).
	// Empty means [SchedGreedy].
	Scheds []string
	// Seeds lists workload randomness seeds; the fleet aggregates
	// statistics across this dimension. Empty means the single seed 0.
	Seeds []int64
	// Duration is the simulated length of every session; required.
	Duration time.Duration
	// Tick and SamplePeriod override the engine defaults (1 ms, 50 ms).
	Tick         time.Duration
	SamplePeriod time.Duration
	// Parallel bounds the worker pool; 0 means GOMAXPROCS. Parallelism
	// never changes results — output is ordered by cell index — only
	// wall-clock time.
	Parallel int

	// Store names a directory for the persistent result store: every
	// completed cell is merged into <Store>/cells.jsonl keyed by its
	// canonical identity hash, so sweeps compose across invocations.
	// Empty disables persistence.
	Store string
	// Resume loads cached cells from Store before running, executing only
	// the cells the store does not hold yet. Requires Store. A fully-
	// cached matrix executes zero sessions and reproduces the cold run's
	// aggregates and CSV byte for byte.
	Resume bool
	// Traces exports each executed cell's per-tick power trace (system
	// plus per-cluster watts) as gzip JSONL under <Store>/traces.
	// Requires Store.
	Traces bool

	// ShardIndex/ShardCount restrict the run to one key-range shard of the
	// matrix: when ShardCount > 0, the cell keyspace is partitioned into
	// ShardCount contiguous ranges and only shard ShardIndex (0-based)
	// executes. Disjoint-shard runs into separate stores merge (see
	// MergeFleetStores) into a store byte-identical to an unsharded run.
	ShardIndex int
	ShardCount int
}

// FleetWorkload names a workload recipe for fleet cells. Workload
// instances are stateful, so New is called once per cell to produce a
// fresh set; it must be safe to call from multiple goroutines.
type FleetWorkload = fleet.WorkloadFactory

// NewFleetWorkload builds a FleetWorkload from a name and a factory.
func NewFleetWorkload(name string, build func() ([]Workload, error)) FleetWorkload {
	return FleetWorkload{Name: name, New: build}
}

// FleetResult is a completed fleet run: per-cell reports in matrix order
// plus cross-seed aggregate statistics. It renders with WriteText and
// marshals as JSON.
type FleetResult = fleet.Result

// FleetCell is one completed session of a fleet run.
type FleetCell = fleet.CellResult

// FleetAggregate is one matrix group summarized across its seeds.
type FleetAggregate = fleet.Aggregate

// FleetStat is one metric's distribution across a group's seeds,
// including the mean's 95% confidence interval.
type FleetStat = fleet.Stat

// FleetComparison is a paired matched-seed difference between two
// policies (or two placers) in the same matrix context.
type FleetComparison = fleet.Comparison

// FleetPairedStat is one metric's paired-difference summary inside a
// FleetComparison.
type FleetPairedStat = fleet.PairedStat

// RunFleet executes the matrix cfg declares over the given workload
// factories and returns every session's report plus cross-seed aggregates
// (mean/stddev/min/max/p50/p95 of energy, FPS, drop rate, and throttle
// residency). Results are deterministic: the same config and workloads
// produce byte-identical output at any Parallel setting.
//
// Cancelling ctx stops the fleet between ticks; the completed cells come
// back in a partial FleetResult alongside ctx's error, so callers can
// report what finished.
func RunFleet(ctx context.Context, cfg FleetConfig, workloads ...FleetWorkload) (*FleetResult, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("mobicore: RunFleet needs at least one workload factory")
	}
	platNames := cfg.Platforms
	if len(platNames) == 0 {
		platNames = []string{"nexus5"}
	}
	plats := make([]platform.Platform, 0, len(platNames))
	for _, name := range platNames {
		p, err := lookupPlatform(name)
		if err != nil {
			return nil, err
		}
		plats = append(plats, p)
	}
	polNames := cfg.Policies
	if len(polNames) == 0 {
		polNames = []string{PolicyAndroidDefault}
	}
	pols := make([]fleet.PolicyFactory, 0, len(polNames))
	for _, name := range polNames {
		// Resolve eagerly against every platform so an unknown policy
		// name fails before any session runs.
		for _, p := range plats {
			if _, err := buildPolicy(name, p); err != nil {
				return nil, err
			}
		}
		pols = append(pols, fleetPolicy(name))
	}
	if cfg.Traces && cfg.Store == "" {
		return nil, fmt.Errorf("mobicore: FleetConfig.Traces requires Store")
	}
	if cfg.Resume && cfg.Store == "" {
		return nil, fmt.Errorf("mobicore: FleetConfig.Resume requires Store")
	}
	traceDir := ""
	if cfg.Traces {
		traceDir = filepath.Join(cfg.Store, "traces")
	}
	res, err := fleet.Run(ctx, fleet.Spec{
		Platforms:    plats,
		Policies:     pols,
		Workloads:    workloads,
		Placers:      cfg.Scheds,
		Seeds:        cfg.Seeds,
		Duration:     cfg.Duration,
		Tick:         cfg.Tick,
		SamplePeriod: cfg.SamplePeriod,
		Parallel:     cfg.Parallel,
		StoreDir:     cfg.Store,
		Resume:       cfg.Resume,
		TraceDir:     traceDir,
		ShardIndex:   cfg.ShardIndex,
		ShardCount:   cfg.ShardCount,
	})
	if err != nil && res == nil {
		return nil, fmt.Errorf("mobicore: %w", err)
	}
	return res, err
}

// LoadFleetResult rebuilds a FleetResult from a persistent result store —
// aggregates, comparisons, text, CSV, and JSON with zero cells executed.
// The store may have been filled by any mix of serial, parallel, sharded,
// or distributed runs.
func LoadFleetResult(storeDir string) (*FleetResult, error) {
	return fleet.LoadStoreResult(storeDir)
}

// FleetDiff is a cross-store comparison: the same cells run by two code
// versions, summarized as paired per-cell deltas with 95% confidence
// intervals per matrix group.
type FleetDiff = fleet.Diff

// DiffFleetStores pairs two result stores cell-by-cell (by canonical
// identity key) and summarizes the B−A deltas. Use FleetDiff.Regressions
// to gate CI on statistically certain energy movement.
func DiffFleetStores(storeA, storeB string) (*FleetDiff, error) {
	return fleet.LoadStoreDiff(storeA, storeB)
}

// MergeFleetStores merges source result stores into dst, refusing
// conflicting records for the same cell. Returns the number of records
// new to dst.
func MergeFleetStores(dst string, srcs ...string) (int, error) {
	return fleet.MergeStores(dst, srcs...)
}

// fleetPolicy adapts a policy name to a fleet factory through the facade's
// resolution (so display-name platforms and the full name set work).
func fleetPolicy(name string) fleet.PolicyFactory {
	return fleet.PolicyFactory{
		Name: name,
		New:  func(p platform.Platform) (policy.Manager, error) { return buildPolicy(name, p) },
	}
}
