package mobicore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobicore"
)

func busyFleetWorkload(t *testing.T) mobicore.FleetWorkload {
	t.Helper()
	return mobicore.NewFleetWorkload("busyloop", func() ([]mobicore.Workload, error) {
		w, err := mobicore.NewBusyLoop(0.5, 4)
		if err != nil {
			return nil, err
		}
		return []mobicore.Workload{w}, nil
	})
}

// TestRunFleetMatrix: the facade runs a named matrix end to end and the
// result is deterministic across parallelism.
func TestRunFleetMatrix(t *testing.T) {
	run := func(parallel int) string {
		t.Helper()
		res, err := mobicore.RunFleet(context.Background(), mobicore.FleetConfig{
			Platforms: []string{"nexus5", "nexus6p"},
			Policies:  []string{mobicore.PolicyMobiCore, "interactive+load"},
			Seeds:     []int64{1, 2},
			Duration:  time.Second,
			Parallel:  parallel,
		}, busyFleetWorkload(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 8 || res.Incomplete {
			t.Fatalf("cells = %d (incomplete %v), want 8 complete", len(res.Cells), res.Incomplete)
		}
		if len(res.Aggregates) != 4 {
			t.Fatalf("aggregates = %d, want 4", len(res.Aggregates))
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := res.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(txt.String(), "Nexus 6P") {
			t.Errorf("text output missing platform:\n%s", txt.String())
		}
		return string(js)
	}
	if run(1) != run(4) {
		t.Error("RunFleet output differs between Parallel 1 and 4")
	}
}

// TestRunFleetValidation: unknown names fail before any session runs, and
// a missing workload factory is rejected.
func TestRunFleetValidation(t *testing.T) {
	cfg := mobicore.FleetConfig{Duration: time.Second}
	if _, err := mobicore.RunFleet(context.Background(), cfg); err == nil {
		t.Error("RunFleet without workloads accepted")
	}
	cfg.Platforms = []string{"atari2600"}
	if _, err := mobicore.RunFleet(context.Background(), cfg, busyFleetWorkload(t)); err == nil {
		t.Error("unknown platform accepted")
	}
	cfg.Platforms = nil
	cfg.Policies = []string{"nope"}
	if _, err := mobicore.RunFleet(context.Background(), cfg, busyFleetWorkload(t)); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestRunFleetStudyPipeline: the facade's store/resume/traces wiring — a
// stored run resumes with zero executions and byte-identical CSV, traces
// land under <store>/traces, and the flags validate.
func TestRunFleetStudyPipeline(t *testing.T) {
	dir := t.TempDir()
	cfg := mobicore.FleetConfig{
		Platforms: []string{"nexus5"},
		Policies:  []string{mobicore.PolicyMobiCore, "interactive+load"},
		Seeds:     []int64{1, 2, 3},
		Duration:  time.Second,
		Store:     dir,
		Traces:    true,
	}
	res, err := mobicore.RunFleet(context.Background(), cfg, busyFleetWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	var cold bytes.Buffer
	if err := res.WriteCSV(&cold); err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "traces", "*.trace.jsonl.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 6 {
		t.Errorf("%d trace files, want 6", len(traces))
	}

	cfg.Resume = true
	res, err = mobicore.RunFleet(context.Background(), cfg, busyFleetWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != 6 || res.Cached != res.Total {
		t.Errorf("resume cached %d of %d, want all 6", res.Cached, res.Total)
	}
	var warm bytes.Buffer
	if err := res.WriteCSV(&warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("resumed CSV differs from cold CSV")
	}
	// Aggregates and paired comparisons survive the cache round trip.
	if len(res.Aggregates) != 2 || res.Aggregates[0].EnergyJ.CI95Hi < res.Aggregates[0].EnergyJ.CI95Lo {
		t.Errorf("cached aggregates malformed: %+v", res.Aggregates)
	}
	if len(res.Comparisons) != 1 || res.Comparisons[0].Seeds != 3 {
		t.Errorf("cached comparisons malformed: %+v", res.Comparisons)
	}

	// Traces and Resume require Store.
	for _, bad := range []mobicore.FleetConfig{
		{Duration: time.Second, Traces: true},
		{Duration: time.Second, Resume: true},
	} {
		if _, err := mobicore.RunFleet(context.Background(), bad, busyFleetWorkload(t)); err == nil {
			t.Errorf("config %+v accepted without Store", bad)
		}
	}
}

// TestRunFleetCanceled: cancellation yields the partial result.
func TestRunFleetCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := mobicore.RunFleet(ctx, mobicore.FleetConfig{
		Seeds:    []int64{1, 2, 3},
		Duration: time.Second,
	}, busyFleetWorkload(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Incomplete || res.Total != 3 {
		t.Fatalf("partial result = %+v, want incomplete total 3", res)
	}
}
