package mobicore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mobicore"
)

func busyFleetWorkload(t *testing.T) mobicore.FleetWorkload {
	t.Helper()
	return mobicore.NewFleetWorkload("busyloop", func() ([]mobicore.Workload, error) {
		w, err := mobicore.NewBusyLoop(0.5, 4)
		if err != nil {
			return nil, err
		}
		return []mobicore.Workload{w}, nil
	})
}

// TestRunFleetMatrix: the facade runs a named matrix end to end and the
// result is deterministic across parallelism.
func TestRunFleetMatrix(t *testing.T) {
	run := func(parallel int) string {
		t.Helper()
		res, err := mobicore.RunFleet(context.Background(), mobicore.FleetConfig{
			Platforms: []string{"nexus5", "nexus6p"},
			Policies:  []string{mobicore.PolicyMobiCore, "interactive+load"},
			Seeds:     []int64{1, 2},
			Duration:  time.Second,
			Parallel:  parallel,
		}, busyFleetWorkload(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 8 || res.Incomplete {
			t.Fatalf("cells = %d (incomplete %v), want 8 complete", len(res.Cells), res.Incomplete)
		}
		if len(res.Aggregates) != 4 {
			t.Fatalf("aggregates = %d, want 4", len(res.Aggregates))
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := res.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(txt.String(), "Nexus 6P") {
			t.Errorf("text output missing platform:\n%s", txt.String())
		}
		return string(js)
	}
	if run(1) != run(4) {
		t.Error("RunFleet output differs between Parallel 1 and 4")
	}
}

// TestRunFleetValidation: unknown names fail before any session runs, and
// a missing workload factory is rejected.
func TestRunFleetValidation(t *testing.T) {
	cfg := mobicore.FleetConfig{Duration: time.Second}
	if _, err := mobicore.RunFleet(context.Background(), cfg); err == nil {
		t.Error("RunFleet without workloads accepted")
	}
	cfg.Platforms = []string{"atari2600"}
	if _, err := mobicore.RunFleet(context.Background(), cfg, busyFleetWorkload(t)); err == nil {
		t.Error("unknown platform accepted")
	}
	cfg.Platforms = nil
	cfg.Policies = []string{"nope"}
	if _, err := mobicore.RunFleet(context.Background(), cfg, busyFleetWorkload(t)); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestRunFleetCanceled: cancellation yields the partial result.
func TestRunFleetCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := mobicore.RunFleet(ctx, mobicore.FleetConfig{
		Seeds:    []int64{1, 2, 3},
		Duration: time.Second,
	}, busyFleetWorkload(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Incomplete || res.Total != 3 {
		t.Fatalf("partial result = %+v, want incomplete total 3", res)
	}
}
