module mobicore

go 1.24
