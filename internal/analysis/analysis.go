// Package analysis is mobilint's engine: a stdlib-only static-analysis
// suite (go/ast + go/types, source-based loading, no external modules)
// with project-specific analyzers that enforce the invariants the test
// suite can only spot-check — byte-determinism of the study pipeline and
// the allocation diet of the per-tick hot path.
//
// Four analyzers ship today:
//
//   - detrand: deterministic packages must not read wall clocks or the
//     global math/rand source.
//   - maporder: iteration over a map must not feed order-sensitive sinks
//     (slice appends, output writes, float accumulation) without a
//     subsequent sort.
//   - hotalloc: functions annotated //mobicore:hotpath must not contain
//     allocating constructs on their warm path.
//   - unitcheck: identifiers with unit suffixes (J, W, Hz, MHz, Sec, C)
//     must not mix units across + and -.
//
// A finding on line L is suppressed by a "//mobilint:ignore reason"
// comment on line L or L-1; the reason is mandatory, so every
// suppression documents why the construct is acceptable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only/-skip flags.
	Name string
	// Doc is a one-line description shown by the driver's usage text.
	Doc string
	// Run inspects the package and reports diagnostics through the pass.
	Run func(*Pass)
}

// All lists every analyzer in the suite, in diagnostic-prefix order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, HotAlloc, UnitCheck}
}

// Select resolves -only/-skip analyzer selections against All. Both are
// comma-separated analyzer names; empty strings mean "no restriction".
func Select(only, skip string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		if strings.TrimSpace(list) == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(Names(), ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// Names returns every analyzer name in order.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []diag
}

type diag struct {
	pos token.Pos
	msg string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, diag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// Finding is one resolved diagnostic.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the driver's file:line: analyzer: message format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Position.Filename, f.Position.Line, f.Analyzer, f.Message)
}

// ignoreDirective is the comment prefix that suppresses a finding on its
// own line or the line below.
const ignoreDirective = "//mobilint:ignore"

// ignoreSet maps filename -> suppressed lines for one package.
type ignoreSet map[string]map[int]bool

func (s ignoreSet) suppressed(pos token.Position) bool {
	return s[pos.Filename][pos.Line]
}

// collectIgnores scans a package's comments for mobilint:ignore
// directives. A directive suppresses findings on its own line (trailing
// comment) and the next line (comment above the construct). Directives
// without a reason are themselves reported, so suppressions stay
// documented.
func collectIgnores(pkg *Package) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective))
				if reason == "" {
					bad = append(bad, Finding{
						Position: pos,
						Analyzer: "mobilint",
						Message:  "mobilint:ignore directive needs a reason",
					})
					continue
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]bool{}
				}
				set[pos.Filename][pos.Line] = true
				set[pos.Filename][pos.Line+1] = true
			}
		}
	}
	return set, bad
}

// RunAnalyzers runs the given analyzers over the loaded packages and
// returns the surviving findings sorted by file and line. Suppressed
// diagnostics are dropped; malformed ignore directives are reported.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.pos)
				if ignores.suppressed(pos) {
					continue
				}
				out = append(out, Finding{Position: pos, Analyzer: a.Name, Message: d.msg})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pkgNameOf resolves the package an identifier qualifies, or nil when the
// expression is not a package selector base.
func pkgNameOf(info *types.Info, x ast.Expr) *types.PkgName {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}
