package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePkg loads one testdata fixture package. rel is the path under
// testdata/src, which doubles as the fixture's import path — detrand
// fixtures rely on that to land inside (or outside) the deterministic
// package set.
func fixturePkg(t *testing.T, rel string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := LoadDir(dir, rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

// wantRe pulls the quoted expectations out of a // want "..." comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line    int
	substr  string
	matched bool
}

// collectWants scans a fixture package for // want "substr" comments.
// Each expectation must be matched by a finding on the same line whose
// "analyzer: message" rendering contains substr.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pkg.Path, line, c.Text)
					continue
				}
				for _, m := range ms {
					wants = append(wants, &expectation{line: line, substr: m[1]})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture and diffs the
// findings against the fixture's want comments: every finding must be
// expected, every expectation must fire. A fixture without want
// comments therefore asserts the analyzer stays silent.
func checkFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	pkg := fixturePkg(t, rel)
	wants := collectWants(t, pkg)
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	for _, f := range findings {
		rendered := f.Analyzer + ": " + f.Message
		matched := false
		for _, w := range wants {
			if !w.matched && w.line == f.Position.Line && strings.Contains(rendered, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", rel, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding containing %q, got none", rel, w.line, w.substr)
		}
	}
}

func TestDetRand(t *testing.T) {
	checkFixture(t, DetRand, "detrand/sim")
	checkFixture(t, DetRand, "detrand/clean")
}

func TestMapOrder(t *testing.T) {
	checkFixture(t, MapOrder, "maporder/fire")
	checkFixture(t, MapOrder, "maporder/clean")
}

func TestHotAlloc(t *testing.T) {
	checkFixture(t, HotAlloc, "hotalloc/fire")
	checkFixture(t, HotAlloc, "hotalloc/clean")
}

func TestUnitCheck(t *testing.T) {
	checkFixture(t, UnitCheck, "unitcheck/fire")
	checkFixture(t, UnitCheck, "unitcheck/clean")
}

// TestIgnoreNeedsReason: a bare mobilint:ignore is itself a finding, so
// every suppression in the tree stays documented.
func TestIgnoreNeedsReason(t *testing.T) {
	pkg := fixturePkg(t, "ignore/bad")
	findings := RunAnalyzers([]*Package{pkg}, All())
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "mobilint" || !strings.Contains(f.Message, "needs a reason") {
		t.Errorf("unexpected finding for bare directive: %s", f)
	}
}

func TestSelect(t *testing.T) {
	names := func(as []*Analyzer) string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return strings.Join(out, ",")
	}
	all, err := Select("", "")
	if err != nil || names(all) != "detrand,maporder,hotalloc,unitcheck" {
		t.Errorf("Select(\"\",\"\") = %s, %v", names(all), err)
	}
	only, err := Select("detrand, unitcheck", "")
	if err != nil || names(only) != "detrand,unitcheck" {
		t.Errorf("Select(only) = %s, %v", names(only), err)
	}
	skipped, err := Select("", "hotalloc")
	if err != nil || names(skipped) != "detrand,maporder,unitcheck" {
		t.Errorf("Select(skip) = %s, %v", names(skipped), err)
	}
	if _, err := Select("nosuch", ""); err == nil {
		t.Error("Select with unknown analyzer did not error")
	}
}

// TestRepoIsClean loads the whole module through the same loader the
// driver uses and asserts the full analyzer suite finds nothing — the
// library-level half of the "mobilint exits 0 on the tree" gate.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module from source")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the ./... expansion looks broken", len(pkgs))
	}
	findings := RunAnalyzers(pkgs, All())
	for _, f := range findings {
		t.Errorf("finding on the real tree: %s", f)
	}
}
