package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPkgs names the packages whose output must be a pure
// function of their inputs: the study pipeline's resume and
// parallel-equals-serial guarantees rest on them. A package is covered
// when its import path ends in one of these elements (so the testdata
// fixtures match too).
var DeterministicPkgs = []string{
	"sim", "fleet", "fleet/shard", "fleet/store", "metrics", "experiment",
	"sched", "scenario", "soc",
}

// wallClockFuncs are the time-package functions that read the wall clock
// or schedule against it — every one of them makes a run irreproducible.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand constructors that build explicitly
// seeded generators — the only sanctioned route to randomness in a
// deterministic package. Everything else in the package draws from the
// global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// DetRand forbids wall-clock reads and global math/rand draws in the
// deterministic packages. Randomness must flow through an explicitly
// seeded *rand.Rand so equal seeds reproduce equal traces.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall clocks and global math/rand in deterministic packages",
	Run:  runDetRand,
}

// isDeterministicPkg reports whether the import path names one of the
// byte-determinism-critical packages.
func isDeterministicPkg(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func runDetRand(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.Info, sel.X)
			if pn == nil {
				return true
			}
			// Only package-scope functions matter: method calls on an
			// explicitly constructed *rand.Rand resolve through a value,
			// not a PkgName, and type names are not draws.
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s in deterministic package %s: wall-clock state breaks byte-determinism; derive times from the simulation clock", sel.Sel.Name, pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "rand.%s in deterministic package %s draws from the global source; use an explicitly seeded *rand.Rand", sel.Sel.Name, pass.Pkg.Name())
				}
			}
			return true
		})
	}
}
