package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathMarker annotates a function as part of the per-tick hot path.
// It goes in the function's doc comment.
const hotpathMarker = "//mobicore:hotpath"

// HotAlloc enforces the allocation diet on functions annotated
// //mobicore:hotpath: no make/new, no append, no slice or map literals,
// no &T{} escapes, no closures, no fmt calls, no non-constant string
// concatenation, and no interface boxing. Branches that end by
// returning an error (or panicking) are cold — a steady-state tick
// never takes them — so allocations there are not charged.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //mobicore:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathMarker(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

// hasHotpathMarker reports whether the doc comment carries the
// //mobicore:hotpath annotation.
func hasHotpathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// checkHotFunc walks one annotated function's warm path and reports
// every allocating construct.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	cold := coldBlocks(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok && cold[b] {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass.Info, x.Fun, "make"):
				pass.Reportf(x.Pos(), "make in hot path %s allocates every call", fd.Name.Name)
			case isBuiltin(pass.Info, x.Fun, "new"):
				pass.Reportf(x.Pos(), "new in hot path %s allocates every call", fd.Name.Name)
			case isBuiltin(pass.Info, x.Fun, "append"):
				pass.Reportf(x.Pos(), "append in hot path %s may grow its backing array", fd.Name.Name)
			default:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if pn := pkgNameOf(pass.Info, sel.X); pn != nil && pn.Imported().Path() == "fmt" {
						pass.Reportf(x.Pos(), "fmt.%s in hot path %s allocates (formatting boxes its operands)", sel.Sel.Name, fd.Name.Name)
					}
				}
				if t := conversionToInterface(pass, x); t != "" {
					pass.Reportf(x.Pos(), "conversion to interface %s in hot path %s boxes its operand", t, fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(x.Pos(), "slice literal in hot path %s allocates every call", fd.Name.Name)
				case *types.Map:
					pass.Reportf(x.Pos(), "map literal in hot path %s allocates every call", fd.Name.Name)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal in hot path %s escapes to the heap", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "func literal in hot path %s may allocate a closure", fd.Name.Name)
			return false // its body is charged to the closure itself
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(pass, x) {
				pass.Reportf(x.Pos(), "string concatenation in hot path %s allocates", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(pass.Info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string concatenation in hot path %s allocates", fd.Name.Name)
			}
			checkBoxingAssign(pass, fd, x)
		}
		return true
	})
}

// coldBlocks collects if/else blocks whose last statement returns an
// error or panics — abnormal exits the steady-state tick never takes.
func coldBlocks(pass *Pass, body *ast.BlockStmt) map[*ast.BlockStmt]bool {
	cold := map[*ast.BlockStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if isColdExit(pass, ifs.Body) {
			cold[ifs.Body] = true
		}
		if els, ok := ifs.Else.(*ast.BlockStmt); ok && isColdExit(pass, els) {
			cold[els] = true
		}
		return true
	})
	return cold
}

// isColdExit reports whether the block ends by returning a non-nil
// error or panicking.
func isColdExit(pass *Pass, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if t := pass.Info.TypeOf(res); t != nil && isErrorType(t) {
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok && isBuiltin(pass.Info, call.Fun, "panic") {
			return true
		}
	}
	return false
}

// conversionToInterface reports the interface type name when the call
// expression is a type conversion boxing a concrete value.
func conversionToInterface(pass *Pass, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	if !types.IsInterface(tv.Type) {
		return ""
	}
	argT := pass.Info.TypeOf(call.Args[0])
	if argT == nil || types.IsInterface(argT) || isUntypedNil(argT) {
		return ""
	}
	return tv.Type.String()
}

// checkBoxingAssign flags assignments that store a concrete value into
// an interface-typed location.
func checkBoxingAssign(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.Info.TypeOf(lhs)
		rt := pass.Info.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if !types.IsInterface(lt) || types.IsInterface(rt) || isUntypedNil(rt) {
			continue
		}
		pass.Reportf(as.Pos(), "assignment boxes %s into interface %s in hot path %s", rt, lt, fd.Name.Name)
	}
}

func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isNonConstString reports whether the expression is a string-typed
// binary op that is not constant-folded at compile time.
func isNonConstString(pass *Pass, x *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}
