package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its syntax trees —
// everything an analyzer needs.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages of one module entirely from source:
// module-internal imports resolve against the module tree, everything
// else (the standard library) goes through go/importer's source
// importer. No export data, no network, no external tooling — the
// loader works in the offline build environment.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot (the
// directory holding go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModPath returns the module path the loader resolves against.
func (l *Loader) ModPath() string { return l.modPath }

// Import implements types.Importer: module-internal paths load from the
// module tree, the rest delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	p, err := typeCheckDir(l.Fset, dir, importPath, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// LoadPatterns loads the module packages named by go-style patterns:
// "./..." (or "...") for the whole module, "./dir/..." for a subtree,
// and plain relative directories for single packages. Returned packages
// are sorted by import path and deduplicated.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			found, err := l.packageDirs(l.modRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range found {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			found, err := l.packageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range found {
				dirs[d] = true
			}
		default:
			dirs[filepath.Join(l.modRoot, filepath.FromSlash(pat))] = true
		}
	}
	var out []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.modPath
		if rel != "." {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// packageDirs walks root collecting directories that contain at least
// one non-test Go file, skipping testdata, hidden, and underscore dirs.
func (l *Loader) packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if isSourceFile(d.Name()) {
			out = append(out, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return uniqStrings(out), nil
}

// LoadDir type-checks a single standalone directory (a test fixture)
// under the given import path, resolving imports through the stdlib
// source importer only.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	return typeCheckDir(fset, dir, importPath, importer.ForCompiler(fset, "source", nil))
}

// typeCheckDir parses every non-test Go file in dir and type-checks the
// package with full types.Info, using imp for import resolution.
func typeCheckDir(fset *token.FileSet, dir, importPath string, imp types.Importer) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func uniqStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
