package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// MapOrder flags range statements over maps whose body feeds an
// order-sensitive sink — appending to a slice, writing output, or
// accumulating floating-point values — without a subsequent sort in the
// same function. Go randomizes map iteration order, so any of these
// turns a byte-deterministic pipeline into a coin flip: the store's
// cells.jsonl, resumed CSVs, and parallel-equals-serial reports all
// depend on never letting map order reach an output.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding order-sensitive sinks without a subsequent sort",
	Run:  runMapOrder,
}

// outputMethods are receiver methods that emit bytes in call order —
// strings.Builder, bytes.Buffer, io.Writer and friends.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true, "Encode": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

// checkMapRanges finds every range-over-map inside fn and reports the
// ones whose body hits an order-sensitive sink with no sort call later
// in the same function body.
func checkMapRanges(pass *Pass, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		sink := orderSink(pass, rng.Body)
		if sink == "" {
			return true
		}
		if sortCallAfter(pass, fn, rng.End()) {
			return true
		}
		pass.Reportf(rng.Pos(), "map iteration %s without a subsequent sort: Go randomizes map order, so the result is nondeterministic", sink)
		return true
	})
}

// orderSink classifies the first order-sensitive operation in a range
// body, or returns "" when the body is order-insensitive.
func orderSink(pass *Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass.Info, x.Fun, "append") {
				sink = "appends to a slice"
				return false
			}
			if name, ok := outputCall(pass, x); ok {
				sink = "writes output via " + name
				return false
			}
		case *ast.AssignStmt:
			if x.Tok != token.ADD_ASSIGN && x.Tok != token.SUB_ASSIGN {
				return true
			}
			for _, lhs := range x.Lhs {
				if t := pass.Info.TypeOf(lhs); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						sink = "accumulates floating-point values"
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

// outputCall reports whether the call writes ordered output: a fmt
// package function or an output-shaped method (Write*, Print*, Encode).
func outputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pn := pkgNameOf(pass.Info, sel.X); pn != nil {
		if pn.Imported().Path() == "fmt" {
			return "fmt." + sel.Sel.Name, true
		}
		return "", false
	}
	if outputMethods[sel.Sel.Name] && pass.Info.Selections[sel] != nil {
		return sel.Sel.Name, true
	}
	return "", false
}

// sortCallAfter reports whether fn contains a sorting call positioned
// after pos — the idiom of collecting map contents then imposing a
// deterministic order. A call sorts when it resolves into package sort
// or slices, into any package whose name mentions sort (the repo's
// natsort), or to a function whose own name mentions sort.
func sortCallAfter(pass *Pass, fn *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if pn := pkgNameOf(pass.Info, fun.X); pn != nil {
				p := pn.Imported().Path()
				if p == "sort" || p == "slices" || strings.Contains(path.Base(p), "sort") {
					found = true
					return false
				}
			}
			if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
				found = true
				return false
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(fun.Name), "sort") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBuiltin reports whether fun names the given builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
