// Package clean is the detrand clean fixture: its import path does not
// end in a deterministic package name, so wall-clock reads and global
// rand draws are allowed here and nothing fires.
package clean

import (
	"math/rand"
	"time"
)

// WallClock is fine outside the deterministic set.
func WallClock() time.Time {
	return time.Now()
}

// GlobalDraw is fine outside the deterministic set.
func GlobalDraw() int {
	return rand.Intn(10)
}
