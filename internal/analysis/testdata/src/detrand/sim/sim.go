// Package sim is a detrand firing fixture: its import path ends in
// /sim, so it is a deterministic package where wall clocks and the
// global math/rand source are forbidden.
package sim

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — the canonical violation.
func Stamp() time.Time {
	return time.Now() // want "detrand: time.Now in deterministic package"
}

// Elapsed measures against the wall clock.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "detrand: time.Since in deterministic package"
}

// Draw pulls from the global math/rand source.
func Draw() int {
	return rand.Intn(10) // want "detrand: rand.Intn in deterministic package"
}

// Seeded is the sanctioned route: an explicitly seeded generator.
// rand.New and rand.NewSource are allowed constructors, and method
// calls on the resulting *rand.Rand resolve through a value, not the
// package, so none of this fires.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Clock arithmetic on time.Duration values is fine; only the wall-clock
// readers are flagged.
func Advance(now, dt time.Duration) time.Duration {
	return now + dt
}
