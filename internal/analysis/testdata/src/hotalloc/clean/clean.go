// Package clean holds hotalloc clean cases: unannotated functions may
// allocate freely, cold error branches are exempt, and documented
// mobilint:ignore suppressions hold.
package clean

import "fmt"

// Mean is annotated but clean: pure arithmetic on the warm path, and
// the error return is a cold branch the steady-state tick never takes,
// so its fmt.Errorf is not charged.
//
//mobicore:hotpath
func Mean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("mean of %d values", len(vals))
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	return total / float64(len(vals)), nil
}

// Scale is annotated and uses a documented suppression for its one-time
// buffer growth — the mobilint:ignore comment keeps it quiet.
//
//mobicore:hotpath
func Scale(dst, vals []float64, k float64) []float64 {
	if cap(dst) < len(vals) {
		//mobilint:ignore one-time buffer growth; steady-state callers pass a full-size buffer
		dst = make([]float64, len(vals))
	}
	dst = dst[:len(vals)]
	for i, v := range vals {
		dst[i] = v * k
	}
	return dst
}

// Build is not annotated, so its allocations are nobody's business.
func Build(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
