// Package fire holds hotalloc firing cases: one annotated function
// exercising every allocating construct the analyzer knows.
package fire

import "fmt"

// Adder is an interface target for the boxing checks.
type Adder interface{ Add(n int) int }

// Counter implements Adder with a concrete value type.
type Counter int

// Add implements Adder.
func (c Counter) Add(n int) int { return int(c) + n }

type point struct{ x, y int }

// Hot is annotated, so every allocation below is charged.
//
//mobicore:hotpath
func Hot(n int, c Counter, buf []int, prefix, suffix string) int {
	s := make([]int, n)          // want "hotalloc: make in hot path"
	p := new(int)                // want "hotalloc: new in hot path"
	buf = append(buf, n)         // want "hotalloc: append in hot path"
	fmt.Println(n)               // want "hotalloc: fmt.Println in hot path"
	lit := []int{1, 2}           // want "hotalloc: slice literal in hot path"
	m := map[string]int{}        // want "hotalloc: map literal in hot path"
	pt := &point{x: n}           // want "hotalloc: &composite literal in hot path"
	f := func() int { return n } // want "hotalloc: func literal in hot path"
	joined := prefix + suffix    // want "hotalloc: string concatenation in hot path"
	joined += suffix             // want "hotalloc: string concatenation in hot path"
	boxed := Adder(c)            // want "hotalloc: conversion to interface"
	var a Adder
	a = c // want "hotalloc: assignment boxes"
	return len(s) + *p + len(buf) + lit[0] + len(m) + pt.x + f() + len(joined) +
		boxed.Add(n) + a.Add(n)
}
