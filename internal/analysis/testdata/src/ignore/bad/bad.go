// Package bad carries a mobilint:ignore directive with no reason — the
// framework reports the directive itself so suppressions stay
// documented.
package bad

//mobilint:ignore
var placeholder = 1
