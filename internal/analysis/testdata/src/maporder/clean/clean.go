// Package clean holds maporder clean cases: map iteration is fine once
// a sort imposes a deterministic order, or when the sink is
// order-insensitive.
package clean

import "sort"

// SortedKeys is the blessed idiom: collect, then sort.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count only tallies; integers commute, so order cannot show.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// ViaHelper sorts through a helper whose name mentions sort — the
// repo's natsort package resolves the same way.
func ViaHelper(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(s []string) { sort.Strings(s) }

// SliceRange is not a map range at all.
func SliceRange(vals []float64) float64 {
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}
