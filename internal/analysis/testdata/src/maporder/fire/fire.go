// Package fire holds maporder firing cases: each function ranges over a
// map, feeds an order-sensitive sink, and never sorts afterwards.
package fire

import "fmt"

// KeysOf collects map keys without sorting them.
func KeysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "maporder: map iteration appends to a slice"
		out = append(out, k)
	}
	return out
}

// PrintAll writes map entries straight to stdout in iteration order.
func PrintAll(m map[string]int) {
	for k, v := range m { // want "maporder: map iteration writes output via fmt.Println"
		fmt.Println(k, v)
	}
}

// Sum accumulates floats in map order; float addition is not
// associative, so the total depends on the iteration order.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "maporder: map iteration accumulates floating-point values"
		total += v
	}
	return total
}
