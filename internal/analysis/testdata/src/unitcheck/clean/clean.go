// Package clean holds unitcheck clean cases: same-unit sums, explicit
// conversions through * and /, and unitless operands.
package clean

// TotalEnergy sums joules with joules.
func TotalEnergy(energyJ, deltaJ float64) float64 {
	return energyJ + deltaJ
}

// AvgPower divides joules by seconds — conversion, not addition, so the
// analyzer stays quiet.
func AvgPower(energyJ, busySec float64) float64 {
	if busySec <= 0 {
		return 0
	}
	return energyJ / busySec
}

// ConvertedSum converts megahertz to hertz before adding.
func ConvertedSum(freqHz, freqMHz float64) float64 {
	return freqHz + freqMHz*1e6
}

// Offset adds a unitless constant; one bare operand never fires.
func Offset(tempC float64) float64 {
	return tempC + 5
}
