// Package fire holds unitcheck firing cases: every function mixes two
// unit suffixes across + or -.
package fire

// AddEnergyToPower adds joules to watts — dimensionally meaningless.
func AddEnergyToPower(energyJ, powerW float64) float64 {
	return energyJ + powerW // want "unitcheck: unit mismatch: J operand"
}

// MixFrequencies subtracts megahertz from hertz without converting.
func MixFrequencies(freqHz, freqMHz float64) float64 {
	return freqHz - freqMHz // want "unitcheck: unit mismatch: Hz operand"
}

// Accumulate compounds the mix through +=.
func Accumulate(energyJ, powerW float64) float64 {
	energyJ += powerW // want "unitcheck: unit mismatch: J operand"
	return energyJ
}

// Fields works through selectors too.
type report struct {
	EnergyJ float64
	BusySec float64
}

// DrainBudget subtracts seconds from joules.
func DrainBudget(r report) float64 {
	return r.EnergyJ - r.BusySec // want "unitcheck: unit mismatch: J operand"
}
