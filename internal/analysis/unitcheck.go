package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitCheck flags + and - expressions whose operands carry different
// unit suffixes: adding joules to watts, or hertz to megahertz, type-
// checks fine (they are all float64s) but is a modeling bug. The
// internal/em tables are pure unit arithmetic — J, W, Hz — which is
// exactly where a silent unit mix corrupts every downstream figure.
//
// Recognized suffixes: J, W, MHz, Hz, Sec (and Seconds), C. A suffix
// counts only when preceded by a lowercase letter or digit, so the unit
// is a camelCase word of its own (EnergyJ, busySec, maxTempC).
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "forbid mixing unit suffixes (J, W, Hz, MHz, Sec, C) across + and -",
	Run:  runUnitCheck,
}

// unitSuffixes maps identifier suffixes to their canonical unit, checked
// longest-first so Seconds beats Sec and MHz beats Hz.
var unitSuffixes = []struct{ suffix, unit string }{
	{"Seconds", "Sec"},
	{"MHz", "MHz"},
	{"Sec", "Sec"},
	{"Hz", "Hz"},
	{"J", "J"},
	{"W", "W"},
	{"C", "C"},
}

func runUnitCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op == token.ADD || x.Op == token.SUB {
					checkUnits(pass, x.Pos(), x.Op, x.X, x.Y)
				}
			case *ast.AssignStmt:
				if (x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN) && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
					op := token.ADD
					if x.Tok == token.SUB_ASSIGN {
						op = token.SUB
					}
					checkUnits(pass, x.Pos(), op, x.Lhs[0], x.Rhs[0])
				}
			}
			return true
		})
	}
}

// checkUnits reports when both operands carry units and the units
// disagree. Non-numeric operands (string concatenation) are exempt.
func checkUnits(pass *Pass, pos token.Pos, op token.Token, a, b ast.Expr) {
	ua, ub := exprUnit(a), exprUnit(b)
	if ua == "" || ub == "" || ua == ub {
		return
	}
	if !isNumericExpr(pass, a) || !isNumericExpr(pass, b) {
		return
	}
	pass.Reportf(pos, "unit mismatch: %s operand in %s with %s operand — convert one side explicitly", ua, op, ub)
}

// exprUnit extracts the unit suffix of the identifier an operand
// ultimately names, looking through selectors, indexing, calls, and
// parentheses.
func exprUnit(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return unitOfName(x.Name)
	case *ast.SelectorExpr:
		return unitOfName(x.Sel.Name)
	case *ast.IndexExpr:
		return exprUnit(x.X)
	case *ast.ParenExpr:
		return exprUnit(x.X)
	case *ast.CallExpr:
		return exprUnit(x.Fun)
	}
	return ""
}

// unitOfName resolves an identifier's unit suffix, requiring the suffix
// to start a new camelCase word (preceded by a lowercase letter or
// digit) so SystemW matches but CSV does not.
func unitOfName(name string) string {
	for _, s := range unitSuffixes {
		n := len(name) - len(s.suffix)
		if n <= 0 || name[n:] != s.suffix {
			continue
		}
		if prev := name[n-1]; (prev >= 'a' && prev <= 'z') || (prev >= '0' && prev <= '9') {
			return s.unit
		}
	}
	return ""
}

// isNumericExpr reports whether the operand's type is numeric (including
// named numeric types like soc.Hz and time.Duration).
func isNumericExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
