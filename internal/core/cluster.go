package core

import (
	"errors"
	"fmt"
	"math"

	"mobicore/internal/em"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// Domain describes one frequency domain for the clustered MobiCore
// manager: the cluster's OPP table and, optionally, its calibrated power
// model (enabling the §4.2 energy-model search within the domain).
type Domain struct {
	Name  string
	Table *soc.OPPTable
	Model *power.Model
}

// ClusterTunables govern the big-cluster gate of the clustered manager —
// the energy-aware placement rule that keeps demand on the efficiency
// (LITTLE) cluster until load or latency justifies waking big cores.
type ClusterTunables struct {
	// BigWake wakes a big cluster when the LITTLE cluster's served demand
	// exceeds this fraction of its full-ladder capacity — the cluster is
	// near its ceiling and the next burst would saturate it.
	BigWake float64
	// BigPark parks a big cluster when the SoC's total served demand
	// would fit under this fraction of LITTLE capacity — comfortably
	// below BigWake so the gate has hysteresis and does not flap.
	BigPark float64
}

// DefaultClusterTunables mirror the load-hotplug thresholds: wake at 80%
// of LITTLE capacity, park once everything fits in half of it.
func DefaultClusterTunables() ClusterTunables {
	return ClusterTunables{BigWake: 0.80, BigPark: 0.50}
}

// Validate rejects nonsensical cluster tunables.
func (t ClusterTunables) Validate() error {
	if t.BigWake <= 0 || t.BigWake > 1 {
		return errors.New("core: BigWake must be in (0,1]")
	}
	if t.BigPark < 0 || t.BigPark >= t.BigWake {
		return errors.New("core: BigPark must be in [0,BigWake)")
	}
	return nil
}

// Clustered runs one MobiCore instance per frequency domain and arbitrates
// between them: the LITTLE cluster (lowest top frequency) always stays
// managed, while big clusters are gated by ClusterTunables — parked (all
// cores offline, domain clock at minimum) until the LITTLE cluster
// approaches its capacity or pegs a core, then handed to their own
// MobiCore instance. This is the thesis' unified DVFS+DCS+bandwidth
// decision generalized to big.LITTLE.
type Clustered struct {
	domains []Domain
	inner   []*MobiCore
	tun     Tunables
	ctun    ClusterTunables
	little  int // index of the most efficient domain (lowest f_max)

	// emod, when attached, lets the gate consult EM energy deltas: a
	// load-threshold wake is vetoed while serving the whole demand on the
	// LITTLE domain is both feasible and predicted cheaper than splitting
	// it with the big domain. Latency wakes (a pegged LITTLE core) are
	// never vetoed — §4.0's performance constraint outranks the model.
	emod *em.Model

	bigOn []bool // gate state per domain; hysteresis lives here
}

var _ policy.Manager = (*Clustered)(nil)

// NewClustered builds the clustered manager. Domains carrying a Model run
// the §4.2 energy-model search within their cluster; model-free domains
// fall back to the §5.2 threshold rule. With a single domain the manager
// degenerates to plain MobiCore.
func NewClustered(tun Tunables, ctun ClusterTunables, domains []Domain) (*Clustered, error) {
	if len(domains) == 0 {
		return nil, errors.New("core: NewClustered needs at least one domain")
	}
	if err := ctun.Validate(); err != nil {
		return nil, err
	}
	ds := make([]Domain, len(domains))
	copy(ds, domains)
	inner := make([]*MobiCore, len(ds))
	little := 0
	for i, d := range ds {
		if d.Table == nil || d.Table.Len() == 0 {
			return nil, fmt.Errorf("core: domain %d (%s): %w", i, d.Name, soc.ErrEmptyTable)
		}
		m, err := build(d.Table, tun, d.Model)
		if err != nil {
			return nil, fmt.Errorf("core: domain %s: %w", d.Name, err)
		}
		inner[i] = m
		if d.Table.Max().Freq < ds[little].Table.Max().Freq {
			little = i
		}
	}
	return &Clustered{
		domains: ds,
		inner:   inner,
		tun:     tun,
		ctun:    ctun,
		little:  little,
		bigOn:   make([]bool, len(ds)),
	}, nil
}

// NewClusteredForPlatform builds the clustered manager from a platform
// profile — the one construction path shared by the facade, experiments,
// and benchmarks. withModel attaches each cluster's calibrated energy
// model for the §4.2 search plus the platform's EM energy model, which the
// big-cluster gate consults before a load-threshold wake.
func NewClusteredForPlatform(plat platform.Platform, tun Tunables, ctun ClusterTunables, withModel bool) (*Clustered, error) {
	specs := plat.ClusterSpecs()
	domains := make([]Domain, len(specs))
	for i, cs := range specs {
		d := Domain{Name: cs.Name, Table: cs.Table}
		if withModel {
			model, err := power.NewModel(cs.Power, cs.Table)
			if err != nil {
				return nil, fmt.Errorf("core: cluster %s: %w", cs.Name, err)
			}
			d.Model = model
		}
		domains[i] = d
	}
	c, err := NewClustered(tun, ctun, domains)
	if err != nil {
		return nil, err
	}
	if withModel {
		emod, err := plat.EnergyModel()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := c.AttachEnergyModel(emod); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// AttachEnergyModel installs an EM energy model on the clustered manager
// so the big-cluster gate prices wake decisions instead of relying on the
// load threshold alone. The model's domains must parallel the manager's.
func (c *Clustered) AttachEnergyModel(m *em.Model) error {
	if m == nil {
		return errors.New("core: nil energy model")
	}
	if m.NumDomains() != len(c.domains) {
		return fmt.Errorf("core: energy model has %d domains, manager has %d", m.NumDomains(), len(c.domains))
	}
	c.emod = m
	return nil
}

// Name implements policy.Manager.
func (c *Clustered) Name() string { return "mobicore" }

// Decide implements policy.Manager: slice the observation per domain, gate
// the big clusters, and run the per-domain MobiCore passes.
func (c *Clustered) Decide(in policy.Input) (policy.Decision, error) {
	if err := in.Validate(); err != nil {
		return policy.Decision{}, err
	}
	views := in.ClusterViews()
	if len(views) != len(c.domains) {
		return policy.Decision{}, fmt.Errorf("core: clustered manager built for %d domains, input has %d",
			len(c.domains), len(views))
	}

	// Demand per domain (served cycles/sec) and peg detection drive the
	// gate; capacity is the domain's full ladder: every core at f_max.
	demand := make([]float64, len(views))
	pegged := make([]bool, len(views))
	var totalDemand float64
	for ci, v := range views {
		for _, id := range v.CoreIDs {
			if !in.Online[id] {
				continue
			}
			demand[ci] += in.Util[id] * float64(in.CurFreq[id])
			if in.Util[id] >= c.tun.PegThreshold {
				pegged[ci] = true
			}
		}
		totalDemand += demand[ci]
	}
	littleCap := float64(len(views[c.little].CoreIDs)) * float64(c.domains[c.little].Table.Max().Freq)

	targets := make([]soc.Hz, len(in.Util))
	onlineVec := make([]int, len(views))
	quotaCores := 0.0 // Σ domain quota × domain cores: budget in core-units
	for ci, v := range views {
		if ci != c.little && !c.gateBig(ci, demand[c.little], totalDemand, littleCap, pegged[c.little], domainHot(in, ci)) {
			// Parked: whole domain offline, clock at the floor so a
			// later wake starts from the cheapest operating point. A
			// parked domain contributes nothing to the bandwidth
			// budget — its cores cannot execute anyway.
			fmin := c.domains[ci].Table.Min().Freq
			for _, id := range v.CoreIDs {
				targets[id] = fmin
			}
			onlineVec[ci] = 0
			continue
		}
		dec, err := c.decideDomain(ci, v, in)
		if err != nil {
			return policy.Decision{}, err
		}
		for j, id := range v.CoreIDs {
			targets[id] = dec.TargetFreq[j]
		}
		onlineVec[ci] = dec.OnlineCores
		quotaCores += dec.Quota * float64(len(v.CoreIDs))
	}
	// Each domain's quota is a fraction of its own capacity, but the sim's
	// bandwidth pool is a fraction of the whole SoC (quota × n_total), so
	// re-express the per-domain budgets in whole-SoC units. Taking a max
	// or min instead would let one domain's slack erase another's
	// throttle (or vice versa).
	quota := quotaCores / float64(len(in.Util))
	if quota <= 0 || quota > 1 {
		quota = 1
	}
	return policy.Decision{
		TargetFreq: targets,
		OnlineVec:  onlineVec,
		Quota:      quota,
	}, nil
}

// gateBig decides whether big domain ci may run this period, updating the
// hysteresis state. Waking is justified by LITTLE-cluster pressure or a
// pegged LITTLE core (latency); parking requires the SoC's whole demand to
// fit comfortably back on LITTLE. A thermally pressured big domain (cap
// engaged or zone above trip) is never woken: the thermal driver would
// immediately clamp the fresh cores to the bottom of the ladder, so waking
// buys leakage and heat, not capacity — demand stays on the cool LITTLE
// cluster until the zone recovers. An already-running hot domain is left to
// its own MobiCore pass under the thermal clamp.
//
// With an EM energy model attached, a load-threshold wake is additionally
// priced: the gate estimates the system energy of serving the whole demand
// on the LITTLE domain against splitting it with domain ci, and keeps ci
// parked while LITTLE-only is feasible and predicted cheaper — the thesis'
// "the best one is chosen by our model" applied across clusters instead of
// within one. A pegged LITTLE core always wakes regardless of the model:
// latency outranks energy (§4.0).
func (c *Clustered) gateBig(ci int, littleDemand, totalDemand, littleCap float64, littlePegged, hot bool) bool {
	if littleCap <= 0 {
		return true
	}
	if c.bigOn[ci] {
		if totalDemand <= c.ctun.BigPark*littleCap && !littlePegged {
			c.bigOn[ci] = false
			c.inner[ci].Reset() // stale burst history must not leak into the next wake
		}
	} else {
		wake := (littleDemand >= c.ctun.BigWake*littleCap || littlePegged) && !hot
		if wake && !littlePegged && c.emod != nil && !c.emWakeWorthwhile(ci, totalDemand, littleCap) {
			wake = false
		}
		if wake {
			c.bigOn[ci] = true
		}
	}
	return c.bigOn[ci]
}

// emWakeWorthwhile prices a candidate wake of domain ci with the EM model
// against the whole currently awake set — LITTLE plus every other big
// domain whose gate is already open, not just a pairwise LITTLE-vs-ci
// split (on a 3-domain part an already-awake gold cluster must be allowed
// to absorb overflow before the prime core is priced in). True when the
// awake set cannot serve the whole demand (capacity necessity), or when
// adding ci — LITTLE held at its comfortable park ceiling so the overflow
// lands on the performance domains — is predicted cheaper than serving
// everything on the awake set alone.
func (c *Clustered) emWakeWorthwhile(ci int, totalDemand, littleCap float64) bool {
	baseW, remaining := c.priceAwake(ci, totalDemand, math.Inf(1))
	if remaining > 1e-9*totalDemand {
		return true // capacity necessity: the awake set cannot serve
	}
	withW, overflow := c.priceAwake(ci, totalDemand, c.ctun.BigPark*littleCap)
	if overflow <= 0 {
		return false // nothing would land on ci anyway
	}
	big := c.emod.Domain(ci)
	bw, bmet := big.WattsForDemand(overflow, big.NumCores())
	if !bmet {
		// ci cannot absorb the contemplated overflow: the split is
		// unrealizable, so an energy figure for it would be fiction.
		// Stay with the feasible status quo — a genuine throughput
		// shortfall still wakes ci through the pegged-core path.
		return false
	}
	return withW+bw < baseW
}

// priceAwake prices the awake domains — LITTLE plus every gated-open big
// domain except skip — serving demand, filling shares in efficiency order
// up to each domain's capacity (LITTLE's ceiling may be lowered via
// littleCeil, the gate's comfort point). Returns the predicted watts of
// the filled shares and the demand left unserved.
func (c *Clustered) priceAwake(skip int, demand, littleCeil float64) (watts, remaining float64) {
	remaining = demand
	for _, di := range c.emod.EfficiencyOrder() {
		if di == skip || (di != c.little && !c.bigOn[di]) {
			continue
		}
		dom := c.emod.Domain(di)
		cap := dom.Capacity() * float64(dom.NumCores())
		if di == c.little && littleCeil < cap {
			cap = littleCeil
		}
		share := remaining
		if share > cap {
			share = cap
		}
		if share < 0 {
			share = 0
		}
		w, _ := dom.WattsForDemand(share, dom.NumCores())
		watts += w
		remaining -= share
	}
	return watts, remaining
}

// domainHot reads the thermal-pressure signal for domain ci: true when its
// zone has a cap engaged or has exhausted its trip headroom. Inputs without
// thermal telemetry report cool (unbounded headroom).
func domainHot(in policy.Input, ci int) bool {
	if ci >= len(in.Thermal) {
		return false
	}
	t := in.Thermal[ci]
	return t.Throttling || t.HeadroomC <= 0
}

// decideDomain runs domain ci's MobiCore pass on the slice of the
// observation it owns, with core indices local to the domain.
func (c *Clustered) decideDomain(ci int, v policy.ClusterView, in policy.Input) (policy.Decision, error) {
	sub := in.Slice(v)
	allOffline := true
	for _, on := range sub.Online {
		if on {
			allOffline = false
			break
		}
	}
	if allOffline {
		// Freshly woken domain: no utilization history yet. Bring up one
		// core at the domain minimum and let the next sample steer it.
		return policy.Decision{
			TargetFreq:  uniform(len(v.CoreIDs), v.Table.Min().Freq),
			OnlineCores: 1,
			Quota:       in.Quota,
		}, nil
	}
	dec, err := c.inner[ci].Decide(sub)
	if err != nil {
		return policy.Decision{}, fmt.Errorf("core: domain %s: %w", c.domains[ci].Name, err)
	}
	return dec, nil
}

// Reset implements policy.Manager.
func (c *Clustered) Reset() {
	for i, m := range c.inner {
		m.Reset()
		c.bigOn[i] = false
	}
}
