package core

import (
	"testing"
	"time"

	"mobicore/internal/policy"
	"mobicore/internal/soc"
)

func clusterDomains(t *testing.T) ([]Domain, []policy.ClusterView) {
	t.Helper()
	little, err := soc.UniformTable(4, 200*soc.MHz, 1000*soc.MHz, 0.80, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	big, err := soc.UniformTable(5, 300*soc.MHz, 2000*soc.MHz, 0.85, 1.20)
	if err != nil {
		t.Fatal(err)
	}
	domains := []Domain{
		{Name: "LITTLE", Table: little},
		{Name: "big", Table: big},
	}
	views := []policy.ClusterView{
		{Name: "LITTLE", Table: little, CoreIDs: []int{0, 1, 2, 3}},
		{Name: "big", Table: big, CoreIDs: []int{4, 5, 6, 7}},
	}
	return domains, views
}

func clusterInput(views []policy.ClusterView, littleUtil, bigUtil float64, bigOnline bool) policy.Input {
	in := policy.Input{
		Now:      time.Second,
		Period:   50 * time.Millisecond,
		Util:     make([]float64, 8),
		Online:   make([]bool, 8),
		CurFreq:  make([]soc.Hz, 8),
		Quota:    1,
		Table:    views[1].Table,
		Clusters: views,
	}
	for _, id := range views[0].CoreIDs {
		in.Util[id] = littleUtil
		in.Online[id] = true
		in.CurFreq[id] = views[0].Table.Max().Freq
	}
	for _, id := range views[1].CoreIDs {
		in.Online[id] = bigOnline
		in.CurFreq[id] = views[1].Table.Min().Freq
		if bigOnline {
			in.Util[id] = bigUtil
		}
	}
	return in
}

func TestClusteredParksBigAtLowDemand(t *testing.T) {
	domains, views := clusterDomains(t)
	mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mgr.Decide(clusterInput(views, 0.2, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.ValidateClustered(views, 8); err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec == nil {
		t.Fatal("clustered manager must emit a per-cluster online vector")
	}
	if dec.OnlineVec[1] != 0 {
		t.Errorf("big cluster online = %d at 20%% LITTLE load, want parked (0)", dec.OnlineVec[1])
	}
	if dec.OnlineVec[0] < 1 {
		t.Errorf("LITTLE cluster online = %d, want >= 1", dec.OnlineVec[0])
	}
	// Parked big cores idle at the domain floor.
	for _, id := range views[1].CoreIDs {
		if dec.TargetFreq[id] != views[1].Table.Min().Freq {
			t.Errorf("parked big core %d target %v, want domain floor %v",
				id, dec.TargetFreq[id], views[1].Table.Min().Freq)
		}
	}
	// The quota is expressed in whole-SoC units: with the big domain
	// parked, even a full LITTLE budget caps at littleCores/totalCores.
	if dec.Quota > 0.5 {
		t.Errorf("quota = %v with the big cluster parked, want <= 0.5 (4 of 8 cores)", dec.Quota)
	}
	// Second sample at steady low load: the LITTLE bandwidth controller
	// engages and the whole-SoC quota shrinks further.
	dec, err = mgr.Decide(clusterInput(views, 0.2, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Quota >= 0.5 {
		t.Errorf("steady low load quota = %v, want < 0.5 (domain quota scaled by 4/8)", dec.Quota)
	}
}

func TestClusteredWakesBigUnderPressure(t *testing.T) {
	domains, views := clusterDomains(t)
	mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
	if err != nil {
		t.Fatal(err)
	}
	// LITTLE pegged at its ceiling: the gate must hand the big cluster to
	// its own MobiCore instance.
	dec, err := mgr.Decide(clusterInput(views, 1.0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.ValidateClustered(views, 8); err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] < 1 {
		t.Errorf("big cluster online = %d under a pegged LITTLE cluster, want >= 1", dec.OnlineVec[1])
	}
}

func TestClusteredGateHysteresis(t *testing.T) {
	domains, views := clusterDomains(t)
	mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
	if err != nil {
		t.Fatal(err)
	}
	// Wake...
	if _, err := mgr.Decide(clusterInput(views, 1.0, 0, false)); err != nil {
		t.Fatal(err)
	}
	// ...then mid-band demand: above BigPark, below BigWake — stays awake.
	dec, err := mgr.Decide(clusterInput(views, 0.7, 0.1, true))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] < 1 {
		t.Error("gate flapped: big parked in the hysteresis band")
	}
	// Low demand parks it again.
	dec, err = mgr.Decide(clusterInput(views, 0.1, 0.0, true))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] != 0 {
		t.Errorf("big cluster online = %d at idle, want parked", dec.OnlineVec[1])
	}
	// Reset clears the gate.
	mgr.Reset()
	dec, err = mgr.Decide(clusterInput(views, 0.1, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] != 0 {
		t.Error("gate state survived Reset")
	}
}

func TestClusteredTunablesValidate(t *testing.T) {
	if err := (ClusterTunables{BigWake: 0, BigPark: 0}).Validate(); err == nil {
		t.Error("zero BigWake accepted")
	}
	if err := (ClusterTunables{BigWake: 0.5, BigPark: 0.5}).Validate(); err == nil {
		t.Error("BigPark >= BigWake accepted")
	}
	domains, _ := clusterDomains(t)
	if _, err := NewClustered(DefaultTunables(), ClusterTunables{BigWake: 2, BigPark: 0.5}, domains); err == nil {
		t.Error("invalid cluster tunables accepted")
	}
	if _, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), nil); err == nil {
		t.Error("empty domain list accepted")
	}
}

// TestClusteredGateRespectsThermalPressure: the same pegged-LITTLE input
// that normally wakes the big cluster must leave it parked when the big
// domain's thermal zone reports a cap engaged or exhausted headroom — the
// thermal driver would clamp fresh cores to the ladder floor anyway.
func TestClusteredGateRespectsThermalPressure(t *testing.T) {
	domains, views := clusterDomains(t)
	hotSignals := [][]policy.ThermalSignal{
		{
			{TempC: 30, HeadroomC: 40, Throttling: false, CapFreq: views[0].Table.Max().Freq},
			{TempC: 46, HeadroomC: -1, Throttling: true, CapFreq: views[1].Table.Min().Freq},
		},
		{ // above trip but the cap has not stepped yet
			{TempC: 30, HeadroomC: 40, Throttling: false, CapFreq: views[0].Table.Max().Freq},
			{TempC: 45.5, HeadroomC: -0.5, Throttling: false, CapFreq: views[1].Table.Max().Freq},
		},
	}
	for i, therm := range hotSignals {
		mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
		if err != nil {
			t.Fatal(err)
		}
		in := clusterInput(views, 1.0, 0, false)
		in.Thermal = therm
		dec, err := mgr.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		if dec.OnlineVec[1] != 0 {
			t.Errorf("case %d: big cluster woken with %d cores while thermally pressured", i, dec.OnlineVec[1])
		}
	}
	// Once the zone recovers, the same pressure wakes it again.
	mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
	if err != nil {
		t.Fatal(err)
	}
	in := clusterInput(views, 1.0, 0, false)
	in.Thermal = []policy.ThermalSignal{
		{TempC: 30, HeadroomC: 40, CapFreq: views[0].Table.Max().Freq},
		{TempC: 35, HeadroomC: 10, CapFreq: views[1].Table.Max().Freq},
	}
	dec, err := mgr.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] < 1 {
		t.Errorf("big cluster online = %d with cool zone and pegged LITTLE, want >= 1", dec.OnlineVec[1])
	}
}

// TestClusteredRunningDomainSurvivesHeat: thermal pressure gates only the
// wake path; an already-running big domain keeps running (the sim's clamp
// and the domain's own MobiCore handle the cap).
func TestClusteredRunningDomainSurvivesHeat(t *testing.T) {
	domains, views := clusterDomains(t)
	mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
	if err != nil {
		t.Fatal(err)
	}
	// Wake it with a cool zone first.
	in := clusterInput(views, 1.0, 0, false)
	if _, err := mgr.Decide(in); err != nil {
		t.Fatal(err)
	}
	// Now hot and busy: demand still needs it, so it stays managed.
	in = clusterInput(views, 1.0, 0.9, true)
	in.Thermal = []policy.ThermalSignal{
		{TempC: 30, HeadroomC: 40, CapFreq: views[0].Table.Max().Freq},
		{TempC: 46, HeadroomC: -1, Throttling: true, CapFreq: views[1].Table.Min().Freq},
	}
	dec, err := mgr.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] < 1 {
		t.Errorf("running hot big domain parked by the gate, want it left managed")
	}
}
