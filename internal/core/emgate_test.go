package core

import (
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/soc"
)

// nexus6pManager builds the clustered manager with the platform EM model
// attached — the facade's PolicyMobiCore construction on big.LITTLE.
func nexus6pManager(t *testing.T) (*Clustered, platform.Platform, []policy.ClusterView) {
	t.Helper()
	plat := platform.Nexus6P()
	mgr, err := NewClusteredForPlatform(plat, DefaultTunables(), DefaultClusterTunables(), true)
	if err != nil {
		t.Fatal(err)
	}
	specs := plat.ClusterSpecs()
	views := make([]policy.ClusterView, len(specs))
	next := 0
	for ci, cs := range specs {
		ids := make([]int, cs.NumCores)
		for i := range ids {
			ids[i] = next
			next++
		}
		views[ci] = policy.ClusterView{Name: cs.Name, Table: cs.Table, CoreIDs: ids}
	}
	return mgr, plat, views
}

func nexus6pInput(views []policy.ClusterView, littleUtil float64) policy.Input {
	n := 8
	in := policy.Input{
		Now:      time.Second,
		Period:   50 * time.Millisecond,
		Util:     make([]float64, n),
		Online:   make([]bool, n),
		CurFreq:  make([]soc.Hz, n),
		Quota:    1,
		Table:    views[1].Table,
		Clusters: views,
	}
	for _, id := range views[0].CoreIDs {
		in.Util[id] = littleUtil
		in.Online[id] = true
		in.CurFreq[id] = views[0].Table.Max().Freq
	}
	for _, id := range views[1].CoreIDs {
		in.Online[id] = false
		in.CurFreq[id] = views[1].Table.Min().Freq
	}
	return in
}

// TestEMGateVetoesLoadWake: at 90% LITTLE utilization the load threshold
// alone would wake the big cluster, but the EM model prices the split as
// more expensive than staying LITTLE-only (the A57s leak ~4× the A53s), so
// the energy-aware gate keeps it parked.
func TestEMGateVetoesLoadWake(t *testing.T) {
	mgr, _, views := nexus6pManager(t)
	dec, err := mgr.Decide(nexus6pInput(views, 0.90))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] != 0 {
		t.Errorf("big cluster online = %d at 90%% LITTLE load with EM attached, want EM veto (parked)", dec.OnlineVec[1])
	}
	// The identical observation without the model must wake — the veto is
	// the model's doing, not a tunables change.
	bare, err := NewClusteredForPlatform(platform.Nexus6P(), DefaultTunables(), DefaultClusterTunables(), false)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = bare.Decide(nexus6pInput(views, 0.90))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] < 1 {
		t.Errorf("model-free gate parked the big cluster at 90%% LITTLE load, want load-threshold wake")
	}
}

// TestEMGateWakesOnPeg: a pegged LITTLE core is a latency signal and must
// wake the big cluster regardless of what the model predicts (§4.0's
// performance constraint outranks energy).
func TestEMGateWakesOnPeg(t *testing.T) {
	mgr, _, views := nexus6pManager(t)
	dec, err := mgr.Decide(nexus6pInput(views, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineVec[1] < 1 {
		t.Errorf("big cluster online = %d under a pegged LITTLE core, want >= 1 despite the EM veto path", dec.OnlineVec[1])
	}
}

// TestEMWakeWorthwhileCapacity: demand beyond the LITTLE cluster's whole
// ladder must always justify a wake — capacity necessity overrides the
// price comparison.
func TestEMWakeWorthwhileCapacity(t *testing.T) {
	mgr, plat, _ := nexus6pManager(t)
	specs := plat.ClusterSpecs()
	littleCap := float64(specs[0].NumCores) * float64(specs[0].Table.Max().Freq)
	if mgr.emWakeWorthwhile(1, littleCap*1.2, littleCap) != true {
		t.Error("demand 20% beyond LITTLE capacity did not justify a wake")
	}
	if mgr.emWakeWorthwhile(1, littleCap*0.85, littleCap) {
		t.Error("fits-on-LITTLE demand justified a wake the model prices as costlier")
	}
}

// TestEMGatePricesAwakeSet: on the three-cluster profile the wake veto
// must account for domains that are already awake — demand beyond silver's
// capacity justifies waking gold, but once gold is awake with spare
// capacity the same demand must NOT count as a capacity necessity for the
// prime core.
func TestEMGatePricesAwakeSet(t *testing.T) {
	plat := platform.SD855()
	mgr, err := NewClusteredForPlatform(plat, DefaultTunables(), DefaultClusterTunables(), true)
	if err != nil {
		t.Fatal(err)
	}
	specs := plat.ClusterSpecs()
	silverCap := float64(specs[0].NumCores) * float64(specs[0].Table.Max().Freq)
	demand := silverCap * 1.12 // beyond silver, far under silver+gold

	// Everything parked: the demand is a capacity necessity for gold.
	if !mgr.emWakeWorthwhile(1, demand, silverCap) {
		t.Error("overflow demand with every big domain parked did not justify waking gold")
	}
	// Gold awake: its spare capacity absorbs the overflow, so waking the
	// expensive 1-core prime domain must be vetoed.
	mgr.bigOn[1] = true
	if mgr.emWakeWorthwhile(2, demand, silverCap) {
		t.Error("prime wake not vetoed while the awake gold cluster can absorb the overflow")
	}
	// Demand beyond silver+gold is a genuine necessity for prime too.
	goldCap := float64(specs[1].NumCores) * float64(specs[1].Table.Max().Freq)
	if !mgr.emWakeWorthwhile(2, (silverCap+goldCap)*1.05, silverCap) {
		t.Error("demand beyond silver+gold capacity did not justify waking prime")
	}
	// An unrealizable split must not wake on price: with gold parked, an
	// overflow slightly beyond the prime core's whole ladder cannot be
	// absorbed, so the gate stays with the feasible silver-only serving.
	mgr.bigOn[1] = false
	primeCap := float64(specs[2].NumCores) * float64(specs[2].Table.Max().Freq)
	infeasible := DefaultClusterTunables().BigPark*silverCap + primeCap*1.02
	if infeasible >= silverCap {
		t.Fatalf("fixture broken: %v not under silver capacity %v", infeasible, silverCap)
	}
	if mgr.emWakeWorthwhile(2, infeasible, silverCap) {
		t.Error("prime woken on an unrealizable split (overflow beyond its capacity)")
	}
}

// TestAttachEnergyModelValidation: a model whose domain count does not
// match the manager is rejected.
func TestAttachEnergyModelValidation(t *testing.T) {
	domains, _ := clusterDomains(t)
	mgr, err := NewClustered(DefaultTunables(), DefaultClusterTunables(), domains)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AttachEnergyModel(nil); err == nil {
		t.Error("nil model accepted")
	}
	single, err := platform.Nexus5().EnergyModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AttachEnergyModel(single); err == nil {
		t.Error("single-domain model accepted by a two-domain manager")
	}
	two, err := platform.Nexus6P().EnergyModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AttachEnergyModel(two); err != nil {
		t.Errorf("matching model rejected: %v", err)
	}
}
