// Package core implements the thesis' contribution: MobiCore, the adaptive
// hybrid CPU manager that unifies DVFS, dynamic core scaling, and CPU
// bandwidth control into one decision per sampling period (Figure 8):
//
//  1. run the stock ondemand DVFS pass,
//  2. analyze workload variation and scale the global bandwidth quota
//     (Algorithm 4.1.2 / Table 2),
//  3. re-evaluate the set of online cores — by the §5.2 threshold rule
//     (per-core utilization below 10% offlines a core) or, when a power
//     model is attached, by the §4.2 energy-model search ("the best one is
//     chosen by our model"),
//  4. recompute the per-core frequency from Eq. 9:
//     f_new = f_ondemand · K · n_max / n, with K the quota-scaled overall
//     utilization — adding a core instead whenever f_new would exceed
//     f_max ("looking for a good operating point will automatically switch
//     to add a new core instead of raising the frequency too high", §5.3).
//
// The package also provides the §4.2 energy-model oracle (oracle.go), which
// exhaustively minimizes predicted power over (cores, frequency) pairs and
// serves as the validation reference for the closed-form law.
package core

import (
	"errors"
	"fmt"
	"math"

	"mobicore/internal/cpufreq"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// Tunables configure MobiCore. The defaults are the thesis' published
// constants.
type Tunables struct {
	// LowUtil is the overall-utilization gate of Algorithm 4.1.2: the
	// bandwidth controller only acts when overall utilization is below
	// this ("if the overall workload is high at t and t-1 ... CPUs will
	// still need a high bandwidth", §5.2). Fraction; paper value 0.40.
	// Overall utilization here averages over all cores, offline cores
	// counting as zero — §2.2's "average of the utilizations over all
	// the CPU cores".
	LowUtil float64
	// DownDelta and UpDelta classify slow mode and burst mode from the
	// change in overall utilization between consecutive samples.
	// Fractions of utilization; the thesis leaves the thresholds
	// symbolic — we default to ±0.05.
	DownDelta float64
	UpDelta   float64
	// SlowScale is the quota multiplier applied in slow mode (paper: 0.9).
	SlowScale float64
	// QuotaHeadroom is added to the utilization-derived quota so a
	// steady workload is not throttled by measurement noise. The
	// pseudocode's literal quota = utilization would ratchet a constant
	// load downward; the headroom is the minimal stabilizer and is
	// ablatable (set it to 0 to run the literal algorithm).
	QuotaHeadroom float64
	// MinQuota floors the bandwidth so the system cannot starve itself.
	MinQuota float64

	// OffThreshold is the core re-evaluation rule of §5.2: a core whose
	// utilization is below this is a candidate for offlining (paper:
	// 0.10). Used when no power model is attached.
	OffThreshold float64
	// MinCores keeps at least this many cores online (>= 1).
	MinCores int
	// PegThreshold detects a saturated (pegged) core: when any online
	// core's utilization reaches it, the frequency is held — a pegged
	// core means measured demand under-reports true demand (the workload
	// is clock-bound, typically a game's main thread), so trimming would
	// spiral throughput down. This is the "reproduce at least the same
	// performance" constraint of §4.0 made operational.
	PegThreshold float64

	// Ondemand configures the embedded base governor.
	Ondemand cpufreq.OndemandTunables
}

// DefaultTunables returns the thesis' constants.
func DefaultTunables() Tunables {
	return Tunables{
		LowUtil:       0.40,
		DownDelta:     0.05,
		UpDelta:       0.05,
		SlowScale:     0.90,
		QuotaHeadroom: 0.10,
		MinQuota:      0.05,
		OffThreshold:  0.10,
		MinCores:      1,
		PegThreshold:  0.97,
		Ondemand:      mobicoreOndemand(),
	}
}

// mobicoreOndemand is the embedded base governor configuration: stock
// thresholds without the performance-biased post-burst hold — MobiCore's
// whole point is to re-evaluate the burst choice instead of holding it.
func mobicoreOndemand() cpufreq.OndemandTunables {
	t := cpufreq.DefaultOndemandTunables()
	t.SamplingDownFactor = 0
	return t
}

// Validate rejects nonsensical tunables.
func (t Tunables) Validate() error {
	switch {
	case t.LowUtil <= 0 || t.LowUtil > 1:
		return errors.New("core: LowUtil must be in (0,1]")
	case t.DownDelta <= 0 || t.UpDelta <= 0:
		return errors.New("core: burst/slow deltas must be positive")
	case t.SlowScale <= 0 || t.SlowScale > 1:
		return errors.New("core: SlowScale must be in (0,1]")
	case t.QuotaHeadroom < 0 || t.QuotaHeadroom > 1:
		return errors.New("core: QuotaHeadroom must be in [0,1]")
	case t.MinQuota <= 0 || t.MinQuota > 1:
		return errors.New("core: MinQuota must be in (0,1]")
	case t.OffThreshold < 0 || t.OffThreshold > 1:
		return errors.New("core: OffThreshold must be in [0,1]")
	case t.MinCores < 1:
		return errors.New("core: MinCores must be >= 1")
	case t.PegThreshold <= 0 || t.PegThreshold > 1:
		return errors.New("core: PegThreshold must be in (0,1]")
	}
	return t.Ondemand.Validate()
}

// MobiCore is the unified manager. It is deterministic and keeps one sample
// of history (the previous overall utilization) for burst/slow detection.
type MobiCore struct {
	table    *soc.OPPTable
	tun      Tunables
	ondemand *cpufreq.Ondemand
	model    *power.Model // optional: enables §4.2 model-guided core scaling

	havePrev bool
	prevUtil float64

	// loadScratch backs the model's candidate evaluations in chooseCores —
	// one buffer per manager (managers are single-goroutine, one per cell),
	// so the per-period ladder scan allocates nothing.
	loadScratch []power.CoreLoad
}

var _ policy.Manager = (*MobiCore)(nil)

// New builds a MobiCore manager using the §5.2 threshold rule for core
// re-evaluation (no power model attached).
func New(table *soc.OPPTable, tun Tunables) (*MobiCore, error) {
	return build(table, tun, nil)
}

// NewWithModel builds the full MobiCore of the thesis: core scaling guided
// by the §4.1 energy model — each period, the (cores, frequency) choice is
// the model's minimum-power combination that serves the measured demand.
func NewWithModel(table *soc.OPPTable, tun Tunables, model *power.Model) (*MobiCore, error) {
	if model == nil {
		return nil, errors.New("core: NewWithModel requires a model")
	}
	return build(table, tun, model)
}

func build(table *soc.OPPTable, tun Tunables, model *power.Model) (*MobiCore, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	od, err := cpufreq.NewOndemand(table, tun.Ondemand)
	if err != nil {
		return nil, fmt.Errorf("core: building embedded ondemand: %w", err)
	}
	return &MobiCore{table: table, tun: tun, ondemand: od, model: model}, nil
}

// Name implements policy.Manager.
func (m *MobiCore) Name() string { return "mobicore" }

// Tunables returns the manager's configuration.
func (m *MobiCore) Tunables() Tunables { return m.tun }

// ModelGuided reports whether the §4.2 energy-model search is attached.
func (m *MobiCore) ModelGuided() bool { return m.model != nil }

// Decide implements policy.Manager, following Figure 8 step by step.
func (m *MobiCore) Decide(in policy.Input) (policy.Decision, error) {
	if err := in.Validate(); err != nil {
		return policy.Decision{}, err
	}
	nmax := len(in.Util)

	// Observations: K is the overall utilization of the phone — the
	// average over all cores, offline cores contributing zero (§2.2).
	// The hottest core and policy frequency drive the ondemand pass;
	// demand is the served cycle rate, the config-independent load view.
	var sumUtil, maxUtil, demand float64
	var curMaxFreq soc.Hz
	online := 0
	for i := range in.Util {
		if !in.Online[i] {
			continue
		}
		online++
		sumUtil += in.Util[i]
		if in.Util[i] > maxUtil {
			maxUtil = in.Util[i]
		}
		if in.CurFreq[i] > curMaxFreq {
			curMaxFreq = in.CurFreq[i]
		}
		demand += in.Util[i] * float64(in.CurFreq[i])
	}
	k := sumUtil / float64(nmax)
	if curMaxFreq == 0 {
		curMaxFreq = m.table.Min().Freq
	}

	// Step 1: the stock ondemand DVFS pass — the frequency the default
	// governor would have programmed (Figure 8's "Initial state:
	// ondemand DVFS"). The hottest core drives it, preserving ondemand's
	// burst-to-max responsiveness.
	fOndemand := m.ondemand.TargetOne(maxUtil, curMaxFreq)

	// Step 2: bandwidth analysis (Algorithm 4.1.2). A pegged core vetoes
	// any reduction: averaging a saturated main thread with idle
	// siblings can read as "low overall utilization" when the workload
	// is actually clock-starved, and throttling it would stall the very
	// thread that needs time.
	quota := m.decideQuota(k)
	pegged := maxUtil >= m.tun.PegThreshold
	if pegged {
		quota = 1
	}

	// A core count beyond the number of concurrently runnable threads is
	// pure leakage — the spare cores would idle. The active-core count
	// (cores doing non-trivial work) is the observable proxy for thread
	// concurrency and caps the search.
	active := 0
	for i := range in.Util {
		if in.Online[i] && in.Util[i] > activeUtil {
			active++
		}
	}
	maxUseful := active + 1 // room for concurrency to grow one step per period
	if maxUseful > nmax {
		maxUseful = nmax
	}
	if maxUseful < m.tun.MinCores {
		maxUseful = m.tun.MinCores
	}

	// Step 3 + 4 combined: choose the (cores, frequency) combination.
	// Eq. 9's K is scaled by the quota (K = K·q, §4.1.1).
	kq := k * quota
	cores := m.chooseCores(in, fOndemand, kq, demand, online, nmax, maxUseful)
	freq, cores := m.freqFor(fOndemand, kq, demand, cores, nmax, maxUseful)

	// Per-core targets: the platform has per-core rails (Table 1's
	// Krait 400, §4.1.2), so the law frequency applies per core, and any
	// pegged core escalates independently. A saturated core means the
	// measured demand under-reports the workload's true need — its
	// thread is clock-bound and Eq. 9's K-scaling (built from that
	// under-reported demand) would starve it. Give pegged cores what
	// stock ondemand would have: the unscaled burst frequency. This is
	// why the thesis measures a slightly *higher* average frequency
	// under MobiCore on Real Racing 3 (§6.3): with "a fixed number of
	// the active cores sufficient" and no slack to trim, the escalation
	// path is all that remains.
	targets := uniform(nmax, freq)
	if pegged {
		esc := freq
		if fOndemand > esc {
			esc = fOndemand
		}
		for i := range in.Util {
			if in.Online[i] && in.Util[i] >= m.tun.PegThreshold {
				t := esc
				if in.CurFreq[i] > t {
					t = in.CurFreq[i]
				}
				targets[i] = t
			}
		}
	}

	return policy.Decision{
		TargetFreq:  targets,
		OnlineCores: cores,
		Quota:       quota,
	}, nil
}

// activeUtil is the utilization above which a core counts as carrying a
// runnable thread for the concurrency cap.
const activeUtil = 0.05

// decideQuota is Algorithm 4.1.2 (Table 2). It returns the CPU bandwidth
// for the next period as a fraction of the phone's total capacity
// (n_max cores), which is the unit K is measured in.
func (m *MobiCore) decideQuota(util float64) float64 {
	defer func() { m.prevUtil = util; m.havePrev = true }()

	if util >= m.tun.LowUtil {
		// High load at t (and implicitly t-1): full bandwidth.
		return 1
	}
	if !m.havePrev {
		return 1
	}
	delta := util - m.prevUtil
	quota := util + m.tun.QuotaHeadroom // line 2: quota = utilization
	switch {
	case delta > m.tun.UpDelta:
		// Burst mode: "we respectively allocate the entire bandwidth"
		// (§5.2); scaling_factor = 1 on the full budget.
		return 1
	case delta < -m.tun.DownDelta:
		// Slow mode: shrink the bandwidth by the scaling factor.
		quota *= m.tun.SlowScale
	}
	return clamp(quota, m.tun.MinQuota, 1)
}

// chooseCores re-evaluates the number of online cores. With a model
// attached it runs the §4.2 search: for each candidate count the frequency
// law fixes the operating point, the energy model prices it, and the count
// moves one step towards the cheapest combination (one step per period —
// hotplug transitions are expensive, §2.1). Without a model it applies the
// §5.2 threshold rule: drop cores whose utilization is below 10%.
func (m *MobiCore) chooseCores(in policy.Input, fOndemand soc.Hz, kq, demand float64, online, nmax, maxUseful int) int {
	if m.model == nil {
		lowUtil := 0
		for i := range in.Util {
			if in.Online[i] && in.Util[i] < m.tun.OffThreshold {
				lowUtil++
			}
		}
		cores := online - lowUtil
		if cores < m.tun.MinCores {
			cores = m.tun.MinCores
		}
		return cores
	}

	best, bestWatts := online, math.Inf(1)
	for c := m.tun.MinCores; c <= maxUseful; c++ {
		freq, served := m.freqFor(fOndemand, kq, demand, c, nmax, maxUseful)
		if served != c {
			continue // law escalated past this count; skip duplicates
		}
		opp := m.table.CeilFreq(freq)
		if cap(m.loadScratch) < nmax {
			m.loadScratch = make([]power.CoreLoad, nmax)
		}
		watts, err := m.model.PredictWattsInto(m.loadScratch, c, opp, demand, nmax)
		if err != nil {
			continue // out-of-range candidate; the law will still serve
		}
		if watts < bestWatts {
			best, bestWatts = c, watts
		}
	}
	switch {
	case best > online:
		return online + 1
	case best < online:
		return online - 1
	default:
		return online
	}
}

// freqFor evaluates Eq. 9, f_new = f_ondemand·K·n_max/n, resolving the
// result onto the OPP table. Two refinements make the law usable as a
// closed-loop controller:
//
//   - A serving floor of demand/(n·UpThreshold): Eq. 9 rescales a frequency
//     that ondemand already scaled by load, so in the mid-load regime the
//     literal product systematically undershoots the capacity needed to
//     carry the measured demand at the target load, and the system
//     oscillates between overload and burst. The floor is the minimum
//     per-core frequency that serves the measured demand with ondemand's
//     own headroom — "the just-needed frequency" (§2.2.1) made operational.
//   - If the demanded frequency exceeds f_max the workload does not fit on
//     n cores at a sane operating point, so a core is added and the law is
//     re-evaluated (§5.3's "automatically switch to add a new core instead
//     of raising the frequency too high").
func (m *MobiCore) freqFor(fOndemand soc.Hz, kq, demand float64, cores, nmax, maxUseful int) (soc.Hz, int) {
	if kq < 0 {
		kq = 0
	}
	if demand < 0 {
		demand = 0
	}
	fmax := m.table.Max().Freq
	for {
		eq9 := float64(fOndemand) * kq * float64(nmax) / float64(cores)
		floor := demand / (float64(cores) * m.tun.Ondemand.UpThreshold)
		want := math.Max(eq9, floor)
		if want <= float64(fmax) || cores >= maxUseful {
			return m.table.CeilFreq(soc.Hz(math.Ceil(want))).Freq, cores
		}
		cores++
	}
}

// Reset implements policy.Manager.
func (m *MobiCore) Reset() {
	m.havePrev = false
	m.prevUtil = 0
	m.ondemand.Reset()
}

func uniform(n int, f soc.Hz) []soc.Hz {
	out := make([]soc.Hz, n)
	for i := range out {
		out[i] = f
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
