package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

func table(t *testing.T) *soc.OPPTable {
	t.Helper()
	return soc.MSM8974Table()
}

func model(t *testing.T) *power.Model {
	t.Helper()
	coeff, exp, err := power.FitLeak(1.2, 0.120, 0.9, 0.047)
	if err != nil {
		t.Fatal(err)
	}
	m, err := power.NewModel(power.Params{
		CeffFarads:      1.35e-10,
		LeakCoeffWatts:  coeff,
		LeakExponent:    exp,
		OfflineWatts:    0.002,
		CacheBaseWatts:  0.040,
		CacheSlopeWatts: 0.040,
		BaseWatts:       0.080,
	}, soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newMobi(t *testing.T) *MobiCore {
	t.Helper()
	m, err := New(table(t), DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newMobiModel(t *testing.T) *MobiCore {
	t.Helper()
	m, err := NewWithModel(table(t), DefaultTunables(), model(t))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func in4(utils [4]float64, online [4]bool, freq soc.Hz) policy.Input {
	return policy.Input{
		Now:     time.Second,
		Period:  50 * time.Millisecond,
		Util:    utils[:],
		Online:  online[:],
		CurFreq: []soc.Hz{freq, freq, freq, freq},
		Quota:   1,
		Table:   soc.MSM8974Table(),
	}
}

var allOn = [4]bool{true, true, true, true}

func TestTunablesValidate(t *testing.T) {
	good := DefaultTunables()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Tunables)
	}{
		{"LowUtil zero", func(tu *Tunables) { tu.LowUtil = 0 }},
		{"DownDelta zero", func(tu *Tunables) { tu.DownDelta = 0 }},
		{"SlowScale above one", func(tu *Tunables) { tu.SlowScale = 1.1 }},
		{"negative headroom", func(tu *Tunables) { tu.QuotaHeadroom = -0.1 }},
		{"MinQuota zero", func(tu *Tunables) { tu.MinQuota = 0 }},
		{"OffThreshold above one", func(tu *Tunables) { tu.OffThreshold = 1.1 }},
		{"MinCores zero", func(tu *Tunables) { tu.MinCores = 0 }},
		{"PegThreshold zero", func(tu *Tunables) { tu.PegThreshold = 0 }},
		{"bad ondemand", func(tu *Tunables) { tu.Ondemand.UpThreshold = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tun := DefaultTunables()
			tt.mutate(&tun)
			if err := tun.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestConstructors(t *testing.T) {
	if _, err := New(nil, DefaultTunables()); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewWithModel(table(t), DefaultTunables(), nil); err == nil {
		t.Error("nil model accepted")
	}
	m := newMobiModel(t)
	if !m.ModelGuided() {
		t.Error("model-guided flag lost")
	}
	if newMobi(t).ModelGuided() {
		t.Error("threshold variant claims a model")
	}
}

// TestQuotaAlgorithm walks Algorithm 4.1.2's branches (Table 2).
func TestQuotaAlgorithm(t *testing.T) {
	m := newMobi(t)
	decide := func(util float64) float64 {
		dec, err := m.Decide(in4([4]float64{util, util, util, util}, allOn, 960_000*soc.KHz))
		if err != nil {
			t.Fatal(err)
		}
		return dec.Quota
	}
	// High overall load: full bandwidth regardless of history.
	if q := decide(0.70); q != 1 {
		t.Errorf("high load quota = %v, want 1", q)
	}
	// Falling low load (0.70→0.30, delta −0.40): slow mode — quota
	// shrinks to (util+headroom)·0.9.
	tun := m.Tunables()
	if q, want := decide(0.30), (0.30+tun.QuotaHeadroom)*tun.SlowScale; math.Abs(q-want) > 1e-9 {
		t.Errorf("slow mode quota = %v, want %v", q, want)
	}
	// Steady low load (delta 0): shrink-to-fit with headroom.
	if q, want := decide(0.30), 0.30+tun.QuotaHeadroom; math.Abs(q-want) > 1e-9 {
		t.Errorf("fit quota = %v, want %v", q, want)
	}
	// Burst (0.30→0.38, delta > UpDelta): full bandwidth.
	if q := decide(0.38); q != 1 {
		t.Errorf("burst quota = %v, want 1", q)
	}
}

func TestQuotaFloor(t *testing.T) {
	m := newMobi(t)
	// Prime history high, then drop to near zero repeatedly.
	if _, err := m.Decide(in4([4]float64{0.5, 0.5, 0.5, 0.5}, allOn, 960_000*soc.KHz)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		dec, err := m.Decide(in4([4]float64{0.0, 0.0, 0.0, 0.0}, allOn, 300*soc.MHz))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Quota < m.Tunables().MinQuota {
			t.Fatalf("quota %v fell below floor %v", dec.Quota, m.Tunables().MinQuota)
		}
	}
}

// TestThresholdCoreRule: the §5.2 rule offlines cores under 10% util.
func TestThresholdCoreRule(t *testing.T) {
	m := newMobi(t)
	dec, err := m.Decide(in4([4]float64{0.50, 0.50, 0.05, 0.02}, allOn, 960_000*soc.KHz))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineCores != 2 {
		t.Errorf("two sub-10%% cores should leave 2 online, got %d", dec.OnlineCores)
	}
	// All idle: MinCores floor.
	dec, err = m.Decide(in4([4]float64{0, 0, 0, 0}, allOn, 300*soc.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineCores != m.Tunables().MinCores {
		t.Errorf("all-idle cores = %d, want MinCores %d", dec.OnlineCores, m.Tunables().MinCores)
	}
}

// TestEq9GrowsCoresInsteadOfOverclocking: §5.3 — when the law demands more
// than f_max, a core is added rather than a frequency threshold crossed.
func TestEq9GrowsCoresInsteadOfOverclocking(t *testing.T) {
	m := newMobi(t)
	// Saturated: all cores pegged at f_max already.
	fmax := table(t).Max().Freq
	dec, err := m.Decide(in4([4]float64{1, 1, 0.5, 0.5}, [4]bool{true, true, false, false}, fmax))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineCores <= 2 {
		t.Errorf("saturated 2-core system should grow cores, got %d", dec.OnlineCores)
	}
	for i := 0; i < dec.OnlineCores; i++ {
		if dec.TargetFreq[i] > fmax {
			t.Errorf("core %d target %v above f_max", i, dec.TargetFreq[i])
		}
	}
}

// TestPeggedEscalation: a pegged core gets the unscaled ondemand frequency
// (f_max) even when overall utilization is low.
func TestPeggedEscalation(t *testing.T) {
	m := newMobi(t)
	cur := 960_000 * soc.KHz
	dec, err := m.Decide(in4([4]float64{1.0, 0.1, 0.1, 0.1}, allOn, cur))
	if err != nil {
		t.Fatal(err)
	}
	if dec.TargetFreq[0] != table(t).Max().Freq {
		t.Errorf("pegged core target = %v, want f_max escalation", dec.TargetFreq[0])
	}
	if dec.Quota != 1 {
		t.Errorf("pegged quota = %v, want 1 (throttling a starved thread is harmful)", dec.Quota)
	}
}

// TestTrimsBelowOndemand: MobiCore's defining behaviour — at moderate load
// it programs less than ondemand's burst choice.
func TestTrimsBelowOndemand(t *testing.T) {
	m := newMobi(t)
	// One core crossing the up-threshold at a mid frequency: ondemand
	// would program f_max; Eq. 9 scales it by K (≈0.30 here).
	cur := 960_000 * soc.KHz
	dec, err := m.Decide(in4([4]float64{0.85, 0.15, 0.1, 0.1}, allOn, cur))
	if err != nil {
		t.Fatal(err)
	}
	fmax := table(t).Max().Freq
	for i := 0; i < dec.OnlineCores; i++ {
		if dec.TargetFreq[i] >= fmax {
			t.Errorf("core %d = f_max; MobiCore should give the just-needed frequency", i)
		}
	}
}

// TestDecisionAlwaysValid: arbitrary legal inputs produce decisions that
// pass validation — the closed-loop safety property.
func TestDecisionAlwaysValid(t *testing.T) {
	tbl := table(t)
	for _, variant := range []*MobiCore{newMobi(t), newMobiModel(t)} {
		prop := func(rawUtil [4]uint16, rawFreq uint8, onlineMask uint8) bool {
			var utils [4]float64
			var online [4]bool
			anyOn := false
			for i := 0; i < 4; i++ {
				utils[i] = float64(rawUtil[i]) / 65535
				online[i] = onlineMask&(1<<i) != 0
				if online[i] {
					anyOn = true
				} else {
					utils[i] = 0
				}
			}
			if !anyOn {
				online[0] = true
			}
			freq := tbl.At(int(rawFreq) % tbl.Len()).Freq
			dec, err := variant.Decide(in4(utils, online, freq))
			if err != nil {
				return false
			}
			return dec.Validate(tbl, 4) == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
			t.Errorf("%v (model=%v)", err, variant.ModelGuided())
		}
	}
}

func TestReset(t *testing.T) {
	m := newMobi(t)
	if _, err := m.Decide(in4([4]float64{0.5, 0.5, 0.5, 0.5}, allOn, 960_000*soc.KHz)); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	// First post-reset low-util decision has no history → full quota.
	dec, err := m.Decide(in4([4]float64{0.1, 0.1, 0.1, 0.1}, allOn, 300*soc.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Quota != 1 {
		t.Errorf("post-reset quota = %v, want 1 (no history)", dec.Quota)
	}
}

func TestChooseOperatingPointPrefersFewCoresAtLowLoad(t *testing.T) {
	m := model(t)
	tbl := table(t)
	// 10% of total capacity: one core is the known optimum (Fig. 5a).
	demand := 0.10 * 4 * float64(tbl.Max().Freq)
	best, err := ChooseOperatingPoint(m, tbl, demand, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cores != 1 {
		t.Errorf("low-load optimum uses %d cores, want 1", best.Cores)
	}
	if !power.CapacityMet(best.Cores, best.OPP, demand) {
		t.Error("chosen point cannot serve the demand")
	}
}

func TestChooseOperatingPointInfeasibleDemand(t *testing.T) {
	m := model(t)
	tbl := table(t)
	demand := 10 * 4 * float64(tbl.Max().Freq) // 10× the whole SoC
	best, err := ChooseOperatingPoint(m, tbl, demand, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cores != 4 || best.OPP.Freq != tbl.Max().Freq {
		t.Errorf("infeasible demand should run flat out, got (%d, %v)", best.Cores, best.OPP.Freq)
	}
}

func TestSweepOperatingPointsFeasibleOnly(t *testing.T) {
	m := model(t)
	tbl := table(t)
	demand := 0.50 * 4 * float64(tbl.Max().Freq)
	points, err := SweepOperatingPoints(m, tbl, demand, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no feasible points at 50% load")
	}
	for _, p := range points {
		if !power.CapacityMet(p.Cores, p.OPP, demand) {
			t.Errorf("infeasible point (%d, %v) included", p.Cores, p.OPP.Freq)
		}
		if p.PredictedWatts <= 0 {
			t.Errorf("non-positive prediction at (%d, %v)", p.Cores, p.OPP.Freq)
		}
	}
}

func TestOracleManager(t *testing.T) {
	o, err := NewOracle(table(t), model(t), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := o.Decide(in4([4]float64{0.3, 0.3, 0.3, 0.3}, allOn, 960_000*soc.KHz))
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(table(t), 4); err != nil {
		t.Errorf("oracle decision invalid: %v", err)
	}
	if dec.Quota != 1 {
		t.Errorf("oracle quota = %v, want 1", dec.Quota)
	}
	if _, err := NewOracle(table(t), nil, 0.1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewOracle(table(t), model(t), -1); err == nil {
		t.Error("negative headroom accepted")
	}
}
