package core

import (
	"errors"
	"fmt"
	"math"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// OperatingPoint is one (cores, frequency) combination with its predicted
// power — a point on the §3.4 trade-off curve.
type OperatingPoint struct {
	Cores          int
	OPP            soc.OPP
	PredictedWatts float64
}

// ChooseOperatingPoint exhaustively minimizes the energy model over every
// (n, f) combination that can serve the demanded throughput — the §4.2
// model validation ("the best one is chosen by our model"). It returns the
// minimum-power point; ties break towards fewer cores, then lower frequency.
func ChooseOperatingPoint(m *power.Model, table *soc.OPPTable, demandCyclesPerSec float64, maxCores int) (OperatingPoint, error) {
	if m == nil || table == nil || table.Len() == 0 {
		return OperatingPoint{}, errors.New("core: oracle needs a model and table")
	}
	if maxCores < 1 {
		return OperatingPoint{}, errors.New("core: oracle needs at least one core")
	}
	if demandCyclesPerSec < 0 {
		return OperatingPoint{}, errors.New("core: negative demand")
	}
	best := OperatingPoint{PredictedWatts: math.Inf(1)}
	feasible := false
	for n := 1; n <= maxCores; n++ {
		for _, opp := range table.Points() {
			if !power.CapacityMet(n, opp, demandCyclesPerSec) {
				continue
			}
			watts, err := m.PredictWatts(n, opp, demandCyclesPerSec, maxCores)
			if err != nil {
				return OperatingPoint{}, fmt.Errorf("core: predicting (%d,%v): %w", n, opp.Freq, err)
			}
			if watts < best.PredictedWatts {
				best = OperatingPoint{Cores: n, OPP: opp, PredictedWatts: watts}
				feasible = true
			}
		}
	}
	if !feasible {
		// Demand exceeds the whole SoC: run everything flat out.
		opp := table.Max()
		watts, err := m.PredictWatts(maxCores, opp, demandCyclesPerSec, maxCores)
		if err != nil {
			return OperatingPoint{}, err
		}
		return OperatingPoint{Cores: maxCores, OPP: opp, PredictedWatts: watts}, nil
	}
	return best, nil
}

// SweepOperatingPoints evaluates the predicted power of every feasible
// (cores, frequency) combination for a demand — the data behind Figure 5's
// four panels. Points that cannot serve the demand are omitted.
func SweepOperatingPoints(m *power.Model, table *soc.OPPTable, demandCyclesPerSec float64, maxCores int) ([]OperatingPoint, error) {
	if m == nil || table == nil || table.Len() == 0 {
		return nil, errors.New("core: sweep needs a model and table")
	}
	out := make([]OperatingPoint, 0, maxCores*table.Len())
	for n := 1; n <= maxCores; n++ {
		for _, opp := range table.Points() {
			if !power.CapacityMet(n, opp, demandCyclesPerSec) {
				continue
			}
			watts, err := m.PredictWatts(n, opp, demandCyclesPerSec, maxCores)
			if err != nil {
				return nil, err
			}
			out = append(out, OperatingPoint{Cores: n, OPP: opp, PredictedWatts: watts})
		}
	}
	return out, nil
}

// Oracle is the model-driven manager: each period it measures the served
// demand, adds headroom, and programs the energy-model optimum. It is the
// reference MobiCore's closed-form law is validated against (ablation 3 in
// DESIGN.md). Bandwidth is left alone so the comparison isolates operating
// point selection.
type Oracle struct {
	table    *soc.OPPTable
	model    *power.Model
	headroom float64
}

var _ policy.Manager = (*Oracle)(nil)

// NewOracle builds the model-driven manager. headroom inflates measured
// demand to leave room for growth between samples (e.g. 0.15 for 15%).
func NewOracle(table *soc.OPPTable, model *power.Model, headroom float64) (*Oracle, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if model == nil {
		return nil, errors.New("core: oracle needs a power model")
	}
	if headroom < 0 || headroom > 1 {
		return nil, errors.New("core: oracle headroom must be in [0,1]")
	}
	return &Oracle{table: table, model: model, headroom: headroom}, nil
}

// Name implements policy.Manager.
func (o *Oracle) Name() string { return "oracle" }

// Decide implements policy.Manager.
func (o *Oracle) Decide(in policy.Input) (policy.Decision, error) {
	if err := in.Validate(); err != nil {
		return policy.Decision{}, err
	}
	// Served demand: cycles/sec actually consumed this period.
	var demand float64
	for i := range in.Util {
		if in.Online[i] {
			demand += in.Util[i] * float64(in.CurFreq[i])
		}
	}
	demand *= 1 + o.headroom
	best, err := ChooseOperatingPoint(o.model, o.table, demand, len(in.Util))
	if err != nil {
		return policy.Decision{}, err
	}
	return policy.Decision{
		TargetFreq:  uniform(len(in.Util), best.OPP.Freq),
		OnlineCores: best.Cores,
		Quota:       1,
	}, nil
}

// Reset implements policy.Manager.
func (o *Oracle) Reset() {}

// ClusterOperatingPoint is one cluster's share of a joint heterogeneous
// operating point: how many of its cores run and at which OPP. Cores == 0
// parks the whole domain (OPP is then the domain floor).
type ClusterOperatingPoint struct {
	Cores int
	OPP   soc.OPP
}

// ChooseClusterOperatingPoints generalizes the §4.2 exhaustive search to a
// heterogeneous SoC: it jointly minimizes predicted power over every
// per-cluster (cores, frequency) combination whose aggregate capacity
// serves the demand, pricing each candidate with the per-cluster models
// (demand split proportional to capacity — the balanced-scheduler
// assumption of §3.2) plus the platform floor paid once. Any cluster may
// park entirely as long as at least one core stays online somewhere. Ties
// break towards fewer total cores, then lower aggregate capacity. When even
// the whole SoC flat out cannot serve the demand it returns the full-blast
// configuration, mirroring the homogeneous fallback.
func ChooseClusterOperatingPoints(baseWatts float64, models []*power.Model, tables []*soc.OPPTable, clusterCores []int, demandCyclesPerSec float64) ([]ClusterOperatingPoint, float64, error) {
	n := len(models)
	if n == 0 || len(tables) != n || len(clusterCores) != n {
		return nil, 0, fmt.Errorf("core: cluster oracle needs parallel models/tables/cores, got %d/%d/%d",
			len(models), len(tables), len(clusterCores))
	}
	if baseWatts < 0 {
		return nil, 0, errors.New("core: negative base watts")
	}
	if demandCyclesPerSec < 0 {
		return nil, 0, errors.New("core: negative demand")
	}
	for ci := 0; ci < n; ci++ {
		if models[ci] == nil || tables[ci] == nil || tables[ci].Len() == 0 {
			return nil, 0, fmt.Errorf("core: cluster %d missing model or table", ci)
		}
		if clusterCores[ci] < 1 {
			return nil, 0, fmt.Errorf("core: cluster %d core count %d", ci, clusterCores[ci])
		}
	}

	var (
		bestChoice []ClusterOperatingPoint
		bestWatts  = math.Inf(1)
		bestCores  = math.MaxInt
		bestCap    = math.Inf(1)
		cur        = make([]ClusterOperatingPoint, n)
	)
	price := func(choice []ClusterOperatingPoint, totalCap float64) float64 {
		watts := baseWatts
		for ci, ch := range choice {
			share := 0.0
			if totalCap > 0 && ch.Cores > 0 {
				share = demandCyclesPerSec * (float64(ch.Cores) * float64(ch.OPP.Freq)) / totalCap
			}
			watts += clusterPredictWatts(models[ci], ch.Cores, ch.OPP, share, clusterCores[ci])
		}
		return watts
	}
	var walk func(ci, cores int, capacity float64)
	walk = func(ci, cores int, capacity float64) {
		if ci == n {
			if cores < 1 || capacity < demandCyclesPerSec {
				return
			}
			watts := price(cur, capacity)
			if watts < bestWatts ||
				(watts == bestWatts && cores < bestCores) ||
				(watts == bestWatts && cores == bestCores && capacity < bestCap) {
				bestChoice = append(bestChoice[:0], cur...)
				bestWatts, bestCores, bestCap = watts, cores, capacity
			}
			return
		}
		cur[ci] = ClusterOperatingPoint{Cores: 0, OPP: tables[ci].Min()}
		walk(ci+1, cores, capacity)
		for c := 1; c <= clusterCores[ci]; c++ {
			for _, opp := range tables[ci].Points() {
				cur[ci] = ClusterOperatingPoint{Cores: c, OPP: opp}
				walk(ci+1, cores+c, capacity+float64(c)*float64(opp.Freq))
			}
		}
	}
	walk(0, 0, 0)

	if bestChoice == nil {
		// Demand exceeds the whole SoC: run everything flat out.
		full := make([]ClusterOperatingPoint, n)
		totalCap := 0.0
		for ci := 0; ci < n; ci++ {
			full[ci] = ClusterOperatingPoint{Cores: clusterCores[ci], OPP: tables[ci].Max()}
			totalCap += float64(clusterCores[ci]) * float64(tables[ci].Max().Freq)
		}
		return full, price(full, totalCap), nil
	}
	return bestChoice, bestWatts, nil
}

// clusterPredictWatts prices one cluster serving shareCyclesPerSec on
// cores active cores at opp, the rest power-gated — Model.PredictWatts
// without the per-cluster base (the platform floor is paid once by the
// caller) and without slice allocation in the search's hot loop.
func clusterPredictWatts(m *power.Model, cores int, opp soc.OPP, shareCyclesPerSec float64, totalCores int) float64 {
	off := float64(totalCores-cores) * m.Params().OfflineWatts
	if cores == 0 {
		return off
	}
	util := shareCyclesPerSec / (float64(cores) * float64(opp.Freq))
	util = clamp(util, 0, 1)
	return float64(cores)*m.CoreWatts(soc.StateActive, opp, util) + off + m.CacheWatts(util, opp.Freq)
}

// ClusteredOracle is the model-driven reference manager for heterogeneous
// SoCs: each period it measures served demand, adds headroom, and programs
// the joint per-cluster optimum from ChooseClusterOperatingPoints. The
// homogeneous Oracle is the single-cluster special case.
type ClusteredOracle struct {
	baseWatts float64
	models    []*power.Model
	tables    []*soc.OPPTable
	counts    []int
	headroom  float64
}

var _ policy.Manager = (*ClusteredOracle)(nil)

// NewClusteredOracleForPlatform builds the cluster-aware oracle from a
// platform profile, one calibrated model per frequency domain. headroom
// inflates measured demand to leave room for growth between samples.
func NewClusteredOracleForPlatform(plat platform.Platform, headroom float64) (*ClusteredOracle, error) {
	if headroom < 0 || headroom > 1 {
		return nil, errors.New("core: oracle headroom must be in [0,1]")
	}
	specs := plat.ClusterSpecs()
	o := &ClusteredOracle{
		baseWatts: plat.Power.BaseWatts,
		models:    make([]*power.Model, len(specs)),
		tables:    make([]*soc.OPPTable, len(specs)),
		counts:    make([]int, len(specs)),
		headroom:  headroom,
	}
	for ci, cs := range specs {
		m, err := power.NewModel(cs.Power, cs.Table)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %s: %w", cs.Name, err)
		}
		o.models[ci] = m
		o.tables[ci] = cs.Table
		o.counts[ci] = cs.NumCores
	}
	return o, nil
}

// Name implements policy.Manager.
func (o *ClusteredOracle) Name() string { return "oracle" }

// Decide implements policy.Manager.
func (o *ClusteredOracle) Decide(in policy.Input) (policy.Decision, error) {
	if err := in.Validate(); err != nil {
		return policy.Decision{}, err
	}
	views := in.ClusterViews()
	if len(views) != len(o.models) {
		return policy.Decision{}, fmt.Errorf("core: cluster oracle built for %d domains, input has %d",
			len(o.models), len(views))
	}
	var demand float64
	for i := range in.Util {
		if in.Online[i] {
			demand += in.Util[i] * float64(in.CurFreq[i])
		}
	}
	demand *= 1 + o.headroom
	choice, _, err := ChooseClusterOperatingPoints(o.baseWatts, o.models, o.tables, o.counts, demand)
	if err != nil {
		return policy.Decision{}, err
	}
	targets := make([]soc.Hz, len(in.Util))
	vec := make([]int, len(views))
	for ci, v := range views {
		vec[ci] = choice[ci].Cores
		f := choice[ci].OPP.Freq
		if choice[ci].Cores == 0 {
			f = v.Table.Min().Freq // parked domain clocks at its floor
		}
		for _, id := range v.CoreIDs {
			targets[id] = f
		}
	}
	return policy.Decision{TargetFreq: targets, OnlineVec: vec, Quota: 1}, nil
}

// Reset implements policy.Manager.
func (o *ClusteredOracle) Reset() {}
