package core

import (
	"errors"
	"fmt"
	"math"

	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// OperatingPoint is one (cores, frequency) combination with its predicted
// power — a point on the §3.4 trade-off curve.
type OperatingPoint struct {
	Cores          int
	OPP            soc.OPP
	PredictedWatts float64
}

// ChooseOperatingPoint exhaustively minimizes the energy model over every
// (n, f) combination that can serve the demanded throughput — the §4.2
// model validation ("the best one is chosen by our model"). It returns the
// minimum-power point; ties break towards fewer cores, then lower frequency.
func ChooseOperatingPoint(m *power.Model, table *soc.OPPTable, demandCyclesPerSec float64, maxCores int) (OperatingPoint, error) {
	if m == nil || table == nil || table.Len() == 0 {
		return OperatingPoint{}, errors.New("core: oracle needs a model and table")
	}
	if maxCores < 1 {
		return OperatingPoint{}, errors.New("core: oracle needs at least one core")
	}
	if demandCyclesPerSec < 0 {
		return OperatingPoint{}, errors.New("core: negative demand")
	}
	best := OperatingPoint{PredictedWatts: math.Inf(1)}
	feasible := false
	for n := 1; n <= maxCores; n++ {
		for _, opp := range table.Points() {
			if !power.CapacityMet(n, opp, demandCyclesPerSec) {
				continue
			}
			watts, err := m.PredictWatts(n, opp, demandCyclesPerSec, maxCores)
			if err != nil {
				return OperatingPoint{}, fmt.Errorf("core: predicting (%d,%v): %w", n, opp.Freq, err)
			}
			if watts < best.PredictedWatts {
				best = OperatingPoint{Cores: n, OPP: opp, PredictedWatts: watts}
				feasible = true
			}
		}
	}
	if !feasible {
		// Demand exceeds the whole SoC: run everything flat out.
		opp := table.Max()
		watts, err := m.PredictWatts(maxCores, opp, demandCyclesPerSec, maxCores)
		if err != nil {
			return OperatingPoint{}, err
		}
		return OperatingPoint{Cores: maxCores, OPP: opp, PredictedWatts: watts}, nil
	}
	return best, nil
}

// SweepOperatingPoints evaluates the predicted power of every feasible
// (cores, frequency) combination for a demand — the data behind Figure 5's
// four panels. Points that cannot serve the demand are omitted.
func SweepOperatingPoints(m *power.Model, table *soc.OPPTable, demandCyclesPerSec float64, maxCores int) ([]OperatingPoint, error) {
	if m == nil || table == nil || table.Len() == 0 {
		return nil, errors.New("core: sweep needs a model and table")
	}
	out := make([]OperatingPoint, 0, maxCores*table.Len())
	for n := 1; n <= maxCores; n++ {
		for _, opp := range table.Points() {
			if !power.CapacityMet(n, opp, demandCyclesPerSec) {
				continue
			}
			watts, err := m.PredictWatts(n, opp, demandCyclesPerSec, maxCores)
			if err != nil {
				return nil, err
			}
			out = append(out, OperatingPoint{Cores: n, OPP: opp, PredictedWatts: watts})
		}
	}
	return out, nil
}

// Oracle is the model-driven manager: each period it measures the served
// demand, adds headroom, and programs the energy-model optimum. It is the
// reference MobiCore's closed-form law is validated against (ablation 3 in
// DESIGN.md). Bandwidth is left alone so the comparison isolates operating
// point selection.
type Oracle struct {
	table    *soc.OPPTable
	model    *power.Model
	headroom float64
}

var _ policy.Manager = (*Oracle)(nil)

// NewOracle builds the model-driven manager. headroom inflates measured
// demand to leave room for growth between samples (e.g. 0.15 for 15%).
func NewOracle(table *soc.OPPTable, model *power.Model, headroom float64) (*Oracle, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if model == nil {
		return nil, errors.New("core: oracle needs a power model")
	}
	if headroom < 0 || headroom > 1 {
		return nil, errors.New("core: oracle headroom must be in [0,1]")
	}
	return &Oracle{table: table, model: model, headroom: headroom}, nil
}

// Name implements policy.Manager.
func (o *Oracle) Name() string { return "oracle" }

// Decide implements policy.Manager.
func (o *Oracle) Decide(in policy.Input) (policy.Decision, error) {
	if err := in.Validate(); err != nil {
		return policy.Decision{}, err
	}
	// Served demand: cycles/sec actually consumed this period.
	var demand float64
	for i := range in.Util {
		if in.Online[i] {
			demand += in.Util[i] * float64(in.CurFreq[i])
		}
	}
	demand *= 1 + o.headroom
	best, err := ChooseOperatingPoint(o.model, o.table, demand, len(in.Util))
	if err != nil {
		return policy.Decision{}, err
	}
	return policy.Decision{
		TargetFreq:  uniform(len(in.Util), best.OPP.Freq),
		OnlineCores: best.Cores,
		Quota:       1,
	}, nil
}

// Reset implements policy.Manager.
func (o *Oracle) Reset() {}
