package core

import (
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

func nexus6pOracleParts(t *testing.T) (float64, []*power.Model, []*soc.OPPTable, []int) {
	t.Helper()
	plat := platform.Nexus6P()
	specs := plat.ClusterSpecs()
	models := make([]*power.Model, len(specs))
	tables := make([]*soc.OPPTable, len(specs))
	counts := make([]int, len(specs))
	for ci, cs := range specs {
		m, err := power.NewModel(cs.Power, cs.Table)
		if err != nil {
			t.Fatal(err)
		}
		models[ci] = m
		tables[ci] = cs.Table
		counts[ci] = cs.NumCores
	}
	return plat.Power.BaseWatts, models, tables, counts
}

// TestChooseClusterOperatingPointsPrefersLittle: a demand that fits the
// efficiency cluster must not buy A57 leakage — the joint optimum parks
// the big cluster entirely.
func TestChooseClusterOperatingPointsPrefersLittle(t *testing.T) {
	base, models, tables, counts := nexus6pOracleParts(t)
	demand := 1.0e9 // one LITTLE core at ~2/3 ladder serves this
	choice, watts, err := ChooseClusterOperatingPoints(base, models, tables, counts, demand)
	if err != nil {
		t.Fatal(err)
	}
	if choice[1].Cores != 0 {
		t.Errorf("big cluster got %d cores for a LITTLE-sized demand", choice[1].Cores)
	}
	if choice[0].Cores < 1 {
		t.Error("no LITTLE cores chosen")
	}
	capacity := float64(choice[0].Cores) * float64(choice[0].OPP.Freq)
	if capacity < demand {
		t.Errorf("chosen capacity %.3g below demand %.3g", capacity, demand)
	}
	if watts <= 0 {
		t.Errorf("non-positive predicted watts %v", watts)
	}
}

// TestChooseClusterOperatingPointsSpansClusters: a demand beyond the whole
// LITTLE ladder forces big cores into the joint optimum, and the combined
// capacity still serves it.
func TestChooseClusterOperatingPointsSpansClusters(t *testing.T) {
	base, models, tables, counts := nexus6pOracleParts(t)
	littleCap := float64(counts[0]) * float64(tables[0].Max().Freq)
	demand := littleCap * 1.5
	choice, _, err := ChooseClusterOperatingPoints(base, models, tables, counts, demand)
	if err != nil {
		t.Fatal(err)
	}
	if choice[1].Cores < 1 {
		t.Errorf("demand %.3g exceeds LITTLE capacity %.3g but big cluster got no cores", demand, littleCap)
	}
	var capacity float64
	for ci, ch := range choice {
		capacity += float64(ch.Cores) * float64(ch.OPP.Freq)
		if ch.Cores < 0 || ch.Cores > counts[ci] {
			t.Errorf("cluster %d cores %d outside [0,%d]", ci, ch.Cores, counts[ci])
		}
	}
	if capacity < demand {
		t.Errorf("joint capacity %.3g below demand %.3g", capacity, demand)
	}
}

// TestChooseClusterOperatingPointsOverload: demand beyond the whole SoC
// falls back to everything flat out rather than erroring.
func TestChooseClusterOperatingPointsOverload(t *testing.T) {
	base, models, tables, counts := nexus6pOracleParts(t)
	choice, _, err := ChooseClusterOperatingPoints(base, models, tables, counts, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	for ci, ch := range choice {
		if ch.Cores != counts[ci] || ch.OPP.Freq != tables[ci].Max().Freq {
			t.Errorf("cluster %d not flat out under overload: %d cores at %v", ci, ch.Cores, ch.OPP.Freq)
		}
	}
}

// TestClusteredOracleDecide: the manager emits a valid clustered decision
// on the heterogeneous platform — the configuration the homogeneous oracle
// used to reject.
func TestClusteredOracleDecide(t *testing.T) {
	plat := platform.Nexus6P()
	o, err := NewClusteredOracleForPlatform(plat, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	specs := plat.ClusterSpecs()
	views := make([]policy.ClusterView, len(specs))
	id := 0
	for ci, cs := range specs {
		ids := make([]int, cs.NumCores)
		for j := range ids {
			ids[j] = id
			id++
		}
		views[ci] = policy.ClusterView{Name: cs.Name, Table: cs.Table, CoreIDs: ids}
	}
	in := policy.Input{
		Now:      time.Second,
		Period:   50 * time.Millisecond,
		Util:     make([]float64, plat.NumCores),
		Online:   make([]bool, plat.NumCores),
		CurFreq:  make([]soc.Hz, plat.NumCores),
		Quota:    1,
		Table:    plat.Table,
		Clusters: views,
	}
	for _, idc := range views[0].CoreIDs {
		in.Online[idc] = true
		in.Util[idc] = 0.9
		in.CurFreq[idc] = views[0].Table.Max().Freq
	}
	for _, idc := range views[1].CoreIDs {
		in.CurFreq[idc] = views[1].Table.Min().Freq
	}
	dec, err := o.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.ValidateClustered(views, plat.NumCores); err != nil {
		t.Fatalf("clustered oracle produced invalid decision: %v", err)
	}
	if dec.OnlineVec == nil {
		t.Fatal("clustered oracle should allocate per cluster")
	}
	total := 0
	for _, n := range dec.OnlineVec {
		total += n
	}
	if total < 1 {
		t.Error("oracle parked every core")
	}
}
