package cpufreq

import (
	"errors"

	"mobicore/internal/soc"
)

// ConservativeTunables mirror the conservative governor's knobs.
type ConservativeTunables struct {
	// UpThreshold: step the frequency up when load exceeds this.
	UpThreshold float64
	// DownThreshold: step down when load falls below this.
	DownThreshold float64
	// FreqStep is how many OPP levels one step moves. The kernel uses a
	// percentage of f_max; on a 14-point table one level ≈ 7%, so the
	// default of 1 matches the kernel's 5% spirit.
	FreqStep int
}

// DefaultConservativeTunables are the kernel defaults (80/20, one step).
func DefaultConservativeTunables() ConservativeTunables {
	return ConservativeTunables{UpThreshold: 0.80, DownThreshold: 0.20, FreqStep: 1}
}

// Validate rejects nonsensical tunables.
func (t ConservativeTunables) Validate() error {
	if t.UpThreshold <= 0 || t.UpThreshold > 1 {
		return errors.New("cpufreq: conservative UpThreshold must be in (0,1]")
	}
	if t.DownThreshold < 0 || t.DownThreshold >= t.UpThreshold {
		return errors.New("cpufreq: conservative DownThreshold must be in [0,UpThreshold)")
	}
	if t.FreqStep < 1 {
		return errors.New("cpufreq: conservative FreqStep must be >= 1")
	}
	return nil
}

// Conservative increases and decreases the CPU speed smoothly, one step at
// a time, "instead of suddenly jumping to the highest frequency" (§2.2.1).
type Conservative struct {
	table *soc.OPPTable
	tun   ConservativeTunables
}

var _ Governor = (*Conservative)(nil)

// NewConservative builds a conservative governor.
func NewConservative(table *soc.OPPTable, tun ConservativeTunables) (*Conservative, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	return &Conservative{table: table, tun: tun}, nil
}

// Name implements Governor.
func (g *Conservative) Name() string { return "conservative" }

// Target implements Governor.
func (g *Conservative) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := make([]soc.Hz, len(in.Util))
	for i := range in.Util {
		cur := in.CurFreq[i]
		switch {
		case in.Util[i] > g.tun.UpThreshold:
			out[i] = g.table.StepUp(cur, g.tun.FreqStep).Freq
		case in.Util[i] < g.tun.DownThreshold:
			out[i] = g.table.StepDown(cur, g.tun.FreqStep).Freq
		default:
			out[i] = g.table.CeilFreq(cur).Freq
		}
	}
	return out, nil
}

// Reset implements Governor.
func (g *Conservative) Reset() {}
