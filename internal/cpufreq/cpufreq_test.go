package cpufreq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobicore/internal/soc"
)

func table(t *testing.T) *soc.OPPTable {
	t.Helper()
	return soc.MSM8974Table()
}

func input(t *testing.T, utils []float64, freqs []soc.Hz) Input {
	t.Helper()
	online := make([]bool, len(utils))
	for i := range online {
		online[i] = true
	}
	return Input{
		Now:     time.Second,
		Period:  50 * time.Millisecond,
		Util:    utils,
		Online:  online,
		CurFreq: freqs,
		Table:   table(t),
	}
}

func TestInputValidate(t *testing.T) {
	good := input(t, []float64{0.5}, []soc.Hz{300 * soc.MHz})
	if err := good.Validate(); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	bad := good
	bad.Table = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil table accepted")
	}
	bad = good
	bad.Util = []float64{1.5}
	if err := bad.Validate(); err == nil {
		t.Error("util > 1 accepted")
	}
	bad = good
	bad.Online = []bool{true, false}
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestInputOverallUtil(t *testing.T) {
	in := input(t, []float64{0.8, 0.4, 0.0, 0.0}, []soc.Hz{300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz})
	in.Online = []bool{true, true, false, false}
	if got, want := in.OverallUtil(), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("overall util = %v, want %v (offline cores excluded)", got, want)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range StockNames() {
		g, err := New(name, table(t))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("governor %q reports name %q", name, g.Name())
		}
	}
	if _, err := New("bogus", table(t)); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestRegister(t *testing.T) {
	if err := Register("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	called := false
	factory := func(tbl *soc.OPPTable) (Governor, error) {
		called = true
		return NewPerformance(tbl)
	}
	if err := Register("custom-test-gov", factory); err != nil {
		t.Fatal(err)
	}
	if err := Register("custom-test-gov", factory); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := New("custom-test-gov", table(t)); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("registered factory not invoked")
	}
}

func TestPerformanceAndPowersave(t *testing.T) {
	tbl := table(t)
	perf, err := NewPerformance(tbl)
	if err != nil {
		t.Fatal(err)
	}
	save, err := NewPowersave(tbl)
	if err != nil {
		t.Fatal(err)
	}
	in := input(t, []float64{0.1, 0.9}, []soc.Hz{300 * soc.MHz, 960_000 * soc.KHz})
	pf, err := perf.Target(in)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := save.Target(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pf {
		if pf[i] != tbl.Max().Freq {
			t.Errorf("performance core %d = %v, want f_max", i, pf[i])
		}
		if ps[i] != tbl.Min().Freq {
			t.Errorf("powersave core %d = %v, want f_min", i, ps[i])
		}
	}
}

func TestUserspace(t *testing.T) {
	tbl := table(t)
	us, err := NewUserspace(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := us.Speed(); got != tbl.Min().Freq {
		t.Errorf("initial speed = %v, want f_min", got)
	}
	if err := us.SetSpeed(961 * soc.MHz); err == nil {
		t.Error("non-OPP speed accepted")
	}
	if err := us.SetSpeed(960_000 * soc.KHz); err != nil {
		t.Fatal(err)
	}
	out, err := us.Target(input(t, []float64{1.0}, []soc.Hz{300 * soc.MHz}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 960_000*soc.KHz {
		t.Errorf("userspace ignores load: got %v, want held 960MHz", out[0])
	}
	us.Reset()
	if got := us.Speed(); got != 960_000*soc.KHz {
		t.Errorf("reset cleared held speed: %v", got)
	}
}

func TestOndemandBurstToMax(t *testing.T) {
	tbl := table(t)
	od, err := NewOndemand(tbl, DefaultOndemandTunables())
	if err != nil {
		t.Fatal(err)
	}
	out, err := od.Target(input(t, []float64{0.85}, []soc.Hz{300 * soc.MHz}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != tbl.Max().Freq {
		t.Errorf("load above threshold → %v, want f_max", out[0])
	}
}

func TestOndemandScalesDown(t *testing.T) {
	tbl := table(t)
	tun := DefaultOndemandTunables()
	tun.SamplingDownFactor = 0
	od, err := NewOndemand(tbl, tun)
	if err != nil {
		t.Fatal(err)
	}
	// 20% load at f_max: want ≈ f_max·0.2/0.8 = 566 MHz → ceil 652.8 MHz.
	out, err := od.Target(input(t, []float64{0.2}, []soc.Hz{tbl.Max().Freq}))
	if err != nil {
		t.Fatal(err)
	}
	if want := 652_800 * soc.KHz; out[0] != want {
		t.Errorf("scale down = %v, want %v", out[0], want)
	}
}

func TestOndemandHysteresisBand(t *testing.T) {
	tbl := table(t)
	tun := DefaultOndemandTunables()
	tun.SamplingDownFactor = 0
	od, err := NewOndemand(tbl, tun)
	if err != nil {
		t.Fatal(err)
	}
	cur := 960_000 * soc.KHz
	// 0.75 is inside [up-down, up) = [0.70, 0.80): hold.
	out, err := od.Target(input(t, []float64{0.75}, []soc.Hz{cur}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != cur {
		t.Errorf("hysteresis band should hold %v, got %v", cur, out[0])
	}
}

func TestOndemandSamplingDownFactorHold(t *testing.T) {
	tbl := table(t)
	tun := DefaultOndemandTunables()
	tun.SamplingDownFactor = 2
	od, err := NewOndemand(tbl, tun)
	if err != nil {
		t.Fatal(err)
	}
	burst := input(t, []float64{0.9}, []soc.Hz{300 * soc.MHz})
	out, err := od.Target(burst)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != tbl.Max().Freq {
		t.Fatal("burst did not jump to max")
	}
	// Two quiet samples must hold f_max; the third may scale down.
	quiet := input(t, []float64{0.1}, []soc.Hz{tbl.Max().Freq})
	for i := 0; i < 2; i++ {
		out, err = od.Target(quiet)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tbl.Max().Freq {
			t.Fatalf("hold sample %d dropped to %v", i, out[0])
		}
	}
	out, err = od.Target(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == tbl.Max().Freq {
		t.Error("hold never expired")
	}
}

func TestConservativeSteps(t *testing.T) {
	tbl := table(t)
	c, err := NewConservative(tbl, DefaultConservativeTunables())
	if err != nil {
		t.Fatal(err)
	}
	cur := 960_000 * soc.KHz
	up, err := c.Target(input(t, []float64{0.9}, []soc.Hz{cur}))
	if err != nil {
		t.Fatal(err)
	}
	if want := tbl.StepUp(cur, 1).Freq; up[0] != want {
		t.Errorf("step up = %v, want %v (one step, not a jump)", up[0], want)
	}
	down, err := c.Target(input(t, []float64{0.1}, []soc.Hz{cur}))
	if err != nil {
		t.Fatal(err)
	}
	if want := tbl.StepDown(cur, 1).Freq; down[0] != want {
		t.Errorf("step down = %v, want %v", down[0], want)
	}
	hold, err := c.Target(input(t, []float64{0.5}, []soc.Hz{cur}))
	if err != nil {
		t.Fatal(err)
	}
	if hold[0] != cur {
		t.Errorf("mid load should hold, got %v", hold[0])
	}
}

func TestInteractiveHispeedJumpAndHold(t *testing.T) {
	tbl := table(t)
	g, err := NewInteractive(tbl, DefaultInteractiveTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input(t, []float64{0.9}, []soc.Hz{300 * soc.MHz})
	in.Now = 0
	out, err := g.Target(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != tbl.Max().Freq {
		t.Fatalf("hispeed jump = %v, want f_max", out[0])
	}
	// Within MinSampleTime the floor holds even at zero load.
	quiet := input(t, []float64{0.0}, []soc.Hz{tbl.Max().Freq})
	quiet.Now = 40 * time.Millisecond
	out, err = g.Target(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != tbl.Max().Freq {
		t.Errorf("hold within MinSampleTime broke: %v", out[0])
	}
	// After the hold expires the target follows load.
	quiet.Now = 200 * time.Millisecond
	out, err = g.Target(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != tbl.Min().Freq {
		t.Errorf("post-hold idle target = %v, want f_min", out[0])
	}
}

// TestGovernorsReturnLegalOPPs: every stock governor maps arbitrary legal
// inputs to frequencies that exist in the table.
func TestGovernorsReturnLegalOPPs(t *testing.T) {
	tbl := table(t)
	for _, name := range StockNames() {
		g, err := New(name, tbl)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(rawUtil [4]uint16, rawFreq [4]uint8, now uint16) bool {
			utils := make([]float64, 4)
			freqs := make([]soc.Hz, 4)
			online := make([]bool, 4)
			for i := 0; i < 4; i++ {
				utils[i] = float64(rawUtil[i]) / 65535
				freqs[i] = tbl.At(int(rawFreq[i]) % tbl.Len()).Freq
				online[i] = true
			}
			out, err := g.Target(Input{
				Now:     time.Duration(now) * time.Millisecond,
				Period:  50 * time.Millisecond,
				Util:    utils,
				Online:  online,
				CurFreq: freqs,
				Table:   tbl,
			})
			if err != nil {
				return false
			}
			for _, f := range out {
				if !tbl.Contains(f) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTunableValidation(t *testing.T) {
	tbl := table(t)
	if _, err := NewOndemand(tbl, OndemandTunables{UpThreshold: 0, DownDifferential: 0}); err == nil {
		t.Error("zero up threshold accepted")
	}
	if _, err := NewOndemand(tbl, OndemandTunables{UpThreshold: 0.5, DownDifferential: 0.6}); err == nil {
		t.Error("down differential above threshold accepted")
	}
	if _, err := NewConservative(tbl, ConservativeTunables{UpThreshold: 0.8, DownThreshold: 0.9, FreqStep: 1}); err == nil {
		t.Error("down above up accepted")
	}
	if _, err := NewConservative(tbl, ConservativeTunables{UpThreshold: 0.8, DownThreshold: 0.2, FreqStep: 0}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := NewInteractive(tbl, InteractiveTunables{GoHispeedLoad: 2, TargetLoad: 0.9}); err == nil {
		t.Error("hispeed load > 1 accepted")
	}
}
