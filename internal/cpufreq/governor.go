// Package cpufreq reimplements the Linux cpufreq governor framework the
// thesis builds on (§2.2.1): the sampling-driven governor interface and the
// six stock governors it names — ondemand, interactive, conservative,
// powersave, performance, and userspace. MobiCore is implemented elsewhere
// (internal/core) as a composite policy that embeds the ondemand decision,
// exactly as the thesis describes ("based on the existing ondemand
// governor", §5.3).
package cpufreq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mobicore/internal/soc"
)

// Input is everything a governor observes at one sampling point. Slices are
// indexed by core id and must not be mutated by the governor.
type Input struct {
	// Now is the simulation time of this sample.
	Now time.Duration
	// Period is the time since the previous sample.
	Period time.Duration
	// Util is each core's busy fraction over the period, in [0,1].
	// Offline cores carry 0.
	Util []float64
	// Online flags each core's hotplug state.
	Online []bool
	// CurFreq is each core's programmed frequency.
	CurFreq []soc.Hz
	// Table is the platform's OPP table.
	Table *soc.OPPTable
}

// Validate rejects malformed inputs early so individual governors can
// assume a consistent view.
func (in Input) Validate() error {
	if in.Table == nil || in.Table.Len() == 0 {
		return errors.New("cpufreq: input missing OPP table")
	}
	n := len(in.Util)
	if n == 0 || len(in.Online) != n || len(in.CurFreq) != n {
		return fmt.Errorf("cpufreq: inconsistent input lengths util=%d online=%d freq=%d",
			len(in.Util), len(in.Online), len(in.CurFreq))
	}
	for i, u := range in.Util {
		if u < 0 || u > 1 {
			return fmt.Errorf("cpufreq: core %d utilization %v outside [0,1]", i, u)
		}
	}
	return nil
}

// OverallUtil is the thesis' definition of overall CPU utilization (§2.2):
// the average of the utilizations over all online cores.
func (in Input) OverallUtil() float64 {
	var sum float64
	n := 0
	for i, u := range in.Util {
		if in.Online[i] {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Governor is a frequency policy: each sampling period it maps observed
// utilization to per-core target frequencies. Implementations must be
// deterministic. Governors are not required to be safe for concurrent use.
type Governor interface {
	// Name returns the sysfs-style governor name, e.g. "ondemand".
	Name() string
	// Target returns the desired frequency for every core (indexed by
	// core id). Entries for offline cores are ignored by the caller.
	// Returned frequencies must be valid operating points of in.Table.
	Target(in Input) ([]soc.Hz, error)
	// Reset clears internal state (sampling history, hold timers).
	Reset()
}

// Factory builds a governor instance for a platform table.
type Factory func(table *soc.OPPTable) (Governor, error)

// registry maps governor names to factories. Guarded by regMu; the registry
// is written only from package init paths and read afterwards.
var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register installs a governor factory under name. Registering a duplicate
// name returns an error rather than silently replacing a policy.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return errors.New("cpufreq: empty governor registration")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("cpufreq: governor %q already registered", name)
	}
	registry[name] = f
	return nil
}

// New instantiates a governor by name: first the six stock governors, then
// anything installed with Register.
func New(name string, table *soc.OPPTable) (Governor, error) {
	switch name {
	case "ondemand":
		return NewOndemand(table, DefaultOndemandTunables())
	case "interactive":
		return NewInteractive(table, DefaultInteractiveTunables())
	case "conservative":
		return NewConservative(table, DefaultConservativeTunables())
	case "powersave":
		return NewPowersave(table)
	case "performance":
		return NewPerformance(table)
	case "userspace":
		return NewUserspace(table)
	case "schedutil":
		return NewSchedutil(table, DefaultSchedutilTunables())
	case "pin-min", "pin-mid", "pin-max":
		return NewPin(table, PinLevel(name[len("pin-"):]))
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cpufreq: unknown governor %q (have %v)", name, Names())
	}
	return f(table)
}

// StockNames lists the six governors shipped with the package, mirroring
// the set §2.2.1 enumerates. The schedutil extension (post-thesis mainline
// governor) is available through New but is not part of the stock set.
func StockNames() []string {
	return []string{"conservative", "interactive", "ondemand", "performance", "powersave", "userspace"}
}

// Names lists every available governor — stock plus registered — sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry)+10)
	names = append(names, StockNames()...)
	names = append(names, "schedutil", "pin-min", "pin-mid", "pin-max")
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// uniformTargets fills a target slice with one frequency for all cores.
func uniformTargets(n int, f soc.Hz) []soc.Hz {
	out := make([]soc.Hz, n)
	for i := range out {
		out[i] = f
	}
	return out
}
