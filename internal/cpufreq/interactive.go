package cpufreq

import (
	"errors"
	"time"

	"mobicore/internal/soc"
)

// InteractiveTunables mirror the interactive governor's main knobs.
type InteractiveTunables struct {
	// GoHispeedLoad: load above this jumps to HispeedFreq immediately.
	GoHispeedLoad float64
	// HispeedFreq is the intermediate jump frequency; zero means "pick
	// f_max", the common device default.
	HispeedFreq soc.Hz
	// TargetLoad is the per-core load the governor steers towards when
	// scaling above HispeedFreq.
	TargetLoad float64
	// MinSampleTime is how long the governor holds an elevated frequency
	// before allowing a drop — the source of its "much more aggressive"
	// feel (§2.2.1).
	MinSampleTime time.Duration
}

// DefaultInteractiveTunables match the AOSP defaults (85%, f_max jump, 90%
// target load, 80 ms hold).
func DefaultInteractiveTunables() InteractiveTunables {
	return InteractiveTunables{
		GoHispeedLoad: 0.85,
		TargetLoad:    0.90,
		MinSampleTime: 80 * time.Millisecond,
	}
}

// Validate rejects nonsensical tunables.
func (t InteractiveTunables) Validate() error {
	if t.GoHispeedLoad <= 0 || t.GoHispeedLoad > 1 {
		return errors.New("cpufreq: interactive GoHispeedLoad must be in (0,1]")
	}
	if t.TargetLoad <= 0 || t.TargetLoad > 1 {
		return errors.New("cpufreq: interactive TargetLoad must be in (0,1]")
	}
	if t.MinSampleTime < 0 {
		return errors.New("cpufreq: interactive MinSampleTime must be non-negative")
	}
	return nil
}

// Interactive is the latency-sensitive governor: it ramps aggressively on
// activity and holds speed for MinSampleTime before dropping.
type Interactive struct {
	table *soc.OPPTable
	tun   InteractiveTunables

	// floorUntil holds, per core, the time before which the frequency
	// may not drop below floorFreq.
	floorFreq  []soc.Hz
	floorUntil []time.Duration
}

var _ Governor = (*Interactive)(nil)

// NewInteractive builds an interactive governor.
func NewInteractive(table *soc.OPPTable, tun InteractiveTunables) (*Interactive, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	g := &Interactive{table: table, tun: tun}
	if g.tun.HispeedFreq == 0 {
		g.tun.HispeedFreq = table.Max().Freq
	} else {
		g.tun.HispeedFreq = table.CeilFreq(g.tun.HispeedFreq).Freq
	}
	return g, nil
}

// Name implements Governor.
func (g *Interactive) Name() string { return "interactive" }

// Target implements Governor.
func (g *Interactive) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Util)
	if len(g.floorFreq) != n {
		g.floorFreq = make([]soc.Hz, n)
		g.floorUntil = make([]time.Duration, n)
	}
	out := make([]soc.Hz, n)
	for i := 0; i < n; i++ {
		var want soc.Hz
		if in.Util[i] >= g.tun.GoHispeedLoad {
			want = g.tun.HispeedFreq
			// Burst: arm the hold timer.
			g.floorFreq[i] = want
			g.floorUntil[i] = in.Now + g.tun.MinSampleTime
		} else {
			// Steer towards TargetLoad: f = util·cur/target.
			want = g.table.CeilFreq(soc.Hz(float64(in.CurFreq[i]) * in.Util[i] / g.tun.TargetLoad)).Freq
		}
		// Respect the hold floor while it is armed.
		if in.Now < g.floorUntil[i] && want < g.floorFreq[i] {
			want = g.floorFreq[i]
		}
		out[i] = g.table.CeilFreq(want).Freq
	}
	return out, nil
}

// Reset implements Governor.
func (g *Interactive) Reset() {
	g.floorFreq = nil
	g.floorUntil = nil
}
