package cpufreq

import (
	"errors"

	"mobicore/internal/soc"
)

// OndemandTunables mirror the classic ondemand governor's sysfs knobs.
type OndemandTunables struct {
	// UpThreshold: a core busier than this fraction jumps straight to
	// f_max — the burst behaviour §2.2.1 describes ("if the load reaches
	// a set threshold, CPU frequency raises to the maximum frequency").
	UpThreshold float64
	// DownDifferential: below (UpThreshold - DownDifferential) the
	// governor picks the lowest frequency that would keep the load just
	// under UpThreshold.
	DownDifferential float64
	// SamplingDownFactor holds the maximum frequency for this many
	// samples after a burst before the governor may scale down — the
	// kernel knob that biases ondemand towards performance and makes it
	// "not a battery-powered friendly governor for high-computing
	// applications such as games" (§2.2.1).
	SamplingDownFactor int
}

// DefaultOndemandTunables are the kernel defaults (80 / 10) with the
// performance-biased hold (sampling_down_factor 3) common on devices of the
// Nexus 5 era.
func DefaultOndemandTunables() OndemandTunables {
	return OndemandTunables{UpThreshold: 0.80, DownDifferential: 0.10, SamplingDownFactor: 3}
}

// Validate rejects nonsensical tunables.
func (t OndemandTunables) Validate() error {
	if t.UpThreshold <= 0 || t.UpThreshold > 1 {
		return errors.New("cpufreq: ondemand UpThreshold must be in (0,1]")
	}
	if t.DownDifferential < 0 || t.DownDifferential >= t.UpThreshold {
		return errors.New("cpufreq: ondemand DownDifferential must be in [0,UpThreshold)")
	}
	if t.SamplingDownFactor < 0 {
		return errors.New("cpufreq: ondemand SamplingDownFactor must be non-negative")
	}
	return nil
}

// Ondemand is the default Android governor of the era (§2.2.1): jump to max
// on load above the threshold, otherwise scale down proportionally.
type Ondemand struct {
	table *soc.OPPTable
	tun   OndemandTunables

	// holdLeft counts remaining samples of the post-burst f_max hold per
	// core (sampling_down_factor state).
	holdLeft []int
}

var _ Governor = (*Ondemand)(nil)

// NewOndemand builds an ondemand governor for the table.
func NewOndemand(table *soc.OPPTable, tun OndemandTunables) (*Ondemand, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	return &Ondemand{table: table, tun: tun}, nil
}

// Name implements Governor.
func (g *Ondemand) Name() string { return "ondemand" }

// Tunables returns the governor's configuration.
func (g *Ondemand) Tunables() OndemandTunables { return g.tun }

// Target implements Governor. Per-core decision, as on per-core DVFS
// hardware like the MSM8974:
//
//   - load >= UpThreshold            → f_max, arm the hold
//   - hold armed                     → keep the current frequency
//   - load <  UpThreshold - DownDiff → lowest f with projected load < UpThreshold
//   - otherwise                      → hold
func (g *Ondemand) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(g.holdLeft) != len(in.Util) {
		g.holdLeft = make([]int, len(in.Util))
	}
	out := make([]soc.Hz, len(in.Util))
	for i := range in.Util {
		if in.Util[i] >= g.tun.UpThreshold {
			g.holdLeft[i] = g.tun.SamplingDownFactor
			out[i] = g.table.Max().Freq
			continue
		}
		if g.holdLeft[i] > 0 {
			g.holdLeft[i]--
			out[i] = g.table.CeilFreq(in.CurFreq[i]).Freq
			continue
		}
		out[i] = g.TargetOne(in.Util[i], in.CurFreq[i])
	}
	return out, nil
}

// TargetOne computes the ondemand decision for a single core. It is
// exported because MobiCore's Eq. 9 re-evaluates "the frequency which has
// been chosen by the ondemand governor" and needs the same primitive.
//
//mobicore:hotpath
func (g *Ondemand) TargetOne(util float64, cur soc.Hz) soc.Hz {
	if util >= g.tun.UpThreshold {
		return g.table.Max().Freq
	}
	if util < g.tun.UpThreshold-g.tun.DownDifferential {
		// Busy cycles/sec currently consumed: util×cur. Find the
		// slowest OPP that keeps the projected load under the
		// threshold: f >= util·cur/UpThreshold.
		want := float64(cur) * util / g.tun.UpThreshold
		return g.table.CeilFreq(soc.Hz(want)).Freq
	}
	// Hysteresis band: hold the current frequency (resolved to a legal
	// operating point in case the caller handed us a clamped value).
	return g.table.CeilFreq(cur).Freq
}

// Reset implements Governor.
func (g *Ondemand) Reset() { g.holdLeft = nil }
