package cpufreq

import (
	"fmt"

	"mobicore/internal/soc"
)

// PinLevel selects which operating point a Pin governor holds.
type PinLevel string

// Pin levels: the table's lowest point, the median point, and the highest.
const (
	PinMin PinLevel = "min"
	PinMid PinLevel = "mid"
	PinMax PinLevel = "max"
)

// Pin is the userspace min=max pinning idiom as a governor: it programs one
// fixed operating point and never moves, the scripted
// `scaling_min_freq == scaling_max_freq` baseline phone-energy debuggers
// sweep against. Unlike Userspace it carries the level in its name, so
// "pin-max+mpdecision" is a self-describing policy stack and distinct fleet
// cells don't alias under one "userspace" label.
type Pin struct {
	level PinLevel
	freq  soc.Hz
}

var _ Governor = (*Pin)(nil)

// NewPin builds a pinning governor holding the level's operating point; mid
// is the table's median row.
func NewPin(table *soc.OPPTable, level PinLevel) (*Pin, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	var f soc.Hz
	switch level {
	case PinMin:
		f = table.Min().Freq
	case PinMid:
		f = table.At(table.Len() / 2).Freq
	case PinMax:
		f = table.Max().Freq
	default:
		return nil, fmt.Errorf("cpufreq: unknown pin level %q (want min, mid, or max)", level)
	}
	return &Pin{level: level, freq: f}, nil
}

// Name implements Governor.
func (g *Pin) Name() string { return "pin-" + string(g.level) }

// Freq returns the pinned operating point.
func (g *Pin) Freq() soc.Hz { return g.freq }

// Target implements Governor.
func (g *Pin) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return uniformTargets(len(in.Util), g.freq), nil
}

// Reset implements Governor.
func (g *Pin) Reset() {}
