package cpufreq

import (
	"testing"

	"mobicore/internal/soc"
)

// TestPinLevels: each level resolves to the right operating point and holds
// it regardless of utilization.
func TestPinLevels(t *testing.T) {
	tbl := table(t)
	cases := map[PinLevel]soc.Hz{
		PinMin: tbl.Min().Freq,
		PinMid: tbl.At(tbl.Len() / 2).Freq,
		PinMax: tbl.Max().Freq,
	}
	for level, want := range cases {
		g, err := NewPin(tbl, level)
		if err != nil {
			t.Fatalf("NewPin(%s): %v", level, err)
		}
		if g.Name() != "pin-"+string(level) {
			t.Errorf("name = %q, want pin-%s", g.Name(), level)
		}
		if g.Freq() != want {
			t.Errorf("pin-%s freq = %v, want %v", level, g.Freq(), want)
		}
		for _, utils := range [][]float64{{0, 0, 0, 0}, {1, 1, 1, 1}} {
			in := input(t, utils, []soc.Hz{want, want, want, want})
			targets, err := g.Target(in)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range targets {
				if f != want {
					t.Errorf("pin-%s core %d target = %v under util %v, want %v", level, i, f, utils[i], want)
				}
			}
		}
		g.Reset() // must be a no-op; the pin survives
		if g.Freq() != want {
			t.Errorf("pin-%s freq after Reset = %v, want %v", level, g.Freq(), want)
		}
	}
}

// TestPinByName: the pin governors resolve through New and appear in Names.
func TestPinByName(t *testing.T) {
	for _, name := range []string{"pin-min", "pin-mid", "pin-max"} {
		g, err := New(name, table(t))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("governor %q reports name %q", name, g.Name())
		}
		found := false
		for _, n := range Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("%q missing from Names()", name)
		}
	}
	if _, err := NewPin(table(t), "low"); err == nil {
		t.Error("unknown pin level accepted")
	}
	if _, err := NewPin(nil, PinMax); err == nil {
		t.Error("nil table accepted")
	}
}
