package cpufreq

import (
	"errors"

	"mobicore/internal/soc"
)

// SchedutilTunables configure the schedutil-style governor.
type SchedutilTunables struct {
	// Margin is the capacity headroom factor: the kernel's
	// "1.25 × util" rule, i.e. target = Margin × util × f_cur resolved
	// upward onto the OPP table.
	Margin float64
}

// DefaultSchedutilTunables match the kernel's 25% headroom.
func DefaultSchedutilTunables() SchedutilTunables {
	return SchedutilTunables{Margin: 1.25}
}

// Validate rejects nonsensical tunables.
func (t SchedutilTunables) Validate() error {
	if t.Margin < 1 {
		return errors.New("cpufreq: schedutil Margin must be >= 1")
	}
	return nil
}

// Schedutil is the utilization-invariant governor that replaced ondemand
// and interactive in mainline Linux. It post-dates the thesis — the
// reproduction includes it as the modern baseline MobiCore would be
// compared against today: per-core target = margin × served-capacity,
// mapped to the next operating point, with no burst-to-max jump at all.
type Schedutil struct {
	table *soc.OPPTable
	tun   SchedutilTunables
}

var _ Governor = (*Schedutil)(nil)

// NewSchedutil builds a schedutil-style governor.
func NewSchedutil(table *soc.OPPTable, tun SchedutilTunables) (*Schedutil, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	return &Schedutil{table: table, tun: tun}, nil
}

// Name implements Governor.
func (g *Schedutil) Name() string { return "schedutil" }

// Target implements Governor: next_f = margin · util · f_cur per core
// (util·f_cur is the served capacity in cycles/s — the frequency-invariant
// utilization signal schedutil keys on).
func (g *Schedutil) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := make([]soc.Hz, len(in.Util))
	for i := range in.Util {
		want := g.tun.Margin * in.Util[i] * float64(in.CurFreq[i])
		out[i] = g.table.CeilFreq(soc.Hz(want)).Freq
	}
	return out, nil
}

// Reset implements Governor; schedutil keeps no cross-sample state here
// (the kernel's rate limits are below our sampling period).
func (g *Schedutil) Reset() {}
