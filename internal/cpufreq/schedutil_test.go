package cpufreq

import (
	"testing"

	"mobicore/internal/soc"
)

func TestSchedutilValidation(t *testing.T) {
	tbl := table(t)
	if _, err := NewSchedutil(nil, DefaultSchedutilTunables()); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewSchedutil(tbl, SchedutilTunables{Margin: 0.5}); err == nil {
		t.Error("margin below 1 accepted")
	}
}

func TestSchedutilByName(t *testing.T) {
	g, err := New("schedutil", table(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "schedutil" {
		t.Errorf("name = %q", g.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "schedutil" {
			found = true
		}
	}
	if !found {
		t.Errorf("schedutil missing from Names(): %v", Names())
	}
}

// TestSchedutilCapacityRule: target = 1.25 × util × f_cur, ceiled to the
// table — no jump-to-max behaviour at any load.
func TestSchedutilCapacityRule(t *testing.T) {
	tbl := table(t)
	g, err := NewSchedutil(tbl, DefaultSchedutilTunables())
	if err != nil {
		t.Fatal(err)
	}
	cur := 960_000 * soc.KHz
	// 50% load at 960 MHz: want 1.25×0.5×960 = 600 MHz → ceil 652.8 MHz.
	out, err := g.Target(input(t, []float64{0.5}, []soc.Hz{cur}))
	if err != nil {
		t.Fatal(err)
	}
	if want := 652_800 * soc.KHz; out[0] != want {
		t.Errorf("target = %v, want %v", out[0], want)
	}
	// Even at 100% load from a low frequency, schedutil steps rather
	// than jumping to f_max: 1.25×1.0×300 = 375 → 422.4 MHz.
	out, err = g.Target(input(t, []float64{1.0}, []soc.Hz{300 * soc.MHz}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == tbl.Max().Freq {
		t.Error("schedutil jumped to f_max; it should climb geometrically")
	}
	if want := 422_400 * soc.KHz; out[0] != want {
		t.Errorf("saturated step = %v, want %v", out[0], want)
	}
}

// TestSchedutilConverges: under a constant served demand, iterating the
// rule settles at the lowest OPP with util < 1/margin.
func TestSchedutilConverges(t *testing.T) {
	tbl := table(t)
	g, err := NewSchedutil(tbl, DefaultSchedutilTunables())
	if err != nil {
		t.Fatal(err)
	}
	const demand = 1.5e9 // cycles/s on one core
	cur := tbl.Min().Freq
	for i := 0; i < 50; i++ {
		util := demand / float64(cur)
		if util > 1 {
			util = 1
		}
		out, err := g.Target(input(t, []float64{util}, []soc.Hz{cur}))
		if err != nil {
			t.Fatal(err)
		}
		cur = out[0]
	}
	// Fixed point: the smallest OPP f with 1.25×demand ≤ f — here
	// 1.25×1.5e9 = 1.875e9 → 1.9584 GHz.
	if want := 1_958_400 * soc.KHz; cur != want {
		t.Errorf("converged to %v, want %v", cur, want)
	}
}
