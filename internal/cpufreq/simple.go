package cpufreq

import (
	"fmt"
	"sync"

	"mobicore/internal/soc"
)

// Performance pins every core at the maximum frequency — §2.2.1's
// "performance governor ... sets the highest frequency".
type Performance struct {
	table *soc.OPPTable
}

var _ Governor = (*Performance)(nil)

// NewPerformance builds the performance governor.
func NewPerformance(table *soc.OPPTable) (*Performance, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	return &Performance{table: table}, nil
}

// Name implements Governor.
func (g *Performance) Name() string { return "performance" }

// Target implements Governor.
func (g *Performance) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return uniformTargets(len(in.Util), g.table.Max().Freq), nil
}

// Reset implements Governor.
func (g *Performance) Reset() {}

// Powersave pins every core at the minimum frequency — "chooses the minimum
// frequency" (§2.2.1).
type Powersave struct {
	table *soc.OPPTable
}

var _ Governor = (*Powersave)(nil)

// NewPowersave builds the powersave governor.
func NewPowersave(table *soc.OPPTable) (*Powersave, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	return &Powersave{table: table}, nil
}

// Name implements Governor.
func (g *Powersave) Name() string { return "powersave" }

// Target implements Governor.
func (g *Powersave) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return uniformTargets(len(in.Util), g.table.Min().Freq), nil
}

// Reset implements Governor.
func (g *Powersave) Reset() {}

// Userspace holds whatever frequency the user programs — the hook "for
// users who want to try their own hand-written governor" (§2.2.1), and the
// slot where the thesis installs MobiCore on the real phone. The simulator's
// fixed-frequency experiments (Figures 3–7) drive cores through it.
type Userspace struct {
	mu    sync.Mutex
	table *soc.OPPTable
	speed soc.Hz
}

var _ Governor = (*Userspace)(nil)

// NewUserspace builds a userspace governor initialized to the minimum
// frequency.
func NewUserspace(table *soc.OPPTable) (*Userspace, error) {
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	return &Userspace{table: table, speed: table.Min().Freq}, nil
}

// Name implements Governor.
func (g *Userspace) Name() string { return "userspace" }

// SetSpeed programs the held frequency (the scaling_setspeed knob). The
// frequency must be an exact operating point.
func (g *Userspace) SetSpeed(f soc.Hz) error {
	if !g.table.Contains(f) {
		return fmt.Errorf("%w: %v", soc.ErrBadFrequency, f)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.speed = f
	return nil
}

// Speed returns the held frequency.
func (g *Userspace) Speed() soc.Hz {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.speed
}

// Target implements Governor.
func (g *Userspace) Target(in Input) ([]soc.Hz, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return uniformTargets(len(in.Util), g.Speed()), nil
}

// Reset implements Governor; the held speed survives reset, matching the
// kernel (scaling_setspeed persists until rewritten).
func (g *Userspace) Reset() {}
