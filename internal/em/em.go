// Package em is a kernel-EM-style energy model: one performance domain per
// frequency cluster, with capacity, cost-per-cycle, and energy-at-OPP tables
// precomputed at construction so every hot-path lookup is allocation-free.
//
// It mirrors the Linux Energy Model framework (kernel/power/energy_model.c)
// that EAS placement is built on: each domain publishes, per operating
// point, the power of one fully busy core and the derived energy cost of a
// cycle executed at that point. The Energy/Frequency Convexity Rule
// (arXiv:1401.4655) is why the tables are indexed by OPP rather than
// collapsed to a single per-domain figure — the energy-optimal operating
// point depends on the demanded rate, so a placement decision must price
// the OPP the governor would actually pick, not assume one.
package em

import (
	"errors"
	"fmt"
	"sort"

	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// DomainSpec declares one performance domain: a named cluster of identical
// cores with a private OPP ladder and power calibration.
type DomainSpec struct {
	Name    string
	CoreIDs []int
	Table   *soc.OPPTable
	Params  power.Params
}

// Domain is one immutable performance domain with its precomputed tables.
// All per-OPP slices are indexed like the domain's OPP table (ascending
// frequency).
type Domain struct {
	name    string
	coreIDs []int
	table   *soc.OPPTable
	model   *power.Model

	freqs          []float64 // operating frequency in Hz
	activeWatts    []float64 // one fully busy core: leakage + dynamic
	costPerCycle   []float64 // activeWatts / freq — joules per executed cycle
	uncorePerCycle []float64 // CacheWatts(busy, f) / f — the domain's uncore share
}

// Name returns the domain's cluster name.
func (d *Domain) Name() string { return d.name }

// CoreIDs returns the global core ids the domain owns. The slice is shared
// and must not be mutated.
func (d *Domain) CoreIDs() []int { return d.coreIDs }

// NumCores returns the number of cores in the domain.
func (d *Domain) NumCores() int { return len(d.coreIDs) }

// Table returns the domain's OPP ladder.
func (d *Domain) Table() *soc.OPPTable { return d.table }

// Model returns the domain's calibrated power model.
func (d *Domain) Model() *power.Model { return d.model }

// NumOPPs returns the number of operating points.
func (d *Domain) NumOPPs() int { return len(d.freqs) }

// FreqAt returns the frequency of operating point i in Hz.
func (d *Domain) FreqAt(i int) float64 { return d.freqs[i] }

// ActiveWattsAt returns the power of one fully busy core at OPP i.
func (d *Domain) ActiveWattsAt(i int) float64 { return d.activeWatts[i] }

// CostPerCycleAt returns the energy of one cycle executed at OPP i, in
// joules — the kernel EM "cost" column divided by frequency.
//
//mobicore:hotpath
func (d *Domain) CostPerCycleAt(i int) float64 { return d.costPerCycle[i] }

// UncorePerCycleAt returns the additional per-cycle cost of powering the
// domain's shared uncore (cache, bus) at OPP i. Placement charges it when
// the thread under decision would be the domain's only work — waking an
// idle cluster pays its uncore; joining an already-busy one does not.
//
//mobicore:hotpath
func (d *Domain) UncorePerCycleAt(i int) float64 { return d.uncorePerCycle[i] }

// Capacity returns the domain's per-core capacity: its top frequency in
// cycles per second.
func (d *Domain) Capacity() float64 { return d.freqs[len(d.freqs)-1] }

// OPPForRate returns the index of the lowest operating point whose
// frequency serves a per-core demand rate (cycles/sec) — the point a
// CPUFREQ_RELATION_L governor would pick. Rates above the ladder clamp to
// the top. Allocation-free.
//
//mobicore:hotpath
func (d *Domain) OPPForRate(rate float64) int {
	i := sort.SearchFloat64s(d.freqs, rate)
	if i == len(d.freqs) {
		return len(d.freqs) - 1
	}
	return i
}

// EnergyPerCycle returns the cost of one cycle executed at the OPP the
// governor would pick for a per-core rate — the EAS placement figure of
// merit. Allocation-free.
//
//mobicore:hotpath
func (d *Domain) EnergyPerCycle(rate float64) float64 {
	return d.costPerCycle[d.OPPForRate(rate)]
}

// WattsForDemand prices the domain serving demand (cycles/sec) spread
// evenly over n active cores at the lowest OPP that fits, including the
// domain's uncore term. met reports whether the domain's capacity covers
// the demand; when it does not, the domain is priced flat out. The
// platform floor is not included (it is paid once at platform level).
func (d *Domain) WattsForDemand(demand float64, n int) (watts float64, met bool) {
	if n < 1 {
		n = 1
	}
	if n > len(d.coreIDs) {
		n = len(d.coreIDs)
	}
	perCore := demand / float64(n)
	i := d.OPPForRate(perCore)
	opp := d.table.At(i)
	met = float64(n)*d.freqs[len(d.freqs)-1] >= demand
	util := perCore / d.freqs[i]
	if util > 1 {
		util = 1
	}
	watts = float64(n)*d.model.CoreWatts(soc.StateActive, opp, util) + d.model.CacheWatts(util, opp.Freq)
	return watts, met
}

// Model is the whole-SoC energy model: every performance domain plus the
// core-to-domain mapping. Immutable and safe for concurrent use.
type Model struct {
	domains    []Domain
	coreDomain []int // core id -> domain index
	effOrder   []int // domain indices by ascending capacity (efficient first)
}

// New validates the specs and precomputes every per-OPP table. Core ids
// must be non-negative and disjoint across domains.
func New(specs []DomainSpec) (*Model, error) {
	if len(specs) == 0 {
		return nil, errors.New("em: need at least one domain")
	}
	numCores := 0
	for _, s := range specs {
		for _, id := range s.CoreIDs {
			if id < 0 {
				return nil, fmt.Errorf("em: domain %s has negative core id %d", s.Name, id)
			}
			if id+1 > numCores {
				numCores = id + 1
			}
		}
	}
	m := &Model{
		domains:    make([]Domain, len(specs)),
		coreDomain: make([]int, numCores),
	}
	for i := range m.coreDomain {
		m.coreDomain[i] = -1
	}
	for di, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("em: domain %d needs a name", di)
		}
		if len(s.CoreIDs) == 0 {
			return nil, fmt.Errorf("em: domain %s owns no cores", s.Name)
		}
		pm, err := power.NewModel(s.Params, s.Table)
		if err != nil {
			return nil, fmt.Errorf("em: domain %s: %w", s.Name, err)
		}
		d := Domain{
			name:    s.Name,
			coreIDs: append([]int(nil), s.CoreIDs...),
			table:   s.Table,
			model:   pm,
		}
		n := s.Table.Len()
		d.freqs = make([]float64, n)
		d.activeWatts = make([]float64, n)
		d.costPerCycle = make([]float64, n)
		d.uncorePerCycle = make([]float64, n)
		for i := 0; i < n; i++ {
			opp := s.Table.At(i)
			d.freqs[i] = float64(opp.Freq)
			d.activeWatts[i] = pm.CoreWatts(soc.StateActive, opp, 1)
			d.costPerCycle[i] = d.activeWatts[i] / d.freqs[i]
			d.uncorePerCycle[i] = pm.CacheWatts(1, opp.Freq) / d.freqs[i]
		}
		for _, id := range s.CoreIDs {
			if m.coreDomain[id] != -1 {
				return nil, fmt.Errorf("em: core %d claimed by two domains", id)
			}
			m.coreDomain[id] = di
		}
		m.domains[di] = d
	}
	for id, di := range m.coreDomain {
		if di == -1 {
			return nil, fmt.Errorf("em: core %d belongs to no domain", id)
		}
	}
	m.effOrder = make([]int, len(m.domains))
	for i := range m.effOrder {
		m.effOrder[i] = i
	}
	sort.SliceStable(m.effOrder, func(a, b int) bool {
		return m.domains[m.effOrder[a]].Capacity() < m.domains[m.effOrder[b]].Capacity()
	})
	return m, nil
}

// NumDomains returns the number of performance domains.
func (m *Model) NumDomains() int { return len(m.domains) }

// NumCores returns the number of cores the model covers.
func (m *Model) NumCores() int { return len(m.coreDomain) }

// Domain returns performance domain di.
func (m *Model) Domain(di int) *Domain { return &m.domains[di] }

// DomainOf returns the domain index owning core id, or -1 for an unknown
// id.
//
//mobicore:hotpath
func (m *Model) DomainOf(id int) int {
	if id < 0 || id >= len(m.coreDomain) {
		return -1
	}
	return m.coreDomain[id]
}

// EfficiencyOrder returns the domain indices sorted by ascending capacity —
// the LITTLE-first walk order placement uses. The slice is shared and must
// not be mutated.
func (m *Model) EfficiencyOrder() []int { return m.effOrder }
