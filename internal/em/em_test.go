package em_test

import (
	"math"
	"testing"

	"mobicore/internal/em"
	"mobicore/internal/platform"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

func testSpecs(t *testing.T) []em.DomainSpec {
	t.Helper()
	little, err := soc.UniformTable(3, 400*soc.MHz, 1000*soc.MHz, 0.80, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	big, err := soc.UniformTable(3, 500*soc.MHz, 2000*soc.MHz, 0.85, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	params := func(ceff float64) power.Params {
		return power.Params{
			CeffFarads:      ceff,
			LeakCoeffWatts:  0.02,
			LeakExponent:    2.5,
			OfflineWatts:    0.001,
			CacheBaseWatts:  0.02,
			CacheSlopeWatts: 0.02,
			BaseWatts:       0.05,
		}
	}
	return []em.DomainSpec{
		{Name: "LITTLE", CoreIDs: []int{0, 1}, Table: little, Params: params(1.0e-10)},
		{Name: "big", CoreIDs: []int{2, 3}, Table: big, Params: params(2.0e-10)},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := em.New(nil); err == nil {
		t.Error("empty spec list accepted")
	}
	specs := testSpecs(t)
	specs[1].CoreIDs = []int{1, 2} // overlaps domain 0
	if _, err := em.New(specs); err == nil {
		t.Error("overlapping core ids accepted")
	}
	specs = testSpecs(t)
	specs[0].CoreIDs = []int{0, 3} // together with {2,4} this leaves core 1 unowned
	specs[1].CoreIDs = []int{2, 4}
	if _, err := em.New(specs); err == nil {
		t.Error("core ownership gap accepted")
	}
	specs = testSpecs(t)
	specs[0].Params.CeffFarads = -1
	if _, err := em.New(specs); err == nil {
		t.Error("invalid power params accepted")
	}
}

func TestDomainTables(t *testing.T) {
	m, err := em.New(testSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDomains() != 2 || m.NumCores() != 4 {
		t.Fatalf("domains=%d cores=%d, want 2/4", m.NumDomains(), m.NumCores())
	}
	for id, want := range []int{0, 0, 1, 1} {
		if got := m.DomainOf(id); got != want {
			t.Errorf("DomainOf(%d) = %d, want %d", id, got, want)
		}
	}
	if m.DomainOf(-1) != -1 || m.DomainOf(99) != -1 {
		t.Error("out-of-range DomainOf should return -1")
	}
	little := m.Domain(0)
	if little.Capacity() != 1000e6 {
		t.Errorf("LITTLE capacity = %v, want 1e9", little.Capacity())
	}
	// Cost tables must agree with the power model evaluated directly.
	pm := little.Model()
	for i := 0; i < little.NumOPPs(); i++ {
		opp := little.Table().At(i)
		want := pm.CoreWatts(soc.StateActive, opp, 1) / float64(opp.Freq)
		if got := little.CostPerCycleAt(i); math.Abs(got-want) > 1e-18 {
			t.Errorf("OPP %d cost %v, want %v", i, got, want)
		}
	}
	// Cost per cycle rises with frequency on a convex ladder.
	for i := 1; i < little.NumOPPs(); i++ {
		if little.CostPerCycleAt(i) <= little.CostPerCycleAt(i-1) {
			t.Errorf("cost not increasing at OPP %d", i)
		}
	}
}

func TestOPPForRate(t *testing.T) {
	m, err := em.New(testSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	d := m.Domain(0) // ladder 400/700/1000 MHz
	cases := []struct {
		rate float64
		want int
	}{
		{0, 0}, {100e6, 0}, {400e6, 0}, {401e6, 1}, {700e6, 1}, {900e6, 2}, {5e9, 2},
	}
	for _, c := range cases {
		if got := d.OPPForRate(c.rate); got != c.want {
			t.Errorf("OPPForRate(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestWattsForDemand(t *testing.T) {
	m, err := em.New(testSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	d := m.Domain(0)
	w1, met := d.WattsForDemand(500e6, 2)
	if !met {
		t.Error("500 MHz demand on 2×1GHz cores reported unmet")
	}
	if w1 <= 0 {
		t.Errorf("watts = %v, want positive", w1)
	}
	_, met = d.WattsForDemand(3e9, 2)
	if met {
		t.Error("3 GHz demand on 2×1GHz cores reported met")
	}
	// More demand on the same core count costs more.
	w2, _ := d.WattsForDemand(900e6, 2)
	if w2 <= w1 {
		t.Errorf("watts(900M)=%v not above watts(500M)=%v", w2, w1)
	}
}

func TestEfficiencyOrder(t *testing.T) {
	m, err := em.New(testSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	order := m.EfficiencyOrder()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("efficiency order = %v, want [0 1]", order)
	}
	// Low rates are cheapest on the LITTLE domain, high rates on big —
	// the comparison the placer makes through EnergyPerCycle.
	if l, b := m.Domain(0).EnergyPerCycle(300e6), m.Domain(1).EnergyPerCycle(300e6); l >= b {
		t.Errorf("LITTLE %.3g J/cycle not below big %.3g at 300 MHz", l, b)
	}
}

// TestSD855Crossover locks the convexity crossover the EAS placer exploits:
// on the three-cluster profile a cycle at the top of the silver ladder
// costs more than the same cycle on a gold core at the OPP serving the same
// rate.
func TestSD855Crossover(t *testing.T) {
	m, err := platform.SD855().EnergyModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDomains() != 3 {
		t.Fatalf("domains = %d, want 3", m.NumDomains())
	}
	silver, gold := m.Domain(0), m.Domain(1)
	rate := silver.Capacity() * 0.98 // just under the silver ceiling
	if s, g := silver.EnergyPerCycle(rate), gold.EnergyPerCycle(rate); s <= g {
		t.Errorf("silver top %.3g J/cycle not above gold %.3g — the crossover the EAS placer needs", s, g)
	}
	// At modest rates the efficiency island must win again.
	low := 400e6
	if s, g := silver.EnergyPerCycle(low), gold.EnergyPerCycle(low); s >= g {
		t.Errorf("silver %.3g J/cycle not below gold %.3g at 400 MHz", s, g)
	}
}
