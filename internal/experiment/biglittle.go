package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/cpufreq"
	"mobicore/internal/fleet"
	"mobicore/internal/games"
	"mobicore/internal/hotplug"
	"mobicore/internal/metrics"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/soc"
)

// BigLittleRow is one policy's session on the big.LITTLE platform.
type BigLittleRow struct {
	Policy   string
	AvgW     float64
	AvgFPS   float64
	AvgUtil  float64
	Clusters []BigLittleClusterRow
}

// BigLittleClusterRow is one cluster's share of a session.
type BigLittleClusterRow struct {
	Name       string
	AvgFreqHz  float64
	AvgCores   float64
	FreqSeries metrics.Series
	CoreSeries metrics.Series
}

// BigLittleResult extends the thesis' evaluation past its 2014-era
// handsets: MobiCore against three stock governor stacks on a Snapdragon
// 810-class 4×A57+4×A53 device under a gaming workload, with per-cluster
// frequency and online-core traces.
type BigLittleResult struct {
	Game string
	Rows []BigLittleRow
	// CrossSeed carries the distribution block (per-policy mean ± 95% CI
	// and paired MobiCore-vs-governor deltas) when run at Options.Seeds
	// > 1; nil on single-seed runs. The Rows always describe the first
	// seed, so single-seed output is unchanged.
	CrossSeed *CrossSeedStats
}

// ID implements Result.
func (*BigLittleResult) ID() string { return "biglittle" }

// Title implements Result.
func (*BigLittleResult) Title() string {
	return "big.LITTLE extension: MobiCore vs stock governors on a Snapdragon 810-class device"
}

// WriteText implements Result.
func (r *BigLittleResult) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "game: %s\n", r.Game)
	fmt.Fprintf(w, "%-18s %10s %8s %8s", "policy", "avg mW", "fps", "util%")
	for _, cl := range r.Rows[0].Clusters {
		fmt.Fprintf(w, " %14s %10s", cl.Name+" freq", cl.Name+" cores")
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %10.1f %8.1f %8.1f", row.Policy, row.AvgW*1000, row.AvgFPS, row.AvgUtil*100)
		for _, cl := range row.Clusters {
			fmt.Fprintf(w, " %14v %10.2f", soc.Hz(cl.AvgFreqHz), cl.AvgCores)
		}
		fmt.Fprintln(w)
	}
	// Per-cluster frequency/online traces, downsampled to ~12 points so
	// the text output stays a figure rather than a dump.
	for _, row := range r.Rows {
		for _, cl := range row.Clusters {
			fmt.Fprintf(w, "%s / %s: freq MHz %s | cores %s\n",
				row.Policy, cl.Name,
				sparkline(cl.FreqSeries, 1e6), sparkline(cl.CoreSeries, 1))
		}
	}
	return r.CrossSeed.writeText(w)
}

// sparkline renders up to 12 evenly spaced samples of a series, scaled.
func sparkline(s metrics.Series, scale float64) string {
	n := s.Len()
	if n == 0 {
		return "[]"
	}
	step := n / 12
	if step < 1 {
		step = 1
	}
	out := "["
	for i := 0; i < n; i += step {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.0f", s.At(i).Value/scale)
	}
	return out + "]"
}

// bigLittlePolicies enumerates the compared stacks as fleet policy
// factories, in report order: the clustered MobiCore and three stock
// governors, each run per cluster as an independent cpufreq policy domain
// with the global load hotplug.
func bigLittlePolicies() []fleet.PolicyFactory {
	factories := []fleet.PolicyFactory{{Name: "mobicore", New: clusteredMobicoreManager}}
	for _, gov := range []string{"ondemand", "interactive", "schedutil"} {
		gov := gov
		factories = append(factories, fleet.PolicyFactory{
			Name: gov,
			New:  func(p platform.Platform) (policy.Manager, error) { return clusteredGovernorManager(p, gov) },
		})
	}
	return factories
}

// RunBigLittle plays a 2-minute Real Racing 3 session per policy on the
// Nexus 6P profile and reports power, FPS, and per-cluster traces. The
// policy comparison is declared as a fleet.Spec and runs on the batch
// driver's worker pool (Options.Parallel).
func RunBigLittle(opt Options) (Result, error) {
	prof := games.RealRacing3()
	fres, err := runFleet(fleet.Spec{
		Platforms: []platform.Platform{platform.Nexus6P()},
		Policies:  bigLittlePolicies(),
		Workloads: []fleet.WorkloadFactory{gameFactory(prof)},
		Seeds:     opt.seedList(),
		Duration:  opt.dur(120 * time.Second),
	}, opt)
	if err != nil {
		return nil, fmt.Errorf("biglittle: %w", err)
	}
	res := &BigLittleResult{Game: prof.Name, CrossSeed: crossSeed(fres, opt)}
	for _, c := range fres.Cells {
		if c.Seed != opt.Seed {
			continue // rows describe the first seed; stats cover the rest
		}
		rep := c.Report
		row := BigLittleRow{
			Policy:  c.Policy,
			AvgW:    rep.AvgPowerW,
			AvgFPS:  c.AvgFPS,
			AvgUtil: rep.AvgUtil,
		}
		for ci, cn := range rep.ClusterNames {
			row.Clusters = append(row.Clusters, BigLittleClusterRow{
				Name:       cn,
				AvgFreqHz:  rep.AvgClusterFreqHz[ci],
				AvgCores:   rep.AvgClusterCores[ci],
				FreqSeries: rep.ClusterFreqSeries[ci],
				CoreSeries: rep.ClusterCoreSeries[ci],
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// clusteredMobicoreManager builds the per-cluster MobiCore with each
// domain's calibrated energy model attached.
func clusteredMobicoreManager(plat platform.Platform) (policy.Manager, error) {
	return core.NewClusteredForPlatform(plat, core.DefaultTunables(), core.DefaultClusterTunables(), true)
}

// clusteredGovernorManager builds "<gov>+load" with one governor instance
// per cluster.
func clusteredGovernorManager(plat platform.Platform, gov string) (policy.Manager, error) {
	plug, err := hotplug.NewLoad(hotplug.DefaultLoadTunables())
	if err != nil {
		return nil, err
	}
	return policy.ComposeClustered(gov,
		func(t *soc.OPPTable) (cpufreq.Governor, error) { return cpufreq.New(gov, t) },
		plug, plat.ClusterTables())
}
