package experiment

import (
	"strings"
	"testing"
)

func TestRunBigLittle(t *testing.T) {
	res, err := Run("biglittle", Options{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	bl, ok := res.(*BigLittleResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if len(bl.Rows) != 4 {
		t.Fatalf("rows = %d, want mobicore + 3 governors", len(bl.Rows))
	}
	if bl.Rows[0].Policy != "mobicore" {
		t.Errorf("first row = %s, want mobicore", bl.Rows[0].Policy)
	}
	for _, row := range bl.Rows {
		if len(row.Clusters) != 2 {
			t.Fatalf("%s: clusters = %d, want 2", row.Policy, len(row.Clusters))
		}
		if row.AvgW <= 0 {
			t.Errorf("%s: no power recorded", row.Policy)
		}
		for _, cl := range row.Clusters {
			if cl.FreqSeries.Len() == 0 || cl.CoreSeries.Len() == 0 {
				t.Errorf("%s/%s: empty per-cluster series", row.Policy, cl.Name)
			}
		}
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mobicore", "ondemand", "interactive", "schedutil", "LITTLE", "big"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

// TestBigLittleDeterministic: the experiment itself is a pure function of
// its options.
func TestBigLittleDeterministic(t *testing.T) {
	opt := Options{Scale: 0.05, Seed: 7}
	a, err := RunBigLittle(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBigLittle(opt)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.(*BigLittleResult), b.(*BigLittleResult)
	for i := range ra.Rows {
		if ra.Rows[i].AvgW != rb.Rows[i].AvgW || ra.Rows[i].AvgFPS != rb.Rows[i].AvgFPS {
			t.Errorf("%s: equal seeds diverged", ra.Rows[i].Policy)
		}
	}
}
