package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/platform"
	"mobicore/internal/scenario"
	"mobicore/internal/workload"
)

// DayInLifeRow is one policy stack's day-in-the-life session.
type DayInLifeRow struct {
	Policy   string
	AvgW     float64
	EnergyJ  float64
	AvgGHz   float64
	AvgCores float64
	GCycles  float64
}

// DayInLifeResult compares MobiCore against the stock baseline and the two
// blunt policies real phones actually ship — userspace min=max frequency
// pinning and load-threshold core offlining — across a phase-switching
// synthetic user: interactive bursts, app switches, steady foreground,
// screen-off idle, background wakeups. The scenario is drawn live from each
// cell's session rng, so the seed axis fans the matrix out into distinct
// synthetic users while keeping every cell replayable from its recorded
// trace.
type DayInLifeResult struct {
	Profile  string
	Duration time.Duration
	Rows     []DayInLifeRow
	// CrossSeed carries the distribution block when run at
	// Options.Seeds > 1; nil on single-seed runs.
	CrossSeed *CrossSeedStats
}

// ID implements Result.
func (*DayInLifeResult) ID() string { return "dayinlife" }

// Title implements Result.
func (*DayInLifeResult) Title() string {
	return "day in the life: phase-switching user model vs pinning and offlining policies"
}

// WriteText implements Result.
func (r *DayInLifeResult) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "profile: %s, session: %v\n", r.Profile, r.Duration)
	fmt.Fprintf(w, "%-22s %10s %10s %8s %8s %10s\n",
		"policy", "avg mW", "energy J", "avg GHz", "cores", "Gcycles")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s %10.1f %10.2f %8.3f %8.2f %10.2f\n",
			row.Policy, row.AvgW*1000, row.EnergyJ, row.AvgGHz, row.AvgCores, row.GCycles)
	}
	return r.CrossSeed.writeText(w)
}

// scenarioUserFactory builds a fresh generator-mode scenario workload per
// fleet cell: the phase walk draws from the cell's session rng, so every
// seed is a different synthetic user, deterministically.
func scenarioUserFactory(prof scenario.Profile) fleet.WorkloadFactory {
	return fleet.WorkloadFactory{
		Name: "scenario-" + prof.Name,
		New: func() ([]workload.Workload, error) {
			w, err := scenario.FromProfile(prof)
			if err != nil {
				return nil, err
			}
			return []workload.Workload{w}, nil
		},
	}
}

// dayInLifePolicies enumerates the compared stacks in report order: the
// paper's contribution, the Android baseline, and the two hand-tuned
// alternatives the scenario harness exists to rank — max-frequency pinning
// with hotplug disabled (mpdecision style) and ondemand with the
// load-packing offliner.
func dayInLifePolicies() []fleet.PolicyFactory {
	return []fleet.PolicyFactory{
		fleet.Policy("mobicore"),
		fleet.Policy("android-default"),
		fleet.Policy("pin-max+mpdecision"),
		fleet.Policy("ondemand+offline"),
	}
}

// RunDayInLife plays a day-in-the-life scenario (paper timing: 2 minutes)
// per policy stack on the Nexus 5 profile and reports power, energy, and
// the frequency/core residency each stack settled into.
func RunDayInLife(opt Options) (Result, error) {
	prof := scenario.DayInTheLife()
	dur := opt.dur(2 * time.Minute)
	fres, err := runFleet(fleet.Spec{
		Platforms: []platform.Platform{platform.Nexus5()},
		Policies:  dayInLifePolicies(),
		Workloads: []fleet.WorkloadFactory{scenarioUserFactory(prof)},
		Seeds:     opt.seedList(),
		Duration:  dur,
	}, opt)
	if err != nil {
		return nil, fmt.Errorf("dayinlife: %w", err)
	}
	res := &DayInLifeResult{Profile: prof.Name, Duration: dur, CrossSeed: crossSeed(fres, opt)}
	for _, c := range fres.Cells {
		if c.Seed != opt.Seed {
			continue // rows describe the first seed; stats cover the rest
		}
		rep := c.Report
		res.Rows = append(res.Rows, DayInLifeRow{
			Policy:   c.Policy,
			AvgW:     rep.AvgPowerW,
			EnergyJ:  rep.EnergyJ,
			AvgGHz:   float64(rep.AvgFreqHz) / 1e9,
			AvgCores: rep.AvgOnlineCores,
			GCycles:  rep.ExecutedCycles / 1e9,
		})
	}
	return res, nil
}
