package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/games"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/sim"
)

// EASPlaceRow is one (platform, workload, placer) session.
type EASPlaceRow struct {
	Platform string
	Workload string
	Placer   string
	AvgW     float64
	EnergyJ  float64
	AvgFPS   float64
	DropRate float64
	// Per-cluster energy attribution, indexed like ClusterNames.
	ClusterNames   []string
	ClusterEnergyJ []float64
}

// EASPlaceResult compares the greedy and EAS placers head to head on the
// heterogeneous profiles: same platform, same policy stack, same workload
// and seed — only the scheduler's placement rule differs. The interesting
// sessions are the ones where demand sits in the convexity-crossover
// region (arXiv:1401.4655): a mid-rate thread near the silver/LITTLE
// ladder's top costs more energy per cycle there than on a bigger cluster's
// low bins, which LITTLE-first greedy placement cannot see and EAS
// placement exploits. The per-cluster energy attribution shows where each
// placer actually spent the joules.
type EASPlaceResult struct {
	Rows []EASPlaceRow
	// CrossSeed carries the distribution block (per-cell mean ± 95% CI
	// and paired eas-vs-greedy deltas on matched seeds) when run at
	// Options.Seeds > 1; nil on single-seed runs.
	CrossSeed *CrossSeedStats
}

// ID implements Result.
func (*EASPlaceResult) ID() string { return "easplace" }

// Title implements Result.
func (*EASPlaceResult) Title() string {
	return "EAS placement: greedy vs energy-aware scheduling on heterogeneous profiles"
}

// WriteText implements Result.
func (r *EASPlaceResult) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-16s %-16s %-8s %10s %10s %8s %8s\n",
		"platform", "workload", "placer", "avg mW", "energy J", "fps", "drop%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %-16s %-8s %10.1f %10.2f %8.1f %8.1f\n",
			row.Platform, row.Workload, row.Placer, row.AvgW*1000, row.EnergyJ,
			row.AvgFPS, row.DropRate*100)
	}
	// Energy attribution: which cluster each placer burned the joules on.
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s / %s / %s:", row.Platform, row.Workload, row.Placer)
		for ci, name := range row.ClusterNames {
			fmt.Fprintf(w, " %s %.2f J", name, row.ClusterEnergyJ[ci])
		}
		fmt.Fprintln(w)
	}
	return r.CrossSeed.writeText(w)
}

// easplacePlatforms lists the heterogeneous profiles under comparison: the
// two-cluster big.LITTLE part and the three-cluster prime-core part.
func easplacePlatforms() []platform.Platform {
	return []platform.Platform{platform.Nexus6P(), platform.SD855()}
}

// easplaceGames lists the compared workloads: a heavy racing title whose
// render loop saturates a performance core, and a lighter puzzle title
// whose threads sit squarely in the convexity-crossover region.
func easplaceGames() []games.Profile {
	return []games.Profile{games.RealRacing3(), games.AngryBirds()}
}

// RunEASPlace plays each workload on each heterogeneous platform twice —
// once per placer — under the same per-cluster schedutil+load stack, and
// reports energy, FPS, and per-cluster energy attribution. The matrix is
// declared as a fleet.Spec, so sessions run on the batch driver's worker
// pool (Options.Parallel) while the rows keep the platform → workload →
// placer declaration order.
func RunEASPlace(opt Options) (Result, error) {
	workloads := make([]fleet.WorkloadFactory, 0, 2)
	for _, prof := range easplaceGames() {
		workloads = append(workloads, gameFactory(prof))
	}
	fres, err := runFleet(fleet.Spec{
		Platforms: easplacePlatforms(),
		Policies: []fleet.PolicyFactory{{
			Name: "schedutil",
			New: func(p platform.Platform) (policy.Manager, error) {
				return clusteredGovernorManager(p, "schedutil")
			},
		}},
		Workloads: workloads,
		Placers:   []string{sim.PlacerGreedy, sim.PlacerEAS},
		Seeds:     opt.seedList(),
		Duration:  opt.dur(60 * time.Second),
	}, opt)
	if err != nil {
		return nil, fmt.Errorf("easplace: %w", err)
	}
	res := &EASPlaceResult{CrossSeed: crossSeed(fres, opt)}
	for _, c := range fres.Cells {
		if c.Seed != opt.Seed {
			continue // rows describe the first seed; stats cover the rest
		}
		res.Rows = append(res.Rows, EASPlaceRow{
			Platform:       c.Platform,
			Workload:       c.Workload,
			Placer:         c.Placer,
			AvgW:           c.Report.AvgPowerW,
			EnergyJ:        c.Report.EnergyJ,
			AvgFPS:         c.AvgFPS,
			DropRate:       c.DropRate,
			ClusterNames:   c.Report.ClusterNames,
			ClusterEnergyJ: c.Report.ClusterEnergyJ,
		})
	}
	return res, nil
}
