package experiment

import (
	"sort"
	"strings"
	"testing"
)

// TestIDsNaturalOrder: `mobibench list` and `all` must follow the paper's
// numbering — fig2 before fig10, which plain ASCII sorting gets wrong.
func TestIDsNaturalOrder(t *testing.T) {
	ids := IDs()
	pos := func(id string) int {
		for i, v := range ids {
			if v == id {
				return i
			}
		}
		t.Fatalf("id %q missing from IDs()", id)
		return -1
	}
	ordered := []string{"fig1", "fig2", "fig3", "fig9a", "fig9b", "fig10", "fig13"}
	for i := 1; i < len(ordered); i++ {
		if pos(ordered[i-1]) >= pos(ordered[i]) {
			t.Errorf("%s (at %d) should precede %s (at %d): %v",
				ordered[i-1], pos(ordered[i-1]), ordered[i], pos(ordered[i]), ids)
		}
	}
	if pos("easplace") < 0 || pos("table1") >= pos("table2") {
		t.Errorf("registry order broken: %v", ids)
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return naturalLess(ids[i], ids[j]) }) {
		t.Errorf("IDs() not naturally sorted: %v", ids)
	}
}

func TestNaturalLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"fig2", "fig10", true},
		{"fig10", "fig2", false},
		{"fig9a", "fig10", true},
		{"fig9a", "fig9b", true},
		{"fig1", "fig1", false},
		{"fig01", "fig1", false}, // leading zeros tie numerically: equal rank
		{"fig1", "fig01", false},
		{"a", "b", true},
		{"table1", "table2", true},
		{"biglittle", "easplace", true},
	}
	for _, c := range cases {
		if got := naturalLess(c.a, c.b); got != c.want {
			t.Errorf("naturalLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestRunEASPlace runs the placement comparison at test scale and asserts
// the acceptance property: on each heterogeneous platform at least one
// workload has the EAS placer using no more energy than the greedy at
// equal-or-better FPS.
func TestRunEASPlace(t *testing.T) {
	res, err := Run("easplace", Options{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ep, ok := res.(*EASPlaceResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if len(ep.Rows) != 8 {
		t.Fatalf("rows = %d, want 2 platforms x 2 workloads x 2 placers", len(ep.Rows))
	}
	// Pair up (platform, workload) rows: greedy first, then eas.
	type pair struct{ greedy, eas *EASPlaceRow }
	pairs := map[string]*pair{}
	for i := range ep.Rows {
		row := &ep.Rows[i]
		key := row.Platform + "/" + row.Workload
		p := pairs[key]
		if p == nil {
			p = &pair{}
			pairs[key] = p
		}
		switch row.Placer {
		case "greedy":
			p.greedy = row
		case "eas":
			p.eas = row
		default:
			t.Fatalf("unknown placer %q", row.Placer)
		}
	}
	wins := map[string]bool{}
	for key, p := range pairs {
		if p.greedy == nil || p.eas == nil {
			t.Fatalf("%s missing a placer row", key)
		}
		if len(p.eas.ClusterEnergyJ) < 2 {
			t.Errorf("%s: no per-cluster energy attribution", key)
		}
		if p.eas.EnergyJ <= p.greedy.EnergyJ*(1+1e-9) && p.eas.AvgFPS >= p.greedy.AvgFPS-0.05 {
			wins[p.eas.Platform] = true
		}
	}
	for _, plat := range []string{"Nexus 6P", "Snapdragon 855"} {
		if !wins[plat] {
			t.Errorf("%s: no workload where EAS used no more energy at equal-or-better FPS", plat)
		}
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"greedy", "eas", "Snapdragon 855", "silver", "prime"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
	if err := (&EASPlaceResult{}).WriteText(&sb); err == nil {
		t.Error("empty result rendered without error")
	}
}

// TestEASPlaceDeterministic: the experiment is a pure function of its
// options.
func TestEASPlaceDeterministic(t *testing.T) {
	opt := Options{Scale: 0.02, Seed: 9}
	a, err := RunEASPlace(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEASPlace(opt)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.(*EASPlaceResult), b.(*EASPlaceResult)
	for i := range ra.Rows {
		if ra.Rows[i].EnergyJ != rb.Rows[i].EnergyJ || ra.Rows[i].AvgFPS != rb.Rows[i].AvgFPS {
			t.Errorf("%s/%s/%s: equal seeds diverged",
				ra.Rows[i].Platform, ra.Rows[i].Workload, ra.Rows[i].Placer)
		}
	}
}
