package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/games"
	"mobicore/internal/geekbench"
	"mobicore/internal/metrics"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/workload"
)

// Fig9aRow compares the two policies at one utilization point of the
// hand-written benchmark.
type Fig9aRow struct {
	Util        float64
	DefaultW    float64
	MobiCoreW   float64
	SavingsFrac float64
}

// Fig9aResult reproduces Figure 9(a): power on the hand-written benchmark,
// MobiCore vs the Android default, utilization 10–100%.
type Fig9aResult struct {
	Rows []Fig9aRow
}

// ID implements Result.
func (*Fig9aResult) ID() string { return "fig9a" }

// Title implements Result.
func (*Fig9aResult) Title() string {
	return "Figure 9a: Power consumption on the hand-written benchmark (MobiCore vs Android default)"
}

// WriteText implements Result.
func (r *Fig9aResult) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%6s %12s %12s %9s\n", "util%", "default mW", "mobicore mW", "saving%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6.0f %12.1f %12.1f %9.1f\n",
			row.Util*100, row.DefaultW*1000, row.MobiCoreW*1000, row.SavingsFrac*100)
	}
	fmt.Fprintf(w, "average saving: %.1f%%\n", r.AverageSavings()*100)
	return nil
}

// AverageSavings returns the mean saving across utilization points (the
// paper reports 13.9%).
func (r *Fig9aResult) AverageSavings() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, row := range r.Rows {
		sum += row.SavingsFrac
	}
	return sum / float64(len(r.Rows))
}

// RunFig9a sweeps the kernel app 10–100% under both policies.
func RunFig9a(opt Options) (Result, error) {
	plat := platform.Nexus5()
	res := &Fig9aResult{}
	for util := 0.1; util <= 1.001; util += 0.1 {
		defMgr, err := defaultManager(plat.Table)
		if err != nil {
			return nil, fmt.Errorf("fig9a: %w", err)
		}
		mobMgr, err := mobicoreManager(plat)
		if err != nil {
			return nil, fmt.Errorf("fig9a: %w", err)
		}
		var watts [2]float64
		for i, mgr := range []policyManager{defMgr, mobMgr} {
			wl, err := utilLoop(util, plat.NumCores, plat.Table.Max().Freq)
			if err != nil {
				return nil, fmt.Errorf("fig9a: %w", err)
			}
			rep, err := session(plat, mgr, []workload.Workload{wl}, opt.dur(60*time.Second), opt.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig9a u=%.1f %s: %w", util, mgr.Name(), err)
			}
			watts[i] = rep.AvgPowerW
		}
		res.Rows = append(res.Rows, Fig9aRow{
			Util:        util,
			DefaultW:    watts[0],
			MobiCoreW:   watts[1],
			SavingsFrac: -metrics.RelativeChange(watts[0], watts[1]),
		})
	}
	return res, nil
}

// Fig9bResult reproduces Figure 9(b): the GeekBench-style comparison.
type Fig9bResult struct {
	DefaultScore   float64
	MobiCoreScore  float64
	DefaultW       float64
	MobiCoreW      float64
	EfficiencyGain float64 // score-per-watt improvement of MobiCore
}

// ID implements Result.
func (*Fig9bResult) ID() string { return "fig9b" }

// Title implements Result.
func (*Fig9bResult) Title() string {
	return "Figure 9b: GeekBench-style benchmark under MobiCore vs Android default"
}

// PowerSavings returns MobiCore's power reduction during the benchmark —
// the reading §6.4 gives Figure 9b ("23% power savings").
func (r *Fig9bResult) PowerSavings() float64 {
	if r.DefaultW == 0 {
		return 0
	}
	return 1 - r.MobiCoreW/r.DefaultW
}

// WriteText implements Result.
func (r *Fig9bResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %10s %10s %12s\n", "policy", "score", "avg mW", "score/W")
	fmt.Fprintf(w, "%-10s %10.0f %10.1f %12.0f\n", "default", r.DefaultScore, r.DefaultW*1000, r.DefaultScore/r.DefaultW)
	fmt.Fprintf(w, "%-10s %10.0f %10.1f %12.0f\n", "mobicore", r.MobiCoreScore, r.MobiCoreW*1000, r.MobiCoreScore/r.MobiCoreW)
	fmt.Fprintf(w, "power saving: %.1f%% (paper §6.4: ≈23%%); efficiency gain: %.1f%%\n",
		r.PowerSavings()*100, r.EfficiencyGain*100)
	return nil
}

// RunFig9b runs the benchmark suite to completion under both policies and
// compares score, power, and score-per-watt. The thesis reports MobiCore
// "outperforms the Android default policy by almost 23%", interpreted in
// §6.4 as the efficiency (power-normalized) result.
func RunFig9b(opt Options) (Result, error) {
	plat := platform.Nexus5()
	iterations := int(3 * opt.scale())
	if iterations < 1 {
		iterations = 1
	}
	type outcome struct {
		score float64
		watts float64
	}
	runOne := func(mobicore bool) (outcome, error) {
		var mgr policyManager
		var err error
		if mobicore {
			mgr, err = mobicoreManager(plat)
		} else {
			mgr, err = defaultManager(plat.Table)
		}
		if err != nil {
			return outcome{}, err
		}
		run, err := geekbench.NewRun(geekbench.StandardSuite(), plat.Table, plat.NumCores, iterations)
		if err != nil {
			return outcome{}, err
		}
		s, err := newSim(plat, mgr, []workload.Workload{run}, opt.Seed)
		if err != nil {
			return outcome{}, err
		}
		rep, done, err := s.RunUntilDone(10 * time.Minute)
		if err != nil {
			return outcome{}, err
		}
		if !done {
			return outcome{}, fmt.Errorf("benchmark did not finish within bound")
		}
		score, err := run.ScoreAfter(rep.Duration)
		if err != nil {
			return outcome{}, err
		}
		return outcome{score: score, watts: rep.AvgPowerW}, nil
	}
	def, err := runOne(false)
	if err != nil {
		return nil, fmt.Errorf("fig9b default: %w", err)
	}
	mob, err := runOne(true)
	if err != nil {
		return nil, fmt.Errorf("fig9b mobicore: %w", err)
	}
	return &Fig9bResult{
		DefaultScore:   def.score,
		MobiCoreScore:  mob.score,
		DefaultW:       def.watts,
		MobiCoreW:      mob.watts,
		EfficiencyGain: (mob.score/mob.watts)/(def.score/def.watts) - 1,
	}, nil
}

// GameRow is one game's full per-policy comparison — it feeds Figures 10,
// 11, 12, and 13, which are four views of the same five sessions.
type GameRow struct {
	Game string

	DefaultW  float64
	MobiCoreW float64

	DefaultFPS  float64
	MobiCoreFPS float64

	DefaultFreqHz  float64
	MobiCoreFreqHz float64

	DefaultCores  float64
	MobiCoreCores float64

	DefaultUtil  float64
	MobiCoreUtil float64
}

// SavingsFrac is the power saving of MobiCore for this game.
func (g GameRow) SavingsFrac() float64 {
	return -metrics.RelativeChange(g.DefaultW, g.MobiCoreW)
}

// FPSRatio is MobiCore FPS over default FPS.
func (g GameRow) FPSRatio() float64 {
	if g.DefaultFPS == 0 {
		return 0
	}
	return g.MobiCoreFPS / g.DefaultFPS
}

// FreqReductionFrac is the relative frequency reduction under MobiCore.
func (g GameRow) FreqReductionFrac() float64 {
	return -metrics.RelativeChange(g.DefaultFreqHz, g.MobiCoreFreqHz)
}

// LoadReduction is the absolute utilization reduction under MobiCore.
func (g GameRow) LoadReduction() float64 {
	return g.DefaultUtil - g.MobiCoreUtil
}

// runGames plays every title for the paper's 2-minute session under both
// policies. Results are cached per Options so Figures 10–13 share sessions.
func runGames(opt Options) ([]GameRow, error) {
	plat := platform.Nexus5()
	rows := make([]GameRow, 0, 5)
	for _, prof := range games.All() {
		row := GameRow{Game: prof.Name}
		for _, mobicore := range []bool{false, true} {
			var mgr policyManager
			var err error
			if mobicore {
				mgr, err = mobicoreManager(plat)
			} else {
				mgr, err = defaultManager(plat.Table)
			}
			if err != nil {
				return nil, fmt.Errorf("games %s: %w", prof.Name, err)
			}
			g, err := games.New(prof)
			if err != nil {
				return nil, fmt.Errorf("games %s: %w", prof.Name, err)
			}
			rep, err := session(plat, mgr, []workload.Workload{g}, opt.dur(120*time.Second), opt.Seed)
			if err != nil {
				return nil, fmt.Errorf("games %s: %w", prof.Name, err)
			}
			if mobicore {
				row.MobiCoreW = rep.AvgPowerW
				row.MobiCoreFPS = g.AvgFPS()
				row.MobiCoreFreqHz = rep.AvgFreqHz
				row.MobiCoreCores = rep.AvgOnlineCores
				row.MobiCoreUtil = rep.AvgUtil
			} else {
				row.DefaultW = rep.AvgPowerW
				row.DefaultFPS = g.AvgFPS()
				row.DefaultFreqHz = rep.AvgFreqHz
				row.DefaultCores = rep.AvgOnlineCores
				row.DefaultUtil = rep.AvgUtil
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// policyManager aliases the manager interface experiments drive.
type policyManager = policy.Manager
