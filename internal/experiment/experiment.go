// Package experiment regenerates every table and figure of the thesis'
// evaluation. Each experiment is a pure function from Options to a result
// struct that renders itself as text (the rows/series the paper plots);
// the registry maps the paper's numbering (table1, fig1 … fig13) to
// runners for cmd/mobibench and the root benchmark harness.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/fleet"
	"mobicore/internal/games"
	"mobicore/internal/natsort"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/sim"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// Options scale every experiment.
type Options struct {
	// Scale multiplies all session durations. 1.0 reproduces the paper's
	// timings (1-minute sweeps, 2-minute gaming sessions); tests and
	// benches use smaller values. Zero means 1.0.
	Scale float64
	// Seed drives workload randomness.
	Seed int64
	// Parallel bounds the fleet worker pool multi-cell experiments
	// (biglittle, easplace, sustained) run their sessions on; 0 means
	// GOMAXPROCS. Parallelism never changes results — each session owns
	// its rng and rows keep declaration order — only wall-clock time.
	Parallel int
	// Seeds runs the fleet-driven experiments (biglittle, easplace,
	// sustained) at this many consecutive seeds starting from Seed and
	// appends cross-seed statistics to the report: per-group mean ± 95%
	// CI and paired matched-seed deltas on the headline comparisons. 0 or
	// 1 keeps the single-seed output byte-identical to earlier releases.
	Seeds int
	// NoFuse disables the engine's quiescent-tick fast path in every
	// session (see sim.Config.NoFuse). Output is byte-identical either
	// way; the equivalence tests run each experiment both ways and
	// compare rendered reports.
	NoFuse bool
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// dur scales a paper-duration by the option scale, clamping to at least ten
// governor sampling periods so every run exercises the control loop.
func (o Options) dur(paper time.Duration) time.Duration {
	d := time.Duration(float64(paper) * o.scale())
	if min := 500 * time.Millisecond; d < min {
		d = min
	}
	return d
}

// Result is anything an experiment produces: a renderable set of rows.
type Result interface {
	// ID returns the paper item this reproduces (e.g. "fig9a").
	ID() string
	// Title returns the paper caption.
	Title() string
	// WriteText renders the rows as human-readable text.
	WriteText(w io.Writer) error
}

// Runner regenerates one paper item.
type Runner func(Options) (Result, error)

// registry maps experiment ids to runners. Populated by Register calls from
// Runners(); ids follow the paper's numbering.
func runners() map[string]Runner {
	return map[string]Runner{
		"biglittle": RunBigLittle,
		"dayinlife": RunDayInLife,
		"easplace":  RunEASPlace,
		"sustained": RunSustained,
		"table1":    RunTable1,
		"table2":    RunTable2,
		"static":    RunStaticAnchor,
		"fig1":      RunFig1,
		"fig2":      RunFig2,
		"fig3":      RunFig3,
		"fig4":      RunFig4,
		"fig5":      RunFig5,
		"fig6":      RunFig6,
		"fig7":      RunFig7,
		"fig9a":     RunFig9a,
		"fig9b":     RunFig9b,
		"fig10":     RunFig10,
		"fig11":     RunFig11,
		"fig12":     RunFig12,
		"fig13":     RunFig13,
	}
}

// IDs lists every experiment id in stable natural order: digit runs
// compare numerically, so fig2 precedes fig10 and `mobibench list`/`all`
// follow the paper's numbering instead of ASCII order.
func IDs() []string {
	m := runners()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	natsort.Strings(ids)
	return ids
}

// naturalLess is the shared natural id ordering (see internal/natsort).
func naturalLess(a, b string) bool { return natsort.Less(a, b) }

// Lookup resolves an experiment id.
func Lookup(id string) (Runner, error) {
	r, ok := runners()[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return r, nil
}

// Run executes one experiment by id.
func Run(id string, opt Options) (Result, error) {
	r, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return r(opt)
}

// --- shared helpers -------------------------------------------------------
//
// Every session an experiment runs is described by a sim.SessionSpec, the
// one construction path shared with the fleet driver — the helpers below
// are thin spellings of a spec, so sim.Config can grow fields without the
// experiment layer drifting.

// session runs one simulation to completion and returns its report.
func session(plat platform.Platform, mgr policy.Manager, wls []workload.Workload, d time.Duration, seed int64) (*sim.Report, error) {
	return sessionPlaced(plat, mgr, wls, d, seed, "")
}

// sessionPlaced is session with an explicit scheduler placement rule
// ("greedy" or "eas"; empty means the default greedy).
func sessionPlaced(plat platform.Platform, mgr policy.Manager, wls []workload.Workload, d time.Duration, seed int64, placer string) (*sim.Report, error) {
	return sim.SessionSpec{
		Platform:  plat,
		Manager:   mgr,
		Workloads: wls,
		Duration:  d,
		Seed:      seed,
		Placer:    placer,
	}.Run(context.Background())
}

// newSim builds a simulation without running it, for experiments that need
// mid-run access (FPS series, thermal zone).
func newSim(plat platform.Platform, mgr policy.Manager, wls []workload.Workload, seed int64) (*sim.Sim, error) {
	return sim.SessionSpec{
		Platform:  plat,
		Manager:   mgr,
		Workloads: wls,
		Seed:      seed,
	}.New()
}

// seedList expands Options into the fleet seed dimension: Seeds
// consecutive seeds from Seed (a single seed when Seeds <= 1).
func (o Options) seedList() []int64 {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = o.Seed + int64(i)
	}
	return out
}

// runFleet executes a declared fleet matrix with the option's parallelism
// and hands back the full result (cells in declaration order, cross-seed
// aggregates, paired comparisons).
func runFleet(spec fleet.Spec, opt Options) (*fleet.Result, error) {
	spec.Parallel = opt.Parallel
	spec.NoFuse = opt.NoFuse
	return fleet.Run(context.Background(), spec)
}

// CrossSeedStats is the distribution block a fleet-driven experiment
// carries when run at Options.Seeds > 1: each matrix group's cross-seed
// aggregates (mean ± stddev and the mean's 95% CI) plus the paired
// matched-seed deltas on the experiment's headline comparisons. Nil on
// single-seed runs, whose output stays byte-identical to earlier releases.
type CrossSeedStats struct {
	// Seeds is the seed count every group ran.
	Seeds int `json:"seeds"`
	// Aggregates holds one entry per matrix group, in first-cell order.
	Aggregates []fleet.Aggregate `json:"aggregates"`
	// Comparisons holds the paired deltas (policy vs policy, placer vs
	// placer) on matched seeds.
	Comparisons []fleet.Comparison `json:"comparisons"`
}

// crossSeed builds the stats block from a fleet result, nil unless the
// options asked for a multi-seed run.
func crossSeed(res *fleet.Result, opt Options) *CrossSeedStats {
	if opt.Seeds <= 1 {
		return nil
	}
	return &CrossSeedStats{
		Seeds:       opt.Seeds,
		Aggregates:  res.Aggregates,
		Comparisons: res.Comparisons,
	}
}

// writeText renders the stats block: per-group intervals first, then the
// paired deltas that answer "does A beat B, and by how much ± what".
func (cs *CrossSeedStats) writeText(w io.Writer) error {
	if cs == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "cross-seed statistics (%d seeds, mean ± stddev, 95%% CI):\n", cs.Seeds); err != nil {
		return err
	}
	for _, a := range cs.Aggregates {
		placer := a.Placer
		if placer == "" {
			placer = "greedy"
		}
		if _, err := fmt.Fprintf(w, "  %s / %s / %s / %s: energy %.4g ± %.3g J ci95 [%.4g, %.4g]",
			a.Platform, a.Policy, a.Workload, placer,
			a.EnergyJ.Mean, a.EnergyJ.StdDev, a.EnergyJ.CI95Lo, a.EnergyJ.CI95Hi); err != nil {
			return err
		}
		if a.HasFrames {
			if _, err := fmt.Fprintf(w, "; fps %.3g ci95 [%.3g, %.3g]",
				a.AvgFPS.Mean, a.AvgFPS.CI95Lo, a.AvgFPS.CI95Hi); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "; throttle %.3g s ci95 [%.3g, %.3g]\n",
			a.ThrottleSec.Mean, a.ThrottleSec.CI95Lo, a.ThrottleSec.CI95Hi); err != nil {
			return err
		}
	}
	if len(cs.Comparisons) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "paired deltas (B-A on matched seeds, 95% CI):"); err != nil {
		return err
	}
	for _, c := range cs.Comparisons {
		context := c.Placer
		if c.Dimension == "placer" {
			context = c.Policy
		}
		if _, err := fmt.Fprintf(w, "  %s / %s / %s: %s - %s: energy %+.4g J ci95 [%+.4g, %+.4g] (%+.1f%%)",
			c.Platform, c.Workload, context, c.B, c.A,
			c.EnergyJ.MeanDelta, c.EnergyJ.CI95Lo, c.EnergyJ.CI95Hi, c.EnergyJ.Rel*100); err != nil {
			return err
		}
		if c.HasFrames {
			if _, err := fmt.Fprintf(w, "; fps %+.3g ci95 [%+.3g, %+.3g]",
				c.AvgFPS.MeanDelta, c.AvgFPS.CI95Lo, c.AvgFPS.CI95Hi); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// gameFactory builds a fresh instance of one game profile per fleet cell.
func gameFactory(prof games.Profile) fleet.WorkloadFactory {
	return fleet.WorkloadFactory{
		Name: prof.Name,
		New: func() ([]workload.Workload, error) {
			g, err := games.New(prof)
			if err != nil {
				return nil, err
			}
			return []workload.Workload{g}, nil
		},
	}
}

// defaultManager builds the Android-default baseline (ondemand + load
// hotplug, mpdecision disabled).
func defaultManager(table *soc.OPPTable) (policy.Manager, error) {
	return policy.AndroidDefault(table)
}

// mobicoreManager builds the full MobiCore (energy-model guided).
func mobicoreManager(plat platform.Platform) (policy.Manager, error) {
	model, err := power.NewModel(plat.Power, plat.Table)
	if err != nil {
		return nil, err
	}
	return core.NewWithModel(plat.Table, core.DefaultTunables(), model)
}

// stressLoop builds a continuous full-utilization busy loop across n
// threads, the "highest computing state" stressor of §1.2.
func stressLoop(n int, ref soc.Hz) (workload.Workload, error) {
	return workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 1.0,
		Threads:    n,
		RefFreq:    ref,
	})
}

// utilLoop builds the §3.1 kernel app at a utilization target.
func utilLoop(util float64, threads int, ref soc.Hz) (workload.Workload, error) {
	return workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: util,
		Threads:    threads,
		RefFreq:    ref,
	})
}

// fiveBenchFreqs picks the "two low, two high, and one middle" frequencies
// of §3.1 from a table.
func fiveBenchFreqs(table *soc.OPPTable) []soc.Hz {
	n := table.Len()
	if n < 5 {
		return table.Frequencies()
	}
	idx := []int{0, 1, n / 2, n - 2, n - 1}
	out := make([]soc.Hz, 0, len(idx))
	for _, i := range idx {
		out = append(out, table.At(i).Freq)
	}
	return out
}

// errNoData guards renderers against empty results.
var errNoData = errors.New("experiment: no data")
