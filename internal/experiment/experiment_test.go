package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mobicore/internal/soc"
)

// quick shrinks sessions for test speed while keeping every experiment's
// control loop exercised.
var quick = Options{Scale: 0.05, Seed: 42}

// mid gives game/benchmark comparisons enough time to separate policies.
var mid = Options{Scale: 0.25, Seed: 42}

func TestIDsStableAndComplete(t *testing.T) {
	ids := IDs()
	// Natural order: figures follow the paper's numbering (fig2 before
	// fig10), named experiments sort lexically around them.
	want := []string{"biglittle", "dayinlife", "easplace", "fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig9a", "fig9b", "fig10", "fig11", "fig12", "fig13", "static", "sustained",
		"table1", "table2"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestEveryResultRenders(t *testing.T) {
	// Fast experiments only; the game/benchmark ones render via their
	// dedicated tests below.
	for _, id := range []string{"table1", "table2", "static", "fig6", "fig7"} {
		res, err := Run(id, quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID() != id {
			t.Errorf("result id = %q, want %q", res.ID(), id)
		}
		if res.Title() == "" {
			t.Errorf("%s: empty title", id)
		}
		var buf bytes.Buffer
		if err := res.WriteText(&buf); err != nil {
			t.Errorf("%s render: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", id)
		}
	}
}

func TestStaticAnchor(t *testing.T) {
	res, err := RunStaticAnchor(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*StaticAnchorResult)
	if math.Abs(r.FmaxLeakW-0.120) > 1e-6 || math.Abs(r.FminLeakW-0.047) > 1e-6 {
		t.Errorf("anchors = %.4f/%.4f, want 0.120/0.047", r.FmaxLeakW, r.FminLeakW)
	}
}

func TestTable2CoversBranches(t *testing.T) {
	res, err := RunTable2(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table2Result)
	seen := map[string]bool{}
	for _, s := range r.Steps {
		seen[s.Mode] = true
		if s.Quota <= 0 || s.Quota > 1 {
			t.Errorf("quota %v outside (0,1] at %v", s.Quota, s.At)
		}
		if s.Mode == "high" && s.Quota != 1 {
			t.Errorf("high mode quota = %v, want 1", s.Quota)
		}
		if s.Mode == "slow" && s.Quota >= 1 {
			t.Errorf("slow mode quota = %v, want < 1", s.Quota)
		}
	}
	for _, mode := range []string{"high", "slow", "fit", "burst"} {
		if !seen[mode] {
			t.Errorf("trace never exercised %s mode", mode)
		}
	}
}

// TestFig1Shape: power grows with core count across phone generations
// (§1.2: "total power consumption increases almost linearly with the
// number of CPU cores").
func TestFig1Shape(t *testing.T) {
	res, err := RunFig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig1Result)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	byCores := map[int][]float64{}
	for _, row := range r.Rows {
		byCores[row.Cores] = append(byCores[row.Cores], row.AvgPowerW)
	}
	max1 := maxOf(byCores[1])
	min4 := minOf(byCores[4])
	if min4 <= max1 {
		t.Errorf("quad-cores (min %.2f W) should exceed single-cores (max %.2f W)", min4, max1)
	}
}

// TestFig3Shape: power monotone in utilization at every frequency, and in
// frequency at full utilization; the f_max→f_min saving at 100% util is
// substantial (paper: up to 71.9%).
func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig3Result)
	byFreq := map[soc.Hz][]Fig3Cell{}
	for _, c := range r.Cells {
		byFreq[c.Freq] = append(byFreq[c.Freq], c)
	}
	if len(byFreq) != 5 {
		t.Fatalf("frequencies = %d, want the 5 benchmark points", len(byFreq))
	}
	for f, cells := range byFreq {
		for i := 1; i < len(cells); i++ {
			// Allow tiny non-monotonicity from sampling noise.
			if cells[i].AvgPowerW < cells[i-1].AvgPowerW*0.97 {
				t.Errorf("%v: power fell from %.3f to %.3f between util %.0f%%→%.0f%%",
					f, cells[i-1].AvgPowerW, cells[i].AvgPowerW,
					cells[i-1].Util*100, cells[i].Util*100)
			}
		}
	}
	// Frequency scaling saving at 100% utilization.
	var fullMin, fullMax float64
	for _, c := range r.Cells {
		if c.Util > 0.99 {
			if c.Freq == 300*soc.MHz {
				fullMin = c.AvgPowerW
			}
			if c.Freq == 2_265_600*soc.KHz {
				fullMax = c.AvgPowerW
			}
		}
	}
	saving := 1 - fullMin/fullMax
	if saving < 0.5 {
		t.Errorf("f_max→f_min saving at 100%% = %.0f%%, want substantial (paper 71.9%%)", saving*100)
	}
}

// TestFig4Shape: at the highest frequency, the marginal power of cores 3–4
// collapses relative to core 2 (thermal capping; paper: +28.3% then +7.7%).
func TestFig4Shape(t *testing.T) {
	res, err := RunFig4(Options{Scale: 1.0, Seed: 42}) // needs thermal steady state
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig4Result)
	at := map[int]float64{}
	throttled := false
	for _, c := range r.Cells {
		if c.Freq == 2_265_600*soc.KHz {
			at[c.Cores] = c.AvgPowerW
			throttled = throttled || c.Throttled
		}
	}
	if !throttled {
		t.Error("no thermal capping at f_max — the Fig. 4 mechanism is missing")
	}
	marginal2 := at[2] - at[1]
	marginal4 := at[4] - at[3]
	if marginal4 >= marginal2/2 {
		t.Errorf("marginal power: core2 %.3f W vs core4 %.3f W — want collapse at high cores",
			marginal2, marginal4)
	}
}

// TestFig5Shape: one core wins at 10% load; the model's optimum always
// serves the demand; predicted and measured power agree within 10%.
func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig5Result)
	for _, p := range r.Points {
		if p.MeasuredWatts <= 0 {
			t.Errorf("unmeasured point (%d,%v)", p.Cores, p.Freq)
			continue
		}
		rel := math.Abs(p.PredictedWatts-p.MeasuredWatts) / p.MeasuredWatts
		if rel > 0.10 {
			t.Errorf("model vs measurement at load %.0f%% (%d,%v): %.3f vs %.3f (%.0f%% off)",
				p.GlobalLoad*100, p.Cores, p.Freq, p.PredictedWatts, p.MeasuredWatts, rel*100)
		}
	}
	for _, p := range r.Points {
		if p.GlobalLoad == 0.10 && p.Optimal && p.Cores != 1 {
			t.Errorf("10%% load optimum uses %d cores, want 1 (Fig. 5a)", p.Cores)
		}
	}
}

// TestFig7Shape: the 4-core performance/power ratio peaks at a mid
// frequency and then falls (paper: peak near 960 MHz), while the 1-core
// curve keeps rising much longer.
func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig7Result)
	peak := r.PeakFreq4Core()
	if peak < 652_800*soc.KHz || peak > 1_497_600*soc.KHz {
		t.Errorf("4-core ratio peak at %v, want mid-range (paper ≈960 MHz)", peak)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Ratio4Core >= peakRatio(r) {
		t.Error("4-core ratio does not fall after its peak")
	}
}

func peakRatio(r *Fig7Result) float64 {
	best := 0.0
	for _, row := range r.Rows {
		if row.Ratio4Core > best {
			best = row.Ratio4Core
		}
	}
	return best
}

// TestFig9aShape is the headline: MobiCore saves power at every
// utilization point of the hand-written benchmark and never loses.
func TestFig9aShape(t *testing.T) {
	res, err := RunFig9a(mid)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig9aResult)
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 utilization points", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SavingsFrac < -0.02 {
			t.Errorf("MobiCore loses at %.0f%%: %.1f%%", row.Util*100, row.SavingsFrac*100)
		}
	}
	if avg := r.AverageSavings(); avg < 0.05 {
		t.Errorf("average saving = %.1f%%, want clearly positive (paper 13.9%%)", avg*100)
	}
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average saving") {
		t.Error("render missing summary line")
	}
}

func TestFig9bShape(t *testing.T) {
	res, err := RunFig9b(mid)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig9bResult)
	if r.MobiCoreW >= r.DefaultW {
		t.Errorf("MobiCore used more power (%.3f vs %.3f W) on the benchmark", r.MobiCoreW, r.DefaultW)
	}
	if r.PowerSavings() < 0.05 {
		t.Errorf("benchmark power saving = %.1f%%, want clearly positive (paper ≈23%%)", r.PowerSavings()*100)
	}
	if r.DefaultScore <= 0 || r.MobiCoreScore <= 0 {
		t.Error("scores missing")
	}
}

func maxOf(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		best = math.Max(best, x)
	}
	return best
}

func minOf(xs []float64) float64 {
	best := math.Inf(1)
	for _, x := range xs {
		best = math.Min(best, x)
	}
	return best
}
