package experiment

import (
	"bytes"
	"testing"
)

// TestFusedMatchesNoFuseOnGoldens locks the quiescent-tick fast path's
// identity contract at the experiment level: every ported experiment renders
// byte-identically with the memoized fast path enabled (the default) and
// disabled (NoFuse), at serial and parallel fleet drives alike. A divergence
// here means a memo replay produced different physics than the full per-tick
// pass it claimed to reproduce.
func TestFusedMatchesNoFuseOnGoldens(t *testing.T) {
	cases := []struct {
		id    string
		scale float64
	}{
		{"biglittle", 0.05},
		{"dayinlife", 0.05},
		{"easplace", 0.05},
		{"sustained", 0.2},
	}
	for _, c := range cases {
		for _, parallel := range []int{1, 8} {
			render := func(noFuse bool) []byte {
				t.Helper()
				res, err := Run(c.id, Options{Scale: c.scale, Seed: 42, Parallel: parallel, NoFuse: noFuse})
				if err != nil {
					t.Fatalf("%s (parallel %d, noFuse %v): %v", c.id, parallel, noFuse, err)
				}
				var buf bytes.Buffer
				if err := res.WriteText(&buf); err != nil {
					t.Fatalf("%s: rendering: %v", c.id, err)
				}
				return buf.Bytes()
			}
			fused, slow := render(false), render(true)
			if !bytes.Equal(fused, slow) {
				t.Errorf("%s (parallel %d): fused output diverged from NoFuse:\n--- fused ---\n%s\n--- nofuse ---\n%s",
					c.id, parallel, fused, slow)
			}
		}
	}
}
