package experiment

import (
	"bytes"
	"testing"
)

// gameRows runs the shared gaming sessions once for all Figure 10–13
// assertions (2-minute sessions scaled down 4×).
func gameRows(t *testing.T) []GameRow {
	t.Helper()
	rows, err := runGames(Options{Scale: 0.25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("game rows = %d, want 5", len(rows))
	}
	return rows
}

// TestGamesShape asserts the paper's per-game structure in one pass over
// shared sessions (Figures 10–13):
//
//   - MobiCore never consumes meaningfully more than the default (Fig. 10),
//   - Real Racing 3 is the minimal saving and the game where MobiCore's
//     average frequency is *higher* (§6.3's observation),
//   - FPS stays within a playable band of the default's (Fig. 11),
//   - average frequency reduction is positive overall (Fig. 12).
func TestGamesShape(t *testing.T) {
	rows := gameRows(t)
	byName := map[string]GameRow{}
	var avgSaving, avgFreqRed float64
	for _, g := range rows {
		byName[g.Game] = g
		avgSaving += g.SavingsFrac()
		avgFreqRed += g.FreqReductionFrac()

		if g.SavingsFrac() < -0.05 {
			t.Errorf("%s: MobiCore loses %.1f%% power", g.Game, -g.SavingsFrac()*100)
		}
		if ratio := g.FPSRatio(); ratio < 0.70 || ratio > 1.10 {
			t.Errorf("%s: FPS ratio %.2f outside the acceptable band (paper ≈0.78–1.0)", g.Game, ratio)
		}
	}
	avgSaving /= float64(len(rows))
	avgFreqRed /= float64(len(rows))

	if avgSaving < 0.02 {
		t.Errorf("average game saving = %.1f%%, want positive (paper 5.3%%)", avgSaving*100)
	}
	if avgFreqRed < 0.05 {
		t.Errorf("average frequency reduction = %.1f%%, want positive (paper 22.5%%)", avgFreqRed*100)
	}

	rr3 := byName["Real Racing 3"]
	for name, g := range byName {
		if name == "Real Racing 3" {
			continue
		}
		if g.SavingsFrac() < rr3.SavingsFrac()-0.01 {
			t.Errorf("%s saving %.1f%% below Real Racing 3's %.1f%% — RR3 should be the floor",
				name, g.SavingsFrac()*100, rr3.SavingsFrac()*100)
		}
	}
	if rr3.FreqReductionFrac() > 0.02 {
		t.Errorf("Real Racing 3 frequency reduction = %.1f%%, want ≈0 or negative (paper: 0.5%% higher)",
			rr3.FreqReductionFrac()*100)
	}

	subway := byName["Subway Surf"]
	if subway.SavingsFrac() < avgSaving {
		t.Errorf("Subway Surf saving %.1f%% below average %.1f%% — paper has it as the maximum",
			subway.SavingsFrac()*100, avgSaving*100)
	}
}

func TestGameFiguresRender(t *testing.T) {
	rows := gameRows(t)
	results := []Result{
		&Fig10Result{Rows: rows},
		&Fig11Result{Rows: rows},
		&Fig12Result{Rows: rows},
		&Fig13Result{Rows: rows},
	}
	for _, res := range results {
		var buf bytes.Buffer
		if err := res.WriteText(&buf); err != nil {
			t.Errorf("%s: %v", res.ID(), err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", res.ID())
		}
	}
	var empty Fig10Result
	if err := empty.WriteText(&bytes.Buffer{}); err == nil {
		t.Error("empty result should refuse to render")
	}
}
