package experiment

import (
	"fmt"
	"io"

	"mobicore/internal/soc"
)

// Fig10Result reproduces Figure 10: average power consumption per game.
type Fig10Result struct {
	Rows []GameRow
}

// ID implements Result.
func (*Fig10Result) ID() string { return "fig10" }

// Title implements Result.
func (*Fig10Result) Title() string {
	return "Figure 10: Average power consumption comparison across the five games"
}

// WriteText implements Result.
func (r *Fig10Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-16s %12s %12s %9s\n", "game", "default mW", "mobicore mW", "saving%")
	var sum float64
	for _, g := range r.Rows {
		fmt.Fprintf(w, "%-16s %12.1f %12.1f %9.2f\n",
			g.Game, g.DefaultW*1000, g.MobiCoreW*1000, g.SavingsFrac()*100)
		sum += g.SavingsFrac()
	}
	fmt.Fprintf(w, "average saving: %.1f%% (paper: 5.3%%, max 11.7%% on Subway Surf)\n",
		sum/float64(len(r.Rows))*100)
	return nil
}

// AverageSavings returns the mean power saving across games.
func (r *Fig10Result) AverageSavings() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, g := range r.Rows {
		sum += g.SavingsFrac()
	}
	return sum / float64(len(r.Rows))
}

// RunFig10 plays the five 2-minute gaming sessions under both policies.
func RunFig10(opt Options) (Result, error) {
	rows, err := runGames(opt)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// Fig11Result reproduces Figure 11: average FPS reached and FPS ratio.
type Fig11Result struct {
	Rows []GameRow
}

// ID implements Result.
func (*Fig11Result) ID() string { return "fig11" }

// Title implements Result.
func (*Fig11Result) Title() string { return "Figure 11: Average FPS reached and FPS ratio" }

// WriteText implements Result.
func (r *Fig11Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-16s %12s %12s %10s\n", "game", "default fps", "mobicore fps", "ratio")
	var sum float64
	for _, g := range r.Rows {
		fmt.Fprintf(w, "%-16s %12.1f %12.1f %10.2f\n",
			g.Game, g.DefaultFPS, g.MobiCoreFPS, g.FPSRatio())
		sum += g.FPSRatio()
	}
	fmt.Fprintf(w, "average ratio: %.2f (paper: MobiCore ≈22%% fewer FPS, still in the playable band)\n",
		sum/float64(len(r.Rows)))
	return nil
}

// RunFig11 reports the FPS view of the gaming sessions.
func RunFig11(opt Options) (Result, error) {
	rows, err := runGames(opt)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Rows: rows}, nil
}

// Fig12Result reproduces Figure 12: average frequency difference and
// number of cores.
type Fig12Result struct {
	Rows []GameRow
}

// ID implements Result.
func (*Fig12Result) ID() string { return "fig12" }

// Title implements Result.
func (*Fig12Result) Title() string {
	return "Figure 12: Average frequency difference and number of active cores"
}

// WriteText implements Result.
func (r *Fig12Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-16s %12s %12s %10s %10s %10s\n",
		"game", "default f", "mobicore f", "freq red%", "def cores", "mob cores")
	var fsum, dc, mc float64
	for _, g := range r.Rows {
		fmt.Fprintf(w, "%-16s %12v %12v %10.1f %10.2f %10.2f\n",
			g.Game, soc.Hz(g.DefaultFreqHz), soc.Hz(g.MobiCoreFreqHz),
			g.FreqReductionFrac()*100, g.DefaultCores, g.MobiCoreCores)
		fsum += g.FreqReductionFrac()
		dc += g.DefaultCores
		mc += g.MobiCoreCores
	}
	n := float64(len(r.Rows))
	fmt.Fprintf(w, "average frequency reduction: %.1f%% (paper: 22.5%%)\n", fsum/n*100)
	fmt.Fprintf(w, "average cores: default %.2f vs mobicore %.2f (paper: 2.75 vs 2.52)\n", dc/n, mc/n)
	return nil
}

// RunFig12 reports the hardware-usage view of the gaming sessions.
func RunFig12(opt Options) (Result, error) {
	rows, err := runGames(opt)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Rows: rows}, nil
}

// Fig13Result reproduces Figure 13: CPU load stress level — average load
// per policy and the load variation.
type Fig13Result struct {
	Rows []GameRow
}

// ID implements Result.
func (*Fig13Result) ID() string { return "fig13" }

// Title implements Result.
func (*Fig13Result) Title() string { return "Figure 13: CPU load stress level" }

// WriteText implements Result.
func (r *Fig13Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-16s %12s %12s %12s\n", "game", "default load", "mobicore load", "reduction")
	var sum float64
	for _, g := range r.Rows {
		fmt.Fprintf(w, "%-16s %11.1f%% %12.1f%% %11.1f%%\n",
			g.Game, g.DefaultUtil*100, g.MobiCoreUtil*100, g.LoadReduction()*100)
		sum += g.LoadReduction()
	}
	fmt.Fprintf(w, "average load reduction: %.1f%% (paper: default 3.1%% busier)\n",
		sum/float64(len(r.Rows))*100)
	return nil
}

// RunFig13 reports the load view of the gaming sessions.
func RunFig13(opt Options) (Result, error) {
	rows, err := runGames(opt)
	if err != nil {
		return nil, err
	}
	return &Fig13Result{Rows: rows}, nil
}
