package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// TestFleetPortedExperimentsMatchGolden locks the multi-layer refactor's
// compatibility contract: the experiments ported onto the fleet driver
// (biglittle, easplace, sustained) render byte-identically to the serial
// pre-fleet implementation, whose output at these scales and seed 42 is
// checked into testdata. Any physics or formatting drift fails here.
func TestFleetPortedExperimentsMatchGolden(t *testing.T) {
	cases := []struct {
		id    string
		scale float64
	}{
		{"biglittle", 0.05},
		{"easplace", 0.05},
		{"sustained", 0.2},
	}
	for _, c := range cases {
		for _, parallel := range []int{1, 8} {
			res, err := Run(c.id, Options{Scale: c.scale, Seed: 42, Parallel: parallel})
			if err != nil {
				t.Fatalf("%s (parallel %d): %v", c.id, parallel, err)
			}
			var buf bytes.Buffer
			if err := res.WriteText(&buf); err != nil {
				t.Fatalf("%s: rendering: %v", c.id, err)
			}
			golden, err := os.ReadFile(filepath.Join("testdata", c.id+"_golden.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("%s (parallel %d) drifted from the pre-fleet serial output:\n--- got ---\n%s\n--- want ---\n%s",
					c.id, parallel, buf.Bytes(), golden)
			}
		}
	}
}

// TestCrossSeedExperimentsMatchGolden locks the multi-seed output: the
// per-seed rows stay exactly the single-seed rendering, and the appended
// cross-seed block (per-group mean ± 95% CI, paired matched-seed deltas)
// is byte-stable at any parallelism. Regenerate with -update-golden after
// an intentional physics or formatting change.
func TestCrossSeedExperimentsMatchGolden(t *testing.T) {
	cases := []struct {
		id    string
		scale float64
	}{
		{"biglittle", 0.05},
		{"easplace", 0.05},
		{"sustained", 0.2},
	}
	for _, c := range cases {
		golden := filepath.Join("testdata", c.id+"_ci_golden.txt")
		for _, parallel := range []int{1, 8} {
			res, err := Run(c.id, Options{Scale: c.scale, Seed: 42, Seeds: 3, Parallel: parallel})
			if err != nil {
				t.Fatalf("%s (parallel %d): %v", c.id, parallel, err)
			}
			var buf bytes.Buffer
			if err := res.WriteText(&buf); err != nil {
				t.Fatalf("%s: rendering: %v", c.id, err)
			}
			// The multi-seed output must extend — never alter — the
			// single-seed golden: its first bytes are that file exactly.
			base, err := os.ReadFile(filepath.Join("testdata", c.id+"_golden.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(buf.Bytes(), base) {
				t.Errorf("%s: multi-seed output does not extend the single-seed golden:\n%s", c.id, buf.Bytes())
			}
			if *updateGolden && parallel == 1 {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s (parallel %d) drifted from the cross-seed golden:\n--- got ---\n%s\n--- want ---\n%s",
					c.id, parallel, buf.Bytes(), want)
			}
		}
	}
}
