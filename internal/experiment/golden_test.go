package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFleetPortedExperimentsMatchGolden locks the multi-layer refactor's
// compatibility contract: the experiments ported onto the fleet driver
// (biglittle, easplace, sustained) render byte-identically to the serial
// pre-fleet implementation, whose output at these scales and seed 42 is
// checked into testdata. Any physics or formatting drift fails here.
func TestFleetPortedExperimentsMatchGolden(t *testing.T) {
	cases := []struct {
		id    string
		scale float64
	}{
		{"biglittle", 0.05},
		{"easplace", 0.05},
		{"sustained", 0.2},
	}
	for _, c := range cases {
		for _, parallel := range []int{1, 8} {
			res, err := Run(c.id, Options{Scale: c.scale, Seed: 42, Parallel: parallel})
			if err != nil {
				t.Fatalf("%s (parallel %d): %v", c.id, parallel, err)
			}
			var buf bytes.Buffer
			if err := res.WriteText(&buf); err != nil {
				t.Fatalf("%s: rendering: %v", c.id, err)
			}
			golden, err := os.ReadFile(filepath.Join("testdata", c.id+"_golden.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("%s (parallel %d) drifted from the pre-fleet serial output:\n--- got ---\n%s\n--- want ---\n%s",
					c.id, parallel, buf.Bytes(), golden)
			}
		}
	}
}
