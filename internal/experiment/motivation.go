package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/thermal"
	"mobicore/internal/workload"
)

// Fig1Row is one handset's full-stress measurement.
type Fig1Row struct {
	Name      string
	Year      int
	Cores     int
	AvgPowerW float64
}

// Fig1Result reproduces Figure 1: the evolution of average power
// consumption across phone generations at the highest computing state.
type Fig1Result struct {
	Rows []Fig1Row
}

// ID implements Result.
func (*Fig1Result) ID() string { return "fig1" }

// Title implements Result.
func (*Fig1Result) Title() string {
	return "Figure 1: Evolution of average power consumption for different phones"
}

// WriteText implements Result.
func (r *Fig1Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-16s %5s %6s %10s\n", "phone", "year", "cores", "avg mW")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %5d %6d %10.1f\n", row.Name, row.Year, row.Cores, row.AvgPowerW*1000)
	}
	return nil
}

// RunFig1 stresses every platform profile flat out (throttle disabled, as
// the short "highest computing state" measurement) and reports average
// power, oldest phone first.
func RunFig1(opt Options) (Result, error) {
	res := &Fig1Result{Rows: make([]Fig1Row, 0, 6)}
	for _, plat := range platform.All() {
		plat = plat.WithoutThrottle()
		mgr, err := policy.Pinned(plat.Table, plat.Table.Max().Freq, plat.NumCores)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", plat.Name, err)
		}
		wl, err := stressLoop(plat.NumCores, plat.Table.Max().Freq)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", plat.Name, err)
		}
		rep, err := session(plat, mgr, []workload.Workload{wl}, opt.dur(30*time.Second), opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", plat.Name, err)
		}
		res.Rows = append(res.Rows, Fig1Row{
			Name:      plat.Name,
			Year:      plat.Year,
			Cores:     plat.NumCores,
			AvgPowerW: rep.AvgPowerW,
		})
	}
	return res, nil
}

// Fig2Row is one handset's steady-state thermal measurement.
type Fig2Row struct {
	Name       string
	AvgPowerW  float64
	SteadyC    float64
	PredictedC float64 // closed-form ambient + P·R, for cross-checking
	AmbientC   float64
	PaperTempC float64 // the IR camera reading reported in §1.2
}

// Fig2Result reproduces Figure 2(a): the IR temperature contrast between
// the single-core Nexus S and the quad-core Nexus 5 at full stress.
type Fig2Result struct {
	Rows []Fig2Row
}

// ID implements Result.
func (*Fig2Result) ID() string { return "fig2" }

// Title implements Result.
func (*Fig2Result) Title() string {
	return "Figure 2a: IR temperature of Nexus S vs Nexus 5 at the highest computing state"
}

// WriteText implements Result.
func (r *Fig2Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-10s %9s %9s %10s %9s\n", "phone", "avg mW", "steady C", "predict C", "paper C")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %9.1f %9.1f %10.1f %9.1f\n",
			row.Name, row.AvgPowerW*1000, row.SteadyC, row.PredictedC, row.PaperTempC)
	}
	return nil
}

// RunFig2 runs both IR-imaged phones to thermal steady state at full blast
// with throttling disabled (the IR shot captures the unconstrained hot
// spot) and reports modelled temperatures next to the paper's readings.
func RunFig2(opt Options) (Result, error) {
	paperC := map[string]float64{"Nexus S": 26.9, "Nexus 5": 42.1}
	res := &Fig2Result{Rows: make([]Fig2Row, 0, 2)}
	for _, plat := range []platform.Platform{platform.NexusS(), platform.Nexus5()} {
		plat = plat.WithoutThrottle()
		mgr, err := policy.Pinned(plat.Table, plat.Table.Max().Freq, plat.NumCores)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", plat.Name, err)
		}
		wl, err := stressLoop(plat.NumCores, plat.Table.Max().Freq)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", plat.Name, err)
		}
		// Five time constants reach >99% of steady state.
		d := opt.dur(5 * plat.Thermal.TimeConstant)
		s, err := newSim(plat, mgr, []workload.Workload{wl}, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", plat.Name, err)
		}
		rep, err := s.Run(d)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", plat.Name, err)
		}
		zone, err := thermal.NewZone(plat.Thermal, plat.Table)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", plat.Name, err)
		}
		res.Rows = append(res.Rows, Fig2Row{
			Name:       plat.Name,
			AvgPowerW:  rep.AvgPowerW,
			SteadyC:    s.Zone().TempC(),
			PredictedC: zone.SteadyStateC(rep.AvgPowerW),
			AmbientC:   plat.Thermal.AmbientC,
			PaperTempC: paperC[plat.Name],
		})
	}
	return res, nil
}
