package experiment

import (
	"fmt"
	"io"

	"mobicore/internal/geekbench"
	"mobicore/internal/platform"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// Fig6Row is one frequency's score and power, one core at 100% load.
type Fig6Row struct {
	Freq      soc.Hz
	Score     float64
	AvgPowerW float64
}

// Fig6Result reproduces Figure 6: power consumption and performance over
// frequency at 100% CPU utilization for one core.
type Fig6Result struct {
	Rows []Fig6Row
}

// ID implements Result.
func (*Fig6Result) ID() string { return "fig6" }

// Title implements Result.
func (*Fig6Result) Title() string {
	return "Figure 6: Power consumption and performance over frequency, 100% utilization, 1 core"
}

// WriteText implements Result.
func (r *Fig6Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-12s %10s %10s\n", "freq", "score", "avg mW")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12v %10.0f %10.1f\n", row.Freq, row.Score, row.AvgPowerW*1000)
	}
	return nil
}

// RunFig6 scores the benchmark suite at every operating point on one core
// and evaluates the power model with the suite's busy fraction — stalls do
// not switch transistors, which is why both curves flatten at the top
// (§3.5's plateau near 1.95 GHz).
func RunFig6(opt Options) (Result, error) {
	_ = opt // analytic: no session time to scale
	plat := platform.Nexus5()
	model, err := power.NewModel(plat.Power, plat.Table)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	suite := geekbench.StandardSuite()
	res := &Fig6Result{Rows: make([]Fig6Row, 0, plat.Table.Len())}
	for _, opp := range plat.Table.Points() {
		score, err := geekbench.SingleCoreScore(suite, opp.Freq)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v: %w", opp.Freq, err)
		}
		busy, err := geekbench.BusyFraction(suite, opp.Freq, 1)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v: %w", opp.Freq, err)
		}
		watts := model.SystemWatts(benchLoads(plat.NumCores, 1, opp, busy))
		res.Rows = append(res.Rows, Fig6Row{Freq: opp.Freq, Score: score, AvgPowerW: watts})
	}
	return res, nil
}

// Fig7Row is one frequency's performance/power ratio for 1 and 4 cores.
type Fig7Row struct {
	Freq       soc.Hz
	Ratio1Core float64 // score per watt
	Ratio4Core float64
}

// Fig7Result reproduces Figure 7: performance/power ratio over frequency
// for one and four cores.
type Fig7Result struct {
	Rows []Fig7Row
}

// ID implements Result.
func (*Fig7Result) ID() string { return "fig7" }

// Title implements Result.
func (*Fig7Result) Title() string {
	return "Figure 7: Performance/power ratio over CPU frequency for 1 and 4 cores"
}

// WriteText implements Result.
func (r *Fig7Result) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-12s %12s %12s\n", "freq", "1-core s/W", "4-core s/W")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12v %12.1f %12.1f\n", row.Freq, row.Ratio1Core, row.Ratio4Core)
	}
	return nil
}

// PeakFreq4Core returns the frequency with the best 4-core ratio — the
// paper finds the peak near 960 MHz, after which "the performance achieved
// is not worth the power consumption".
func (r *Fig7Result) PeakFreq4Core() soc.Hz {
	var best soc.Hz
	bestRatio := -1.0
	for _, row := range r.Rows {
		if row.Ratio4Core > bestRatio {
			best, bestRatio = row.Freq, row.Ratio4Core
		}
	}
	return best
}

// RunFig7 evaluates score-per-watt across the frequency range for one and
// four cores.
func RunFig7(opt Options) (Result, error) {
	_ = opt
	plat := platform.Nexus5()
	model, err := power.NewModel(plat.Power, plat.Table)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	suite := geekbench.StandardSuite()
	res := &Fig7Result{Rows: make([]Fig7Row, 0, plat.Table.Len())}
	for _, opp := range plat.Table.Points() {
		row := Fig7Row{Freq: opp.Freq}
		for _, n := range []int{1, 4} {
			score, err := geekbench.Score(suite, opp.Freq, n)
			if err != nil {
				return nil, fmt.Errorf("fig7 %v n=%d: %w", opp.Freq, n, err)
			}
			busy, err := geekbench.BusyFraction(suite, opp.Freq, n)
			if err != nil {
				return nil, fmt.Errorf("fig7 %v n=%d: %w", opp.Freq, n, err)
			}
			watts := model.SystemWatts(benchLoads(plat.NumCores, n, opp, busy))
			if n == 1 {
				row.Ratio1Core = score / watts
			} else {
				row.Ratio4Core = score / watts
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// benchLoads builds the power-model view of a pinned benchmark run: n
// active cores at the OPP with the suite's busy fraction, the rest offline.
func benchLoads(total, active int, opp soc.OPP, busy float64) []power.CoreLoad {
	loads := make([]power.CoreLoad, total)
	for i := range loads {
		if i < active {
			loads[i] = power.CoreLoad{State: soc.StateActive, OPP: opp, Util: busy}
		} else {
			loads[i] = power.CoreLoad{State: soc.StateOffline}
		}
	}
	return loads
}
