package experiment

import (
	"bytes"
	"strings"
	"testing"

	"mobicore/internal/soc"
)

// TestMotivationResultsRender exercises fig1/fig2 end to end at small
// scale and checks their text output carries the expected rows.
func TestMotivationResultsRender(t *testing.T) {
	res1, err := RunFig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res1.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, phone := range []string{"Nexus S", "Nexus 5", "LG G3"} {
		if !strings.Contains(buf.String(), phone) {
			t.Errorf("fig1 output missing %q", phone)
		}
	}

	res2, err := RunFig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := res2.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "42.1") {
		t.Errorf("fig2 output missing the paper's 42.1 C column:\n%s", buf.String())
	}
	r2 := res2.(*Fig2Result)
	if len(r2.Rows) != 2 {
		t.Fatalf("fig2 rows = %d, want 2", len(r2.Rows))
	}
	// Even at reduced scale, the Nexus 5's PREDICTED steady state must
	// land on the IR reading; the transient SteadyC only converges at
	// full scale.
	for _, row := range r2.Rows {
		if diff := row.PredictedC - row.PaperTempC; diff > 1.5 || diff < -1.5 {
			t.Errorf("%s predicted %.1f C vs paper %.1f C", row.Name, row.PredictedC, row.PaperTempC)
		}
	}
}

// TestFig2TemperatureContrast: the quad-core must run hotter than the
// single-core — the point of the IR image.
func TestFig2TemperatureContrast(t *testing.T) {
	res, err := RunFig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig2Result)
	byName := map[string]Fig2Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	if byName["Nexus 5"].PredictedC <= byName["Nexus S"].PredictedC {
		t.Errorf("Nexus 5 (%.1f C) should run hotter than Nexus S (%.1f C)",
			byName["Nexus 5"].PredictedC, byName["Nexus S"].PredictedC)
	}
}

// TestFig6PlateauNumbers: the marginal score per marginal hertz shrinks at
// the top of the table (the §3.5 plateau) and power keeps rising.
func TestFig6PlateauNumbers(t *testing.T) {
	res, err := RunFig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig6Result)
	if len(r.Rows) != 14 {
		t.Fatalf("fig6 rows = %d, want 14 OPPs", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Score <= r.Rows[i-1].Score {
			t.Errorf("score not increasing at %v", r.Rows[i].Freq)
		}
		if r.Rows[i].AvgPowerW <= r.Rows[i-1].AvgPowerW {
			t.Errorf("power not increasing at %v", r.Rows[i].Freq)
		}
	}
	// Score elasticity at the top must be below the bottom's.
	first := relGain(r.Rows[0].Score, r.Rows[1].Score) /
		relGain(float64(r.Rows[0].Freq), float64(r.Rows[1].Freq))
	last := relGain(r.Rows[12].Score, r.Rows[13].Score) /
		relGain(float64(r.Rows[12].Freq), float64(r.Rows[13].Freq))
	if last >= first {
		t.Errorf("no plateau: elasticity first %.2f vs last %.2f", first, last)
	}
}

func relGain(a, b float64) float64 { return (b - a) / a }

// TestFiveBenchFreqs: the §3.1 selection — two low, one middle, two high.
func TestFiveBenchFreqs(t *testing.T) {
	table := soc.MSM8974Table()
	freqs := fiveBenchFreqs(table)
	if len(freqs) != 5 {
		t.Fatalf("got %d frequencies, want 5", len(freqs))
	}
	if freqs[0] != table.Min().Freq {
		t.Errorf("first = %v, want table minimum", freqs[0])
	}
	if freqs[4] != table.Max().Freq {
		t.Errorf("last = %v, want table maximum", freqs[4])
	}
	for i := 1; i < 5; i++ {
		if freqs[i] <= freqs[i-1] {
			t.Errorf("selection not increasing: %v", freqs)
		}
	}
	// Small tables degrade gracefully.
	tiny, err := soc.UniformTable(3, 100*soc.MHz, 300*soc.MHz, 0.9, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fiveBenchFreqs(tiny); len(got) != 3 {
		t.Errorf("tiny table selection = %v, want all 3 points", got)
	}
}

// TestOptionsDur: scaling clamps to a floor that keeps the control loop
// exercised.
func TestOptionsDur(t *testing.T) {
	opt := Options{Scale: 0.000001}
	if got := opt.dur(60 * 1e9); got.Seconds() < 0.5 {
		t.Errorf("scaled duration %v below the 500 ms floor", got)
	}
	full := Options{}
	if got := full.dur(60 * 1e9); got.Seconds() != 60 {
		t.Errorf("zero scale should mean 1.0, got %v", got)
	}
}
