package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/games"
	"mobicore/internal/metrics"
	"mobicore/internal/platform"
)

// SustainedClusterRow is one cluster's thermal story across a session.
type SustainedClusterRow struct {
	Name        string
	AvgTempC    float64
	MaxTempC    float64
	ThrottleSec float64 // residency with the cluster's own cap engaged
	TempSeries  metrics.Series
}

// SustainedRow is one policy's long session on the big.LITTLE platform.
type SustainedRow struct {
	Policy   string
	AvgW     float64
	AvgFPS   float64
	DropRate float64
	Clusters []SustainedClusterRow
}

// SustainedResult is the asymmetric-throttling experiment: a long gaming
// session on the Snapdragon 810-class profile, where the A57 cluster's
// thermal zone reaches its trip while the A53 zone never does. It extends
// the thesis' thermal argument (Figure 2's IR contrast, Figure 4's
// sub-linear core scaling) to the per-cluster regime: the interesting
// question is no longer whether the die throttles but which cluster
// throttles first and what each governor does about it.
type SustainedResult struct {
	Game     string
	Duration time.Duration
	Rows     []SustainedRow
	// CrossSeed carries the distribution block (per-policy mean ± 95% CI
	// on energy/FPS/throttle and paired policy deltas on matched seeds)
	// when run at Options.Seeds > 1; nil on single-seed runs.
	CrossSeed *CrossSeedStats
}

// ID implements Result.
func (*SustainedResult) ID() string { return "sustained" }

// Title implements Result.
func (*SustainedResult) Title() string {
	return "sustained session: per-cluster thermal throttling on a Snapdragon 810-class device"
}

// WriteText implements Result.
func (r *SustainedResult) WriteText(w io.Writer) error {
	if len(r.Rows) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "game: %s, session: %v\n", r.Game, r.Duration)
	fmt.Fprintf(w, "%-18s %10s %8s %8s", "policy", "avg mW", "fps", "drop%")
	for _, cl := range r.Rows[0].Clusters {
		fmt.Fprintf(w, " %18s %14s", cl.Name+" temp C (max)", cl.Name+" capped s")
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %10.1f %8.1f %8.1f", row.Policy, row.AvgW*1000, row.AvgFPS, row.DropRate*100)
		for _, cl := range row.Clusters {
			fmt.Fprintf(w, " %11.1f (%4.1f) %14.2f", cl.AvgTempC, cl.MaxTempC, cl.ThrottleSec)
		}
		fmt.Fprintln(w)
	}
	// Per-cluster temperature traces: the figure this experiment exists
	// for — the big zone climbing to its trip and sawtoothing under the
	// throttle while the LITTLE zone plateaus far below its own.
	for _, row := range r.Rows {
		for _, cl := range row.Clusters {
			fmt.Fprintf(w, "%s / %s: temp C %s\n", row.Policy, cl.Name, sparkline(cl.TempSeries, 1))
		}
	}
	return r.CrossSeed.writeText(w)
}

// sustainedRacing is Real Racing 3 at the asset tier a 2015 flagship is
// served: twice the per-frame CPU cost of the 2013 calibration and a wider
// worker fan-out, so the workload genuinely spans both clusters instead of
// fitting inside the LITTLE island. This is the demand class that made the
// Snapdragon 810's sustained-performance problem famous.
func sustainedRacing() games.Profile {
	p := games.RealRacing3()
	p.Name = p.Name + " (sustained, 2015 assets)"
	p.FrameCycles *= 2.0
	p.ParallelFrac = 0.75
	p.Workers = 6
	return p
}

// RunSustained plays a long (paper timing: 5-minute) sustained gaming
// session per policy on the Nexus 6P profile and reports power, FPS, frame
// drops, and each cluster's temperature trace and throttle residency. The
// policy comparison is declared as a fleet.Spec and runs on the batch
// driver's worker pool (Options.Parallel).
func RunSustained(opt Options) (Result, error) {
	prof := sustainedRacing()
	dur := opt.dur(5 * time.Minute)
	fres, err := runFleet(fleet.Spec{
		Platforms: []platform.Platform{platform.Nexus6P()},
		Policies:  bigLittlePolicies(),
		Workloads: []fleet.WorkloadFactory{gameFactory(prof)},
		Seeds:     opt.seedList(),
		Duration:  dur,
	}, opt)
	if err != nil {
		return nil, fmt.Errorf("sustained: %w", err)
	}
	res := &SustainedResult{Game: prof.Name, Duration: dur, CrossSeed: crossSeed(fres, opt)}
	for _, c := range fres.Cells {
		if c.Seed != opt.Seed {
			continue // rows describe the first seed; stats cover the rest
		}
		rep := c.Report
		row := SustainedRow{
			Policy:   c.Policy,
			AvgW:     rep.AvgPowerW,
			AvgFPS:   c.AvgFPS,
			DropRate: c.DropRate,
		}
		for ci, cn := range rep.ClusterNames {
			row.Clusters = append(row.Clusters, SustainedClusterRow{
				Name:        cn,
				AvgTempC:    rep.AvgClusterTempC[ci],
				MaxTempC:    rep.MaxClusterTempC[ci],
				ThrottleSec: rep.ClusterThermalSec[ci],
				TempSeries:  rep.ClusterTempSeries[ci],
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
