package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// TestSustainedAsymmetricThrottle runs the sustained session at 1/5 scale
// (60 s simulated — several big-zone time constants) and asserts the
// experiment's reason to exist: under the stock governors the big cluster
// engages its throttle while the LITTLE cluster never does.
func TestSustainedAsymmetricThrottle(t *testing.T) {
	res, err := Run("sustained", Options{Scale: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sus, ok := res.(*SustainedResult)
	if !ok {
		t.Fatalf("sustained returned %T", res)
	}
	if len(sus.Rows) != 4 {
		t.Fatalf("rows = %d, want mobicore + 3 stock governors", len(sus.Rows))
	}
	var stockThrottled bool
	for _, row := range sus.Rows {
		if len(row.Clusters) != 2 {
			t.Fatalf("%s: %d cluster rows, want 2", row.Policy, len(row.Clusters))
		}
		little, big := row.Clusters[0], row.Clusters[1]
		if little.ThrottleSec != 0 {
			t.Errorf("%s: LITTLE cluster capped %.2f s, want 0", row.Policy, little.ThrottleSec)
		}
		if big.MaxTempC <= little.MaxTempC {
			t.Errorf("%s: big max %.1f C not above LITTLE %.1f C", row.Policy, big.MaxTempC, little.MaxTempC)
		}
		if big.TempSeries.Len() == 0 || little.TempSeries.Len() == 0 {
			t.Errorf("%s: empty temperature series", row.Policy)
		}
		if row.Policy != "mobicore" && big.ThrottleSec > 0 {
			stockThrottled = true
		}
	}
	if !stockThrottled {
		t.Error("no stock governor ever engaged the big cluster's throttle")
	}
	var buf bytes.Buffer
	if err := sus.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"big capped s", "temp C", "mobicore"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered text missing %q:\n%s", want, out)
		}
	}
}

// TestSustainedEmptyRender guards the no-data path.
func TestSustainedEmptyRender(t *testing.T) {
	var buf bytes.Buffer
	if err := (&SustainedResult{}).WriteText(&buf); err == nil {
		t.Error("empty result rendered without error")
	}
}
