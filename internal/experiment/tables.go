package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// Table1Result reproduces Table 1: the Nexus 5 platform specification.
type Table1Result struct {
	Platform platform.Platform
}

// ID implements Result.
func (*Table1Result) ID() string { return "table1" }

// Title implements Result.
func (*Table1Result) Title() string { return "Table 1: Specifications of the Nexus 5 platform" }

// WriteText implements Result.
func (r *Table1Result) WriteText(w io.Writer) error {
	p := r.Platform
	fmt.Fprintf(w, "SoC:       Snapdragon 800 (MSM8974)\n")
	fmt.Fprintf(w, "CPU:       %d cores, %d OPPs\n", p.NumCores, p.Table.Len())
	fmt.Fprintf(w, "Freq min:  %v\n", p.Table.Min().Freq)
	fmt.Fprintf(w, "Freq max:  %v\n", p.Table.Max().Freq)
	fmt.Fprintf(w, "Volt min:  %.2f V\n", float64(p.Table.Min().Volt))
	fmt.Fprintf(w, "Volt max:  %.2f V\n", float64(p.Table.Max().Volt))
	fmt.Fprintf(w, "OS:        Android 6.0 (simulated control surface)\n")
	fmt.Fprintf(w, "\nOPP table:\n")
	for _, opp := range p.Table.Points() {
		fmt.Fprintf(w, "  %-12v %.3f V\n", opp.Freq, float64(opp.Volt))
	}
	return nil
}

// RunTable1 dumps the primary platform profile.
func RunTable1(opt Options) (Result, error) {
	_ = opt
	return &Table1Result{Platform: platform.Nexus5()}, nil
}

// Table2Step is one sampling period of the bandwidth controller demo.
type Table2Step struct {
	At    time.Duration
	Util  float64
	Mode  string // "high", "burst", "slow", "fit"
	Quota float64
}

// Table2Result demonstrates Algorithm 4.1.2 (Table 2): the quota decisions
// across a scripted utilization trace covering every branch.
type Table2Result struct {
	Steps []Table2Step
}

// ID implements Result.
func (*Table2Result) ID() string { return "table2" }

// Title implements Result.
func (*Table2Result) Title() string { return "Table 2 / Algorithm 4.1.2: Bandwidth reduction" }

// WriteText implements Result.
func (r *Table2Result) WriteText(w io.Writer) error {
	if len(r.Steps) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%8s %7s %-6s %7s\n", "t", "util%", "mode", "quota")
	for _, s := range r.Steps {
		fmt.Fprintf(w, "%8v %7.0f %-6s %7.2f\n", s.At, s.Util*100, s.Mode, s.Quota)
	}
	return nil
}

// RunTable2 drives the MobiCore bandwidth controller through a scripted
// utilization trace: steady high load (full bandwidth), a decay into slow
// mode (quota shrinks by the 0.9 scaling factor), a steady low stretch
// (shrink-to-fit), and a burst (full bandwidth restored).
func RunTable2(opt Options) (Result, error) {
	_ = opt
	plat := platform.Nexus5()
	mgr, err := core.New(plat.Table, core.DefaultTunables())
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	trace := []float64{0.70, 0.70, 0.55, 0.35, 0.25, 0.18, 0.18, 0.18, 0.35, 0.80, 0.80}
	res := &Table2Result{Steps: make([]Table2Step, 0, len(trace))}
	tun := mgr.Tunables()
	prev := 0.0
	for i, util := range trace {
		in := policy.Input{
			Now:     time.Duration(i+1) * 50 * time.Millisecond,
			Period:  50 * time.Millisecond,
			Util:    []float64{util, util, util, util},
			Online:  []bool{true, true, true, true},
			CurFreq: uniformFreqs(plat.Table, 4),
			Quota:   1,
			Table:   plat.Table,
		}
		dec, err := mgr.Decide(in)
		if err != nil {
			return nil, fmt.Errorf("table2 step %d: %w", i, err)
		}
		mode := "fit"
		switch {
		case util >= tun.LowUtil:
			mode = "high"
		case i == 0:
			mode = "first"
		case util-prev > tun.UpDelta:
			mode = "burst"
		case util-prev < -tun.DownDelta:
			mode = "slow"
		}
		res.Steps = append(res.Steps, Table2Step{
			At:    in.Now,
			Util:  util,
			Mode:  mode,
			Quota: dec.Quota,
		})
		prev = util
	}
	return res, nil
}

func uniformFreqs(table *soc.OPPTable, n int) []soc.Hz {
	out := make([]soc.Hz, n)
	f := table.At(table.Len() / 2).Freq
	for i := range out {
		out[i] = f
	}
	return out
}

// StaticAnchorResult verifies the §4.1.2 static-power measurement that
// anchors the whole power model: 120 mW per idle core at f_max and 47 mW
// at f_min.
type StaticAnchorResult struct {
	FmaxLeakW float64
	FminLeakW float64
}

// ID implements Result.
func (*StaticAnchorResult) ID() string { return "static" }

// Title implements Result.
func (*StaticAnchorResult) Title() string {
	return "§4.1.2 static power anchor: per-core leakage at f_max and f_min"
}

// WriteText implements Result.
func (r *StaticAnchorResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "leak @ f_max voltage: %.1f mW (paper: 120 mW)\n", r.FmaxLeakW*1000)
	fmt.Fprintf(w, "leak @ f_min voltage: %.1f mW (paper: 47 mW)\n", r.FminLeakW*1000)
	return nil
}

// RunStaticAnchor evaluates the leakage curve at both anchor voltages.
func RunStaticAnchor(opt Options) (Result, error) {
	_ = opt
	plat := platform.Nexus5()
	model, err := power.NewModel(plat.Power, plat.Table)
	if err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}
	return &StaticAnchorResult{
		FmaxLeakW: model.LeakWatts(plat.Table.Max().Volt),
		FminLeakW: model.LeakWatts(plat.Table.Min().Volt),
	}, nil
}
