package experiment

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/sim"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// Fig3Cell is one (frequency, utilization) measurement on one core.
type Fig3Cell struct {
	Freq      soc.Hz
	Util      float64
	AvgPowerW float64
}

// Fig3Result reproduces Figure 3: power over CPU utilization at five
// frequencies for one core.
type Fig3Result struct {
	Cells []Fig3Cell
}

// ID implements Result.
func (*Fig3Result) ID() string { return "fig3" }

// Title implements Result.
func (*Fig3Result) Title() string {
	return "Figure 3: Power consumption over CPU utilization at different frequencies, 1 core"
}

// WriteText implements Result.
func (r *Fig3Result) WriteText(w io.Writer) error {
	if len(r.Cells) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-12s %6s %10s\n", "freq", "util%", "avg mW")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12v %6.0f %10.1f\n", c.Freq, c.Util*100, c.AvgPowerW*1000)
	}
	return nil
}

// RunFig3 pins one core to each of the five benchmark frequencies and
// sweeps the kernel app's utilization target 10%→100% for one minute each
// (§3.3.1's methodology).
func RunFig3(opt Options) (Result, error) {
	plat := platform.Nexus5().WithoutThrottle()
	res := &Fig3Result{}
	for _, f := range fiveBenchFreqs(plat.Table) {
		for util := 0.1; util <= 1.001; util += 0.1 {
			mgr, err := policy.Pinned(plat.Table, f, 1)
			if err != nil {
				return nil, fmt.Errorf("fig3: %w", err)
			}
			wl, err := utilLoop(util, 1, f)
			if err != nil {
				return nil, fmt.Errorf("fig3: %w", err)
			}
			rep, err := session(plat, mgr, []workload.Workload{wl}, opt.dur(60*time.Second), opt.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig3 f=%v u=%.1f: %w", f, util, err)
			}
			res.Cells = append(res.Cells, Fig3Cell{Freq: f, Util: util, AvgPowerW: rep.AvgPowerW})
		}
	}
	return res, nil
}

// Fig4Cell is one (frequency, cores) measurement at 100% utilization.
type Fig4Cell struct {
	Freq      soc.Hz
	Cores     int
	AvgPowerW float64
	Throttled bool // whether the thermal driver capped during the run
}

// Fig4Result reproduces Figure 4: power over core count at five
// frequencies, 100% utilization.
type Fig4Result struct {
	Cells []Fig4Cell
}

// ID implements Result.
func (*Fig4Result) ID() string { return "fig4" }

// Title implements Result.
func (*Fig4Result) Title() string {
	return "Figure 4: Power consumption over CPU cores at different frequencies, 100% utilization"
}

// WriteText implements Result.
func (r *Fig4Result) WriteText(w io.Writer) error {
	if len(r.Cells) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%-12s %6s %10s %10s\n", "freq", "cores", "avg mW", "throttled")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12v %6d %10.1f %10v\n", c.Freq, c.Cores, c.AvgPowerW*1000, c.Throttled)
	}
	return nil
}

// RunFig4 pins 1–4 cores at each benchmark frequency under continuous
// spinning. The thermal driver stays enabled: the sub-linear power growth
// from 2 to 4 cores at high frequency — the paper's "marginal power
// increase" — is the thermal cap clipping sustained multi-core turbo.
func RunFig4(opt Options) (Result, error) {
	plat := platform.Nexus5()
	res := &Fig4Result{}
	for _, f := range fiveBenchFreqs(plat.Table) {
		for cores := 1; cores <= plat.NumCores; cores++ {
			mgr, err := policy.Pinned(plat.Table, f, cores)
			if err != nil {
				return nil, fmt.Errorf("fig4: %w", err)
			}
			wl, err := stressLoop(cores, f)
			if err != nil {
				return nil, fmt.Errorf("fig4: %w", err)
			}
			rep, err := session(plat, mgr, []workload.Workload{wl}, opt.dur(60*time.Second), opt.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig4 f=%v n=%d: %w", f, cores, err)
			}
			res.Cells = append(res.Cells, Fig4Cell{
				Freq:      f,
				Cores:     cores,
				AvgPowerW: rep.AvgPowerW,
				Throttled: rep.ThermalCappedSec > 0,
			})
		}
	}
	return res, nil
}

// Fig5Point is one feasible operating point for a demanded global load.
type Fig5Point struct {
	GlobalLoad     float64
	Cores          int
	Freq           soc.Hz
	PredictedWatts float64
	MeasuredWatts  float64
	Optimal        bool // marked on the model's minimum for this load
}

// Fig5Result reproduces Figure 5(a–d): power over frequency when varying
// the operating point, one panel per global CPU load.
type Fig5Result struct {
	Points []Fig5Point
}

// ID implements Result.
func (*Fig5Result) ID() string { return "fig5" }

// Title implements Result.
func (*Fig5Result) Title() string {
	return "Figure 5: Power consumption over frequency when varying the operating point (10/30/50/70% load)"
}

// WriteText implements Result.
func (r *Fig5Result) WriteText(w io.Writer) error {
	if len(r.Points) == 0 {
		return errNoData
	}
	fmt.Fprintf(w, "%6s %6s %-12s %12s %12s %8s\n", "load%", "cores", "freq", "predict mW", "measure mW", "optimal")
	for _, p := range r.Points {
		mark := ""
		if p.Optimal {
			mark = "*"
		}
		fmt.Fprintf(w, "%6.0f %6d %-12v %12.1f %12.1f %8s\n",
			p.GlobalLoad*100, p.Cores, p.Freq, p.PredictedWatts*1000, p.MeasuredWatts*1000, mark)
	}
	return nil
}

// RunFig5 enumerates, for each of the four global loads, every (cores,
// frequency) combination able to serve the demanded throughput; each is
// priced by the §4.1 energy model and measured by simulation with the
// demand pinned. The model's minimum is starred — the "curve of optimal
// points" MobiCore decides around (§3.4).
func RunFig5(opt Options) (Result, error) {
	plat := platform.Nexus5().WithoutThrottle()
	model, err := power.NewModel(plat.Power, plat.Table)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	fmax := plat.Table.Max().Freq
	res := &Fig5Result{}
	for _, load := range []float64{0.10, 0.30, 0.50, 0.70} {
		demand := load * float64(plat.NumCores) * float64(fmax)
		points, err := core.SweepOperatingPoints(model, plat.Table, demand, plat.NumCores)
		if err != nil {
			return nil, fmt.Errorf("fig5 load=%.0f%%: %w", load*100, err)
		}
		best, err := core.ChooseOperatingPoint(model, plat.Table, demand, plat.NumCores)
		if err != nil {
			return nil, fmt.Errorf("fig5 load=%.0f%%: %w", load*100, err)
		}
		for _, p := range points {
			measured, err := measureOperatingPoint(plat, p.Cores, p.OPP.Freq, demand, opt)
			if err != nil {
				return nil, fmt.Errorf("fig5 load=%.0f%% (%d,%v): %w", load*100, p.Cores, p.OPP.Freq, err)
			}
			res.Points = append(res.Points, Fig5Point{
				GlobalLoad:     load,
				Cores:          p.Cores,
				Freq:           p.OPP.Freq,
				PredictedWatts: p.PredictedWatts,
				MeasuredWatts:  measured,
				Optimal:        p.Cores == best.Cores && p.OPP.Freq == best.OPP.Freq,
			})
		}
	}
	return res, nil
}

// measureOperatingPoint pins (cores, freq) and plays a scripted constant
// demand, returning the measured average power.
func measureOperatingPoint(plat platform.Platform, cores int, freq soc.Hz, demandCyclesPerSec float64, opt Options) (float64, error) {
	mgr, err := policy.Pinned(plat.Table, freq, cores)
	if err != nil {
		return 0, err
	}
	d := opt.dur(10 * time.Second)
	wl, err := workload.NewScripted("op-point", cores, []workload.Step{
		{Duration: d, CyclesPerSec: demandCyclesPerSec},
	})
	if err != nil {
		return 0, err
	}
	// Boot directly in the pinned state so short sessions measure the
	// operating point, not the boot transient.
	s, err := sim.New(sim.Config{
		Platform:     plat,
		Manager:      mgr,
		Workloads:    []workload.Workload{wl},
		Seed:         opt.Seed,
		InitialFreq:  freq,
		InitialCores: cores,
	})
	if err != nil {
		return 0, err
	}
	rep, err := s.Run(d)
	if err != nil {
		return 0, err
	}
	return rep.AvgPowerW, nil
}
