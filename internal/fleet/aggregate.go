package fleet

import (
	"time"

	"mobicore/internal/metrics"
)

// Stat is one metric's distribution across a group's seeds.
type Stat struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
}

// statOf summarizes vals with the metrics toolkit: Welford moments for the
// mean and spread, nearest-rank percentiles for the quantiles.
func statOf(vals []float64) Stat {
	var sum metrics.Summary
	var ser metrics.Series
	for i, v := range vals {
		sum.Add(v)
		ser.Append(time.Duration(i), v)
	}
	p50, err := ser.Percentile(50)
	if err != nil {
		return Stat{}
	}
	p95, _ := ser.Percentile(95)
	return Stat{
		Mean:   sum.Mean(),
		StdDev: sum.StdDev(),
		Min:    sum.Min(),
		Max:    sum.Max(),
		P50:    p50,
		P95:    p95,
	}
}

// Aggregate is one matrix group — a (platform, policy, workload, placer)
// combination — summarized across its seeds.
type Aggregate struct {
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Placer   string `json:"placer,omitempty"`
	// Seeds is how many cells the group aggregates.
	Seeds int `json:"seeds"`

	EnergyJ     Stat `json:"energy_j"`
	AvgFPS      Stat `json:"avg_fps"`
	DropRate    Stat `json:"drop_rate"`
	ThrottleSec Stat `json:"throttle_sec"`
	// HasFrames says whether AvgFPS/DropRate are meaningful (every cell
	// in the group rendered frames).
	HasFrames bool `json:"has_frames,omitempty"`
}

// aggregate groups cells by matrix coordinates (seed excluded) in first-
// appearance order and summarizes each group's energy, FPS, drop rate,
// and thermal-throttle residency.
func aggregate(cells []CellResult) []Aggregate {
	type group struct {
		agg                         Aggregate
		energy, fps, drop, throttle []float64
		frames                      bool
	}
	var order []string
	groups := map[string]*group{}
	for _, c := range cells {
		key := c.Platform + "\x00" + c.Policy + "\x00" + c.Workload + "\x00" + c.Placer
		g, ok := groups[key]
		if !ok {
			g = &group{
				agg: Aggregate{
					Platform: c.Platform,
					Policy:   c.Policy,
					Workload: c.Workload,
					Placer:   c.Placer,
				},
				frames: true,
			}
			groups[key] = g
			order = append(order, key)
		}
		g.energy = append(g.energy, c.Report.EnergyJ)
		g.throttle = append(g.throttle, c.Report.ThermalCappedSec)
		g.fps = append(g.fps, c.AvgFPS)
		g.drop = append(g.drop, c.DropRate)
		g.frames = g.frames && c.HasFrames
	}
	out := make([]Aggregate, 0, len(order))
	for _, key := range order {
		g := groups[key]
		g.agg.Seeds = len(g.energy)
		g.agg.EnergyJ = statOf(g.energy)
		g.agg.ThrottleSec = statOf(g.throttle)
		g.agg.HasFrames = g.frames
		if g.frames {
			g.agg.AvgFPS = statOf(g.fps)
			g.agg.DropRate = statOf(g.drop)
		}
		out = append(out, g.agg)
	}
	return out
}
