package fleet

import (
	"mobicore/internal/metrics"
)

// ciLevel is the confidence level every fleet interval reports.
const ciLevel = 0.95

// Stat is one metric's distribution across a group's seeds: the moment and
// quantile summary plus the analytic (Student-t) 95% confidence interval
// on the mean — the uncertainty bound that makes a cross-seed comparison a
// claim instead of a point estimate.
type Stat struct {
	Mean float64 `json:"mean"`
	// StdDev is the sample (n-1) standard deviation — the same basis the
	// CI bounds and the paired deltas use, so t·StdDev/√n reproduces the
	// printed interval.
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	// CI95Lo and CI95Hi bound the mean's 95% confidence interval; with a
	// single seed (or zero spread) they collapse onto the mean.
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
}

// statOf summarizes vals with the metrics toolkit: Welford moments for the
// mean and spread, nearest-rank percentiles for the quantiles, and the
// analytic Student-t interval for the mean's CI.
func statOf(vals []float64) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	sum := metrics.SummaryOf(vals)
	p50, _ := metrics.PercentileOf(vals, 50)
	p95, _ := metrics.PercentileOf(vals, 95)
	ci, _ := metrics.MeanCI(vals, ciLevel)
	return Stat{
		Mean:   sum.Mean(),
		StdDev: sum.SampleStdDev(),
		Min:    sum.Min(),
		Max:    sum.Max(),
		P50:    p50,
		P95:    p95,
		CI95Lo: ci.Lo,
		CI95Hi: ci.Hi,
	}
}

// Aggregate is one matrix group — a (platform, policy, workload, placer)
// combination — summarized across its seeds.
type Aggregate struct {
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Placer   string `json:"placer,omitempty"`
	// Seeds is how many cells the group aggregates.
	Seeds int `json:"seeds"`

	EnergyJ     Stat `json:"energy_j"`
	AvgFPS      Stat `json:"avg_fps"`
	DropRate    Stat `json:"drop_rate"`
	ThrottleSec Stat `json:"throttle_sec"`
	// HasFrames says whether AvgFPS/DropRate are meaningful (every cell
	// in the group rendered frames).
	HasFrames bool `json:"has_frames,omitempty"`
}

// aggregate groups cells by matrix coordinates (seed excluded) in first-
// appearance order and summarizes each group's energy, FPS, drop rate,
// and thermal-throttle residency.
func aggregate(cells []CellResult) []Aggregate {
	type group struct {
		agg                         Aggregate
		energy, fps, drop, throttle []float64
		frames                      bool
	}
	var order []string
	groups := map[string]*group{}
	for _, c := range cells {
		key := c.Platform + "\x00" + c.Policy + "\x00" + c.Workload + "\x00" + c.Placer
		g, ok := groups[key]
		if !ok {
			g = &group{
				agg: Aggregate{
					Platform: c.Platform,
					Policy:   c.Policy,
					Workload: c.Workload,
					Placer:   c.Placer,
				},
				frames: true,
			}
			groups[key] = g
			order = append(order, key)
		}
		g.energy = append(g.energy, c.Report.EnergyJ)
		g.throttle = append(g.throttle, c.Report.ThermalCappedSec)
		g.fps = append(g.fps, c.AvgFPS)
		g.drop = append(g.drop, c.DropRate)
		g.frames = g.frames && c.HasFrames
	}
	out := make([]Aggregate, 0, len(order))
	for _, key := range order {
		g := groups[key]
		g.agg.Seeds = len(g.energy)
		g.agg.EnergyJ = statOf(g.energy)
		g.agg.ThrottleSec = statOf(g.throttle)
		g.agg.HasFrames = g.frames
		if g.frames {
			g.agg.AvgFPS = statOf(g.fps)
			g.agg.DropRate = statOf(g.drop)
		}
		out = append(out, g.agg)
	}
	return out
}

// PairedStat is one metric's matched-seed difference between two
// conditions: the mean per-seed delta (B−A), its spread, the analytic 95%
// confidence interval on the mean delta, and the delta relative to A's
// mean (the "X% savings" figure with a sign: negative means B uses less).
type PairedStat struct {
	MeanDelta float64 `json:"mean_delta"`
	StdDev    float64 `json:"stddev"`
	CI95Lo    float64 `json:"ci95_lo"`
	CI95Hi    float64 `json:"ci95_hi"`
	// Rel is MeanDelta divided by condition A's mean (0 when that mean
	// is 0).
	Rel float64 `json:"rel"`
}

func pairedStatOf(a, b []float64) PairedStat {
	ps, err := metrics.PairedDiff(a, b, ciLevel)
	if err != nil {
		return PairedStat{}
	}
	return PairedStat{
		MeanDelta: ps.MeanDelta,
		StdDev:    ps.StdDev,
		CI95Lo:    ps.CI.Lo,
		CI95Hi:    ps.CI.Hi,
		Rel:       ps.Rel,
	}
}

// Comparison is a paired-difference summary between two conditions run on
// matched seeds: two policies under the same platform/workload/placer
// (Dimension "policy"), or two placers under the same
// platform/policy/workload (Dimension "placer"). Pairing by seed is what
// gives the interval its power — per-seed workload noise cancels in the
// difference, so the CI answers "does B beat A" even when the per-run
// spread dwarfs the gap.
type Comparison struct {
	// Dimension says which coordinate A and B range over: "policy" or
	// "placer".
	Dimension string `json:"dimension"`
	// The fixed context coordinates. Placer is the context for policy
	// comparisons; Policy for placer comparisons.
	Platform string `json:"platform"`
	Policy   string `json:"policy,omitempty"`
	Workload string `json:"workload"`
	Placer   string `json:"placer,omitempty"`
	// A and B are the compared condition names; deltas are B−A.
	A string `json:"a"`
	B string `json:"b"`
	// Seeds is the number of matched pairs.
	Seeds int `json:"seeds"`

	EnergyJ PairedStat `json:"energy_j"`
	// AvgFPS is meaningful only when HasFrames is set (both conditions
	// rendered frames on every matched seed).
	AvgFPS    PairedStat `json:"avg_fps"`
	HasFrames bool       `json:"has_frames,omitempty"`
}

// compare builds every paired-difference summary the cell set supports:
// policy-vs-policy within each (platform, workload, placer) context, then
// placer-vs-placer within each (platform, policy, workload) context. Only
// pairs with at least two matched seeds appear — a single seed has no
// spread to bound. Order is deterministic: contexts in first-appearance
// order, pairs in first-appearance order of their conditions.
func compare(cells []CellResult) []Comparison {
	out := compareBy(cells, "policy",
		func(c *CellResult) string { return c.Platform + "\x00" + c.Workload + "\x00" + c.Placer },
		func(c *CellResult) string { return c.Policy })
	out = append(out, compareBy(cells, "placer",
		func(c *CellResult) string { return c.Platform + "\x00" + c.Policy + "\x00" + c.Workload },
		func(c *CellResult) string { return c.Placer })...)
	return out
}

// compareBy pairs conditions (the subject dimension) within fixed contexts.
func compareBy(cells []CellResult, dimension string, contextOf, subjectOf func(*CellResult) string) []Comparison {
	type condition struct {
		name  string
		seeds []int64 // appearance order
		cell  map[int64]*CellResult
	}
	type context struct {
		first  *CellResult
		conds  []*condition
		byName map[string]*condition
	}
	var order []string
	contexts := map[string]*context{}
	for i := range cells {
		c := &cells[i]
		key := contextOf(c)
		ctx, ok := contexts[key]
		if !ok {
			ctx = &context{first: c, byName: map[string]*condition{}}
			contexts[key] = ctx
			order = append(order, key)
		}
		name := subjectOf(c)
		cond, ok := ctx.byName[name]
		if !ok {
			cond = &condition{name: name, cell: map[int64]*CellResult{}}
			ctx.byName[name] = cond
			ctx.conds = append(ctx.conds, cond)
		}
		if _, dup := cond.cell[c.Seed]; !dup {
			cond.cell[c.Seed] = c
			cond.seeds = append(cond.seeds, c.Seed)
		}
	}
	var out []Comparison
	for _, key := range order {
		ctx := contexts[key]
		for i := 0; i < len(ctx.conds); i++ {
			for j := i + 1; j < len(ctx.conds); j++ {
				a, b := ctx.conds[i], ctx.conds[j]
				var (
					aEnergy, bEnergy []float64
					aFPS, bFPS       []float64
					frames           = true
				)
				for _, seed := range a.seeds {
					ca := a.cell[seed]
					cb, ok := b.cell[seed]
					if !ok {
						continue
					}
					aEnergy = append(aEnergy, ca.Report.EnergyJ)
					bEnergy = append(bEnergy, cb.Report.EnergyJ)
					aFPS = append(aFPS, ca.AvgFPS)
					bFPS = append(bFPS, cb.AvgFPS)
					frames = frames && ca.HasFrames && cb.HasFrames
				}
				if len(aEnergy) < 2 {
					continue // one matched seed has no spread to bound
				}
				cmp := Comparison{
					Dimension: dimension,
					Platform:  ctx.first.Platform,
					Workload:  ctx.first.Workload,
					A:         a.name,
					B:         b.name,
					Seeds:     len(aEnergy),
					EnergyJ:   pairedStatOf(aEnergy, bEnergy),
					HasFrames: frames,
				}
				if dimension == "policy" {
					cmp.Placer = ctx.first.Placer
				} else {
					cmp.Policy = ctx.first.Policy
				}
				if frames {
					cmp.AvgFPS = pairedStatOf(aFPS, bFPS)
				}
				out = append(out, cmp)
			}
		}
	}
	return out
}
