package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mobicore/internal/platform"
)

// arenaMatrixSpec is the heterogeneous matrix the arena-identity tests run:
// two platform shapes (homogeneous 4-core, big.LITTLE 8-core) interleave on
// every worker, so arena buffers grow and shrink between cells.
func arenaMatrixSpec(par int) Spec {
	return Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default"), Policy("mobicore")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2},
		Duration:  time.Second,
		Parallel:  par,
	}
}

// renderings carries one run's rendered outputs for cross-run comparison.
type renderings struct{ txt, csv, js, store string }

// TestFleetArenaMatchesFreshAllocation is the tentpole's acceptance gate:
// the fleet path (worker arenas, cached platform precompute, recycled trace
// writers) must produce byte-identical output to per-cell fresh allocation
// — same reports, same store records, same trace files — at parallel 1 and
// parallel 8.
func TestFleetArenaMatchesFreshAllocation(t *testing.T) {
	var outputs []renderings
	for _, par := range []int{1, 8} {
		dir := t.TempDir()
		spec := arenaMatrixSpec(par)
		spec.StoreDir = filepath.Join(dir, "store")
		spec.TraceDir = filepath.Join(dir, "traces")
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}

		// Fresh baseline: every cell through runCell with nil scratch — no
		// arena, no recycled writer; the platform cache is still in play,
		// which is the point: caching must be output-invisible.
		freshTraces := filepath.Join(dir, "fresh-traces")
		if err := os.MkdirAll(freshTraces, 0o755); err != nil {
			t.Fatal(err)
		}
		cells, err := spec.Cells()
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			key := c.identity().Key()
			fresh, err := runCell(context.Background(), i, c, key, freshTraces, nil)
			if err != nil {
				t.Fatalf("parallel %d cell %d: %v", par, i, err)
			}
			got := res.Cells[i]
			if !reflect.DeepEqual(got.Report, fresh.Report) {
				t.Errorf("parallel %d cell %d (%s): arena report differs from fresh report", par, i, key)
			}
			arenaBytes, err := os.ReadFile(filepath.Join(spec.TraceDir, TraceFileName(key)))
			if err != nil {
				t.Fatal(err)
			}
			freshBytes, err := os.ReadFile(filepath.Join(freshTraces, TraceFileName(key)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(arenaBytes, freshBytes) {
				t.Errorf("parallel %d cell %d (%s): trace bytes differ (recycled gzip writer not reset cleanly?)", par, i, key)
			}
		}

		var txt, csv bytes.Buffer
		if err := res.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		storeBytes, err := os.ReadFile(filepath.Join(spec.StoreDir, "cells.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, renderings{txt.String(), csv.String(), string(js), string(storeBytes)})
	}
	if outputs[0] != outputs[1] {
		t.Error("parallel-8 arena output differs from parallel-1 output (text/CSV/JSON/store)")
	}
}

// TestFleetSharedModelMatchesUncached drives many cells across 8 workers
// that all share the process-wide cached platform precompute (one em.Model,
// one leak table per profile), then re-runs every cell against a baseline
// that defeats the cache with a uniquely renamed profile clone — a fresh,
// unshared precompute per cell. The physics must not notice: every numeric
// field of every report matches exactly. Run with -race in CI, this is also
// the concurrency proof for the shared immutable models.
func TestFleetSharedModelMatchesUncached(t *testing.T) {
	spec := Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P(), platform.SD855()},
		Policies:  []PolicyFactory{Policy("android-default"), Policy("mobicore")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2, 3, 4},
		Duration:  500 * time.Millisecond,
		Parallel:  8,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		// A unique name means this cell's Compiled is built fresh and
		// shared with nobody — the uncached path.
		c.Platform.Name = fmt.Sprintf("%s [uncached %d]", c.Platform.Name, i)
		fresh, err := runCell(context.Background(), i, c, "k", "", nil)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		got := *res.Cells[i].Report
		want := *fresh.Report
		// Normalize the one intentional difference before comparing.
		want.Platform = got.Platform
		if !reflect.DeepEqual(&got, &want) {
			t.Errorf("cell %d: shared-model report differs from uncached report", i)
		}
	}
}
