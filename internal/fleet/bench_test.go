package fleet

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/sim"
)

// benchSpec is a 4-cell matrix (2 platforms × 2 seeds) of 2-second
// busy-loop sessions — small enough for the CI bench smoke, long enough
// that per-cell work dominates pool overhead.
func benchSpec(par int) Spec {
	return Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2},
		Duration:  2 * time.Second,
		Parallel:  par,
	}
}

// BenchmarkFleet measures the batch driver's wall-clock scaling: the same
// 4-cell matrix serial (-parallel 1) and fanned out (-parallel 4). On a
// ≥ 4-core host the parallel case should finish in under half the serial
// wall-clock; b.ReportMetric exposes cells/s for the comparison.
func BenchmarkFleet(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), benchSpec(par))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Cells) != 4 {
					b.Fatalf("cells = %d, want 4", len(res.Cells))
				}
			}
			rate := float64(4*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "cells/s")
			// Per-worker throughput exposes the pool's scaling efficiency:
			// flat cells/s/worker across the parallel cases means linear
			// scaling; a drop quantifies contention.
			b.ReportMetric(rate/float64(par), "cells/s/worker")
		})
	}
}

// matrixBenchSpec is the larger phase-2 matrix: 2 platforms × 3 policies ×
// 2 placers × 2 seeds = 24 cells, mixing homogeneous and big.LITTLE shapes
// and both placement rules so arena buffers resize between cells exactly as
// a real study's workers see them.
func matrixBenchSpec(par int) Spec {
	return Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies: []PolicyFactory{
			Policy("android-default"),
			Policy("mobicore"),
			Policy("ondemand+load"),
		},
		Placers:   []string{sim.PlacerGreedy, sim.PlacerEAS},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2},
		Duration:  time.Second,
		Parallel:  par,
	}
}

// BenchmarkFleetMatrix measures fleet throughput on the 24-cell phase-2
// matrix, reporting cells/s and allocations per cell. allocs/cell is the
// arena's success metric: it should sit near per-cell construction cost
// (fresh managers and workloads, which the spec mandates) instead of
// scaling with session duration.
func BenchmarkFleetMatrix(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel%d", par), func(b *testing.B) {
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), matrixBenchSpec(par))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Cells) != 24 {
					b.Fatalf("cells = %d, want 24", len(res.Cells))
				}
			}
			b.StopTimer()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			cells := float64(24 * b.N)
			rate := cells / b.Elapsed().Seconds()
			b.ReportMetric(rate, "cells/s")
			b.ReportMetric(rate/float64(par), "cells/s/worker")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/cells, "allocs/cell")
		})
	}
}

// BenchmarkSessionNew isolates session construction — factory-built manager
// and workloads plus engine assembly, no execution — fresh versus through a
// warm arena. The delta is what the per-platform precompute cache and the
// arena save every cell before a single tick runs.
func BenchmarkSessionNew(b *testing.B) {
	cells, err := benchSpec(1).Cells()
	if err != nil {
		b.Fatal(err)
	}
	build := func(b *testing.B, a *sim.Arena) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp, err := cells[i%len(cells)].session()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sp.NewIn(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("fresh", func(b *testing.B) { build(b, nil) })
	b.Run("arena", func(b *testing.B) { build(b, sim.NewArena()) })
}
