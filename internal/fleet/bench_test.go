package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mobicore/internal/platform"
)

// benchSpec is a 4-cell matrix (2 platforms × 2 seeds) of 2-second
// busy-loop sessions — small enough for the CI bench smoke, long enough
// that per-cell work dominates pool overhead.
func benchSpec(par int) Spec {
	return Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2},
		Duration:  2 * time.Second,
		Parallel:  par,
	}
}

// BenchmarkFleet measures the batch driver's wall-clock scaling: the same
// 4-cell matrix serial (-parallel 1) and fanned out (-parallel 4). On a
// ≥ 4-core host the parallel case should finish in under half the serial
// wall-clock; b.ReportMetric exposes cells/s for the comparison.
func BenchmarkFleet(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), benchSpec(par))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Cells) != 4 {
					b.Fatalf("cells = %d, want 4", len(res.Cells))
				}
			}
			b.ReportMetric(float64(4*b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}
