package fleet

import (
	"fmt"
	"io"
	"math"
	"sort"

	"mobicore/internal/fleet/store"
)

// Diff is a cross-store comparison: the same cells (matched by identity
// key) run by two code versions, summarized as paired per-cell deltas with
// 95% confidence intervals per matrix group. Because cells match by the
// canonical identity hash, the pairing is exact — seed-for-seed — so
// per-seed workload noise cancels in the difference and the intervals
// answer "did this commit change the physics" directly. That makes the
// diff a CI perf-regression gate: see Regressions.
type Diff struct {
	// Matched counts the cells present in both stores; OnlyA and OnlyB
	// count the unmatched remainder on each side (reported, not an error —
	// two stores may legitimately cover overlapping sweeps).
	Matched int `json:"matched"`
	OnlyA   int `json:"only_a,omitempty"`
	OnlyB   int `json:"only_b,omitempty"`
	// Groups summarizes each (platform, policy, workload, placer) group's
	// matched cells, in canonical identity order.
	Groups []DiffGroup `json:"groups,omitempty"`
}

// DiffGroup is one matrix group's paired B−A summary across its matched
// seeds.
type DiffGroup struct {
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Placer   string `json:"placer"`
	// Seeds is the number of matched cells the group pairs.
	Seeds int `json:"seeds"`

	EnergyJ     PairedStat `json:"energy_j"`
	ThrottleSec PairedStat `json:"throttle_sec"`
	// AvgFPS is meaningful only when HasFrames is set (every matched cell
	// on both sides rendered frames).
	AvgFPS    PairedStat `json:"avg_fps"`
	HasFrames bool       `json:"has_frames,omitempty"`
}

// DiffRecords pairs two record sets by identity key and summarizes the
// per-group deltas. Matched pairs are ordered canonically (identityLess),
// so the diff is a pure function of the two record sets.
func DiffRecords(a, b []store.Record) *Diff {
	bByKey := make(map[string]store.Record, len(b))
	for _, rec := range b {
		bByKey[rec.Key] = rec
	}
	matched := make([]store.Record, 0, len(a))
	for _, rec := range a {
		if _, ok := bByKey[rec.Key]; ok {
			matched = append(matched, rec)
		}
	}
	sort.Slice(matched, func(i, j int) bool { return identityLess(matched[i].Identity, matched[j].Identity) })

	d := &Diff{
		Matched: len(matched),
		OnlyA:   len(a) - len(matched),
		OnlyB:   len(b) - len(matched),
	}
	type group struct {
		g                    DiffGroup
		aEnergy, bEnergy     []float64
		aThrottle, bThrottle []float64
		aFPS, bFPS           []float64
		frames               bool
	}
	var order []string
	groups := map[string]*group{}
	for _, ra := range matched {
		rb := bByKey[ra.Key]
		key := ra.Platform + "\x00" + ra.Policy + "\x00" + ra.Workload + "\x00" + ra.Placer
		g, ok := groups[key]
		if !ok {
			g = &group{
				g: DiffGroup{
					Platform: ra.Platform,
					Policy:   ra.Policy,
					Workload: ra.Workload,
					Placer:   ra.Placer,
				},
				frames: true,
			}
			groups[key] = g
			order = append(order, key)
		}
		g.aEnergy = append(g.aEnergy, ra.EnergyJ)
		g.bEnergy = append(g.bEnergy, rb.EnergyJ)
		g.aThrottle = append(g.aThrottle, ra.ThermalCappedSec)
		g.bThrottle = append(g.bThrottle, rb.ThermalCappedSec)
		g.aFPS = append(g.aFPS, ra.AvgFPS)
		g.bFPS = append(g.bFPS, rb.AvgFPS)
		g.frames = g.frames && ra.HasFrames && rb.HasFrames
	}
	for _, key := range order {
		g := groups[key]
		g.g.Seeds = len(g.aEnergy)
		g.g.EnergyJ = pairedStatOf(g.aEnergy, g.bEnergy)
		g.g.ThrottleSec = pairedStatOf(g.aThrottle, g.bThrottle)
		g.g.HasFrames = g.frames
		if g.frames {
			g.g.AvgFPS = pairedStatOf(g.aFPS, g.bFPS)
		}
		d.Groups = append(d.Groups, g.g)
	}
	return d
}

// LoadStoreDiff opens two store directories and diffs their records.
func LoadStoreDiff(dirA, dirB string) (*Diff, error) {
	load := func(dir string) ([]store.Record, error) {
		st, err := store.Open(dir)
		if err != nil {
			return nil, err
		}
		defer st.Close()
		return st.Records(), nil
	}
	a, err := load(dirA)
	if err != nil {
		return nil, err
	}
	b, err := load(dirB)
	if err != nil {
		return nil, err
	}
	return DiffRecords(a, b), nil
}

// WriteText renders the diff as aligned human-readable text.
func (d *Diff) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "store diff (B-A on matched cells, 95%% CI): %d matched, %d only in A, %d only in B\n",
		d.Matched, d.OnlyA, d.OnlyB); err != nil {
		return err
	}
	for _, g := range d.Groups {
		if _, err := fmt.Fprintf(w, "  %s / %s / %s / %s (%d seeds): energy %+.4g J ci95 [%+.4g, %+.4g] (%+.2f%%); throttle %+.3g s",
			g.Platform, g.Policy, g.Workload, g.Placer, g.Seeds,
			g.EnergyJ.MeanDelta, g.EnergyJ.CI95Lo, g.EnergyJ.CI95Hi, g.EnergyJ.Rel*100,
			g.ThrottleSec.MeanDelta); err != nil {
			return err
		}
		if g.HasFrames {
			if _, err := fmt.Fprintf(w, "; fps %+.3g ci95 [%+.3g, %+.3g]",
				g.AvgFPS.MeanDelta, g.AvgFPS.CI95Lo, g.AvgFPS.CI95Hi); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Regressions returns the groups whose energy moved by more than relTol
// (fractional, e.g. 0.01 = 1%) with a confidence interval that excludes
// zero — the gate condition for "this code version measurably changed the
// physics". A CI that straddles zero is noise at the given seed count; a
// tiny-but-certain delta below relTol is tolerated drift.
func (d *Diff) Regressions(relTol float64) []DiffGroup {
	var out []DiffGroup
	for _, g := range d.Groups {
		excludesZero := (g.EnergyJ.CI95Lo > 0 && g.EnergyJ.CI95Hi > 0) ||
			(g.EnergyJ.CI95Lo < 0 && g.EnergyJ.CI95Hi < 0)
		if excludesZero && math.Abs(g.EnergyJ.Rel) > relTol {
			out = append(out, g)
		}
	}
	return out
}
