package fleet

import (
	"bytes"
	"strings"
	"testing"

	"mobicore/internal/fleet/store"
)

// diffRec synthesizes one store record for diff tests.
func diffRec(policy string, seed int64, energy, throttle, fps float64) store.Record {
	id := store.Identity{
		Platform:   "Nexus 5",
		Policy:     policy,
		Workload:   "busyloop",
		Placer:     "greedy",
		Seed:       seed,
		DurationNS: 1e9,
		TickNS:     1e6,
		SampleNS:   5e7,
	}
	return store.Record{
		Key:              id.Key(),
		Identity:         id,
		Finished:         true,
		ElapsedNS:        id.DurationNS,
		HasFrames:        fps > 0,
		AvgFPS:           fps,
		EnergyJ:          energy,
		ThermalCappedSec: throttle,
	}
}

// TestDiffRecords: matched cells pair by identity key, unmatched cells are
// counted not dropped, and a uniform energy shift surfaces as a tight
// paired delta.
func TestDiffRecords(t *testing.T) {
	var a, b []store.Record
	for seed := int64(1); seed <= 4; seed++ {
		// Seed-dependent baseline, constant +0.5 J shift in B: the paired
		// delta is exact even though the per-seed values vary.
		base := 10 + float64(seed)
		a = append(a, diffRec("mobicore", seed, base, 0, 30+float64(seed)))
		b = append(b, diffRec("mobicore", seed, base+0.5, 0, 30+float64(seed)))
	}
	// Unmatched extras on each side.
	a = append(a, diffRec("android-default", 1, 12, 0, 0))
	b = append(b, diffRec("interactive+load", 1, 12, 0, 0))

	d := DiffRecords(a, b)
	if d.Matched != 4 || d.OnlyA != 1 || d.OnlyB != 1 {
		t.Fatalf("matched/onlyA/onlyB = %d/%d/%d, want 4/1/1", d.Matched, d.OnlyA, d.OnlyB)
	}
	if len(d.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(d.Groups))
	}
	g := d.Groups[0]
	if g.Policy != "mobicore" || g.Seeds != 4 {
		t.Fatalf("group %+v", g)
	}
	if g.EnergyJ.MeanDelta < 0.499 || g.EnergyJ.MeanDelta > 0.501 {
		t.Errorf("energy delta %.4f, want 0.5", g.EnergyJ.MeanDelta)
	}
	// A constant shift has zero variance: the CI collapses onto the mean.
	if g.EnergyJ.CI95Lo < 0.499 || g.EnergyJ.CI95Hi > 0.501 {
		t.Errorf("energy CI [%.4f, %.4f], want degenerate at 0.5", g.EnergyJ.CI95Lo, g.EnergyJ.CI95Hi)
	}
	if !g.HasFrames {
		t.Error("all-frames group not marked HasFrames")
	}
	if g.AvgFPS.MeanDelta != 0 {
		t.Errorf("fps delta %.4f, want 0", g.AvgFPS.MeanDelta)
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4 matched, 1 only in A, 1 only in B") {
		t.Errorf("diff header: %q", buf.String())
	}
}

// TestDiffRegressions: the gate fires only on deltas that are both
// statistically certain (CI excludes zero) and larger than the tolerance.
func TestDiffRegressions(t *testing.T) {
	var a, b []store.Record
	for seed := int64(1); seed <= 4; seed++ {
		base := 10 + float64(seed)
		// mobicore: +5% certain shift — should gate at 1% tolerance.
		a = append(a, diffRec("mobicore", seed, base, 0, 0))
		b = append(b, diffRec("mobicore", seed, base*1.05, 0, 0))
		// android-default: noise straddling zero — must not gate.
		noise := 0.3 * float64(1-2*(seed%2))
		a = append(a, diffRec("android-default", seed, base, 0, 0))
		b = append(b, diffRec("android-default", seed, base+noise, 0, 0))
	}
	d := DiffRecords(a, b)
	regs := d.Regressions(0.01)
	if len(regs) != 1 || regs[0].Policy != "mobicore" {
		t.Fatalf("regressions %+v, want exactly the mobicore group", regs)
	}
	// At a 10% tolerance the certain 5% shift is tolerated drift.
	if regs := d.Regressions(0.10); len(regs) != 0 {
		t.Errorf("10%% tolerance still gated: %+v", regs)
	}
}

// TestLoadStoreDiffSelf: a store diffed against itself is all-zero and
// gates nothing — the CI smoke's sanity check.
func TestLoadStoreDiffSelf(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		st.Put(diffRec("mobicore", seed, 10+float64(seed), 0, 0))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := LoadStoreDiff(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Matched != 3 || d.OnlyA != 0 || d.OnlyB != 0 {
		t.Fatalf("self diff %+v", d)
	}
	if len(d.Groups) != 1 || d.Groups[0].EnergyJ.MeanDelta != 0 {
		t.Fatalf("self diff groups %+v", d.Groups)
	}
	if regs := d.Regressions(0); len(regs) != 0 {
		t.Errorf("self diff gated: %+v", regs)
	}
}
