package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mobicore/internal/games"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/scenario"
	"mobicore/internal/sim"
	"mobicore/internal/workload"
)

// gameFactory builds a fresh Angry Birds session per cell.
func gameFactory(t *testing.T) WorkloadFactory {
	t.Helper()
	return WorkloadFactory{
		Name: "Angry Birds",
		New: func() ([]workload.Workload, error) {
			g, err := games.New(games.AngryBirds())
			if err != nil {
				return nil, err
			}
			return []workload.Workload{g}, nil
		},
	}
}

// busyFactory builds a fresh busy-loop workload per cell.
func busyFactory(util float64, threads int) WorkloadFactory {
	return WorkloadFactory{
		Name: "busyloop",
		New: func() ([]workload.Workload, error) {
			w, err := workload.NewBusyLoop(workload.BusyLoopConfig{
				TargetUtil: util,
				Threads:    threads,
				RefFreq:    2265600000,
			})
			if err != nil {
				return nil, err
			}
			return []workload.Workload{w}, nil
		},
	}
}

// scenarioFactory builds a fresh generator-mode day-in-the-life workload
// per cell; the phase walk draws from each cell's session rng, so the seed
// axis of the matrix fans out into distinct synthetic users.
func scenarioFactory(profile string) WorkloadFactory {
	return WorkloadFactory{
		Name: "scenario-" + profile,
		New: func() ([]workload.Workload, error) {
			prof, err := scenario.ProfileByName(profile)
			if err != nil {
				return nil, err
			}
			w, err := scenario.FromProfile(prof)
			if err != nil {
				return nil, err
			}
			return []workload.Workload{w}, nil
		},
	}
}

// matrixSpec is the 2-platform × 2-policy × 3-seed matrix the determinism
// tests run.
func matrixSpec(par int) Spec {
	return Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default"), Policy("mobicore")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2, 3},
		Duration:  time.Second,
		Parallel:  par,
	}
}

// TestCellsCrossProduct locks the expansion order: platform-major, then
// policy, workload, placer, seed.
func TestCellsCrossProduct(t *testing.T) {
	spec := matrixSpec(1)
	spec.Placers = []string{sim.PlacerGreedy, sim.PlacerEAS}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*1*2*3 {
		t.Fatalf("cells = %d, want 24", len(cells))
	}
	first := cells[0]
	if first.Platform.Name != "Nexus 5" || first.Policy.Name != "android-default" ||
		first.Placer != sim.PlacerGreedy || first.Seed != 1 {
		t.Errorf("first cell %+v out of order", first)
	}
	// Seed is the innermost dimension.
	if cells[1].Seed != 2 || cells[1].Placer != sim.PlacerGreedy {
		t.Errorf("second cell should advance seed first: %+v", cells[1])
	}
	// Placer advances before policy.
	if cells[3].Placer != sim.PlacerEAS || cells[3].Policy.Name != "android-default" {
		t.Errorf("fourth cell should advance placer before policy: %+v", cells[3])
	}
	if cells[len(cells)-1].Platform.Name != "Nexus 6P" || cells[len(cells)-1].Seed != 3 {
		t.Errorf("last cell %+v out of order", cells[len(cells)-1])
	}
}

func TestSpecRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := (Spec{}).Cells(); err == nil {
		t.Error("empty spec accepted")
	}
	spec := matrixSpec(1)
	spec.Duration = 0
	if _, err := spec.Cells(); err == nil {
		t.Error("zero-duration cross product accepted")
	}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("Run accepted invalid spec")
	}
}

// TestRunDeterministicAcrossParallelism is the acceptance property: the
// same matrix at Parallel 1 and Parallel 8 produces byte-identical text
// and JSON, aggregates included.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	render := func(par int) (string, string) {
		t.Helper()
		res, err := Run(context.Background(), matrixSpec(par))
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete || len(res.Cells) != 12 {
			t.Fatalf("parallel %d: incomplete %v, cells %d", par, res.Incomplete, len(res.Cells))
		}
		var txt bytes.Buffer
		if err := res.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return txt.String(), string(js)
	}
	serialTxt, serialJSON := render(1)
	parTxt, parJSON := render(8)
	if serialTxt != parTxt {
		t.Errorf("text output differs between Parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialTxt, parTxt)
	}
	if serialJSON != parJSON {
		t.Error("JSON output differs between Parallel 1 and 8")
	}
}

// TestAggregates checks the cross-seed statistics: one group per matrix
// coordinate, three seeds each, internally consistent distributions.
func TestAggregates(t *testing.T) {
	res, err := Run(context.Background(), matrixSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregates) != 4 {
		t.Fatalf("aggregates = %d, want 4 groups", len(res.Aggregates))
	}
	for _, a := range res.Aggregates {
		if a.Seeds != 3 {
			t.Errorf("%s/%s: seeds = %d, want 3", a.Platform, a.Policy, a.Seeds)
		}
		e := a.EnergyJ
		if e.Mean <= 0 {
			t.Errorf("%s/%s: energy mean %.3f not positive", a.Platform, a.Policy, e.Mean)
		}
		if e.Min > e.P50 || e.P50 > e.Max || e.Mean < e.Min || e.Mean > e.Max || e.P95 < e.P50 {
			t.Errorf("%s/%s: inconsistent energy stat %+v", a.Platform, a.Policy, e)
		}
		if a.HasFrames {
			t.Errorf("%s/%s: busyloop cells should not report frames", a.Platform, a.Policy)
		}
	}
	// Grouping follows first-cell order: platform-major, policy within.
	if res.Aggregates[0].Platform != "Nexus 5" || res.Aggregates[0].Policy != "android-default" ||
		res.Aggregates[1].Policy != "mobicore" || res.Aggregates[2].Platform != "Nexus 6P" {
		t.Errorf("aggregate order broken: %+v", res.Aggregates)
	}
}

// TestRunCanceled: a canceled context surfaces the completed cells as a
// partial result.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, matrixSpec(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run should still return the partial result")
	}
	if !res.Incomplete {
		t.Error("canceled run should be marked incomplete")
	}
	if res.Total != 12 {
		t.Errorf("total = %d, want 12", res.Total)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "of 12 cells") {
		t.Errorf("partial rendering missing cell count:\n%s", buf.String())
	}
}

// TestRunDeadline: an expired deadline is cancellation, not a cell
// failure — completed cells survive into the partial result.
func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	res, err := Run(ctx, matrixSpec(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Incomplete {
		t.Fatalf("deadline run should return a partial result, got %+v", res)
	}
}

// TestUntilDoneReportsFinished: duration-shaped cells finish by
// definition; an UntilDone cell whose workloads never complete reports
// Finished false instead of passing off a truncated run as done.
func TestUntilDoneReportsFinished(t *testing.T) {
	spec := Spec{
		Platforms: []platform.Platform{platform.Nexus5()},
		Policies:  []PolicyFactory{Policy("android-default")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)}, // never Done
		Duration:  500 * time.Millisecond,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cells[0].Finished {
		t.Error("duration cell should report Finished")
	}
	spec.UntilDone = true
	res, err = Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Finished {
		t.Error("UntilDone cell with unfinished workloads should report Finished false")
	}
}

// TestRunCellError: a failing cell aborts the run with a deterministic,
// cell-identifying error.
func TestRunCellError(t *testing.T) {
	spec := matrixSpec(4)
	spec.Policies = append(spec.Policies, PolicyFactory{
		Name: "broken",
		New: func(platform.Platform) (policy.Manager, error) {
			return nil, errors.New("boom")
		},
	})
	_, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("run with failing policy factory succeeded")
	}
	if !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error %q does not identify the failing cell", err)
	}
}

// TestRunMatchesSerialSessions: each fleet cell's report equals the report
// of the same session run directly through sim — the driver adds ordering
// and statistics, never different physics.
func TestRunMatchesSerialSessions(t *testing.T) {
	spec := matrixSpec(4)
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{0, 5, 11} {
		sess, err := cells[want].session()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Cells[want].Report
		if got.EnergyJ != direct.EnergyJ || got.AvgFreqHz != direct.AvgFreqHz ||
			got.ExecutedCycles != direct.ExecutedCycles {
			t.Errorf("cell %d: fleet report differs from direct session (energy %v vs %v)",
				want, got.EnergyJ, direct.EnergyJ)
		}
	}
}

// TestGameCellsReportFrames: game workloads surface FPS/drop in cells and
// aggregates.
func TestGameCellsReportFrames(t *testing.T) {
	spec := Spec{
		Platforms: []platform.Platform{platform.Nexus5()},
		Policies:  []PolicyFactory{Policy("android-default")},
		Workloads: []WorkloadFactory{gameFactory(t)},
		Seeds:     []int64{1, 2},
		Duration:  time.Second,
		Parallel:  2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if !c.HasFrames || c.AvgFPS <= 0 {
			t.Errorf("cell %d: frames not reported (fps %.1f)", c.Index, c.AvgFPS)
		}
	}
	if len(res.Aggregates) != 1 || !res.Aggregates[0].HasFrames {
		t.Fatalf("aggregate should carry frame stats: %+v", res.Aggregates)
	}
	if res.Aggregates[0].AvgFPS.Mean <= 0 {
		t.Errorf("aggregate fps mean %.1f not positive", res.Aggregates[0].AvgFPS.Mean)
	}
}
