package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobicore/internal/platform"
)

// fuseSpec builds a randomized-but-reproducible matrix: both platforms, both
// policies, a fixed-seed random assortment of busy loops plus a trace-driven
// game. The randomness is in the spec construction only — every run of the
// test sees the same matrix, but the utilizations and thread counts are not
// hand-picked round numbers the fast path could accidentally specialize to.
func fuseSpec(t *testing.T, par int, noFuse bool, storeDir, traceDir string) Spec {
	t.Helper()
	rng := rand.New(rand.NewSource(0xf05e))
	workloads := []WorkloadFactory{gameFactory(t), scenarioFactory("dayinlife")}
	for i := 0; i < 3; i++ {
		util := 0.15 + 0.7*rng.Float64()
		threads := 1 + rng.Intn(6)
		f := busyFactory(util, threads)
		// The workload name is part of the cell identity key; three
		// busyloops with different shapes must not collide in the store.
		f.Name = fmt.Sprintf("busy-u%03.0f-t%d", util*100, threads)
		workloads = append(workloads, f)
	}
	return Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default"), Policy("mobicore")},
		Workloads: workloads,
		Seeds:     []int64{1, 2},
		Duration:  time.Second,
		Parallel:  par,
		NoFuse:    noFuse,
		StoreDir:  storeDir,
		TraceDir:  traceDir,
	}
}

// TestFleetFusedMatchesNoFuseAcrossParallelism is the widest identity net for
// the quiescent-tick fast path: a randomized fleet matrix must persist
// byte-identical artifacts — cells.jsonl, the store CSV, the result CSV, and
// every decompressed per-tick trace — whether the engine fuses or not, and
// whether the fleet runs serial or fanned out. NoFuse is not part of a
// cell's identity key, so the fused and slow stores are directly comparable.
func TestFleetFusedMatchesNoFuseAcrossParallelism(t *testing.T) {
	type artifacts struct {
		jsonl, storeCSV, runCSV []byte
		traces                  map[string][]byte
	}
	run := func(par int, noFuse bool) artifacts {
		t.Helper()
		dir := t.TempDir()
		traceDir := filepath.Join(dir, "traces")
		spec := fuseSpec(t, par, noFuse, filepath.Join(dir, "store"), traceDir)
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		jsonl, storeCSV := readStoreFiles(t, spec.StoreDir)
		traces := make(map[string][]byte, len(res.Cells))
		for _, c := range res.Cells {
			f, err := os.Open(filepath.Join(traceDir, TraceFileName(c.Key)))
			if err != nil {
				t.Fatal(err)
			}
			gz, err := gzip.NewReader(f)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(gz)
			if err != nil {
				t.Fatal(err)
			}
			if err := gz.Close(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			traces[c.Key] = raw
		}
		return artifacts{jsonl: jsonl, storeCSV: storeCSV, runCSV: buf.Bytes(), traces: traces}
	}
	ref := run(1, true) // serial slow path is the ground truth
	for _, v := range []struct {
		name   string
		par    int
		noFuse bool
	}{
		{"fused serial", 1, false},
		{"fused parallel", 8, false},
		{"nofuse parallel", 8, true},
	} {
		got := run(v.par, v.noFuse)
		if !bytes.Equal(got.jsonl, ref.jsonl) {
			t.Errorf("%s: cells.jsonl diverged from serial NoFuse", v.name)
		}
		if !bytes.Equal(got.storeCSV, ref.storeCSV) {
			t.Errorf("%s: store CSV diverged from serial NoFuse", v.name)
		}
		if !bytes.Equal(got.runCSV, ref.runCSV) {
			t.Errorf("%s: result CSV diverged from serial NoFuse", v.name)
		}
		if len(got.traces) != len(ref.traces) {
			t.Fatalf("%s: %d traces, want %d", v.name, len(got.traces), len(ref.traces))
		}
		for key, want := range ref.traces {
			if !bytes.Equal(got.traces[key], want) {
				t.Errorf("%s: trace %s diverged from serial NoFuse", v.name, key)
			}
		}
	}
}
