package fleet

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobicore/internal/fleet/store"
	"mobicore/internal/platform"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// readStoreFiles returns the cells.jsonl bytes and a full-store CSV render.
func readStoreFiles(t *testing.T, dir string) (jsonl, csv []byte) {
	t.Helper()
	jsonl, err := os.ReadFile(filepath.Join(dir, store.CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return jsonl, buf.Bytes()
}

// TestStoreDeterministicAcrossParallelism: the persisted JSONL and CSV are
// byte-identical whether the fleet ran serial or fanned out — the store
// sorts by identity key, so scheduling can never show through. (CI runs
// this under -race, which also guards the worker-pool handoff.)
func TestStoreDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) (jsonl, storeCSV, runCSV []byte) {
		t.Helper()
		dir := t.TempDir()
		spec := matrixSpec(par)
		spec.StoreDir = dir
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		jsonl, storeCSV = readStoreFiles(t, dir)
		return jsonl, storeCSV, buf.Bytes()
	}
	j1, s1, r1 := run(1)
	j8, s8, r8 := run(8)
	if !bytes.Equal(j1, j8) {
		t.Error("cells.jsonl differs between parallel 1 and 8")
	}
	if !bytes.Equal(s1, s8) {
		t.Error("store CSV differs between parallel 1 and 8")
	}
	if !bytes.Equal(r1, r8) {
		t.Error("result CSV differs between parallel 1 and 8")
	}
}

// TestResumeMatchesColdRun: filling a store from a partial run plus a
// resumed completion produces byte-identical JSONL and CSV to a cold full
// run, the resumed run executes zero sessions when everything is cached,
// and its text report equals the cold one's.
func TestResumeMatchesColdRun(t *testing.T) {
	coldDir := t.TempDir()
	coldSpec := matrixSpec(4)
	coldSpec.StoreDir = coldDir
	coldRes, err := Run(context.Background(), coldSpec)
	if err != nil {
		t.Fatal(err)
	}
	coldJSONL, coldCSV := readStoreFiles(t, coldDir)
	var coldText, coldRunCSV bytes.Buffer
	if err := coldRes.WriteText(&coldText); err != nil {
		t.Fatal(err)
	}
	if err := coldRes.WriteCSV(&coldRunCSV); err != nil {
		t.Fatal(err)
	}

	// Partial pass: only two of the three seeds.
	warmDir := t.TempDir()
	partial := matrixSpec(4)
	partial.Seeds = []int64{1, 3}
	partial.StoreDir = warmDir
	if _, err := Run(context.Background(), partial); err != nil {
		t.Fatal(err)
	}

	// Resumed full pass: executes only the missing seed-2 cells.
	resumed := matrixSpec(4)
	resumed.StoreDir = warmDir
	resumed.Resume = true
	res, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != 8 {
		t.Errorf("resumed run cached %d cells, want 8 (2 platforms × 2 policies × 2 stored seeds)", res.Cached)
	}
	warmJSONL, warmCSV := readStoreFiles(t, warmDir)
	if !bytes.Equal(coldJSONL, warmJSONL) {
		t.Error("resumed store differs from cold store")
	}
	if !bytes.Equal(coldCSV, warmCSV) {
		t.Error("resumed store CSV differs from cold store CSV")
	}
	var warmRunCSV bytes.Buffer
	if err := res.WriteCSV(&warmRunCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldRunCSV.Bytes(), warmRunCSV.Bytes()) {
		t.Error("resumed per-run CSV differs from cold per-run CSV")
	}

	// Fully-warm pass: zero executions, identical text (modulo the cached
	// banner) and CSV.
	full := matrixSpec(4)
	full.StoreDir = warmDir
	full.Resume = true
	res, err = Run(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != res.Total || res.Cached != 12 {
		t.Errorf("fully-warm run cached %d of %d, want all 12", res.Cached, res.Total)
	}
	for _, c := range res.Cells {
		if !c.Cached {
			t.Fatalf("cell %d executed on a fully-warm resume", c.Index)
		}
	}
	var warmText bytes.Buffer
	if err := res.WriteText(&warmText); err != nil {
		t.Fatal(err)
	}
	wantBanner := "fleet: 12 of 12 cells (12 cached)\n"
	if !bytes.HasPrefix(warmText.Bytes(), []byte(wantBanner)) {
		t.Errorf("warm banner missing: %q", warmText.String()[:40])
	}
	coldBody := bytes.TrimPrefix(coldText.Bytes(), []byte("fleet: 12 of 12 cells\n"))
	warmBody := bytes.TrimPrefix(warmText.Bytes(), []byte(wantBanner))
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm text body differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldBody, warmBody)
	}
}

func TestResumeRequiresStore(t *testing.T) {
	spec := matrixSpec(1)
	spec.Resume = true
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("Resume without StoreDir accepted")
	}
}

// TestTraceExport: every executed cell exports a gzip JSONL trace whose
// per-tick energy integral reproduces the cell's reported joules, and
// cached cells are not re-traced.
func TestTraceExport(t *testing.T) {
	dir := t.TempDir()
	traceDir := filepath.Join(dir, "traces")
	spec := Spec{
		Platforms: []platform.Platform{platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2},
		Duration:  time.Second,
		StoreDir:  filepath.Join(dir, "store"),
		TraceDir:  traceDir,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	clusters := len(platform.Nexus6P().ClusterSpecs())
	for _, c := range res.Cells {
		path := filepath.Join(traceDir, TraceFileName(c.Key))
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("cell %d: %v", c.Index, err)
		}
		gz, err := gzip.NewReader(f)
		if err != nil {
			t.Fatal(err)
		}
		var (
			ticks  int
			joules float64
		)
		sc := bufio.NewScanner(gz)
		for sc.Scan() {
			var s TraceSample
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				t.Fatalf("cell %d tick %d: %v", c.Index, ticks, err)
			}
			if len(s.ClusterW) != clusters {
				t.Fatalf("cell %d: %d cluster entries, want %d", c.Index, len(s.ClusterW), clusters)
			}
			joules += s.SystemW * s.DtSec
			ticks++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		gz.Close()
		f.Close()
		if ticks != 1000 {
			t.Errorf("cell %d: %d trace ticks, want 1000", c.Index, ticks)
		}
		if math.Abs(joules-c.Report.EnergyJ) > 1e-9*(1+c.Report.EnergyJ) {
			t.Errorf("cell %d: trace integral %.9f J != report %.9f J", c.Index, joules, c.Report.EnergyJ)
		}
	}

	// A resumed run answers from the store and must not rewrite traces.
	for _, c := range res.Cells {
		if err := os.Remove(filepath.Join(traceDir, TraceFileName(c.Key))); err != nil {
			t.Fatal(err)
		}
	}
	spec.Resume = true
	res, err = Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != 2 {
		t.Fatalf("resume cached %d cells, want 2", res.Cached)
	}
	left, err := filepath.Glob(filepath.Join(traceDir, "*.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("cached cells re-traced: %v", left)
	}
}

// TestResultCSVGolden locks the CSV export byte for byte — the contract
// `mobifleet -csv` prints. Regenerate with -update-golden after an
// intentional schema or physics change.
func TestResultCSVGolden(t *testing.T) {
	spec := Spec{
		Platforms: []platform.Platform{platform.Nexus5(), platform.Nexus6P()},
		Policies:  []PolicyFactory{Policy("android-default"), Policy("mobicore")},
		Workloads: []WorkloadFactory{busyFactory(0.5, 4)},
		Seeds:     []int64{1, 2},
		Duration:  time.Second,
		Parallel:  4,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "csv_golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("CSV drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestCIShrinksWithSeeds is the seed-count bump test: growing a cell
// group from 10 to 100 seeds must shrink the energy CI half-width — the
// 1/√n contraction that makes 100-seed sweeps worth their compute. The
// run is deterministic, so the tolerance guards modelling drift rather
// than randomness: at 10× the seeds the expected contraction is ~0.32,
// and the assertion allows anything below 0.8.
func TestCIShrinksWithSeeds(t *testing.T) {
	run := func(n int) Stat {
		t.Helper()
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		spec := Spec{
			Platforms: []platform.Platform{platform.Nexus5()},
			Policies:  []PolicyFactory{Policy("android-default")},
			Workloads: []WorkloadFactory{gameFactory(t)},
			Seeds:     seeds,
			Duration:  500 * time.Millisecond,
		}
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregates[0].EnergyJ
	}
	ten := run(10)
	hundred := run(100)
	hwTen := (ten.CI95Hi - ten.CI95Lo) / 2
	hwHundred := (hundred.CI95Hi - hundred.CI95Lo) / 2
	if hwTen <= 0 {
		t.Fatalf("10-seed CI half-width %.6g not positive — did the workload lose its seed sensitivity?", hwTen)
	}
	if hwHundred <= 0 {
		t.Fatalf("100-seed CI half-width %.6g not positive", hwHundred)
	}
	if ratio := hwHundred / hwTen; ratio > 0.8 {
		t.Errorf("CI half-width shrank only %.2f× (10 seeds ±%.4g, 100 seeds ±%.4g); expected ~0.32",
			ratio, hwTen, hwHundred)
	}
}
