package remote

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// BenchmarkShardScaling measures distributed-study throughput against the
// worker count: one coordinator, W workers (each running its shards
// serially, Parallel=1, so scaling comes from the fleet of workers rather
// than in-process fan-out), 8 shards over a 32-cell matrix of 4s sessions.
// b.ReportMetric exposes cells/s; on a multi-core host 2 workers should
// clear well over 1.7× the single-worker rate — the coordination tax
// (HTTP/JSON, manifest verification, per-shard store flushes) stays small
// against the simulation work.
func BenchmarkShardScaling(b *testing.B) {
	job := JobSpec{
		Platforms:  []string{"nexus5"},
		Policies:   []string{"android-default", "mobicore"},
		Seeds:      seedRange(1, 16),
		Workloads:  []WorkloadSpec{{Kind: "busyloop", Util: 0.5, Threads: 4}},
		DurationNS: int64(4 * time.Second),
	}
	const cells = 32
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				coord, err := NewCoordinator(CoordinatorConfig{
					Job:      job,
					StoreDir: b.TempDir(),
					Shards:   8,
					// Tight claim polling: on a study this small the
					// default 200ms idle poll would dominate the tail
					// where the last shards are leased out.
					RetryMS: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				srv := httptest.NewServer(coord)
				scratch := b.TempDir()
				b.StartTimer()

				var wg sync.WaitGroup
				errs := make([]error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						_, errs[w] = RunWorker(context.Background(), WorkerConfig{
							Coordinator: srv.URL,
							Dir:         filepath.Join(scratch, fmt.Sprintf("w%d", w)),
							Parallel:    1,
						})
					}(w)
				}
				wg.Wait()

				b.StopTimer()
				for w, err := range errs {
					if err != nil {
						b.Fatalf("worker %d: %v", w, err)
					}
				}
				select {
				case <-coord.Done():
				default:
					b.Fatal("study not done after workers drained it")
				}
				srv.Close()
				if err := coord.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			rate := float64(cells*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "cells/s")
			// Flat cells/s/worker across the worker counts means the
			// coordinator adds no per-worker overhead; a drop quantifies
			// the shard-protocol cost.
			b.ReportMetric(rate/float64(workers), "cells/s/worker")
		})
	}
}
