package remote

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/fleet/shard"
	"mobicore/internal/fleet/store"
)

// CoordinatorConfig describes one distributed study.
type CoordinatorConfig struct {
	// Job is the study matrix, in wire form.
	Job JobSpec
	// StoreDir is the coordinator's result store. It is opened (and
	// locked) for the coordinator's lifetime; completed shard fragments
	// merge into it and flush after every shard, so a restarted
	// coordinator resumes from whatever finished.
	StoreDir string
	// Shards is how many key-range shards to cut the matrix into —
	// typically a small multiple of the worker count, so a slow worker
	// sheds load to fast ones.
	Shards int
	// LeaseTimeout bounds how long a claimed shard may stay silent before
	// the coordinator offers it to another worker. Zero means a minute.
	LeaseTimeout time.Duration
	// RetryMS is the poll interval handed to workers when every remaining
	// shard is leased out. Zero means 200ms.
	RetryMS int
}

// JobInfo is the GET /v1/job response: everything a worker needs to lower
// the job and verify shard manifests against its own expansion.
type JobInfo struct {
	Job        JobSpec `json:"job"`
	SpecHash   string  `json:"spec_hash"`
	Shards     int     `json:"shards"`
	TotalCells int     `json:"total_cells"`
}

// ClaimRequest is the POST /v1/claim body.
type ClaimRequest struct {
	// Worker names the claimant, for status output only.
	Worker string `json:"worker,omitempty"`
}

// ClaimResponse answers a claim: exactly one of Done, Manifest, or RetryMS
// is meaningful. Cached carries the coordinator store's records inside the
// shard's key range, so a worker re-running a shard after a predecessor
// died mid-way executes only the missing cells.
type ClaimResponse struct {
	// Done reports that every shard has completed — the worker can exit.
	Done bool `json:"done,omitempty"`
	// Manifest is the claimed work assignment, nil when nothing is
	// claimable right now.
	Manifest *shard.Manifest `json:"manifest,omitempty"`
	// Cached holds already-stored records within the manifest's range.
	Cached []store.Record `json:"cached,omitempty"`
	// RetryMS asks the worker to poll again after this many milliseconds.
	RetryMS int `json:"retry_ms,omitempty"`
}

// StatusShard is one shard's row in the GET /v1/status response.
type StatusShard struct {
	Index  int    `json:"index"`
	Cells  int    `json:"cells"`
	State  string `json:"state"`
	Worker string `json:"worker,omitempty"`
}

// Status is the GET /v1/status response.
type Status struct {
	SpecHash    string        `json:"spec_hash"`
	TotalCells  int           `json:"total_cells"`
	StoredCells int           `json:"stored_cells"`
	DoneShards  int           `json:"done_shards"`
	Shards      []StatusShard `json:"shards"`
}

type shardPhase int

const (
	shardPending shardPhase = iota
	shardLeased
	shardDone
)

func (p shardPhase) String() string {
	switch p {
	case shardLeased:
		return "leased"
	case shardDone:
		return "done"
	}
	return "pending"
}

type shardState struct {
	phase  shardPhase
	worker string
	expiry time.Time
}

// Coordinator owns a distributed study: the shard plan, the lease table,
// and the result store. It is an http.Handler; serve it however fits
// (http.Server in mobifleetd, httptest in tests).
type Coordinator struct {
	cfg       CoordinatorConfig
	manifests []shard.Manifest
	specHash  string
	total     int

	mu     sync.Mutex
	st     *store.Store
	states []shardState
	closed bool

	doneOnce sync.Once
	doneCh   chan struct{}

	mux *http.ServeMux
}

// NewCoordinator validates the job, plans its shards, opens (and locks)
// the store, and marks any shard the store already fully covers as done —
// a restarted coordinator never re-issues finished work.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("remote: coordinator needs a store directory")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("remote: coordinator needs at least 1 shard, got %d", cfg.Shards)
	}
	spec, err := cfg.Job.FleetSpec()
	if err != nil {
		return nil, err
	}
	manifests, err := spec.ShardPlan(cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = time.Minute
	}
	if cfg.RetryMS <= 0 {
		cfg.RetryMS = 200
	}
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		manifests: manifests,
		specHash:  manifests[0].SpecHash,
		st:        st,
		states:    make([]shardState, len(manifests)),
		doneCh:    make(chan struct{}),
	}
	for _, m := range manifests {
		c.total += m.Cells
	}
	for i, m := range manifests {
		if c.storedInRange(m) == m.Cells {
			c.states[i].phase = shardDone
		}
	}
	c.checkAllDone()
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /v1/job", c.handleJob)
	c.mux.HandleFunc("POST /v1/claim", c.handleClaim)
	c.mux.HandleFunc("POST /v1/complete", c.handleComplete)
	c.mux.HandleFunc("GET /v1/status", c.handleStatus)
	return c, nil
}

// storedInRange counts store records inside a shard's key range. Callers
// must not hold records across Flush; counting is enough here.
func (c *Coordinator) storedInRange(m shard.Manifest) int {
	n := 0
	for _, rec := range c.st.Records() {
		if m.Contains(rec.Key) {
			n++
		}
	}
	return n
}

// Done is closed once every shard has completed and flushed.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Close flushes and releases the store. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if err := c.st.Flush(); err != nil {
		c.st.Close()
		return err
	}
	return c.st.Close()
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, JobInfo{
		Job:        c.cfg.Job,
		SpecHash:   c.specHash,
		Shards:     len(c.manifests),
		TotalCells: c.total,
	})
}

// handleClaim leases the first claimable shard: pending, or leased past
// its expiry (the previous claimant is presumed dead — shards are
// idempotent, so even a zombie completing later is harmless).
func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		http.Error(w, fmt.Sprintf("remote: bad claim body: %v", err), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	done := 0
	for i := range c.states {
		s := &c.states[i]
		switch {
		case s.phase == shardDone:
			done++
		case s.phase == shardPending, s.phase == shardLeased && now.After(s.expiry):
			s.phase = shardLeased
			s.worker = req.Worker
			s.expiry = now.Add(c.cfg.LeaseTimeout)
			m := c.manifests[i]
			resp := ClaimResponse{Manifest: &m}
			for _, rec := range c.st.Records() {
				if m.Contains(rec.Key) {
					resp.Cached = append(resp.Cached, rec)
				}
			}
			writeJSON(w, resp)
			return
		}
	}
	if done == len(c.states) {
		writeJSON(w, ClaimResponse{Done: true})
		return
	}
	writeJSON(w, ClaimResponse{RetryMS: c.cfg.RetryMS})
}

// handleComplete ingests one shard's JSONL store fragment. Every record is
// re-verified — key integrity, range membership, and (via PutChecked)
// consistency with anything already stored — then the store flushes, so a
// coordinator crash after the response never loses acknowledged work.
// Completes are idempotent: a re-run shard re-submits identical bytes.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	idx, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || idx < 0 || idx >= len(c.manifests) {
		http.Error(w, fmt.Sprintf("remote: bad shard index %q", r.URL.Query().Get("shard")), http.StatusBadRequest)
		return
	}
	if got := r.URL.Query().Get("spec_hash"); got != c.specHash {
		http.Error(w, fmt.Sprintf("remote: spec hash %q does not match job %q — this fragment was cut from a different spec", got, c.specHash), http.StatusBadRequest)
		return
	}
	m := c.manifests[idx]
	seen := make(map[string]bool, m.Cells)
	var recs []store.Record
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec store.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			http.Error(w, fmt.Sprintf("remote: bad fragment record: %v", err), http.StatusBadRequest)
			return
		}
		if rec.Identity.Key() != rec.Key {
			http.Error(w, fmt.Sprintf("remote: record key %s does not match its identity", rec.Key), http.StatusBadRequest)
			return
		}
		if !m.Contains(rec.Key) {
			http.Error(w, fmt.Sprintf("remote: record %s is outside shard %d's key range", rec.Key, idx), http.StatusBadRequest)
			return
		}
		if seen[rec.Key] {
			http.Error(w, fmt.Sprintf("remote: duplicate record %s in fragment", rec.Key), http.StatusBadRequest)
			return
		}
		seen[rec.Key] = true
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, fmt.Sprintf("remote: reading fragment: %v", err), http.StatusBadRequest)
		return
	}
	if len(recs) != m.Cells {
		http.Error(w, fmt.Sprintf("remote: fragment holds %d records, shard %d expects %d", len(recs), idx, m.Cells), http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		http.Error(w, "remote: coordinator is shut down", http.StatusServiceUnavailable)
		return
	}
	for _, rec := range recs {
		if _, err := c.st.PutChecked(rec); err != nil {
			// Two workers produced different results for the same cell:
			// determinism is broken somewhere, and silently picking a
			// winner would corrupt the study. Refuse loudly.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	}
	if err := c.st.Flush(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.states[idx].phase = shardDone
	c.states[idx].worker = ""
	c.checkAllDone()
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		SpecHash:    c.specHash,
		TotalCells:  c.total,
		StoredCells: c.st.Len(),
	}
	for i, s := range c.states {
		if s.phase == shardDone {
			st.DoneShards++
		}
		st.Shards = append(st.Shards, StatusShard{
			Index:  i,
			Cells:  c.manifests[i].Cells,
			State:  s.phase.String(),
			Worker: s.worker,
		})
	}
	writeJSON(w, st)
}

// checkAllDone closes the done channel once every shard completed. Callers
// hold mu (or, from NewCoordinator, have exclusive access).
func (c *Coordinator) checkAllDone() {
	for _, s := range c.states {
		if s.phase != shardDone {
			return
		}
	}
	c.doneOnce.Do(func() { close(c.doneCh) })
}

// Spec re-exports the lowered fleet spec for callers that want the
// coordinator's view of the matrix (e.g. a serial reference run).
func (c *Coordinator) Spec() (fleet.Spec, error) { return c.cfg.Job.FleetSpec() }
