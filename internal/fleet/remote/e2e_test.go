package remote

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobicore/internal/fleet/store"
)

// The multi-process smoke re-execs this test binary as worker processes:
// TestMain diverts to testWorkerMain when the coordinator-URL env var is
// set, so a "worker process" is the real RunWorker code path over a real
// TCP connection — not a goroutine pretending.
const (
	envCoord = "MOBIFLEETD_TEST_COORD"
	envDir   = "MOBIFLEETD_TEST_DIR"
	envMode  = "MOBIFLEETD_TEST_MODE"
)

func TestMain(m *testing.M) {
	if url := os.Getenv(envCoord); url != "" {
		os.Exit(testWorkerMain(url))
	}
	os.Exit(m.Run())
}

func testWorkerMain(url string) int {
	if os.Getenv(envMode) == "abandon" {
		// Claim a shard and exit without completing it — a worker dying
		// mid-shard, minus the nondeterminism of actually killing one.
		cl := &Client{Base: url}
		claim, err := cl.Claim(context.Background(), "casualty")
		if err != nil || claim.Manifest == nil {
			fmt.Fprintf(os.Stderr, "abandon worker: claim = %+v, %v\n", claim, err)
			return 1
		}
		fmt.Printf("abandoned shard %d\n", claim.Manifest.Index)
		return 0
	}
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: url,
		Dir:         os.Getenv(envDir),
		Parallel:    2,
		Name:        fmt.Sprintf("pid%d", os.Getpid()),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		return 1
	}
	fmt.Printf("shards=%d cells=%d cached=%d\n", stats.Shards, stats.Cells, stats.Cached)
	return 0
}

// TestMultiProcessStudy: a coordinator plus two worker processes drain a
// 100-cell study over real HTTP — after one claimed shard is abandoned by
// a dying worker — and the merged store and CSV are byte-identical to the
// single-process run.
func TestMultiProcessStudy(t *testing.T) {
	job := JobSpec{
		Platforms:  []string{"nexus5"},
		Policies:   []string{"android-default", "mobicore"},
		Seeds:      seedRange(1, 50),
		Workloads:  []WorkloadSpec{{Kind: "busyloop", Util: 0.5, Threads: 4}},
		DurationNS: int64(100 * time.Millisecond),
	}
	refDir := serialStore(t, job)

	coordDir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{
		Job:          job,
		StoreDir:     coordDir,
		Shards:       8,
		LeaseTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	workerCmd := func(mode string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			envCoord+"="+srv.URL,
			envDir+"="+t.TempDir(),
			envMode+"="+mode,
		)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		return cmd, &out
	}

	// One worker claims a shard and dies before completing it.
	abandon, aOut := workerCmd("abandon")
	if err := abandon.Run(); err != nil {
		t.Fatalf("abandon worker: %v\n%s", err, aOut)
	}
	if !strings.Contains(aOut.String(), "abandoned shard") {
		t.Fatalf("abandon worker output: %q", aOut)
	}

	// Two healthy workers drain the rest — including, once its lease
	// expires, the forfeited shard.
	w1, out1 := workerCmd("work")
	w2, out2 := workerCmd("work")
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Wait(); err != nil {
		t.Fatalf("worker 1: %v\n%s", err, out1)
	}
	if err := w2.Wait(); err != nil {
		t.Fatalf("worker 2: %v\n%s", err, out2)
	}

	select {
	case <-coord.Done():
	default:
		t.Fatalf("coordinator not done after both workers exited\nw1: %s\nw2: %s", out1, out2)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	readCSV := func(dir string) []byte {
		t.Helper()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		var buf bytes.Buffer
		if err := st.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	refJSONL, err := os.ReadFile(filepath.Join(refDir, store.CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	gotJSONL, err := os.ReadFile(filepath.Join(coordDir, store.CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSONL, gotJSONL) {
		t.Errorf("distributed store differs from serial store (%d vs %d bytes)", len(gotJSONL), len(refJSONL))
	}
	if !bytes.Equal(readCSV(refDir), readCSV(coordDir)) {
		t.Error("distributed store CSV differs from serial store CSV")
	}
}

func seedRange(first int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = first + int64(i)
	}
	return out
}
