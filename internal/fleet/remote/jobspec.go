// Package remote turns the fleet driver into a horizontally scaled study
// service: a coordinator process owns a study (a name-based JobSpec and a
// result store), cuts its cell matrix into key-range shards
// (internal/fleet/shard), and serves them over HTTP/JSON; worker processes
// — on the same machine or across a fleet of them — claim shards, verify
// the manifest against their own expansion of the spec, execute only the
// cells the coordinator's store does not already hold, and stream their
// JSONL store fragments back. The transport is stdlib net/http only.
//
// Determinism survives distribution: shards are disjoint key ranges of one
// keyspace, records are keyed by the canonical identity hash, and the
// store flushes sorted by key — so the coordinator's merged cells.jsonl is
// byte-identical to a single-process run of the same spec, however many
// workers executed it, in whatever order their fragments arrived.
package remote

import (
	"errors"
	"fmt"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/games"
	"mobicore/internal/geekbench"
	"mobicore/internal/platform"
	"mobicore/internal/stack"
	"mobicore/internal/workload"
)

// WorkloadSpec names a workload recipe in serializable form — the same
// name-based vocabulary the mobifleet CLI speaks, so a distributed study's
// cell identities (and therefore its store keys) are identical to an
// in-process run of the same flags.
type WorkloadSpec struct {
	// Kind selects the recipe: "busyloop", "game", or "geekbench".
	Kind string `json:"kind"`
	// Util and Threads parameterize busyloop (Threads also sizes
	// geekbench).
	Util    float64 `json:"util,omitempty"`
	Threads int     `json:"threads,omitempty"`
	// Game is the title for Kind "game".
	Game string `json:"game,omitempty"`
	// Iterations is the per-thread iteration count for Kind "geekbench".
	Iterations int `json:"iterations,omitempty"`
}

// factory lowers the wire spec to a fleet workload factory. Names encode
// the parameters exactly as the CLI spells them, because the store hashes
// the name.
func (ws WorkloadSpec) factory() (fleet.WorkloadFactory, error) {
	switch ws.Kind {
	case "busyloop":
		cfg := workload.BusyLoopConfig{
			TargetUtil: ws.Util,
			Threads:    ws.Threads,
			RefFreq:    platform.Nexus5().Table.Max().Freq,
		}
		if _, err := workload.NewBusyLoop(cfg); err != nil {
			return fleet.WorkloadFactory{}, err
		}
		return fleet.WorkloadFactory{
			Name: fmt.Sprintf("busyloop-%.0f%%x%d", ws.Util*100, ws.Threads),
			New: func() ([]workload.Workload, error) {
				w, err := workload.NewBusyLoop(cfg)
				if err != nil {
					return nil, err
				}
				return []workload.Workload{w}, nil
			},
		}, nil
	case "game":
		var profile games.Profile
		found := false
		for _, p := range games.All() {
			if p.Name == ws.Game {
				profile, found = p, true
				break
			}
		}
		if !found {
			return fleet.WorkloadFactory{}, fmt.Errorf("remote: unknown game %q", ws.Game)
		}
		return fleet.WorkloadFactory{
			Name: profile.Name,
			New: func() ([]workload.Workload, error) {
				g, err := games.New(profile)
				if err != nil {
					return nil, err
				}
				return []workload.Workload{g}, nil
			},
		}, nil
	case "geekbench":
		table := platform.Nexus5().Table
		if _, err := geekbench.NewRun(geekbench.StandardSuite(), table, ws.Threads, ws.Iterations); err != nil {
			return fleet.WorkloadFactory{}, err
		}
		return fleet.WorkloadFactory{
			Name: fmt.Sprintf("geekbench-x%d", ws.Threads),
			New: func() ([]workload.Workload, error) {
				gb, err := geekbench.NewRun(geekbench.StandardSuite(), table, ws.Threads, ws.Iterations)
				if err != nil {
					return nil, err
				}
				return []workload.Workload{gb}, nil
			},
		}, nil
	}
	return fleet.WorkloadFactory{}, fmt.Errorf("remote: unknown workload kind %q (want busyloop, game, geekbench)", ws.Kind)
}

// JobSpec is a fleet matrix as data: every dimension named, nothing that
// cannot cross a process boundary. Coordinator and workers each lower it
// to a fleet.Spec with FleetSpec; because the lowering is deterministic,
// both sides compute identical cell sets, identity keys, and shard plans.
type JobSpec struct {
	Platforms []string       `json:"platforms"`
	Policies  []string       `json:"policies"`
	Placers   []string       `json:"placers,omitempty"`
	Seeds     []int64        `json:"seeds"`
	Workloads []WorkloadSpec `json:"workloads"`

	// DurationNS is the simulated length of every cell, in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// UntilDone stops each session early once its workloads finish.
	UntilDone bool `json:"until_done,omitempty"`
	// TickNS and SampleNS override the engine defaults when non-zero.
	TickNS   int64 `json:"tick_ns,omitempty"`
	SampleNS int64 `json:"sample_ns,omitempty"`
}

// FleetSpec lowers the job to an executable fleet spec, resolving platform
// names (aliases or display names), policy stacks, and workload recipes.
// Every name failure surfaces here, before any session runs.
func (j JobSpec) FleetSpec() (fleet.Spec, error) {
	if len(j.Platforms) == 0 {
		return fleet.Spec{}, errors.New("remote: job names no platforms")
	}
	if len(j.Policies) == 0 {
		return fleet.Spec{}, errors.New("remote: job names no policies")
	}
	if len(j.Workloads) == 0 {
		return fleet.Spec{}, errors.New("remote: job names no workloads")
	}
	if j.DurationNS <= 0 {
		return fleet.Spec{}, errors.New("remote: job needs a positive duration")
	}
	plats := make([]platform.Platform, 0, len(j.Platforms))
	for _, name := range j.Platforms {
		p, err := platform.ByName(name)
		if err != nil {
			return fleet.Spec{}, fmt.Errorf("remote: %w", err)
		}
		plats = append(plats, p)
	}
	pols := make([]fleet.PolicyFactory, 0, len(j.Policies))
	for _, name := range j.Policies {
		// Resolve eagerly against every platform so an unknown policy name
		// fails at job validation, not mid-shard on a worker.
		for _, p := range plats {
			if _, err := stack.Build(name, p); err != nil {
				return fleet.Spec{}, fmt.Errorf("remote: %w", err)
			}
		}
		pols = append(pols, fleet.Policy(name))
	}
	wls := make([]fleet.WorkloadFactory, 0, len(j.Workloads))
	for _, ws := range j.Workloads {
		wf, err := ws.factory()
		if err != nil {
			return fleet.Spec{}, err
		}
		wls = append(wls, wf)
	}
	return fleet.Spec{
		Platforms:    plats,
		Policies:     pols,
		Workloads:    wls,
		Placers:      j.Placers,
		Seeds:        j.Seeds,
		Duration:     time.Duration(j.DurationNS),
		UntilDone:    j.UntilDone,
		Tick:         time.Duration(j.TickNS),
		SamplePeriod: time.Duration(j.SampleNS),
	}, nil
}
