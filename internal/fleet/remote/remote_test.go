package remote

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/fleet/shard"
	"mobicore/internal/fleet/store"
)

// testJob is the small study the in-process tests distribute: 2 policies ×
// 3 seeds = 6 cells of 100ms each.
func testJob() JobSpec {
	return JobSpec{
		Platforms:  []string{"nexus5"},
		Policies:   []string{"android-default", "mobicore"},
		Seeds:      []int64{1, 2, 3},
		Workloads:  []WorkloadSpec{{Kind: "busyloop", Util: 0.5, Threads: 4}},
		DurationNS: int64(100 * time.Millisecond),
	}
}

// serialStore runs the job single-process into a fresh store and returns
// the store directory.
func serialStore(t testing.TB, job JobSpec) string {
	t.Helper()
	spec, err := job.FleetSpec()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spec.StoreDir = dir
	if _, err := fleet.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	return dir
}

func readJSONL(t testing.TB, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, store.CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestJobSpecResolution(t *testing.T) {
	job := testJob()
	job.Workloads = []WorkloadSpec{
		{Kind: "busyloop", Util: 0.5, Threads: 4},
		{Kind: "game", Game: "Subway Surf"},
		{Kind: "geekbench", Threads: 4, Iterations: 1},
	}
	spec, err := job.FleetSpec()
	if err != nil {
		t.Fatal(err)
	}
	// Workload names must match the mobifleet CLI's spelling exactly —
	// the store hashes them into cell identity keys.
	want := []string{"busyloop-50%x4", "Subway Surf", "geekbench-x4"}
	for i, w := range spec.Workloads {
		if w.Name != want[i] {
			t.Errorf("workload %d named %q, want %q", i, w.Name, want[i])
		}
	}
	if len(spec.Platforms) != 1 || spec.Platforms[0].Name != "Nexus 5" {
		t.Errorf("platforms %+v", spec.Platforms)
	}

	for _, bad := range []JobSpec{
		{},
		{Platforms: []string{"nokia3310"}, Policies: []string{"mobicore"},
			Workloads: []WorkloadSpec{{Kind: "busyloop", Util: 0.5, Threads: 4}}, DurationNS: 1e9},
		{Platforms: []string{"nexus5"}, Policies: []string{"winning"},
			Workloads: []WorkloadSpec{{Kind: "busyloop", Util: 0.5, Threads: 4}}, DurationNS: 1e9},
		{Platforms: []string{"nexus5"}, Policies: []string{"mobicore"},
			Workloads: []WorkloadSpec{{Kind: "sleep"}}, DurationNS: 1e9},
		{Platforms: []string{"nexus5"}, Policies: []string{"mobicore"},
			Workloads: []WorkloadSpec{{Kind: "game", Game: "Pong"}}, DurationNS: 1e9},
	} {
		if _, err := bad.FleetSpec(); err == nil {
			t.Errorf("job %+v resolved", bad)
		}
	}
}

// TestDistributedMatchesSerial: two concurrent workers drain a sharded
// study and the coordinator's merged store comes out byte-identical to the
// single-process run — the tentpole guarantee, exercised in-process.
func TestDistributedMatchesSerial(t *testing.T) {
	job := testJob()
	refDir := serialStore(t, job)

	coordDir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{
		Job:      job,
		StoreDir: coordDir,
		Shards:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	var wg sync.WaitGroup
	stats := make([]WorkerStats, 2)
	errs := make([]error, 2)
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = RunWorker(context.Background(), WorkerConfig{
				Coordinator: srv.URL,
				Dir:         filepath.Join(t.TempDir(), "w"),
				Parallel:    1,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator not done after workers drained the study")
	}
	if total := stats[0].Shards + stats[1].Shards; total != 3 {
		t.Errorf("workers completed %d shards, want 3", total)
	}
	if cells := stats[0].Cells + stats[1].Cells; cells != 6 {
		t.Errorf("workers ran %d cells, want 6", cells)
	}

	// Further claims answer done.
	cl := &Client{Base: srv.URL}
	claim, err := cl.Claim(context.Background(), "late")
	if err != nil {
		t.Fatal(err)
	}
	if !claim.Done {
		t.Errorf("late claim got %+v, want done", claim)
	}
	status, err := cl.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if status.DoneShards != 3 || status.StoredCells != 6 {
		t.Errorf("status %+v", status)
	}

	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readJSONL(t, refDir), readJSONL(t, coordDir)) {
		t.Error("distributed store differs from the serial store")
	}
}

// TestCoordinatorResume: records already in the coordinator's store are
// never re-executed — fully covered shards are born done, partially
// covered ones hand their cached records to the claiming worker.
func TestCoordinatorResume(t *testing.T) {
	job := testJob()
	refDir := serialStore(t, job)

	// Seed the coordinator store with 4 of the 6 reference records.
	refSt, err := store.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	recs := refSt.Records()
	refSt.Close()
	coordDir := t.TempDir()
	seedSt, err := store.Open(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:4] {
		seedSt.Put(rec)
	}
	if err := seedSt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := seedSt.Close(); err != nil {
		t.Fatal(err)
	}

	// 3 shards of 2 cells over a key-sorted store: shards 0 and 1 are
	// fully covered and born done, shard 2 is fully pending.
	coord, err := NewCoordinator(CoordinatorConfig{Job: job, StoreDir: coordDir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	stats, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL,
		Dir:         t.TempDir(),
		Parallel:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 1 {
		t.Errorf("worker completed %d shards, want only the uncovered 1", stats.Shards)
	}
	if stats.Cells != 2 || stats.Cached != 0 {
		t.Errorf("stats %+v, want 2 fresh cells", stats)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readJSONL(t, refDir), readJSONL(t, coordDir)) {
		t.Error("resumed distributed store differs from the serial store")
	}
}

// TestLeaseExpiryReassigns: a worker that claims a shard and dies forfeits
// it after the lease timeout; the next claimant gets the same manifest.
func TestLeaseExpiryReassigns(t *testing.T) {
	coordDir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{
		Job:          testJob(),
		StoreDir:     coordDir,
		Shards:       2,
		LeaseTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord)
	defer srv.Close()

	cl := &Client{Base: srv.URL}
	first, err := cl.Claim(context.Background(), "doomed")
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Claim(context.Background(), "doomed2")
	if err != nil {
		t.Fatal(err)
	}
	if first.Manifest == nil || second.Manifest == nil ||
		first.Manifest.Index == second.Manifest.Index {
		t.Fatalf("claims %+v / %+v, want two distinct shards", first.Manifest, second.Manifest)
	}
	// Both shards leased, none done: further claims are asked to retry.
	if third, err := cl.Claim(context.Background(), "w"); err != nil || third.Manifest != nil || third.Done {
		t.Fatalf("claim with all shards leased: %+v, %v", third, err)
	}
	time.Sleep(50 * time.Millisecond)
	// Leases expired: the shards come around again.
	again, err := cl.Claim(context.Background(), "heir")
	if err != nil {
		t.Fatal(err)
	}
	if again.Manifest == nil {
		t.Fatalf("claim after lease expiry got %+v, want a manifest", again)
	}
}

// TestCompleteRejectsBadFragments: the coordinator re-verifies everything
// a worker submits.
func TestCompleteRejectsBadFragments(t *testing.T) {
	job := testJob()
	refDir := serialStore(t, job)
	refSt, err := store.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	recs := refSt.Records()
	refSt.Close()

	coord, err := NewCoordinator(CoordinatorConfig{Job: job, StoreDir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord)
	defer srv.Close()
	cl := &Client{Base: srv.URL}
	claim, err := cl.Claim(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	m := claim.Manifest

	post := func(url string, body []byte) int {
		t.Helper()
		resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	fragment := readJSONL(t, refDir)

	// Wrong spec hash.
	if code := post(srv.URL+"/v1/complete?shard=0&spec_hash=deadbeef", fragment); code != http.StatusBadRequest {
		t.Errorf("wrong spec hash: %d", code)
	}
	// Short fragment.
	short := bytes.SplitAfterN(fragment, []byte("\n"), 2)[0]
	url := srv.URL + "/v1/complete?shard=0&spec_hash=" + m.SpecHash
	if code := post(url, short); code != http.StatusBadRequest {
		t.Errorf("short fragment: %d", code)
	}
	// Conflicting record: right keys, tampered physics.
	tampered := append([]store.Record(nil), recs...)
	tampered[0].EnergyJ += 1
	var buf bytes.Buffer
	tmpDir := t.TempDir()
	tmpSt, err := store.Open(tmpDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range tampered {
		tmpSt.Put(rec)
	}
	if err := tmpSt.Flush(); err != nil {
		t.Fatal(err)
	}
	tmpSt.Close()
	buf.Write(readJSONL(t, tmpDir))
	// First land the genuine fragment, then the tampered one conflicts.
	if code := post(url, fragment); code != http.StatusOK {
		t.Fatalf("genuine fragment rejected: %d", code)
	}
	if code := post(url, buf.Bytes()); code != http.StatusConflict {
		t.Errorf("conflicting fragment: %d, want 409", code)
	}
	// Idempotent re-complete of identical bytes is accepted.
	if code := post(url, fragment); code != http.StatusOK {
		t.Errorf("idempotent re-complete: %d", code)
	}
}

// TestCompleteRetriesTransientFailures: the client retries connection
// drops and 5xx answers, and gives up immediately on 4xx.
func TestCompleteRetriesTransientFailures(t *testing.T) {
	var mu sync.Mutex
	fails := 2
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if fails > 0 {
			fails--
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(inner)
	defer srv.Close()

	cl := &Client{Base: srv.URL}
	m := &shard.Manifest{SpecHash: "abc", Index: 0, Count: 1, Cells: 1}
	if err := cl.Complete(context.Background(), m, []byte("{}\n")); err != nil {
		t.Fatalf("transient failures not retried: %v", err)
	}

	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer srv2.Close()
	cl2 := &Client{Base: srv2.URL}
	start := time.Now()
	if err := cl2.Complete(context.Background(), m, []byte("{}\n")); err == nil {
		t.Fatal("4xx accepted")
	} else if strings.Contains(err.Error(), "after") {
		t.Errorf("4xx was retried: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("4xx path backed off instead of failing fast")
	}
}
