package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"mobicore/internal/fleet"
	"mobicore/internal/fleet/shard"
	"mobicore/internal/fleet/store"
)

// Client speaks the coordinator's HTTP/JSON protocol. The zero HTTP
// client is replaced with http.DefaultClient.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:7077".
	Base string
	// HTTP overrides the transport when non-nil.
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("remote: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Job fetches the study description.
func (c *Client) Job(ctx context.Context) (JobInfo, error) {
	var info JobInfo
	err := c.getJSON(ctx, "/v1/job", &info)
	return info, err
}

// Status fetches the shard table.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	err := c.getJSON(ctx, "/v1/status", &st)
	return st, err
}

// Claim asks for a work assignment.
func (c *Client) Claim(ctx context.Context, worker string) (ClaimResponse, error) {
	body, err := json.Marshal(ClaimRequest{Worker: worker})
	if err != nil {
		return ClaimResponse{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/claim", bytes.NewReader(body))
	if err != nil {
		return ClaimResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return ClaimResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return ClaimResponse{}, fmt.Errorf("remote: claim: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var cr ClaimResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	return cr, err
}

// Complete submits one shard's JSONL store fragment. Transient failures —
// connection errors and 5xx responses — retry with exponential backoff;
// 4xx responses are protocol errors and fail immediately.
func (c *Client) Complete(ctx context.Context, m *shard.Manifest, fragment []byte) error {
	url := fmt.Sprintf("%s/v1/complete?shard=%d&spec_hash=%s", c.Base, m.Index, m.SpecHash)
	backoff := 100 * time.Millisecond
	const attempts = 5
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(fragment))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := c.client().Do(req)
		var transient error
		if err != nil {
			transient = err
		} else {
			status := resp.StatusCode
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			switch {
			case status == http.StatusOK:
				return nil
			case status >= 500:
				transient = fmt.Errorf("remote: complete shard %d: %s: %s", m.Index, resp.Status, bytes.TrimSpace(msg))
			default:
				return fmt.Errorf("remote: complete shard %d: %s: %s", m.Index, resp.Status, bytes.TrimSpace(msg))
			}
		}
		if attempt == attempts {
			return fmt.Errorf("remote: complete shard %d failed after %d attempts: %w", m.Index, attempts, transient)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// WorkerConfig configures one worker process (or goroutine).
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Dir is scratch space for per-shard fragment stores.
	Dir string
	// Parallel is the in-process fan-out per shard (fleet.Spec.Parallel).
	Parallel int
	// Name labels this worker in coordinator status output.
	Name string
	// HTTP overrides the transport when non-nil (tests).
	HTTP *http.Client
}

// WorkerStats summarizes one worker's share of a study.
type WorkerStats struct {
	// Shards completed by this worker.
	Shards int
	// Cells executed here and Cached answered from coordinator state.
	Cells  int
	Cached int
}

// RunWorker claims and executes shards until the coordinator reports the
// study done (or ctx cancels). Each shard runs in its own fragment store
// under cfg.Dir, seeded with the coordinator's cached records so partially
// complete shards resume instead of re-executing; the fragment then
// streams back with retry. The worker verifies every manifest against its
// own expansion of the job spec before running a single cell.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	if cfg.Dir == "" {
		return stats, fmt.Errorf("remote: worker needs a scratch dir")
	}
	cl := &Client{Base: cfg.Coordinator, HTTP: cfg.HTTP}
	info, err := cl.Job(ctx)
	if err != nil {
		return stats, err
	}
	spec, err := info.Job.FleetSpec()
	if err != nil {
		return stats, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		claim, err := cl.Claim(ctx, cfg.Name)
		if err != nil {
			return stats, err
		}
		if claim.Done {
			return stats, nil
		}
		if claim.Manifest == nil {
			wait := time.Duration(claim.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = 200 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		res, fragment, err := runShard(ctx, spec, cfg, claim)
		if err != nil {
			return stats, err
		}
		if err := cl.Complete(ctx, claim.Manifest, fragment); err != nil {
			return stats, err
		}
		stats.Shards++
		stats.Cells += len(res.Cells)
		stats.Cached += res.Cached
	}
}

// runShard executes one claimed shard in a fresh fragment store and
// returns the store's JSONL bytes. Cached records from the coordinator
// seed the store first, so fleet.Run's resume path skips them.
func runShard(ctx context.Context, spec fleet.Spec, cfg WorkerConfig, claim ClaimResponse) (*fleet.Result, []byte, error) {
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d", claim.Manifest.Index))
	if len(claim.Cached) > 0 {
		st, err := store.Open(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, rec := range claim.Cached {
			if _, err := st.PutChecked(rec); err != nil {
				st.Close()
				return nil, nil, err
			}
		}
		if err := st.Flush(); err != nil {
			st.Close()
			return nil, nil, err
		}
		if err := st.Close(); err != nil {
			return nil, nil, err
		}
	}
	run := spec
	run.Shard = claim.Manifest
	run.StoreDir = dir
	run.Resume = true
	run.Parallel = cfg.Parallel
	res, err := fleet.Run(ctx, run)
	if err != nil {
		return nil, nil, err
	}
	fragment, err := os.ReadFile(filepath.Join(dir, store.CellsFile))
	if err != nil {
		return nil, nil, err
	}
	return res, fragment, nil
}
