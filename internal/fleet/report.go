package fleet

import (
	"encoding/csv"
	"fmt"
	"io"

	"mobicore/internal/fleet/store"
	"mobicore/internal/sim"
)

// placerName renders a cell's placement rule, naming the engine default.
func placerName(p string) string {
	if p == "" {
		return sim.PlacerGreedy
	}
	return p
}

// WriteText renders the fleet result as aligned human-readable text: one
// row per cell in spec order, then the cross-seed aggregates (mean ±
// stddev, extremes, quantiles, and the mean's 95% CI), then the paired
// matched-seed deltas. Because cells are index-ordered, the rendering is
// byte-identical whatever parallelism produced the result.
func (r *Result) WriteText(w io.Writer) error {
	cached := ""
	if r.Cached > 0 {
		cached = fmt.Sprintf(" (%d cached)", r.Cached)
	}
	shardNote := ""
	if r.Shard != nil {
		shardNote = fmt.Sprintf(" [shard %d/%d]", r.Shard.Index, r.Shard.Count)
	}
	if _, err := fmt.Fprintf(w, "fleet: %d of %d cells%s%s\n", len(r.Cells), r.Total, cached, shardNote); err != nil {
		return err
	}
	if len(r.Cells) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-16s %-18s %-16s %-8s %5s %10s %10s %8s %8s %10s\n",
		"platform", "policy", "workload", "placer", "seed",
		"energy J", "avg mW", "fps", "drop%", "throttle s"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		fps, drop := "-", "-"
		if c.HasFrames {
			fps = fmt.Sprintf("%.1f", c.AvgFPS)
			drop = fmt.Sprintf("%.1f", c.DropRate*100)
		}
		if _, err := fmt.Fprintf(w, "%-16s %-18s %-16s %-8s %5d %10.2f %10.1f %8s %8s %10.2f\n",
			c.Platform, c.Policy, c.Workload, placerName(c.Placer), c.Seed,
			c.Report.EnergyJ, c.Report.AvgPowerW*1000, fps, drop,
			c.Report.ThermalCappedSec); err != nil {
			return err
		}
	}
	for _, a := range r.Aggregates {
		if _, err := fmt.Fprintf(w, "%s / %s / %s / %s (%d seeds)\n",
			a.Platform, a.Policy, a.Workload, placerName(a.Placer), a.Seeds); err != nil {
			return err
		}
		if err := writeStat(w, "energy J", a.EnergyJ); err != nil {
			return err
		}
		if a.HasFrames {
			if err := writeStat(w, "fps", a.AvgFPS); err != nil {
				return err
			}
			if err := writeStat(w, "drop rate", a.DropRate); err != nil {
				return err
			}
		}
		if err := writeStat(w, "throttle s", a.ThrottleSec); err != nil {
			return err
		}
	}
	return r.writeComparisons(w)
}

// writeComparisons renders the paired matched-seed deltas, when any pair
// shares enough seeds to bound.
func (r *Result) writeComparisons(w io.Writer) error {
	if len(r.Comparisons) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "paired deltas (B-A on matched seeds, 95% CI):"); err != nil {
		return err
	}
	for _, c := range r.Comparisons {
		context := c.Placer
		if c.Dimension == "placer" {
			context = c.Policy
		}
		if _, err := fmt.Fprintf(w, "  %s / %s / %s: %s - %s (%d seeds): energy %+.4g J ci95 [%+.4g, %+.4g] (%+.1f%%)",
			c.Platform, c.Workload, context, c.B, c.A, c.Seeds,
			c.EnergyJ.MeanDelta, c.EnergyJ.CI95Lo, c.EnergyJ.CI95Hi, c.EnergyJ.Rel*100); err != nil {
			return err
		}
		if c.HasFrames {
			if _, err := fmt.Fprintf(w, "; fps %+.3g ci95 [%+.3g, %+.3g]",
				c.AvgFPS.MeanDelta, c.AvgFPS.CI95Lo, c.AvgFPS.CI95Hi); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func writeStat(w io.Writer, label string, s Stat) error {
	_, err := fmt.Fprintf(w, "  %-11s mean %.4g ± %.3g  ci95 [%.4g, %.4g]  [%.4g, %.4g]  p50 %.4g  p95 %.4g\n",
		label+":", s.Mean, s.StdDev, s.CI95Lo, s.CI95Hi, s.Min, s.Max, s.P50, s.P95)
	return err
}

// WriteCSV exports every completed cell as one CSV row in spec order,
// using the result store's column set — so a per-run CSV and a store-wide
// export join on identical columns. Rows are byte-stable: a resumed run
// that answered cells from the store emits exactly the bytes the cold run
// did.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(store.CSVHeader()); err != nil {
		return fmt.Errorf("fleet: writing csv header: %w", err)
	}
	for i := range r.Cells {
		if err := cw.Write(r.Cells[i].rec.CSVRow()); err != nil {
			return fmt.Errorf("fleet: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("fleet: flushing csv: %w", err)
	}
	return nil
}
