package fleet

import (
	"fmt"
	"io"

	"mobicore/internal/sim"
)

// placerName renders a cell's placement rule, naming the engine default.
func placerName(p string) string {
	if p == "" {
		return sim.PlacerGreedy
	}
	return p
}

// WriteText renders the fleet result as aligned human-readable text: one
// row per cell in spec order, then the cross-seed aggregates. Because
// cells are index-ordered, the rendering is byte-identical whatever
// parallelism produced the result.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "fleet: %d of %d cells\n", len(r.Cells), r.Total); err != nil {
		return err
	}
	if len(r.Cells) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-16s %-18s %-16s %-8s %5s %10s %10s %8s %8s %10s\n",
		"platform", "policy", "workload", "placer", "seed",
		"energy J", "avg mW", "fps", "drop%", "throttle s"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		fps, drop := "-", "-"
		if c.HasFrames {
			fps = fmt.Sprintf("%.1f", c.AvgFPS)
			drop = fmt.Sprintf("%.1f", c.DropRate*100)
		}
		if _, err := fmt.Fprintf(w, "%-16s %-18s %-16s %-8s %5d %10.2f %10.1f %8s %8s %10.2f\n",
			c.Platform, c.Policy, c.Workload, placerName(c.Placer), c.Seed,
			c.Report.EnergyJ, c.Report.AvgPowerW*1000, fps, drop,
			c.Report.ThermalCappedSec); err != nil {
			return err
		}
	}
	for _, a := range r.Aggregates {
		if _, err := fmt.Fprintf(w, "%s / %s / %s / %s (%d seeds)\n",
			a.Platform, a.Policy, a.Workload, placerName(a.Placer), a.Seeds); err != nil {
			return err
		}
		if err := writeStat(w, "energy J", a.EnergyJ); err != nil {
			return err
		}
		if a.HasFrames {
			if err := writeStat(w, "fps", a.AvgFPS); err != nil {
				return err
			}
			if err := writeStat(w, "drop rate", a.DropRate); err != nil {
				return err
			}
		}
		if err := writeStat(w, "throttle s", a.ThrottleSec); err != nil {
			return err
		}
	}
	return nil
}

func writeStat(w io.Writer, label string, s Stat) error {
	_, err := fmt.Fprintf(w, "  %-11s mean %.4g ± %.3g  [%.4g, %.4g]  p50 %.4g  p95 %.4g\n",
		label+":", s.Mean, s.StdDev, s.Min, s.Max, s.P50, s.P95)
	return err
}
