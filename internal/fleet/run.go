package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mobicore/internal/fleet/shard"
	"mobicore/internal/fleet/store"
	"mobicore/internal/sim"
	"mobicore/internal/workload"
)

// CellResult is one completed session of a fleet run.
type CellResult struct {
	// Index is the cell's position in Spec.Cells order.
	Index int `json:"index"`
	// Key is the cell's canonical identity hash — the name it persists
	// under in the result store and the trace directory.
	Key string `json:"key"`
	// The cell's coordinates in the matrix.
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Placer   string `json:"placer,omitempty"`
	Seed     int64  `json:"seed"`

	// Report is the session's full simulation report. For cells loaded
	// from the result store (Cached) it is a condensed reconstruction:
	// every scalar the aggregates, text, and CSV reports consume is
	// present, but the sampled series are empty.
	Report *sim.Report `json:"report"`
	// Finished says whether the session's workloads all completed: always
	// true for duration-shaped cells, RunUntilDone's verdict for
	// UntilDone cells (a benchmark truncated by Duration reports false).
	Finished bool `json:"finished"`
	// Cached marks a cell loaded from the result store instead of
	// executed this run.
	Cached bool `json:"cached,omitempty"`

	// AvgFPS and DropRate are filled when the cell's workload set renders
	// frames (games); HasFrames says whether they are meaningful.
	AvgFPS    float64 `json:"avg_fps"`
	DropRate  float64 `json:"drop_rate"`
	HasFrames bool    `json:"has_frames"`

	// Workloads are the very instances the cell ran, so callers can read
	// workload-side statistics the report does not carry. Nil for Cached
	// cells.
	Workloads []workload.Workload `json:"-"`

	// rec is the cell's persisted form, kept for CSV export.
	rec store.Record
}

// Result is a fleet run's outcome: every completed cell in spec order,
// plus cross-seed aggregates and paired-difference comparisons per matrix
// group.
type Result struct {
	// Cells holds the completed cells in Spec.Cells order. On a canceled
	// run it holds only the cells that finished.
	Cells []CellResult `json:"cells"`
	// Aggregates summarizes each matrix group across its seeds, in first-
	// cell order. Every Stat carries the mean's 95% confidence interval.
	Aggregates []Aggregate `json:"aggregates"`
	// Comparisons holds the matched-seed paired differences: policy vs
	// policy within each context, then placer vs placer. Present only
	// when a pair shares at least two seeds.
	Comparisons []Comparison `json:"comparisons,omitempty"`
	// Total is the number of cells the spec declared.
	Total int `json:"total"`
	// Cached counts the cells loaded from the result store rather than
	// executed.
	Cached int `json:"cached,omitempty"`
	// Incomplete marks a canceled run whose Cells are partial.
	Incomplete bool `json:"incomplete,omitempty"`
	// Shard is set when the run covered one key-range shard of a larger
	// matrix; Total then counts the shard's cells, not the whole spec's.
	Shard *shard.Manifest `json:"shard,omitempty"`
}

// frameSource is the workload-side statistics surface games expose.
type frameSource interface {
	AvgFPS() float64
	DropRate() float64
}

// isCancellation reports whether err is context cancellation noise — a
// parent Cancel or an expired deadline — rather than a genuine cell
// failure. Both must surface as the partial-result path, not as a cell
// error that would discard every completed cell.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes every cell of the spec on a worker pool bounded by
// spec.Parallel (default GOMAXPROCS) and returns the assembled result.
// Results are ordered by cell index, and each session owns a private rng
// seeded from its cell, so output is byte-identical at any parallelism.
//
// With StoreDir set, completed cells are merged into the persistent result
// store (sorted by identity key, so the store's bytes are independent of
// parallelism and invocation count); with Resume also set, cells already
// in the store are loaded instead of executed. Partial runs flush what
// completed, so an interrupted sweep resumes where it stopped.
//
// When ctx is canceled mid-run the completed cells come back in a partial
// Result (Incomplete set) alongside ctx's error, so callers can report
// what finished. A failing cell cancels the rest and Run returns the
// lowest-indexed cell error — deterministic, because cell failures are.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	if spec.Resume && spec.StoreDir == "" {
		return nil, errors.New("fleet: Resume requires StoreDir")
	}

	ids := make([]store.Identity, len(cells))
	keys := make([]string, len(cells))
	for i, c := range cells {
		ids[i] = c.identity()
		keys[i] = ids[i].Key()
	}

	// Restrict the matrix to one key-range shard, after verifying the
	// manifest against the locally expanded cell set — a worker must prove
	// it was handed the right work before executing any of it.
	manifest := spec.Shard
	if manifest == nil && spec.ShardCount > 0 {
		plan, err := shard.Plan(keys, spec.ShardCount)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		if spec.ShardIndex < 0 || spec.ShardIndex >= spec.ShardCount {
			return nil, fmt.Errorf("fleet: shard index %d outside [0, %d)", spec.ShardIndex, spec.ShardCount)
		}
		manifest = &plan[spec.ShardIndex]
	}
	if manifest != nil {
		if err := manifest.Verify(keys); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		var (
			shardCells []Cell
			shardIDs   []store.Identity
			shardKeys  []string
		)
		for i := range cells {
			if manifest.Contains(keys[i]) {
				shardCells = append(shardCells, cells[i])
				shardIDs = append(shardIDs, ids[i])
				shardKeys = append(shardKeys, keys[i])
			}
		}
		cells, ids, keys = shardCells, shardIDs, shardKeys
	}

	var st *store.Store
	if spec.StoreDir != "" {
		st, err = store.Open(spec.StoreDir)
		if err != nil {
			return nil, err
		}
		defer st.Close()
	}
	if spec.TraceDir != "" {
		if err := os.MkdirAll(spec.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: creating trace dir: %w", err)
		}
	}

	// Split the matrix into cached cells (answered from the store) and
	// pending ones (executed on the pool).
	results := make([]*CellResult, len(cells))
	var pending []int
	cached := 0
	for i := range cells {
		if st != nil && spec.Resume {
			if rec, ok := st.Get(keys[i]); ok {
				results[i] = cellFromRecord(i, rec)
				cached++
				continue
			}
		}
		pending = append(pending, i)
	}

	par := spec.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pending) {
		par = len(pending)
	}

	errs := make([]error, len(cells))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one arena (and one recycled trace writer)
			// for its whole cell stream: consecutive cells reuse the
			// engine's buffers, and because reports deep-copy their series
			// the output stays byte-identical to fresh allocation at any
			// parallelism.
			scratch := &cellScratch{arena: sim.NewArena()}
			for {
				n := int(next.Add(1))
				if n >= len(pending) {
					return
				}
				i := pending[n]
				if err := runCtx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, err := runCell(runCtx, i, cells[i], keys[i], spec.TraceDir, scratch)
				if err != nil {
					errs[i] = err
					if !isCancellation(err) {
						cancel()
					}
					continue
				}
				res.rec = recordOf(res, ids[i])
				results[i] = res
			}
		}()
	}
	wg.Wait()

	// Persist whatever completed before reporting anything else: a failed
	// or interrupted sweep must still be resumable from the cells it
	// finished.
	var storeErr error
	if st != nil {
		for _, r := range results {
			if r != nil && !r.Cached {
				st.Put(r.rec)
			}
		}
		storeErr = st.Flush()
	}

	// A genuine cell failure wins over cancellation noise; the lowest
	// index keeps the error deterministic under any scheduling.
	for i, err := range errs {
		if err != nil && !isCancellation(err) {
			c := cells[i]
			return nil, fmt.Errorf("fleet: cell %d (%s/%s/%s seed %d): %w",
				i, c.Platform.Name, c.Policy.Name, c.Workload.Name, c.Seed, err)
		}
	}

	out := &Result{Total: len(cells), Cached: cached, Shard: manifest}
	for _, r := range results {
		if r != nil {
			out.Cells = append(out.Cells, *r)
		}
	}
	out.Incomplete = len(out.Cells) < out.Total
	out.Aggregates = aggregate(out.Cells)
	out.Comparisons = compare(out.Cells)
	if storeErr != nil {
		// The sweep itself succeeded; losing the persistence must not
		// lose hours of completed simulation, so the result rides along
		// with the error.
		return out, storeErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if out.Incomplete {
		// No parent cancellation and no cell error, yet cells are missing:
		// only possible if a worker saw the run context die some other
		// way. Surface it rather than pass off a partial run as complete.
		return out, errors.New("fleet: run incomplete")
	}
	return out, nil
}

// cellScratch is one worker's cross-cell reuse state: the session arena
// and the recycled trace writer. Never shared between goroutines.
type cellScratch struct {
	arena *sim.Arena
	tw    *traceWriter
}

// runCell executes one cell under pprof labels naming its matrix
// coordinates, so CPU and goroutine profiles of a fleet sweep attribute
// samples to platform/policy/workload/placer/seed instead of one
// undifferentiated worker-pool blob.
func runCell(ctx context.Context, idx int, c Cell, key, traceDir string, scratch *cellScratch) (res *CellResult, err error) {
	labels := pprof.Labels(
		"platform", c.Platform.Name,
		"policy", c.Policy.Name,
		"workload", c.Workload.Name,
		"placer", placerName(c.Placer),
		"seed", strconv.FormatInt(c.Seed, 10),
	)
	pprof.Do(ctx, labels, func(ctx context.Context) {
		res, err = runCellSession(ctx, idx, c, key, traceDir, scratch)
	})
	return res, err
}

// runCellSession builds and runs one cell's session, exporting its power
// trace when traceDir is set. scratch, when non-nil, supplies the worker's
// arena and recycled trace writer; nil runs the cell with fresh allocations
// (the two produce byte-identical results — the arena is purely a reuse
// pool).
func runCellSession(ctx context.Context, idx int, c Cell, key, traceDir string, scratch *cellScratch) (*CellResult, error) {
	spec, err := c.session()
	if err != nil {
		return nil, err
	}
	var arena *sim.Arena
	if scratch != nil {
		arena = scratch.arena
	}
	var tw *traceWriter
	if traceDir != "" {
		var recycle *traceWriter
		if scratch != nil {
			recycle = scratch.tw
		}
		tw, err = newTraceWriter(traceDir, key, recycle)
		if err != nil {
			return nil, err
		}
		if scratch != nil {
			scratch.tw = tw
		}
		spec.PowerTrace = tw.hook
	}
	rep, done, err := spec.RunDoneIn(ctx, arena)
	if tw != nil {
		if err != nil {
			// A canceled or failed session leaves a truncated trace that
			// would read as a complete (just shorter) run — discard it.
			tw.Abort()
		} else if cerr := tw.Close(); cerr != nil {
			return nil, cerr
		}
	}
	if err != nil {
		return nil, err
	}
	res := &CellResult{
		Index:    idx,
		Key:      key,
		Platform: c.Platform.Name,
		Policy:   c.Policy.Name,
		Workload: c.Workload.Name,
		// The placer is canonicalized ("" → greedy) so fresh and cached
		// cells land in the same aggregate groups.
		Placer:    placerName(c.Placer),
		Seed:      c.Seed,
		Report:    rep,
		Finished:  done,
		Workloads: spec.Workloads,
	}
	for _, w := range spec.Workloads {
		if fs, ok := w.(frameSource); ok {
			res.AvgFPS = fs.AvgFPS()
			res.DropRate = fs.DropRate()
			res.HasFrames = true
			break
		}
	}
	return res, nil
}

// recordOf condenses a completed cell into its persisted form.
func recordOf(c *CellResult, id store.Identity) store.Record {
	rep := c.Report
	return store.Record{
		Key:       c.Key,
		Identity:  id,
		Finished:  c.Finished,
		ElapsedNS: int64(rep.Duration),
		HasFrames: c.HasFrames,
		AvgFPS:    c.AvgFPS,
		DropRate:  c.DropRate,

		AvgPowerW:         rep.AvgPowerW,
		PeakPowerW:        rep.PeakPowerW,
		EnergyJ:           rep.EnergyJ,
		AvgFreqHz:         rep.AvgFreqHz,
		AvgOnlineCores:    rep.AvgOnlineCores,
		AvgUtil:           rep.AvgUtil,
		AvgQuota:          rep.AvgQuota,
		AvgTempC:          rep.AvgTempC,
		MaxTempC:          rep.MaxTempC,
		ExecutedCycles:    rep.ExecutedCycles,
		QuotaThrottledSec: rep.QuotaThrottledSec,
		ThermalCappedSec:  rep.ThermalCappedSec,
	}
}

// cellFromRecord rebuilds a cached cell from its persisted form. The
// report is condensed — every scalar the aggregates and reports read, no
// series.
func cellFromRecord(idx int, rec store.Record) *CellResult {
	return &CellResult{
		Index:     idx,
		Key:       rec.Key,
		Platform:  rec.Platform,
		Policy:    rec.Policy,
		Workload:  rec.Workload,
		Placer:    rec.Placer,
		Seed:      rec.Seed,
		Finished:  rec.Finished,
		Cached:    true,
		AvgFPS:    rec.AvgFPS,
		DropRate:  rec.DropRate,
		HasFrames: rec.HasFrames,
		rec:       rec,
		Report: &sim.Report{
			Policy:   rec.Policy,
			Platform: rec.Platform,
			Placer:   rec.Placer,
			// The actual simulated length, not the spec's cap — an
			// UntilDone cell that finished early keeps its true elapsed
			// time through the cache round trip.
			Duration:          time.Duration(rec.ElapsedNS),
			AvgPowerW:         rec.AvgPowerW,
			PeakPowerW:        rec.PeakPowerW,
			EnergyJ:           rec.EnergyJ,
			AvgFreqHz:         rec.AvgFreqHz,
			AvgOnlineCores:    rec.AvgOnlineCores,
			AvgUtil:           rec.AvgUtil,
			AvgQuota:          rec.AvgQuota,
			AvgTempC:          rec.AvgTempC,
			MaxTempC:          rec.MaxTempC,
			ExecutedCycles:    rec.ExecutedCycles,
			QuotaThrottledSec: rec.QuotaThrottledSec,
			ThermalCappedSec:  rec.ThermalCappedSec,
		},
	}
}
