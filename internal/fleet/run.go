package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mobicore/internal/sim"
	"mobicore/internal/workload"
)

// CellResult is one completed session of a fleet run.
type CellResult struct {
	// Index is the cell's position in Spec.Cells order.
	Index int `json:"index"`
	// The cell's coordinates in the matrix.
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Placer   string `json:"placer,omitempty"`
	Seed     int64  `json:"seed"`

	// Report is the session's full simulation report.
	Report *sim.Report `json:"report"`
	// Finished says whether the session's workloads all completed: always
	// true for duration-shaped cells, RunUntilDone's verdict for
	// UntilDone cells (a benchmark truncated by Duration reports false).
	Finished bool `json:"finished"`

	// AvgFPS and DropRate are filled when the cell's workload set renders
	// frames (games); HasFrames says whether they are meaningful.
	AvgFPS    float64 `json:"avg_fps"`
	DropRate  float64 `json:"drop_rate"`
	HasFrames bool    `json:"has_frames"`

	// Workloads are the very instances the cell ran, so callers can read
	// workload-side statistics the report does not carry.
	Workloads []workload.Workload `json:"-"`
}

// Result is a fleet run's outcome: every completed cell in spec order,
// plus cross-seed aggregates per (platform, policy, workload, placer)
// group.
type Result struct {
	// Cells holds the completed cells in Spec.Cells order. On a canceled
	// run it holds only the cells that finished.
	Cells []CellResult `json:"cells"`
	// Aggregates summarizes each matrix group across its seeds, in first-
	// cell order.
	Aggregates []Aggregate `json:"aggregates"`
	// Total is the number of cells the spec declared.
	Total int `json:"total"`
	// Incomplete marks a canceled run whose Cells are partial.
	Incomplete bool `json:"incomplete,omitempty"`
}

// frameSource is the workload-side statistics surface games expose.
type frameSource interface {
	AvgFPS() float64
	DropRate() float64
}

// isCancellation reports whether err is context cancellation noise — a
// parent Cancel or an expired deadline — rather than a genuine cell
// failure. Both must surface as the partial-result path, not as a cell
// error that would discard every completed cell.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes every cell of the spec on a worker pool bounded by
// spec.Parallel (default GOMAXPROCS) and returns the assembled result.
// Results are ordered by cell index, and each session owns a private rng
// seeded from its cell, so output is byte-identical at any parallelism.
//
// When ctx is canceled mid-run the completed cells come back in a partial
// Result (Incomplete set) alongside ctx's error, so callers can report
// what finished. A failing cell cancels the rest and Run returns the
// lowest-indexed cell error — deterministic, because cell failures are.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	par := spec.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}

	results := make([]*CellResult, len(cells))
	errs := make([]error, len(cells))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				if err := runCtx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, err := runCell(runCtx, i, cells[i])
				if err != nil {
					errs[i] = err
					if !isCancellation(err) {
						cancel()
					}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	// A genuine cell failure wins over cancellation noise; the lowest
	// index keeps the error deterministic under any scheduling.
	for i, err := range errs {
		if err != nil && !isCancellation(err) {
			c := cells[i]
			return nil, fmt.Errorf("fleet: cell %d (%s/%s/%s seed %d): %w",
				i, c.Platform.Name, c.Policy.Name, c.Workload.Name, c.Seed, err)
		}
	}

	out := &Result{Total: len(cells)}
	for _, r := range results {
		if r != nil {
			out.Cells = append(out.Cells, *r)
		}
	}
	out.Incomplete = len(out.Cells) < out.Total
	out.Aggregates = aggregate(out.Cells)
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if out.Incomplete {
		// No parent cancellation and no cell error, yet cells are missing:
		// only possible if a worker saw the run context die some other
		// way. Surface it rather than pass off a partial run as complete.
		return out, errors.New("fleet: run incomplete")
	}
	return out, nil
}

// runCell builds and runs one cell's session.
func runCell(ctx context.Context, idx int, c Cell) (*CellResult, error) {
	spec, err := c.session()
	if err != nil {
		return nil, err
	}
	rep, done, err := spec.RunDone(ctx)
	if err != nil {
		return nil, err
	}
	res := &CellResult{
		Index:     idx,
		Platform:  c.Platform.Name,
		Policy:    c.Policy.Name,
		Workload:  c.Workload.Name,
		Placer:    c.Placer,
		Seed:      c.Seed,
		Report:    rep,
		Finished:  done,
		Workloads: spec.Workloads,
	}
	for _, w := range spec.Workloads {
		if fs, ok := w.(frameSource); ok {
			res.AvgFPS = fs.AvgFPS()
			res.DropRate = fs.DropRate()
			res.HasFrames = true
			break
		}
	}
	return res, nil
}
