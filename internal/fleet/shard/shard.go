// Package shard partitions a fleet matrix into disjoint key-range shards
// so a study can scale across processes and machines. The unit of
// partitioning is the cell's canonical identity key (store.Identity.Key):
// keys are uniformly distributed SHA-256 prefixes, so contiguous ranges of
// the sorted key set balance within one cell of each other, and the
// partition is a pure function of the cell set — every participant that
// expands the same spec computes the same plan.
//
// A Manifest names one shard: the spec hash (a digest of the full key
// set), the shard's position in the plan, and its half-open key range. A
// worker handed a manifest re-expands the spec locally and calls Verify
// before running anything: a hash mismatch means coordinator and worker
// disagree about what the study is, and refusing to run is the only safe
// answer. Because shards are key ranges of one shared keyspace, the
// per-shard result stores are disjoint by construction and their merge is
// order-independent — the sorted-flush store format makes the merged
// cells.jsonl byte-identical to a single-process run.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
)

// Manifest describes one shard of a study matrix: which spec it belongs
// to, where it sits in the plan, and exactly which cells it owns.
type Manifest struct {
	// SpecHash digests the full sorted key set of the matrix; equal hashes
	// mean equal cell sets, whatever order the keys were produced in.
	SpecHash string `json:"spec_hash"`
	// Index and Count position the shard: index i of count n, 0 ≤ i < n.
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo is the shard's inclusive lower key bound; empty on shard 0 so the
	// first range covers everything below the first key.
	Lo string `json:"lo"`
	// Hi is the shard's exclusive upper key bound; empty on the last shard
	// so the final range covers everything from Lo up.
	Hi string `json:"hi,omitempty"`
	// Cells is the number of matrix keys inside the range — the exact
	// record count a completed shard must deliver.
	Cells int `json:"cells"`
}

// SpecHash digests a cell key set: the first 16 bytes of the SHA-256 over
// the sorted keys, hex-encoded. Order-independent — the hash names the
// set, not the spec's nesting order.
func SpecHash(keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, k := range sorted {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Plan partitions the key set into count contiguous shards of the sorted
// keyspace, sized within one cell of each other. Keys must be unique —
// duplicate identities in one matrix would double-run a cell — and count
// must fit the key set (an empty shard has nothing to verify or run).
func Plan(keys []string, count int) ([]Manifest, error) {
	if count < 1 {
		return nil, fmt.Errorf("shard: count %d, want at least 1", count)
	}
	if count > len(keys) {
		return nil, fmt.Errorf("shard: %d shards over %d cells would leave empty shards", count, len(keys))
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("shard: duplicate cell key %s", sorted[i])
		}
	}
	hash := SpecHash(sorted)
	base, rem := len(sorted)/count, len(sorted)%count
	plan := make([]Manifest, count)
	at := 0
	for i := range plan {
		size := base
		if i < rem {
			size++
		}
		m := Manifest{SpecHash: hash, Index: i, Count: count, Cells: size}
		if i > 0 {
			m.Lo = sorted[at]
		}
		if at+size < len(sorted) {
			m.Hi = sorted[at+size]
		}
		plan[i] = m
		at += size
	}
	return plan, nil
}

// Contains reports whether the key falls inside the shard's half-open
// range [Lo, Hi).
func (m Manifest) Contains(key string) bool {
	return key >= m.Lo && (m.Hi == "" || key < m.Hi)
}

// Verify checks the manifest against a locally expanded key set — the
// worker-side proof it was handed the right work. It fails when the spec
// hash disagrees (coordinator and worker expanded different matrices),
// when the shard's position is malformed, or when the range covers a
// different number of cells than the manifest claims.
func (m Manifest) Verify(keys []string) error {
	if m.Count < 1 || m.Index < 0 || m.Index >= m.Count {
		return fmt.Errorf("shard: malformed manifest index %d of %d", m.Index, m.Count)
	}
	if m.Hi != "" && m.Lo >= m.Hi {
		return errors.New("shard: malformed manifest: lo bound at or above hi bound")
	}
	if got := SpecHash(keys); got != m.SpecHash {
		return fmt.Errorf("shard: spec hash mismatch: manifest %s, local matrix %s — the shard was cut from a different spec", m.SpecHash, got)
	}
	in := 0
	for _, k := range keys {
		if m.Contains(k) {
			in++
		}
	}
	if in != m.Cells {
		return fmt.Errorf("shard: range holds %d of the matrix's cells, manifest claims %d", in, m.Cells)
	}
	return nil
}
