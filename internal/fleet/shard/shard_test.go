package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// fakeKeys builds n distinct hex-ish keys in shuffled order.
func fakeKeys(n int, seed int64) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032x", i*2654435761%1000003)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

// TestPlanPartition: every key lands in exactly one shard, sizes balance
// within one cell, and the plan is independent of input order.
func TestPlanPartition(t *testing.T) {
	for _, tc := range []struct{ n, count int }{
		{1, 1}, {7, 3}, {100, 4}, {100, 7}, {5, 5},
	} {
		keys := fakeKeys(tc.n, 1)
		plan, err := Plan(keys, tc.count)
		if err != nil {
			t.Fatalf("Plan(%d, %d): %v", tc.n, tc.count, err)
		}
		if len(plan) != tc.count {
			t.Fatalf("plan has %d shards, want %d", len(plan), tc.count)
		}
		total := 0
		for _, m := range plan {
			owners := 0
			for _, k := range keys {
				if m.Contains(k) {
					owners++
				}
			}
			if owners != m.Cells {
				t.Errorf("shard %d/%d holds %d keys, manifest says %d", m.Index, m.Count, owners, m.Cells)
			}
			if m.Cells < tc.n/tc.count || m.Cells > tc.n/tc.count+1 {
				t.Errorf("shard %d size %d out of balance for %d/%d", m.Index, m.Cells, tc.n, tc.count)
			}
			total += m.Cells
		}
		if total != tc.n {
			t.Errorf("shards cover %d keys, want %d", total, tc.n)
		}
		for _, k := range keys {
			in := 0
			for _, m := range plan {
				if m.Contains(k) {
					in++
				}
			}
			if in != 1 {
				t.Errorf("key %s in %d shards, want exactly 1", k, in)
			}
		}
		// Same keys in a different order produce the identical plan.
		reshuffled := fakeKeys(tc.n, 99)
		plan2, err := Plan(reshuffled, tc.count)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plan {
			if plan[i] != plan2[i] {
				t.Errorf("plan differs across input orders: %+v vs %+v", plan[i], plan2[i])
			}
		}
	}
}

// TestPlanCoversWholeKeyspace: the first shard accepts keys below the
// matrix minimum and the last accepts keys above the maximum, so range
// membership never depends on knowing the exact key set.
func TestPlanCoversWholeKeyspace(t *testing.T) {
	plan, err := Plan(fakeKeys(10, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !plan[0].Contains("") {
		t.Error("first shard rejects the keyspace minimum")
	}
	last := plan[len(plan)-1]
	if !last.Contains(strings.Repeat("f", 32)) {
		t.Error("last shard rejects the keyspace maximum")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(fakeKeys(3, 1), 0); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := Plan(fakeKeys(3, 1), 4); err == nil {
		t.Error("more shards than cells accepted")
	}
	dup := []string{"aa", "bb", "aa"}
	if _, err := Plan(dup, 2); err == nil {
		t.Error("duplicate keys accepted")
	}
}

// TestVerify: a manifest verifies against the matrix it was cut from and
// fails loudly against a different matrix, a tampered range, or a
// malformed position.
func TestVerify(t *testing.T) {
	keys := fakeKeys(20, 1)
	plan, err := Plan(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan {
		if err := m.Verify(keys); err != nil {
			t.Errorf("shard %d fails on its own matrix: %v", m.Index, err)
		}
	}
	other := fakeKeys(21, 1)
	if err := plan[0].Verify(other); err == nil {
		t.Error("manifest verified against a different matrix")
	}
	tampered := plan[1]
	tampered.Hi = "" // grab everything above Lo
	if err := tampered.Verify(keys); err == nil {
		t.Error("tampered range verified")
	}
	bad := plan[1]
	bad.Index = 7
	if err := bad.Verify(keys); err == nil {
		t.Error("malformed index verified")
	}
}

// TestSpecHashOrderIndependent locks the hash to the key set, not the
// ordering.
func TestSpecHashOrderIndependent(t *testing.T) {
	keys := fakeKeys(50, 1)
	h1 := SpecHash(keys)
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	if h2 := SpecHash(sorted); h1 != h2 {
		t.Errorf("hash depends on order: %s vs %s", h1, h2)
	}
	if h3 := SpecHash(keys[:49]); h3 == h1 {
		t.Error("hash ignores a dropped key")
	}
}
