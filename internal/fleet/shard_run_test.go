package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestShardedRunsMatchSerial: running the matrix as disjoint key-range
// shards into separate stores and merging them produces a store
// byte-identical to the unsharded run — the foundation the distributed
// coordinator's determinism guarantee rests on.
func TestShardedRunsMatchSerial(t *testing.T) {
	whole := t.TempDir()
	spec := matrixSpec(2)
	spec.StoreDir = whole
	wholeRes, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if wholeRes.Shard != nil {
		t.Error("unsharded run reports a shard manifest")
	}
	wholeJSONL, wholeCSV := readStoreFiles(t, whole)

	const shards = 3
	dirs := make([]string, shards)
	cells := 0
	for i := range dirs {
		dirs[i] = t.TempDir()
		s := matrixSpec(2)
		s.StoreDir = dirs[i]
		s.ShardIndex, s.ShardCount = i, shards
		res, err := Run(context.Background(), s)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if res.Shard == nil || res.Shard.Index != i || res.Shard.Count != shards {
			t.Fatalf("shard %d: manifest %+v", i, res.Shard)
		}
		if len(res.Cells) != res.Shard.Cells {
			t.Errorf("shard %d ran %d cells, manifest says %d", i, len(res.Cells), res.Shard.Cells)
		}
		if res.Total != res.Shard.Cells {
			t.Errorf("shard %d Total = %d, want the shard's %d", i, res.Total, res.Shard.Cells)
		}
		var text bytes.Buffer
		if err := res.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text.String(), "[shard") {
			t.Errorf("shard %d report misses the shard banner: %q", i, text.String()[:40])
		}
		cells += len(res.Cells)
	}
	if cells != 12 {
		t.Fatalf("shards ran %d cells total, want 12", cells)
	}

	merged := t.TempDir()
	added, err := MergeStores(merged, dirs...)
	if err != nil {
		t.Fatal(err)
	}
	if added != 12 {
		t.Errorf("merge added %d records, want 12", added)
	}
	mergedJSONL, mergedCSV := readStoreFiles(t, merged)
	if !bytes.Equal(wholeJSONL, mergedJSONL) {
		t.Error("merged shard stores differ from the unsharded store")
	}
	if !bytes.Equal(wholeCSV, mergedCSV) {
		t.Error("merged shard store CSV differs from the unsharded store CSV")
	}
}

// TestShardManifestRejectsWrongSpec: a manifest cut from one matrix must
// not execute against another — the worker-side proof of assignment.
func TestShardManifestRejectsWrongSpec(t *testing.T) {
	plan, err := matrixSpec(1).ShardPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	other := matrixSpec(1)
	other.Seeds = []int64{7, 8, 9} // different matrix, different keys
	other.Shard = &plan[0]
	if _, err := Run(context.Background(), other); err == nil {
		t.Error("manifest from a different spec accepted")
	} else if !strings.Contains(err.Error(), "different spec") {
		t.Errorf("unexpected error: %v", err)
	}

	bad := matrixSpec(1)
	bad.ShardIndex, bad.ShardCount = 5, 2
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}
