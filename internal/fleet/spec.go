// Package fleet is the batch simulation driver: a declarative Spec names a
// matrix of sessions (platforms × policies × workloads × placers × seeds),
// Run executes the cells on a bounded worker pool, and the result carries
// every per-cell report plus cross-seed aggregate statistics. The engine is
// single-threaded per Sim and embarrassingly parallel across sessions —
// fleet exploits that without giving up determinism: results are ordered
// by cell index, so a parallel run renders byte-identically to a serial
// one.
package fleet

import (
	"errors"
	"fmt"
	"time"

	"mobicore/internal/fleet/shard"
	"mobicore/internal/fleet/store"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/sim"
	"mobicore/internal/stack"
	"mobicore/internal/workload"
)

// PolicyFactory names a policy stack and builds fresh manager instances
// for it. Managers are stateful, so every cell gets its own; New is called
// concurrently from the worker pool and must be safe to call from multiple
// goroutines (pure construction — the common case — is).
type PolicyFactory struct {
	// Name labels the policy in reports and groups aggregates.
	Name string
	// New builds one fresh manager for a platform.
	New func(platform.Platform) (policy.Manager, error)
}

// Policy is the name-based PolicyFactory: any name internal/stack accepts
// ("mobicore", "android-default", "oracle", "<governor>+<hotplug>").
func Policy(name string) PolicyFactory {
	return PolicyFactory{
		Name: name,
		New:  func(plat platform.Platform) (policy.Manager, error) { return stack.Build(name, plat) },
	}
}

// WorkloadFactory names a demand recipe and builds fresh workload
// instances for it. Workloads are stateful, so every cell gets its own;
// like PolicyFactory.New, New must be callable concurrently.
type WorkloadFactory struct {
	// Name labels the workload in reports and groups aggregates.
	Name string
	// New builds the cell's fresh workload set.
	New func() ([]workload.Workload, error)
}

// Spec declares a fleet: the cross-product of the dimension slices, plus
// any explicit extra cells. The zero value of each optional dimension
// selects the engine default (greedy placement, seed 0, default tick and
// sampling).
type Spec struct {
	// Platforms, Policies, and Workloads are the required dimensions of
	// the cross-product; every combination of the three (times Placers
	// and Seeds) becomes one cell.
	Platforms []platform.Platform
	Policies  []PolicyFactory
	Workloads []WorkloadFactory
	// Placers lists scheduler placement rules (sim.PlacerGreedy,
	// sim.PlacerEAS); empty means the default greedy.
	Placers []string
	// Seeds lists workload randomness seeds; empty means the single seed
	// 0. Cross-seed aggregate statistics group over this dimension.
	Seeds []int64

	// Duration is the simulated length of every cross-product cell;
	// required when the cross-product is non-empty.
	Duration time.Duration
	// UntilDone stops each session early once its workloads finish
	// (benchmark-style cells), with Duration as the cap.
	UntilDone bool
	// Tick and SamplePeriod override the engine defaults for every cell.
	Tick         time.Duration
	SamplePeriod time.Duration
	// NoFuse disables the engine's quiescent-tick fast path in every cell
	// (see sim.Config.NoFuse). Output is byte-identical either way, so the
	// knob is excluded from cell identity — fused and unfused runs of the
	// same matrix share store records.
	NoFuse bool

	// ExtraCells run after the cross-product, for matrices that are not
	// rectangular (one-off calibration cells, asymmetric baselines).
	ExtraCells []Cell

	// Parallel bounds the worker pool; 0 means GOMAXPROCS. Parallelism
	// never changes results, only wall-clock time.
	Parallel int

	// StoreDir names the persistent result store: every completed cell is
	// written to <StoreDir>/cells.jsonl keyed by its canonical identity
	// hash, merged with whatever the store already holds and rewritten
	// sorted by key — so sweeps compose across invocations and the file's
	// bytes never depend on execution order or parallelism. Empty disables
	// persistence.
	StoreDir string
	// Resume loads cached cells from StoreDir before running: cells whose
	// identity hash is already stored come back from the store (Cached
	// set, condensed report) and only the missing ones execute. Requires
	// StoreDir.
	Resume bool
	// TraceDir, when set, exports each executed cell's per-tick power
	// trace as <TraceDir>/<key>.trace.jsonl.gz — one gzip JSONL line per
	// integration tick with the system watts and every cluster's share.
	// Cached cells are not re-traced.
	TraceDir string

	// Shard restricts the run to the cells of one key-range shard of the
	// matrix. Run verifies the manifest against the locally expanded cell
	// set before executing anything — a spec-hash mismatch means this
	// process was handed a shard cut from a different study. Nil runs the
	// whole matrix.
	Shard *shard.Manifest
	// ShardIndex/ShardCount are the by-position spelling of Shard for
	// callers without a manifest in hand (mobifleet -shard i/n): when
	// ShardCount > 0 and Shard is nil, Run plans ShardCount shards over
	// the matrix and takes shard ShardIndex. Disjoint-shard runs into
	// disjoint store directories merge (store.Merge) into bytes identical
	// to a single whole-matrix run.
	ShardIndex int
	ShardCount int
}

// ShardPlan expands the spec and partitions its cell keys into count
// disjoint key-range shards. Every process that expands the same spec
// computes the same plan — the coordinator/worker contract rests on it.
func (s Spec) ShardPlan(count int) ([]shard.Manifest, error) {
	cells, err := s.Cells()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.identity().Key()
	}
	return shard.Plan(keys, count)
}

// Cell is one fully-resolved session of a fleet.
type Cell struct {
	Platform platform.Platform
	Policy   PolicyFactory
	Workload WorkloadFactory
	Placer   string
	Seed     int64

	Duration     time.Duration
	UntilDone    bool
	Tick         time.Duration
	SamplePeriod time.Duration
	// NoFuse disables the quiescent-tick fast path for this cell. Not part
	// of the cell's identity: the fast path never changes output bytes.
	NoFuse bool
}

func (c Cell) validate() error {
	if c.Policy.New == nil {
		return errors.New("fleet: cell needs a policy factory")
	}
	if c.Workload.New == nil {
		return errors.New("fleet: cell needs a workload factory")
	}
	if c.Duration <= 0 {
		return errors.New("fleet: cell needs a positive duration")
	}
	return nil
}

// Cells expands the spec into its ordered cell list: the cross-product in
// platform → policy → workload → placer → seed nesting order, then the
// extra cells. The order is part of the contract — results and text output
// follow it exactly, whatever the parallelism.
func (s Spec) Cells() ([]Cell, error) {
	placers := s.Placers
	if len(placers) == 0 {
		placers = []string{""}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	var cells []Cell
	for _, plat := range s.Platforms {
		for _, pol := range s.Policies {
			for _, wl := range s.Workloads {
				for _, placer := range placers {
					for _, seed := range seeds {
						cells = append(cells, Cell{
							Platform:     plat,
							Policy:       pol,
							Workload:     wl,
							Placer:       placer,
							Seed:         seed,
							Duration:     s.Duration,
							UntilDone:    s.UntilDone,
							Tick:         s.Tick,
							SamplePeriod: s.SamplePeriod,
							NoFuse:       s.NoFuse,
						})
					}
				}
			}
		}
	}
	cells = append(cells, s.ExtraCells...)
	if len(cells) == 0 {
		return nil, errors.New("fleet: spec declares no cells")
	}
	for i, c := range cells {
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("%w (cell %d)", err, i)
		}
	}
	return cells, nil
}

// identity is the cell's canonical store coordinate. Engine defaults are
// canonicalized (empty placer → greedy, zero tick → 1 ms, zero sample
// period → 50 ms) so a cell spelled with defaults and one spelled
// explicitly name the same record.
func (c Cell) identity() store.Identity {
	placer := c.Placer
	if placer == "" {
		placer = sim.PlacerGreedy
	}
	tick := c.Tick
	if tick == 0 {
		tick = time.Millisecond
	}
	sample := c.SamplePeriod
	if sample == 0 {
		sample = 50 * time.Millisecond
	}
	return store.Identity{
		Platform:   c.Platform.Name,
		Policy:     c.Policy.Name,
		Workload:   c.Workload.Name,
		Placer:     placer,
		Seed:       c.Seed,
		DurationNS: int64(c.Duration),
		UntilDone:  c.UntilDone,
		TickNS:     int64(tick),
		SampleNS:   int64(sample),
	}
}

// session lowers the cell to the engine's session description with fresh
// manager and workload instances.
func (c Cell) session() (sim.SessionSpec, error) {
	mgr, err := c.Policy.New(c.Platform)
	if err != nil {
		return sim.SessionSpec{}, fmt.Errorf("fleet: building policy %q for %s: %w", c.Policy.Name, c.Platform.Name, err)
	}
	wls, err := c.Workload.New()
	if err != nil {
		return sim.SessionSpec{}, fmt.Errorf("fleet: building workload %q: %w", c.Workload.Name, err)
	}
	return sim.SessionSpec{
		Platform:     c.Platform,
		Manager:      mgr,
		Workloads:    wls,
		Duration:     c.Duration,
		UntilDone:    c.UntilDone,
		Seed:         c.Seed,
		Placer:       c.Placer,
		Tick:         c.Tick,
		SamplePeriod: c.SamplePeriod,
		NoFuse:       c.NoFuse,
	}, nil
}
