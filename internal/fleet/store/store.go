// Package store is the fleet driver's persistent result store: one JSONL
// record per completed cell, keyed by a canonical identity hash, so sweeps
// compose across sequential invocations. A re-run of the same Spec loads
// its cached cells from the store and executes only the missing ones; the
// merged store is rewritten sorted by key, so the file's bytes depend only
// on which cells exist — never on execution order, parallelism, or how
// many invocations it took to fill the matrix.
//
// The store assumes one writer at a time: Flush is load-at-Open, merge in
// memory, rewrite whole file (atomically, via rename). Open enforces that
// with a lock file (created O_CREATE|O_EXCL, removed by Close): a second
// process opening a held store fails with a clear error instead of
// silently dropping the first one's records on the last rename. Sharding a
// sweep across processes uses disjoint store directories — one per shard —
// combined afterwards with Merge, which refuses conflicting records for
// the same key.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// CellsFile is the name of the per-cell JSONL file inside a store
// directory.
const CellsFile = "cells.jsonl"

// LockFile is the name of the single-writer lock file inside a store
// directory. It exists exactly while some process holds the store open.
const LockFile = "store.lock"

// Identity is the canonical coordinate of one fleet cell — everything that
// selects a deterministic session. Two cells with equal identities run the
// same physics, so their records are interchangeable. Engine defaults are
// canonicalized by the caller (empty placer → "greedy", zero tick → 1 ms,
// zero sample period → 50 ms) so a spec spelled with defaults and one
// spelled explicitly hash identically. Workload names must encode their
// parameters ("busyloop-50%x4"), as the store cannot hash a factory.
type Identity struct {
	Platform   string `json:"platform"`
	Policy     string `json:"policy"`
	Workload   string `json:"workload"`
	Placer     string `json:"placer"`
	Seed       int64  `json:"seed"`
	DurationNS int64  `json:"duration_ns"`
	UntilDone  bool   `json:"until_done,omitempty"`
	TickNS     int64  `json:"tick_ns"`
	SampleNS   int64  `json:"sample_ns"`
}

// Key returns the cell's identity hash: the first 16 bytes of the SHA-256
// over the canonical field encoding, hex-encoded. It names the cell in the
// store and the per-cell trace files.
func (id Identity) Key() string {
	h := sha256.New()
	for _, s := range []string{
		id.Platform, id.Policy, id.Workload, id.Placer,
		strconv.FormatInt(id.Seed, 10),
		strconv.FormatInt(id.DurationNS, 10),
		strconv.FormatBool(id.UntilDone),
		strconv.FormatInt(id.TickNS, 10),
		strconv.FormatInt(id.SampleNS, 10),
	} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Record is one cell's persisted outcome: its identity plus the summary
// metrics the aggregates, CSV export, and text reports consume. It is a
// condensation of sim.Report — the sampled series stay out of the store
// (the power-trace export carries the per-tick data when asked for).
type Record struct {
	// Key is the identity hash; redundant with Identity but stored so the
	// file is self-describing and greppable by key.
	Key string `json:"key"`
	Identity

	// Finished is the session's completion verdict (RunUntilDone's for
	// UntilDone cells, true for duration-shaped ones).
	Finished bool `json:"finished"`
	// ElapsedNS is the session's actual simulated length — equal to the
	// identity's DurationNS for duration-shaped cells, possibly shorter
	// for UntilDone cells that finished early.
	ElapsedNS int64 `json:"elapsed_ns"`
	// HasFrames says whether AvgFPS/DropRate are meaningful.
	HasFrames bool    `json:"has_frames"`
	AvgFPS    float64 `json:"avg_fps"`
	DropRate  float64 `json:"drop_rate"`

	AvgPowerW         float64 `json:"avg_power_w"`
	PeakPowerW        float64 `json:"peak_power_w"`
	EnergyJ           float64 `json:"energy_j"`
	AvgFreqHz         float64 `json:"avg_freq_hz"`
	AvgOnlineCores    float64 `json:"avg_online_cores"`
	AvgUtil           float64 `json:"avg_util"`
	AvgQuota          float64 `json:"avg_quota"`
	AvgTempC          float64 `json:"avg_temp_c"`
	MaxTempC          float64 `json:"max_temp_c"`
	ExecutedCycles    float64 `json:"executed_cycles"`
	QuotaThrottledSec float64 `json:"quota_throttled_sec"`
	ThermalCappedSec  float64 `json:"thermal_capped_sec"`
}

// Store is a load-then-merge view of one store directory. Open loads the
// existing records; Put adds or replaces records in memory; Flush rewrites
// the JSONL file sorted by key (atomically, via a temp file rename); Close
// releases the writer lock. Not safe for concurrent use — the fleet driver
// mutates it only from its single assembly goroutine.
type Store struct {
	dir    string
	recs   map[string]Record
	locked bool
}

// Open creates the store directory if needed, takes the single-writer
// lock, and loads any existing records from its cells file. A missing
// cells file is an empty store; a malformed line is an error (the store is
// a cache of expensive runs — silently dropping records would silently
// re-run them). A held lock is an error too: before the lock existed, two
// concurrent writers would each rewrite the file from their own view and
// the last rename silently dropped the other's records. Callers must
// Close the store to release the lock.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if err := lock(dir); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, recs: map[string]Record{}, locked: true}
	if err := s.load(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// lock creates the store's lock file exclusively; an existing lock means
// another process holds the store.
func lock(dir string) error {
	path := filepath.Join(dir, LockFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, os.ErrExist) {
		holder, _ := os.ReadFile(path)
		return fmt.Errorf("store: %s is held by another writer (%s): concurrent writers would silently drop each other's records; remove %s if its holder is gone",
			dir, strings.TrimSpace(string(holder)), path)
	}
	if err != nil {
		return fmt.Errorf("store: locking %s: %w", dir, err)
	}
	fmt.Fprintf(f, "pid %d\n", os.Getpid())
	return f.Close()
}

// Close releases the store's writer lock. It does not flush — pairing an
// explicit Flush with a deferred Close keeps error handling honest.
// Closing twice is a no-op.
func (s *Store) Close() error {
	if !s.locked {
		return nil
	}
	s.locked = false
	if err := os.Remove(filepath.Join(s.dir, LockFile)); err != nil {
		return fmt.Errorf("store: unlocking %s: %w", s.dir, err)
	}
	return nil
}

// load reads the cells file into memory.
func (s *Store) load() error {
	path := filepath.Join(s.dir, CellsFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("store: %s line %d: %w", path, line, err)
		}
		if rec.Key == "" {
			return fmt.Errorf("store: %s line %d: record without key", path, line)
		}
		s.recs[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of records held.
func (s *Store) Len() int { return len(s.recs) }

// Get returns the record for a key, if present.
func (s *Store) Get(key string) (Record, bool) {
	rec, ok := s.recs[key]
	return rec, ok
}

// Put adds or replaces a record. Records with equal keys describe the same
// deterministic session, so replacement is idempotent by construction.
func (s *Store) Put(rec Record) {
	s.recs[rec.Key] = rec
}

// PutChecked adds a record, verifying the idempotence Put assumes: a key
// already held must carry an identical record — equal keys name the same
// deterministic session, so any payload difference means one side ran
// different physics (or a corrupted fragment) and must fail loudly rather
// than silently overwrite. It reports whether the record was new.
func (s *Store) PutChecked(rec Record) (added bool, err error) {
	if have, ok := s.recs[rec.Key]; ok {
		if have != rec {
			return false, fmt.Errorf("store: conflicting records for key %s: the same cell produced different results (%+v vs %+v)", rec.Key, have, rec)
		}
		return false, nil
	}
	s.recs[rec.Key] = rec
	return true, nil
}

// Records returns every record sorted by key — the file order of Flush.
func (s *Store) Records() []Record {
	out := make([]Record, 0, len(s.recs))
	for _, key := range s.Keys() {
		out = append(out, s.recs[key])
	}
	return out
}

// Keys returns every key in sorted order — the file order of Flush and
// WriteCSV.
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Flush rewrites the cells file: one JSON line per record, sorted by key,
// written to a temp file and renamed into place so readers never observe a
// torn store. The bytes depend only on the record set — a parallel run, a
// serial run, and a resumed run that filled the same cells all flush
// byte-identical files.
func (s *Store) Flush() error {
	tmp, err := os.CreateTemp(s.dir, CellsFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, key := range s.Keys() {
		b, err := json.Marshal(s.recs[key])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: encoding record %s: %w", key, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: writing record %s: %w", key, err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: flushing: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, CellsFile)); err != nil {
		return fmt.Errorf("store: installing cells file: %w", err)
	}
	return nil
}

// CSVHeader is the column list of the CSV export, shared by the store-wide
// export and the fleet result's per-run export so the two files join
// cleanly.
func CSVHeader() []string {
	return []string{
		"key", "platform", "policy", "workload", "placer", "seed",
		"duration_s", "elapsed_s", "until_done", "tick_s", "sample_s",
		"finished", "has_frames", "avg_fps", "drop_rate",
		"avg_power_w", "peak_power_w", "energy_j",
		"avg_freq_hz", "avg_online_cores", "avg_util", "avg_quota",
		"avg_temp_c", "max_temp_c", "executed_cycles",
		"quota_throttled_sec", "thermal_capped_sec",
	}
}

// CSVRow renders the record as one row of CSVHeader columns. Floats use
// the shortest round-trip encoding, so rows are byte-stable across runs.
func (r Record) CSVRow() []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []string{
		r.Key, r.Platform, r.Policy, r.Workload, r.Placer,
		strconv.FormatInt(r.Seed, 10),
		f(time.Duration(r.DurationNS).Seconds()),
		f(time.Duration(r.ElapsedNS).Seconds()),
		strconv.FormatBool(r.UntilDone),
		f(time.Duration(r.TickNS).Seconds()),
		f(time.Duration(r.SampleNS).Seconds()),
		strconv.FormatBool(r.Finished),
		strconv.FormatBool(r.HasFrames),
		f(r.AvgFPS), f(r.DropRate),
		f(r.AvgPowerW), f(r.PeakPowerW), f(r.EnergyJ),
		f(r.AvgFreqHz), f(r.AvgOnlineCores), f(r.AvgUtil), f(r.AvgQuota),
		f(r.AvgTempC), f(r.MaxTempC), f(r.ExecutedCycles),
		f(r.QuotaThrottledSec), f(r.ThermalCappedSec),
	}
}

// WriteCSV exports every record as CSV, sorted by key — the whole-store
// view that composes across invocations (the fleet result's WriteCSV is
// the per-run view in matrix order).
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return fmt.Errorf("store: writing csv header: %w", err)
	}
	for _, key := range s.Keys() {
		if err := cw.Write(s.recs[key].CSVRow()); err != nil {
			return fmt.Errorf("store: writing csv row %s: %w", key, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("store: flushing csv: %w", err)
	}
	return nil
}

// Merge combines the records of the src store directories into dst — the
// first-class form of the open-put-flush dance sharded sweeps previously
// hand-rolled. Every key may appear in any number of stores as long as its
// record is identical everywhere; a conflicting record for the same key
// fails the merge loudly, because it means two runs produced different
// results for what the identity hash says is the same deterministic
// session. Because Flush sorts by key, merging N disjoint shard stores
// yields a cells file byte-identical to a single run that filled the whole
// matrix. Returns the number of records new to dst.
func Merge(dst string, srcs ...string) (added int, err error) {
	if len(srcs) == 0 {
		return 0, errors.New("store: merge needs at least one source")
	}
	dstAbs, err := filepath.Abs(dst)
	if err != nil {
		return 0, fmt.Errorf("store: resolving %s: %w", dst, err)
	}
	d, err := Open(dst)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	for _, src := range srcs {
		srcAbs, err := filepath.Abs(src)
		if err != nil {
			return 0, fmt.Errorf("store: resolving %s: %w", src, err)
		}
		if srcAbs == dstAbs {
			return 0, fmt.Errorf("store: merge source %s is the destination", src)
		}
		s, err := Open(src)
		if err != nil {
			return 0, err
		}
		for _, rec := range s.Records() {
			isNew, err := d.PutChecked(rec)
			if err != nil {
				s.Close()
				return 0, fmt.Errorf("merging %s: %w", src, err)
			}
			if isNew {
				added++
			}
		}
		if err := s.Close(); err != nil {
			return 0, err
		}
	}
	if err := d.Flush(); err != nil {
		return 0, err
	}
	return added, nil
}
