package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testRecord(seed int64) Record {
	id := Identity{
		Platform:   "Nexus 5",
		Policy:     "mobicore",
		Workload:   "busyloop-50%x4",
		Placer:     "greedy",
		Seed:       seed,
		DurationNS: int64(30 * time.Second),
		TickNS:     int64(time.Millisecond),
		SampleNS:   int64(50 * time.Millisecond),
	}
	return Record{
		Key:       id.Key(),
		Identity:  id,
		Finished:  true,
		EnergyJ:   10.5 + float64(seed),
		AvgPowerW: 0.35,
	}
}

func TestIdentityKeyStableAndDistinct(t *testing.T) {
	a := testRecord(1).Identity
	if a.Key() != a.Key() {
		t.Error("key not deterministic")
	}
	if len(a.Key()) != 32 {
		t.Errorf("key %q not 32 hex chars", a.Key())
	}
	// Every field participates in the hash.
	variants := []Identity{a, a, a, a, a, a, a, a, a}
	variants[1].Platform = "Nexus 6P"
	variants[2].Policy = "android-default"
	variants[3].Workload = "busyloop-30%x4"
	variants[4].Placer = "eas"
	variants[5].Seed = 2
	variants[6].DurationNS++
	variants[7].UntilDone = true
	variants[8].TickNS++
	seen := map[string]int{}
	for i, v := range variants[1:] {
		seen[v.Key()]++
		if v.Key() == a.Key() {
			t.Errorf("variant %d hashes like the original", i+1)
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("key %s produced by %d distinct identities", k, n)
		}
	}
	// Field-boundary confusion: moving a byte across the separator must
	// change the hash.
	b := a
	b.Platform, b.Policy = "Nexus 5m", "obicore"
	if b.Key() == a.Key() {
		t.Error("field boundary not separated in the hash")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("fresh store has %d records", s.Len())
	}
	for seed := int64(3); seed >= 1; seed-- { // insert out of order
		s.Put(testRecord(seed))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 {
		t.Fatalf("reloaded %d records, want 3", re.Len())
	}
	want := testRecord(2)
	got, ok := re.Get(want.Key)
	if !ok || got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

// TestFlushDeterministic: the file bytes depend only on the record set —
// insertion order and flush count never show through.
func TestFlushDeterministic(t *testing.T) {
	write := func(order []int64) []byte {
		t.Helper()
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range order {
			s.Put(testRecord(seed))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil { // double flush must be idempotent
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, CellsFile))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write([]int64{1, 2, 3, 4})
	b := write([]int64{4, 2, 1, 3})
	if !bytes.Equal(a, b) {
		t.Error("flush bytes depend on insertion order")
	}
}

// TestIncrementalMergeMatchesCold: filling a store in two invocations
// produces the same bytes as one cold pass — the property resume rides on.
func TestIncrementalMergeMatchesCold(t *testing.T) {
	cold := t.TempDir()
	s, err := Open(cold)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		s.Put(testRecord(seed))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	warm := t.TempDir()
	first, err := Open(warm)
	if err != nil {
		t.Fatal(err)
	}
	first.Put(testRecord(2))
	first.Put(testRecord(4))
	if err := first.Flush(); err != nil {
		t.Fatal(err)
	}
	second, err := Open(warm) // reload the partial store
	if err != nil {
		t.Fatal(err)
	}
	second.Put(testRecord(1))
	second.Put(testRecord(3))
	if err := second.Flush(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(filepath.Join(cold, CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(warm, CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two-invocation store differs from cold store")
	}
}

func TestOpenRejectsCorruptLine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, CellsFile), []byte("{\"key\":\"ab\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("corrupt line not rejected with position: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, CellsFile), []byte("{\"energy_j\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("keyless record accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testRecord(2))
	s.Put(testRecord(1))
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if got, want := lines[0], strings.Join(CSVHeader(), ","); got != want {
		t.Errorf("header = %q, want %q", got, want)
	}
	if len(strings.Split(lines[1], ",")) != len(CSVHeader()) {
		t.Errorf("row width != header width: %q", lines[1])
	}
	// Rows are key-sorted like the JSONL.
	keys := s.Keys()
	if !strings.HasPrefix(lines[1], keys[0]) || !strings.HasPrefix(lines[2], keys[1]) {
		t.Errorf("csv rows not in key order:\n%s", buf.String())
	}
}
