package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testRecord(seed int64) Record {
	id := Identity{
		Platform:   "Nexus 5",
		Policy:     "mobicore",
		Workload:   "busyloop-50%x4",
		Placer:     "greedy",
		Seed:       seed,
		DurationNS: int64(30 * time.Second),
		TickNS:     int64(time.Millisecond),
		SampleNS:   int64(50 * time.Millisecond),
	}
	return Record{
		Key:       id.Key(),
		Identity:  id,
		Finished:  true,
		EnergyJ:   10.5 + float64(seed),
		AvgPowerW: 0.35,
	}
}

func TestIdentityKeyStableAndDistinct(t *testing.T) {
	a := testRecord(1).Identity
	if a.Key() != a.Key() {
		t.Error("key not deterministic")
	}
	if len(a.Key()) != 32 {
		t.Errorf("key %q not 32 hex chars", a.Key())
	}
	// Every field participates in the hash.
	variants := []Identity{a, a, a, a, a, a, a, a, a}
	variants[1].Platform = "Nexus 6P"
	variants[2].Policy = "android-default"
	variants[3].Workload = "busyloop-30%x4"
	variants[4].Placer = "eas"
	variants[5].Seed = 2
	variants[6].DurationNS++
	variants[7].UntilDone = true
	variants[8].TickNS++
	seen := map[string]int{}
	for i, v := range variants[1:] {
		seen[v.Key()]++
		if v.Key() == a.Key() {
			t.Errorf("variant %d hashes like the original", i+1)
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("key %s produced by %d distinct identities", k, n)
		}
	}
	// Field-boundary confusion: moving a byte across the separator must
	// change the hash.
	b := a
	b.Platform, b.Policy = "Nexus 5m", "obicore"
	if b.Key() == a.Key() {
		t.Error("field boundary not separated in the hash")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("fresh store has %d records", s.Len())
	}
	for seed := int64(3); seed >= 1; seed-- { // insert out of order
		s.Put(testRecord(seed))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("reloaded %d records, want 3", re.Len())
	}
	want := testRecord(2)
	got, ok := re.Get(want.Key)
	if !ok || got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

// TestFlushDeterministic: the file bytes depend only on the record set —
// insertion order and flush count never show through.
func TestFlushDeterministic(t *testing.T) {
	write := func(order []int64) []byte {
		t.Helper()
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for _, seed := range order {
			s.Put(testRecord(seed))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil { // double flush must be idempotent
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, CellsFile))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write([]int64{1, 2, 3, 4})
	b := write([]int64{4, 2, 1, 3})
	if !bytes.Equal(a, b) {
		t.Error("flush bytes depend on insertion order")
	}
}

// TestIncrementalMergeMatchesCold: filling a store in two invocations
// produces the same bytes as one cold pass — the property resume rides on.
func TestIncrementalMergeMatchesCold(t *testing.T) {
	cold := t.TempDir()
	s, err := Open(cold)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for seed := int64(1); seed <= 4; seed++ {
		s.Put(testRecord(seed))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	warm := t.TempDir()
	first, err := Open(warm)
	if err != nil {
		t.Fatal(err)
	}
	first.Put(testRecord(2))
	first.Put(testRecord(4))
	if err := first.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	second, err := Open(warm) // reload the partial store
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.Put(testRecord(1))
	second.Put(testRecord(3))
	if err := second.Flush(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(filepath.Join(cold, CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(warm, CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two-invocation store differs from cold store")
	}
}

func TestOpenRejectsCorruptLine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, CellsFile), []byte("{\"key\":\"ab\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("corrupt line not rejected with position: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, CellsFile), []byte("{\"energy_j\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("keyless record accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(testRecord(2))
	s.Put(testRecord(1))
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if got, want := lines[0], strings.Join(CSVHeader(), ","); got != want {
		t.Errorf("header = %q, want %q", got, want)
	}
	if len(strings.Split(lines[1], ",")) != len(CSVHeader()) {
		t.Errorf("row width != header width: %q", lines[1])
	}
	// Rows are key-sorted like the JSONL.
	keys := s.Keys()
	if !strings.HasPrefix(lines[1], keys[0]) || !strings.HasPrefix(lines[2], keys[1]) {
		t.Errorf("csv rows not in key order:\n%s", buf.String())
	}
}

// TestLockExcludesSecondWriter: a held store refuses a second Open with a
// clear error (the silent-last-rename-wins hazard), and Close releases it.
func TestLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "held by another writer") {
		t.Errorf("second writer not refused clearly: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	re.Close()
	// A failed Open (corrupt store) must not leave the lock behind.
	if err := os.WriteFile(filepath.Join(dir, CellsFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt store opened")
	}
	if _, err := os.Stat(filepath.Join(dir, LockFile)); !os.IsNotExist(err) {
		t.Error("failed Open leaked the lock file")
	}
}

func TestPutChecked(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := testRecord(1)
	if added, err := s.PutChecked(rec); err != nil || !added {
		t.Fatalf("first put: added=%v err=%v", added, err)
	}
	if added, err := s.PutChecked(rec); err != nil || added {
		t.Fatalf("identical re-put: added=%v err=%v", added, err)
	}
	conflicting := rec
	conflicting.EnergyJ += 1
	if _, err := s.PutChecked(conflicting); err == nil {
		t.Error("conflicting record for the same key accepted")
	}
}

// TestMerge: disjoint shard stores merge into bytes identical to a single
// store that held every record, overlap with identical records is
// tolerated, and a conflicting record fails the whole merge.
func TestMerge(t *testing.T) {
	writeStore := func(dir string, seeds ...int64) {
		t.Helper()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for _, seed := range seeds {
			s.Put(testRecord(seed))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	whole := t.TempDir()
	writeStore(whole, 1, 2, 3, 4, 5)
	shardA, shardB := t.TempDir(), t.TempDir()
	writeStore(shardA, 2, 4)
	writeStore(shardB, 1, 3, 5)

	merged := t.TempDir()
	added, err := Merge(merged, shardA, shardB)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Errorf("merge added %d records, want 5", added)
	}
	want, err := os.ReadFile(filepath.Join(whole, CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(merged, CellsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merged shards differ from the single-store bytes")
	}

	// Overlapping identical records are idempotent.
	if added, err := Merge(merged, shardA); err != nil || added != 0 {
		t.Errorf("idempotent re-merge: added=%d err=%v", added, err)
	}

	// A conflicting record for a shared key fails loudly.
	conflictDir := t.TempDir()
	c, err := Open(conflictDir)
	if err != nil {
		t.Fatal(err)
	}
	bad := testRecord(2)
	bad.EnergyJ *= 2
	c.Put(bad)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(merged, conflictDir); err == nil || !strings.Contains(err.Error(), "conflicting records") {
		t.Errorf("conflicting merge not refused: %v", err)
	}

	// Merging a store into itself is refused.
	if _, err := Merge(merged, merged); err == nil {
		t.Error("self-merge accepted")
	}
	if _, err := Merge(merged); err == nil {
		t.Error("merge with no sources accepted")
	}
}
