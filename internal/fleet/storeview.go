package fleet

import (
	"errors"
	"fmt"
	"sort"

	"mobicore/internal/fleet/store"
	"mobicore/internal/natsort"
)

// identityLess orders cell identities canonically: platform, policy,
// workload, and placer naturally sorted (nexus5 before nexus6p, seed2
// before seed10 semantics for embedded numbers), then seed numerically,
// then the engine shape fields. This is exactly the spec nesting order of
// a run whose dimension lists were themselves sorted — which is how the
// CLI's "all" expansion and the CI smokes spell their specs — so a
// store-backed report reproduces such a run's cell order byte for byte.
func identityLess(a, b store.Identity) bool {
	for _, c := range []struct{ a, b string }{
		{a.Platform, b.Platform},
		{a.Policy, b.Policy},
		{a.Workload, b.Workload},
		{a.Placer, b.Placer},
	} {
		if c.a != c.b {
			return natsort.Less(c.a, c.b)
		}
	}
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	if a.DurationNS != b.DurationNS {
		return a.DurationNS < b.DurationNS
	}
	if a.UntilDone != b.UntilDone {
		return !a.UntilDone
	}
	if a.TickNS != b.TickNS {
		return a.TickNS < b.TickNS
	}
	return a.SampleNS < b.SampleNS
}

// FromRecords rebuilds a fleet Result straight from persisted store
// records — aggregates, paired comparisons, text, CSV, and JSON rendering
// with zero cells executed. Every cell comes back Cached with a condensed
// report, ordered canonically (see identityLess).
func FromRecords(recs []store.Record) *Result {
	sorted := append([]store.Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return identityLess(sorted[i].Identity, sorted[j].Identity) })
	out := &Result{Total: len(sorted), Cached: len(sorted)}
	for i, rec := range sorted {
		out.Cells = append(out.Cells, *cellFromRecord(i, rec))
	}
	out.Aggregates = aggregate(out.Cells)
	out.Comparisons = compare(out.Cells)
	return out
}

// LoadStoreResult opens a result store directory and rebuilds its fleet
// Result — the zero-re-run reporting path: any store filled by any mix of
// serial, parallel, sharded, or distributed runs renders its aggregates
// and comparisons without executing a single session.
func LoadStoreResult(dir string) (*Result, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if st.Len() == 0 {
		return nil, fmt.Errorf("fleet: store %s holds no records", dir)
	}
	return FromRecords(st.Records()), nil
}

// MergeStores is store.Merge re-exported at the driver level: combine
// disjoint shard stores into one, refusing conflicting records for the
// same key. Returns the number of records new to dst.
func MergeStores(dst string, srcs ...string) (int, error) {
	if dst == "" {
		return 0, errors.New("fleet: merge needs a destination store")
	}
	return store.Merge(dst, srcs...)
}
