package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestLoadStoreResultReproducesRun: a report rebuilt from the store alone
// renders the same aggregates, comparisons, and CSV as the run that filled
// it — zero cells executed. The cell rows match byte for byte because the
// canonical store order equals spec order when the spec's dimension lists
// are sorted (as matrixSpec's are).
func TestLoadStoreResultReproducesRun(t *testing.T) {
	dir := t.TempDir()
	spec := matrixSpec(4)
	spec.StoreDir = dir
	runRes, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	res, err := LoadStoreResult(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != 12 || res.Total != 12 {
		t.Fatalf("store view: %d of %d cached, want 12 of 12", res.Cached, res.Total)
	}
	for _, c := range res.Cells {
		if !c.Cached {
			t.Fatalf("cell %d not marked cached in a store view", c.Index)
		}
	}

	var runText, viewText bytes.Buffer
	if err := runRes.WriteText(&runText); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteText(&viewText); err != nil {
		t.Fatal(err)
	}
	runBody := strings.TrimPrefix(runText.String(), "fleet: 12 of 12 cells\n")
	viewBody := strings.TrimPrefix(viewText.String(), "fleet: 12 of 12 cells (12 cached)\n")
	if runBody == runText.String() || viewBody == viewText.String() {
		t.Fatalf("unexpected banners:\nrun:  %q\nview: %q",
			runText.String()[:40], viewText.String()[:40])
	}
	if runBody != viewBody {
		t.Errorf("store-backed report differs from the run's:\n--- run ---\n%s\n--- view ---\n%s", runBody, viewBody)
	}

	var runCSV, viewCSV bytes.Buffer
	if err := runRes.WriteCSV(&runCSV); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&viewCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(runCSV.Bytes(), viewCSV.Bytes()) {
		t.Error("store-backed CSV differs from the run's CSV")
	}
}

func TestLoadStoreResultEmpty(t *testing.T) {
	if _, err := LoadStoreResult(t.TempDir()); err == nil {
		t.Error("empty store accepted")
	} else if !strings.Contains(err.Error(), "no records") {
		t.Errorf("unexpected error: %v", err)
	}
}
