package fleet

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// TraceSample is one line of a per-cell power-trace export: one
// integration tick's power sample.
type TraceSample struct {
	// TSec is the tick's start time in simulated seconds.
	TSec float64 `json:"t_s"`
	// DtSec is the tick length in seconds.
	DtSec float64 `json:"dt_s"`
	// SystemW is the total system power over the tick; integrating
	// SystemW·DtSec across a trace reproduces the cell's EnergyJ.
	SystemW float64 `json:"system_w"`
	// ClusterW is each cluster's share (cores + uncore, platform floor
	// excluded), indexed like the platform's ClusterSpecs.
	ClusterW []float64 `json:"cluster_w"`
}

// TraceFileName returns the trace file a cell key exports to.
func TraceFileName(key string) string { return key + ".trace.jsonl.gz" }

// traceWriter streams TraceSamples to a gzip JSONL file. Write errors are
// latched and surfaced at Close, because the sim's trace hook has no error
// return.
type traceWriter struct {
	f    *os.File
	buf  *bufio.Writer
	gz   *gzip.Writer
	enc  *json.Encoder
	err  error
	path string
}

// newTraceWriter creates <dir>/<key>.trace.jsonl.gz for writing. Passing
// the worker's previous (closed or aborted) writer as recycle reuses its
// 64 KiB buffer, gzip state, and encoder for the new file, so a tracing
// fleet worker allocates the expensive compression machinery once, not per
// cell.
func newTraceWriter(dir, key string, recycle *traceWriter) (*traceWriter, error) {
	path := filepath.Join(dir, TraceFileName(key))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: creating trace %s: %w", path, err)
	}
	tw := recycle
	if tw == nil {
		tw = &traceWriter{}
		tw.buf = bufio.NewWriterSize(nil, 64*1024)
		tw.gz = gzip.NewWriter(tw.buf)
		tw.enc = json.NewEncoder(tw.gz)
	}
	tw.f, tw.path, tw.err = f, path, nil
	tw.buf.Reset(f)
	tw.gz.Reset(tw.buf)
	return tw, nil
}

// hook is the sim.Config.PowerTrace adapter. The cluster slice is the
// engine's reused scratch; json encoding reads it synchronously, so no
// copy is needed.
func (tw *traceWriter) hook(now, dt time.Duration, systemW float64, clusterW []float64) {
	if tw.err != nil {
		return
	}
	tw.err = tw.enc.Encode(TraceSample{
		TSec:     now.Seconds(),
		DtSec:    dt.Seconds(),
		SystemW:  systemW,
		ClusterW: clusterW,
	})
}

// Abort closes and deletes the trace — the path for sessions that ended
// early (cancellation, cell failure), whose partial trace would otherwise
// pass for a complete shorter run.
func (tw *traceWriter) Abort() {
	tw.gz.Close()
	tw.f.Close()
	os.Remove(tw.path)
}

// Close flushes and closes the trace, returning the first error from any
// stage. On error the partial file is removed — a truncated trace is worse
// than no trace.
func (tw *traceWriter) Close() error {
	err := tw.err
	if e := tw.gz.Close(); err == nil {
		err = e
	}
	if e := tw.buf.Flush(); err == nil {
		err = e
	}
	if e := tw.f.Close(); err == nil {
		err = e
	}
	if err != nil {
		os.Remove(tw.path)
		return fmt.Errorf("fleet: writing trace %s: %w", tw.path, err)
	}
	return nil
}
