// Package games models the five "modern representative games" of the
// thesis' evaluation (§6): Real Racing 3, Subway Surf, Badland, Angry
// Birds, and Asphalt 8. Each game is a frame-paced CPU workload with a
// distinct demand signature — mean frame cost, thread parallelism,
// oscillation, and burstiness — calibrated so the per-game contrasts the
// thesis reports emerge: Subway Surf spiky and parallel (largest MobiCore
// saving, 11.7%), Real Racing 3 steady and serial-bound (no headroom,
// ≈0% saving), the rest in between.
package games

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobicore/internal/metrics"
	"mobicore/internal/render"
	"mobicore/internal/sched"
)

// Profile is one game's demand signature.
type Profile struct {
	// Name is the title used in reports.
	Name string
	// TargetFPS is the engine's frame pacing.
	TargetFPS float64
	// FrameCycles is the mean CPU cost of one frame.
	FrameCycles float64
	// ParallelFrac is the Amdahl fraction of frame work spread over the
	// worker threads; the rest runs on the main thread.
	ParallelFrac float64
	// Workers is the worker thread count beyond the main thread.
	Workers int
	// SwingAmp and SwingPeriod describe the slow scene-driven oscillation
	// of frame cost: cycles ×= 1 + SwingAmp·sin(2πt/SwingPeriod).
	SwingAmp    float64
	SwingPeriod time.Duration
	// BurstEvery and BurstLen describe demand spikes (explosions, scene
	// loads): every BurstEvery on average, frame cost multiplies by
	// BurstMult for BurstLen. Poisson-spaced via the simulation rng.
	BurstEvery time.Duration
	BurstLen   time.Duration
	BurstMult  float64
	// NoiseStd is per-frame multiplicative noise (fraction).
	NoiseStd float64
	// MaxQueue caps frames in flight before the engine skips frames.
	MaxQueue int
}

// Validate rejects nonsensical profiles.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("games: profile needs a name")
	case p.TargetFPS <= 0:
		return errors.New("games: TargetFPS must be positive")
	case p.FrameCycles <= 0:
		return errors.New("games: FrameCycles must be positive")
	case p.ParallelFrac < 0 || p.ParallelFrac > 1:
		return errors.New("games: ParallelFrac must be in [0,1]")
	case p.Workers < 0:
		return errors.New("games: Workers must be non-negative")
	case p.SwingAmp < 0 || p.SwingAmp > 1:
		return errors.New("games: SwingAmp must be in [0,1]")
	case p.SwingAmp > 0 && p.SwingPeriod <= 0:
		return errors.New("games: SwingPeriod must be positive when SwingAmp > 0")
	case p.BurstMult < 0:
		return errors.New("games: BurstMult must be non-negative")
	case p.BurstMult > 0 && (p.BurstEvery <= 0 || p.BurstLen <= 0):
		return errors.New("games: burst timing must be positive when bursting")
	case p.NoiseStd < 0:
		return errors.New("games: NoiseStd must be non-negative")
	case p.MaxQueue < 1:
		return errors.New("games: MaxQueue must be >= 1")
	}
	return nil
}

// Game is a live instance of a profile: a frame pipeline plus the demand
// dynamics. It implements the simulator's workload interface.
type Game struct {
	profile  Profile
	pipeline *render.Pipeline

	elapsed    time.Duration
	burstUntil time.Duration
	nextBurst  time.Duration
	burstInit  bool

	fpsSeries metrics.Series
	lastFPSAt time.Duration
	lastDone  int
}

// New instantiates a game.
func New(p Profile) (*Game, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pipe, err := render.New(p.Name, render.Config{
		TargetFPS: p.TargetFPS,
		MaxQueue:  p.MaxQueue,
		Workers:   p.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("games: building pipeline for %s: %w", p.Name, err)
	}
	return &Game{profile: p, pipeline: pipe}, nil
}

// Name implements workload.Workload.
func (g *Game) Name() string { return g.profile.Name }

// Profile returns the game's demand signature.
func (g *Game) Profile() Profile { return g.profile }

// Threads implements workload.Workload.
func (g *Game) Threads() []*sched.Thread { return g.pipeline.Threads() }

// Done implements workload.Workload: gaming sessions are time-boxed by the
// experiment, not self-terminating.
func (g *Game) Done() bool { return false }

// Tick implements workload.Workload.
func (g *Game) Tick(now, dt time.Duration, rng *rand.Rand) {
	g.elapsed += dt
	cycles := g.frameCost(rng)
	g.pipeline.Tick(now, dt, cycles, g.profile.ParallelFrac)

	// Sample a 1-second rolling FPS series for the evaluation plots.
	if g.elapsed-g.lastFPSAt >= time.Second {
		done := g.pipeline.CompletedFrames()
		g.fpsSeries.Append(now, float64(done-g.lastDone)/(g.elapsed-g.lastFPSAt).Seconds())
		g.lastDone = done
		g.lastFPSAt = g.elapsed
	}
}

// frameCost evaluates the demand dynamics for a frame emitted now.
func (g *Game) frameCost(rng *rand.Rand) float64 {
	p := g.profile
	cycles := p.FrameCycles

	if p.SwingAmp > 0 {
		phase := 2 * math.Pi * float64(g.elapsed) / float64(p.SwingPeriod)
		cycles *= 1 + p.SwingAmp*math.Sin(phase)
	}

	if p.BurstMult > 0 {
		if !g.burstInit {
			g.nextBurst = g.elapsed + exponential(rng, p.BurstEvery)
			g.burstInit = true
		}
		if g.elapsed >= g.nextBurst {
			g.burstUntil = g.elapsed + p.BurstLen
			g.nextBurst = g.elapsed + p.BurstLen + exponential(rng, p.BurstEvery)
		}
		if g.elapsed < g.burstUntil {
			cycles *= p.BurstMult
		}
	}

	if p.NoiseStd > 0 {
		cycles *= 1 + p.NoiseStd*rng.NormFloat64()
	}
	if cycles < 0 {
		cycles = 0
	}
	return cycles
}

// exponential draws an exponentially distributed interval with the given
// mean from the simulation rng.
func exponential(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// AvgFPS returns the session's average completed frames per second.
func (g *Game) AvgFPS() float64 { return g.pipeline.AvgFPS(g.elapsed) }

// FPSSeries returns the rolling one-second FPS samples.
func (g *Game) FPSSeries() metrics.Series { return g.fpsSeries }

// CompletedFrames returns the total frames rendered.
func (g *Game) CompletedFrames() int { return g.pipeline.CompletedFrames() }

// DroppedFrames returns frames skipped under backpressure.
func (g *Game) DroppedFrames() int { return g.pipeline.DroppedFrames() }

// EmittedFrames returns total frames the engine submitted.
func (g *Game) EmittedFrames() int { return g.pipeline.EmittedFrames() }

// LatencySummary returns frame emit-to-completion latency statistics.
func (g *Game) LatencySummary() metrics.Summary { return g.pipeline.LatencySummary() }

// DropRate returns the fraction of paced frames skipped under backpressure.
func (g *Game) DropRate() float64 { return g.pipeline.DropRate() }
