package games

import (
	"math/rand"
	"testing"
	"time"
)

func TestProfileValidate(t *testing.T) {
	good := SubwaySurf()
	if err := good.Validate(); err != nil {
		t.Fatalf("stock profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"zero fps", func(p *Profile) { p.TargetFPS = 0 }},
		{"zero frame cycles", func(p *Profile) { p.FrameCycles = 0 }},
		{"parallel above one", func(p *Profile) { p.ParallelFrac = 1.5 }},
		{"negative workers", func(p *Profile) { p.Workers = -1 }},
		{"swing without period", func(p *Profile) { p.SwingAmp = 0.5; p.SwingPeriod = 0 }},
		{"burst without timing", func(p *Profile) { p.BurstMult = 2; p.BurstEvery = 0 }},
		{"negative noise", func(p *Profile) { p.NoiseStd = -1 }},
		{"zero queue", func(p *Profile) { p.MaxQueue = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := SubwaySurf()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestAllFiveTitles(t *testing.T) {
	profiles := All()
	if len(profiles) != 5 {
		t.Fatalf("game count = %d, want the thesis' 5", len(profiles))
	}
	want := []string{"Real Racing 3", "Subway Surf", "Badland", "Angry Birds", "Asphalt 8"}
	for i, p := range profiles {
		if p.Name != want[i] {
			t.Errorf("game %d = %q, want %q (paper numbering)", i, p.Name, want[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if _, err := New(p); err != nil {
			t.Errorf("New(%s): %v", p.Name, err)
		}
	}
}

func TestGameThreads(t *testing.T) {
	g, err := New(SubwaySurf())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Threads()), 1+SubwaySurf().Workers; got != want {
		t.Errorf("threads = %d, want %d", got, want)
	}
	if g.Done() {
		t.Error("games never report done")
	}
}

// TestGameFPSWithInstantExecution: when every deposited cycle executes
// immediately, the game completes frames at its target pacing.
func TestGameFPSWithInstantExecution(t *testing.T) {
	prof := AngryBirds()
	g, err := New(prof)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := time.Duration(0)
	for i := 0; i < 10_000; i++ {
		g.Tick(now, time.Millisecond, rng)
		for _, th := range g.Threads() {
			th.Execute(th.Pending(), 0)
		}
		now += time.Millisecond
	}
	fps := g.AvgFPS()
	if fps < prof.TargetFPS*0.95 || fps > prof.TargetFPS*1.05 {
		t.Errorf("instant-execution fps = %.1f, want ≈%.0f", fps, prof.TargetFPS)
	}
	if g.DroppedFrames() != 0 {
		t.Errorf("dropped %d frames with instant execution", g.DroppedFrames())
	}
}

// TestGameShedsWhenStarved: with no execution at all, the engine drops
// frames rather than queueing unboundedly.
func TestGameShedsWhenStarved(t *testing.T) {
	g, err := New(Badland())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	now := time.Duration(0)
	for i := 0; i < 2000; i++ {
		g.Tick(now, time.Millisecond, rng)
		now += time.Millisecond
	}
	if g.CompletedFrames() != 0 {
		t.Errorf("starved game completed %d frames", g.CompletedFrames())
	}
	if g.DroppedFrames() == 0 {
		t.Error("starved game dropped nothing")
	}
}

func TestGameDeterminism(t *testing.T) {
	run := func() (int, float64) {
		g, err := New(SubwaySurf())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		now := time.Duration(0)
		var executed float64
		for i := 0; i < 3000; i++ {
			g.Tick(now, time.Millisecond, rng)
			for _, th := range g.Threads() {
				executed += th.Execute(th.Pending()/2, 0)
			}
			now += time.Millisecond
		}
		return g.CompletedFrames(), executed
	}
	f1, e1 := run()
	f2, e2 := run()
	if f1 != f2 || e1 != e2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", f1, e1, f2, e2)
	}
}

// TestBurstRaisesDemand: a bursting profile deposits more cycles than the
// same profile with bursts disabled.
func TestBurstRaisesDemand(t *testing.T) {
	deposit := func(burst bool) float64 {
		prof := SubwaySurf()
		prof.NoiseStd = 0
		prof.SwingAmp = 0
		if !burst {
			prof.BurstMult = 0
		}
		g, err := New(prof)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		now := time.Duration(0)
		var total float64
		for i := 0; i < 30_000; i++ {
			g.Tick(now, time.Millisecond, rng)
			for _, th := range g.Threads() {
				total += th.Execute(th.Pending(), 0)
			}
			now += time.Millisecond
		}
		return total
	}
	withBurst, without := deposit(true), deposit(false)
	if withBurst <= without*1.02 {
		t.Errorf("bursting demand %.3g not above baseline %.3g", withBurst, without)
	}
}

func TestFPSSeriesSampled(t *testing.T) {
	g, err := New(RealRacing3())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		g.Tick(now, time.Millisecond, rng)
		for _, th := range g.Threads() {
			th.Execute(th.Pending(), 0)
		}
		now += time.Millisecond
	}
	series := g.FPSSeries()
	if series.Len() < 4 {
		t.Errorf("fps series has %d samples after 5 s, want ≈5", series.Len())
	}
}
