package games

import "time"

// The five evaluation titles (§6). The shapes are calibrated against the
// per-game observations of Figures 10–13:
//
//   - Real Racing 3: steady, heavy, serial-bound — the title where MobiCore
//     found "no room to further optimize" (≈0% saving, 2.2 cores).
//   - Subway Surf: spiky and well-threaded — the best case (11.7% saving,
//     3.9 cores under the default policy, 43% frequency gap).
//   - Badland: moderate 2D physics.
//   - Angry Birds: light with physics bursts on every launch.
//   - Asphalt 8: heavy racing with scene swings.

// RealRacing3 returns the steady heavy racing profile.
func RealRacing3() Profile {
	return Profile{
		Name:         "Real Racing 3",
		TargetFPS:    30,
		FrameCycles:  2.6e8,
		ParallelFrac: 0.50,
		Workers:      2,
		SwingAmp:     0.08,
		SwingPeriod:  15 * time.Second,
		BurstEvery:   20 * time.Second,
		BurstLen:     time.Second,
		BurstMult:    1.3,
		NoiseStd:     0.04,
		MaxQueue:     3,
	}
}

// SubwaySurf returns the spiky endless-runner profile.
func SubwaySurf() Profile {
	return Profile{
		Name:         "Subway Surf",
		TargetFPS:    24,
		FrameCycles:  1.2e8,
		ParallelFrac: 0.78,
		Workers:      3,
		SwingAmp:     0.30,
		SwingPeriod:  7 * time.Second,
		BurstEvery:   3 * time.Second,
		BurstLen:     900 * time.Millisecond,
		BurstMult:    2.0,
		NoiseStd:     0.12,
		MaxQueue:     3,
	}
}

// Badland returns the moderate 2D side-scroller profile.
func Badland() Profile {
	return Profile{
		Name:         "Badland",
		TargetFPS:    24,
		FrameCycles:  1.1e8,
		ParallelFrac: 0.60,
		Workers:      2,
		SwingAmp:     0.15,
		SwingPeriod:  10 * time.Second,
		BurstEvery:   10 * time.Second,
		BurstLen:     800 * time.Millisecond,
		BurstMult:    1.8,
		NoiseStd:     0.05,
		MaxQueue:     3,
	}
}

// AngryBirds returns the light physics-puzzler profile.
func AngryBirds() Profile {
	return Profile{
		Name:         "Angry Birds",
		TargetFPS:    20,
		FrameCycles:  0.8e8,
		ParallelFrac: 0.50,
		Workers:      1,
		SwingAmp:     0.10,
		SwingPeriod:  9 * time.Second,
		BurstEvery:   7 * time.Second,
		BurstLen:     time.Second,
		BurstMult:    2.2,
		NoiseStd:     0.10,
		MaxQueue:     3,
	}
}

// Asphalt8 returns the heavy arcade-racing profile.
func Asphalt8() Profile {
	return Profile{
		Name:         "Asphalt 8",
		TargetFPS:    24,
		FrameCycles:  1.9e8,
		ParallelFrac: 0.70,
		Workers:      3,
		SwingAmp:     0.20,
		SwingPeriod:  12 * time.Second,
		BurstEvery:   8 * time.Second,
		BurstLen:     1500 * time.Millisecond,
		BurstMult:    1.6,
		NoiseStd:     0.06,
		MaxQueue:     3,
	}
}

// All returns the five games in the thesis' numbering order (1–5).
func All() []Profile {
	return []Profile{
		RealRacing3(),
		SubwaySurf(),
		Badland(),
		AngryBirds(),
		Asphalt8(),
	}
}
