// Package geekbench reproduces the role GeekBench 4 plays in the thesis: a
// complex CPU benchmark that "pushes the limits of the system" and returns a
// score (§3.5). The suite is synthetic — a mix of compute-bound and
// memory-stalled sections with imperfect parallel scaling — but exposes the
// same two interfaces the thesis uses:
//
//   - analytic scoring at a pinned frequency and core count (Figures 6–7),
//   - a workload that runs the suite under a live governor so policies can
//     be compared by score and power (Figure 9b).
//
// Scores are normalized so one Krait-class core flat out lands near the
// historical GeekBench 4 single-core result for the Nexus 5 (≈950).
package geekbench

import (
	"errors"
	"math"

	"mobicore/internal/soc"
)

// Section is one benchmark sub-test.
type Section struct {
	// Name identifies the section in reports.
	Name string
	// WorkCycles is the CPU work of one run of this section.
	WorkCycles float64
	// StallSeconds is frequency-independent time per run — memory and
	// cache-miss stalls that do not shrink when the clock rises. This
	// term produces the high-frequency plateau of Figure 6.
	StallSeconds float64
	// ParallelFrac is the Amdahl parallel fraction for multi-core runs.
	ParallelFrac float64
}

// Validate rejects nonsensical sections.
func (s Section) Validate() error {
	switch {
	case s.Name == "":
		return errors.New("geekbench: section needs a name")
	case s.WorkCycles <= 0:
		return errors.New("geekbench: WorkCycles must be positive")
	case s.StallSeconds < 0:
		return errors.New("geekbench: StallSeconds must be non-negative")
	case s.ParallelFrac < 0 || s.ParallelFrac > 1:
		return errors.New("geekbench: ParallelFrac must be in [0,1]")
	}
	return nil
}

// StandardSuite returns the ten-section suite used throughout the
// reproduction: crypto and integer sections are compute-bound and scale
// well; memory sections stall heavily and barely scale.
func StandardSuite() []Section {
	return []Section{
		{Name: "aes", WorkCycles: 2.2e8, StallSeconds: 0.004, ParallelFrac: 0.95},
		{Name: "lzma", WorkCycles: 2.8e8, StallSeconds: 0.045, ParallelFrac: 0.80},
		{Name: "jpeg", WorkCycles: 2.5e8, StallSeconds: 0.012, ParallelFrac: 0.90},
		{Name: "dijkstra", WorkCycles: 2.0e8, StallSeconds: 0.050, ParallelFrac: 0.70},
		{Name: "html5-dom", WorkCycles: 2.4e8, StallSeconds: 0.040, ParallelFrac: 0.75},
		{Name: "sgemm", WorkCycles: 3.0e8, StallSeconds: 0.008, ParallelFrac: 0.95},
		{Name: "sfft", WorkCycles: 2.6e8, StallSeconds: 0.015, ParallelFrac: 0.90},
		{Name: "rigid-body", WorkCycles: 2.3e8, StallSeconds: 0.010, ParallelFrac: 0.85},
		{Name: "memcopy", WorkCycles: 1.2e8, StallSeconds: 0.080, ParallelFrac: 0.45},
		{Name: "memlatency", WorkCycles: 0.8e8, StallSeconds: 0.100, ParallelFrac: 0.40},
	}
}

// scoreScale normalizes SingleCoreScore to ≈950 for one MSM8974 core at
// 2.2656 GHz, the Nexus 5's historical GeekBench 4 single-core ballpark.
const scoreScale = 124.5

// sectionSeconds returns the wall time of one run of s on n cores at
// frequency f with Amdahl scaling.
func sectionSeconds(s Section, f soc.Hz, n int) float64 {
	speedup := 1.0
	if n > 1 {
		speedup = 1 / ((1 - s.ParallelFrac) + s.ParallelFrac/float64(n))
	}
	return s.WorkCycles/(float64(f)*speedup) + s.StallSeconds
}

// Score computes the analytic benchmark score for n cores pinned at
// frequency f: the geometric mean of per-section rates, scaled to the
// GeekBench-4-like range. It returns an error for invalid inputs.
func Score(suite []Section, f soc.Hz, n int) (float64, error) {
	if len(suite) == 0 {
		return 0, errors.New("geekbench: empty suite")
	}
	if f == 0 {
		return 0, errors.New("geekbench: zero frequency")
	}
	if n < 1 {
		return 0, errors.New("geekbench: need at least one core")
	}
	logSum := 0.0
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		rate := 1 / sectionSeconds(s, f, n)
		logSum += math.Log(rate)
	}
	return scoreScale * math.Exp(logSum/float64(len(suite))), nil
}

// SingleCoreScore is Score with one core.
func SingleCoreScore(suite []Section, f soc.Hz) (float64, error) {
	return Score(suite, f, 1)
}

// BusyFraction returns the fraction of wall time the CPU actually switches
// (vs stalls) when running the suite at frequency f on n cores — the
// utilization the power model should see. At high frequency compute time
// shrinks while stalls do not, so the busy fraction falls; this is why
// measured power plateaus in Figure 6 even as the clock keeps rising.
func BusyFraction(suite []Section, f soc.Hz, n int) (float64, error) {
	if len(suite) == 0 {
		return 0, errors.New("geekbench: empty suite")
	}
	if f == 0 {
		return 0, errors.New("geekbench: zero frequency")
	}
	if n < 1 {
		return 0, errors.New("geekbench: need at least one core")
	}
	var busy, total float64
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		sec := sectionSeconds(s, f, n)
		speedup := 1.0
		if n > 1 {
			speedup = 1 / ((1 - s.ParallelFrac) + s.ParallelFrac/float64(n))
		}
		busy += s.WorkCycles / (float64(f) * speedup)
		total += sec
	}
	if total == 0 {
		return 0, nil
	}
	return busy / total, nil
}
