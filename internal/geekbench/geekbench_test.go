package geekbench

import (
	"math/rand"
	"testing"
	"time"

	"mobicore/internal/soc"
)

func table() *soc.OPPTable { return soc.MSM8974Table() }

func TestSectionValidate(t *testing.T) {
	good := Section{Name: "x", WorkCycles: 1e8, StallSeconds: 0.01, ParallelFrac: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good section rejected: %v", err)
	}
	bad := []Section{
		{Name: "", WorkCycles: 1e8},
		{Name: "x", WorkCycles: 0},
		{Name: "x", WorkCycles: 1e8, StallSeconds: -1},
		{Name: "x", WorkCycles: 1e8, ParallelFrac: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad section %d accepted", i)
		}
	}
}

func TestStandardSuiteValid(t *testing.T) {
	suite := StandardSuite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d sections, want 10", len(suite))
	}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestScoreAnchors: single-core at f_max lands near the Nexus 5's
// historical GeekBench 4 ballpark; multi-core scales but sub-linearly.
func TestScoreAnchors(t *testing.T) {
	suite := StandardSuite()
	single, err := SingleCoreScore(suite, table().Max().Freq)
	if err != nil {
		t.Fatal(err)
	}
	if single < 800 || single > 1100 {
		t.Errorf("single-core score = %.0f, want ≈950", single)
	}
	multi, err := Score(suite, table().Max().Freq, 4)
	if err != nil {
		t.Fatal(err)
	}
	if multi <= single*1.5 {
		t.Errorf("4-core score %.0f should be well above single %.0f", multi, single)
	}
	if multi >= single*4 {
		t.Errorf("4-core score %.0f scales super-linearly vs %.0f (Amdahl violated)", multi, single)
	}
}

// TestScoreMonotoneInFrequency and saturating: the Fig. 6 shape.
func TestScoreShape(t *testing.T) {
	suite := StandardSuite()
	tbl := table()
	var prev float64
	var firstGain, lastGain float64
	for i, opp := range tbl.Points() {
		score, err := SingleCoreScore(suite, opp.Freq)
		if err != nil {
			t.Fatal(err)
		}
		if score <= prev {
			t.Errorf("score not increasing at %v: %.1f after %.1f", opp.Freq, score, prev)
		}
		if i == 1 {
			firstGain = (score - prev) / prev / (float64(opp.Freq-tbl.At(0).Freq) / float64(tbl.At(0).Freq))
		}
		if i == tbl.Len()-1 {
			prevFreq := tbl.At(i - 1).Freq
			lastGain = (score - prev) / prev / (float64(opp.Freq-prevFreq) / float64(prevFreq))
		}
		prev = score
	}
	// Marginal score per marginal hertz must shrink (plateau, §3.5).
	if lastGain >= firstGain {
		t.Errorf("no saturation: elasticity first %.2f, last %.2f", firstGain, lastGain)
	}
}

// TestBusyFractionFalls: at higher frequency the stall share grows, so the
// busy fraction falls — the power-plateau mechanism.
func TestBusyFractionFalls(t *testing.T) {
	suite := StandardSuite()
	lo, err := BusyFraction(suite, table().Min().Freq, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := BusyFraction(suite, table().Max().Freq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Errorf("busy fraction should fall with frequency: %.3f at min, %.3f at max", lo, hi)
	}
	if lo > 1 || hi < 0 {
		t.Errorf("busy fractions out of range: %v, %v", lo, hi)
	}
}

func TestScoreValidation(t *testing.T) {
	suite := StandardSuite()
	if _, err := Score(nil, 1*soc.GHz, 1); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := Score(suite, 0, 1); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := Score(suite, 1*soc.GHz, 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestNewRunValidation(t *testing.T) {
	suite := StandardSuite()
	if _, err := NewRun(nil, table(), 1, 1); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := NewRun(suite, nil, 1, 1); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewRun(suite, table(), 0, 1); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewRun(suite, table(), 1, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

// TestRunCompletes: driving the workload with instant execution finishes
// every section and scores near the analytic single-core value.
func TestRunCompletes(t *testing.T) {
	suite := StandardSuite()
	run, err := NewRun(suite, table(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := time.Duration(0)
	fmaxPerTick := float64(table().Max().Freq) / 1000 // cycles per 1 ms at f_max
	for i := 0; i < 200_000 && !run.Done(); i++ {
		run.Tick(now, time.Millisecond, rng)
		for _, th := range run.Threads() {
			th.Execute(fmaxPerTick, 0)
		}
		now += time.Millisecond
	}
	if !run.Done() {
		t.Fatalf("run never finished; %d sections done", run.CompletedSections())
	}
	if got, want := run.CompletedSections(), len(suite); got != want {
		t.Errorf("sections = %d, want %d", got, want)
	}
	score, err := run.ScoreAfter(now)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := SingleCoreScore(suite, table().Max().Freq)
	if err != nil {
		t.Fatal(err)
	}
	// The tick-quantized run pays scheduling overhead; allow 25%.
	if score < analytic*0.75 || score > analytic*1.25 {
		t.Errorf("simulated score %.0f too far from analytic %.0f", score, analytic)
	}
}

func TestScoreAfterValidation(t *testing.T) {
	run, err := NewRun(StandardSuite(), table(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.ScoreAfter(0); err == nil {
		t.Error("zero elapsed accepted")
	}
}
