package geekbench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mobicore/internal/sched"
	"mobicore/internal/soc"
)

// chunksPerSection splits each section into interleaved compute/stall
// slices. Real benchmark kernels stall throughout execution, not in one
// block at the end; chunking exposes that duty cycle at the granularity
// governors sample.
const chunksPerSection = 8

// threadState tracks one worker's progress through the suite.
type threadState struct {
	thread    *sched.Thread
	section   int           // index into the suite for the current run
	chunk     int           // chunk within the current section
	iteration int           // completed suite passes
	stalling  time.Duration // remaining stall time before the next deposit
	deposited bool          // work for the current chunk is in flight
}

// Run executes the suite as a live workload: each worker thread runs the
// sections in order — depositing a section's cycles, waiting for them to
// execute, then stalling for the section's memory time — for a fixed number
// of iterations. Running it under different managers yields the Figure 9b
// comparison. Run implements workload.Workload structurally (it is consumed
// through that interface by the simulator).
type Run struct {
	suite      []Section
	iterations int
	states     []threadState
	threads    []*sched.Thread
	steady     bool // last Tick deposited nothing (workload.SteadyHinter)

	completedSections int
	refRate           float64 // single-core f_max sections/sec, for scoring
}

// NewRun builds a benchmark run over nThreads worker threads, each
// completing the suite `iterations` times. table anchors score
// normalization to the platform's maximum frequency.
func NewRun(suite []Section, table *soc.OPPTable, nThreads, iterations int) (*Run, error) {
	if len(suite) == 0 {
		return nil, errors.New("geekbench: empty suite")
	}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	if nThreads < 1 {
		return nil, errors.New("geekbench: need at least one thread")
	}
	if iterations < 1 {
		return nil, errors.New("geekbench: need at least one iteration")
	}
	r := &Run{
		suite:      suite,
		iterations: iterations,
		states:     make([]threadState, nThreads),
		threads:    make([]*sched.Thread, nThreads),
	}
	for i := range r.states {
		th := sched.NewThread(fmt.Sprintf("geekbench-%d", i))
		r.threads[i] = th
		r.states[i] = threadState{thread: th}
	}
	// Reference: one core at f_max runs the whole suite in refSeconds.
	var refSeconds float64
	for _, s := range suite {
		refSeconds += sectionSeconds(s, table.Max().Freq, 1)
	}
	r.refRate = float64(len(suite)) / refSeconds
	return r, nil
}

// Name implements workload.Workload.
func (r *Run) Name() string { return "geekbench" }

// Threads implements workload.Workload.
func (r *Run) Threads() []*sched.Thread { return r.threads }

// Done implements workload.Workload.
func (r *Run) Done() bool {
	for i := range r.states {
		if r.states[i].iteration < r.iterations {
			return false
		}
	}
	return true
}

// SteadyHint implements workload.SteadyHinter: true when the last Tick
// deposited no work — executing and stalling chunks leave demand exactly as
// the scheduler left it, which is every tick between chunk starts.
func (r *Run) SteadyHint() bool { return r.steady }

// Tick implements workload.Workload: advance each worker's
// deposit → execute → stall cycle.
func (r *Run) Tick(now, dt time.Duration, rng *rand.Rand) {
	_ = rng // the benchmark is deterministic
	r.steady = true
	for i := range r.states {
		st := &r.states[i]
		if st.iteration >= r.iterations {
			continue
		}
		if st.stalling > 0 {
			st.stalling -= dt
			continue
		}
		sec := r.suite[st.section]
		if !st.deposited {
			st.thread.AddWork(sec.WorkCycles / chunksPerSection)
			st.deposited = true
			r.steady = false
			continue
		}
		if st.thread.Pending() == 0 {
			// Chunk's compute finished: pay its stall slice, advance.
			st.stalling = time.Duration(sec.StallSeconds / chunksPerSection * float64(time.Second))
			st.deposited = false
			st.chunk++
			if st.chunk == chunksPerSection {
				st.chunk = 0
				r.completedSections++
				st.section++
				if st.section == len(r.suite) {
					st.section = 0
					st.iteration++
				}
			}
		}
	}
}

// CompletedSections returns total sections finished across all threads.
func (r *Run) CompletedSections() int { return r.completedSections }

// ScoreAfter converts a finished (or partial) run into a benchmark score:
// the section completion rate relative to one reference core at f_max,
// scaled onto the same range as the analytic Score. Multi-threaded runs
// score higher by completing sections in parallel, exactly how GeekBench's
// multi-core score works.
func (r *Run) ScoreAfter(elapsed time.Duration) (float64, error) {
	if elapsed <= 0 {
		return 0, errors.New("geekbench: non-positive elapsed time")
	}
	rate := float64(r.completedSections) / elapsed.Seconds()
	return rate / r.refRate * baselineScore, nil
}

// baselineScore is the score assigned to the reference rate (one core at
// the table maximum): the Nexus 5's GeekBench-4-class single-core result.
const baselineScore = 950
