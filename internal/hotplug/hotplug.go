// Package hotplug implements dynamic core scaling (DCS, §2.2.2): policies
// that decide how many cores stay online. It provides the mpdecision
// stand-in (the vendor service that "protects the phone from turning off
// cores") and the default load-threshold hotplug that takes over once
// mpdecision is disabled — the configuration the thesis measures against.
package hotplug

import (
	"errors"
	"fmt"
	"time"
)

// Input is what a DCS policy observes at one sampling point.
type Input struct {
	// Now is the simulation time of this sample.
	Now time.Duration
	// Util is per-core busy fraction over the period; offline cores are 0.
	Util []float64
	// Online flags each core's state.
	Online []bool
}

// Validate rejects malformed inputs.
func (in Input) Validate() error {
	if len(in.Util) == 0 || len(in.Util) != len(in.Online) {
		return fmt.Errorf("hotplug: inconsistent input lengths util=%d online=%d",
			len(in.Util), len(in.Online))
	}
	for i, u := range in.Util {
		if u < 0 || u > 1 {
			return fmt.Errorf("hotplug: core %d utilization %v outside [0,1]", i, u)
		}
	}
	return nil
}

// OnlineCount returns how many cores are currently online.
func (in Input) OnlineCount() int {
	n := 0
	for _, on := range in.Online {
		if on {
			n++
		}
	}
	return n
}

// OverallUtil averages utilization over online cores (§2.2's definition).
func (in Input) OverallUtil() float64 {
	sum, n := 0.0, 0
	for i, u := range in.Util {
		if in.Online[i] {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Policy decides the target number of online cores each sampling period.
type Policy interface {
	// Name returns the policy's identifier.
	Name() string
	// TargetCores returns how many cores should be online, in
	// [1, len(in.Online)].
	TargetCores(in Input) (int, error)
	// Reset clears internal state.
	Reset()
}

// MPDecision models the stock Qualcomm service as the thesis treats it: a
// guard that keeps every core online so the default hotplug policy cannot
// act ("mpdecision is a service which protects the phone from turning off
// cores", §2.2.2). Disabling it — what the authors do over adb — means not
// using this policy.
type MPDecision struct{}

var _ Policy = (*MPDecision)(nil)

// Name implements Policy.
func (MPDecision) Name() string { return "mpdecision" }

// TargetCores implements Policy: all cores stay online.
func (MPDecision) TargetCores(in Input) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	return len(in.Online), nil
}

// Reset implements Policy.
func (MPDecision) Reset() {}

// Fixed holds the online count at a constant — the knob the measurement
// experiments (Figures 3–7) use to pin 1, 2, 3 or 4 cores.
type Fixed struct {
	n int
}

var _ Policy = (*Fixed)(nil)

// NewFixed builds a policy that keeps exactly n cores online.
func NewFixed(n int) (*Fixed, error) {
	if n < 1 {
		return nil, errors.New("hotplug: fixed core count must be >= 1")
	}
	return &Fixed{n: n}, nil
}

// Name implements Policy.
func (f *Fixed) Name() string { return fmt.Sprintf("fixed-%d", f.n) }

// TargetCores implements Policy.
func (f *Fixed) TargetCores(in Input) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if f.n > len(in.Online) {
		return len(in.Online), nil
	}
	return f.n, nil
}

// Reset implements Policy.
func (f *Fixed) Reset() {}

// LoadTunables configure the default load-threshold hotplug.
type LoadTunables struct {
	// UpThreshold: overall utilization above this onlines one more core.
	UpThreshold float64
	// DownThreshold: overall utilization below this offlines one core.
	DownThreshold float64
	// HoldTime is the minimum interval between consecutive hotplug
	// actions, damping oscillation (hotplug transitions are expensive).
	HoldTime time.Duration
}

// DefaultLoadTunables match common device trees: add a core above 80%
// average load, remove below 30%, act at most every 100 ms.
func DefaultLoadTunables() LoadTunables {
	return LoadTunables{UpThreshold: 0.80, DownThreshold: 0.30, HoldTime: 100 * time.Millisecond}
}

// Validate rejects nonsensical tunables.
func (t LoadTunables) Validate() error {
	if t.UpThreshold <= 0 || t.UpThreshold > 1 {
		return errors.New("hotplug: UpThreshold must be in (0,1]")
	}
	if t.DownThreshold < 0 || t.DownThreshold >= t.UpThreshold {
		return errors.New("hotplug: DownThreshold must be in [0,UpThreshold)")
	}
	if t.HoldTime < 0 {
		return errors.New("hotplug: HoldTime must be non-negative")
	}
	return nil
}

// Load is the default Android hotplug once mpdecision is out of the way:
// "more cores for a high workload and less cores for a low workload ...
// either activate or inactivate cores, which is a little abrupt" (§2.2.2).
type Load struct {
	tun        LoadTunables
	lastChange time.Duration
	armed      bool
}

var _ Policy = (*Load)(nil)

// NewLoad builds the default load-threshold hotplug policy.
func NewLoad(tun LoadTunables) (*Load, error) {
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	return &Load{tun: tun}, nil
}

// Name implements Policy.
func (g *Load) Name() string { return "load-hotplug" }

// TargetCores implements Policy.
func (g *Load) TargetCores(in Input) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	cur := in.OnlineCount()
	if g.armed && in.Now-g.lastChange < g.tun.HoldTime {
		return cur, nil
	}
	util := in.OverallUtil()
	target := cur
	switch {
	case util > g.tun.UpThreshold && cur < len(in.Online):
		target = cur + 1
	case util < g.tun.DownThreshold && cur > 1:
		target = cur - 1
	}
	if target != cur {
		g.lastChange = in.Now
		g.armed = true
	}
	return target, nil
}

// Reset implements Policy.
func (g *Load) Reset() {
	g.lastChange = 0
	g.armed = false
}
