package hotplug

import (
	"math"
	"testing"
	"time"
)

func input(utils []float64, online []bool, now time.Duration) Input {
	return Input{Now: now, Util: utils, Online: online}
}

func allOnline(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestInputValidate(t *testing.T) {
	good := input([]float64{0.5, 0.5}, allOnline(2), 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	if err := input(nil, nil, 0).Validate(); err == nil {
		t.Error("empty input accepted")
	}
	if err := input([]float64{0.5}, allOnline(2), 0).Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := input([]float64{1.5}, allOnline(1), 0).Validate(); err == nil {
		t.Error("util > 1 accepted")
	}
}

func TestOverallUtilExcludesOffline(t *testing.T) {
	in := input([]float64{0.8, 0.4, 0, 0}, []bool{true, true, false, false}, 0)
	if got, want := in.OverallUtil(), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("overall = %v, want %v", got, want)
	}
	if got, want := in.OnlineCount(), 2; got != want {
		t.Errorf("online = %v, want %v", got, want)
	}
}

func TestMPDecisionKeepsAllCores(t *testing.T) {
	var p MPDecision
	got, err := p.TargetCores(input([]float64{0, 0, 0, 0}, allOnline(4), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("mpdecision target = %d, want 4 (it protects cores from offlining)", got)
	}
}

func TestFixed(t *testing.T) {
	if _, err := NewFixed(0); err == nil {
		t.Error("NewFixed(0) accepted")
	}
	p, err := NewFixed(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.TargetCores(input([]float64{1, 1, 1, 1}, allOnline(4), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("fixed-2 target = %d under full load, want 2", got)
	}
	// Fixed count clamps to the physical core count.
	big, err := NewFixed(9)
	if err != nil {
		t.Fatal(err)
	}
	got, err = big.TargetCores(input([]float64{0, 0}, allOnline(2), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("fixed-9 on 2 cores = %d, want 2", got)
	}
}

func TestLoadTunablesValidate(t *testing.T) {
	if err := DefaultLoadTunables().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := []LoadTunables{
		{UpThreshold: 0, DownThreshold: 0.3, HoldTime: 0},
		{UpThreshold: 0.8, DownThreshold: 0.9, HoldTime: 0},
		{UpThreshold: 0.8, DownThreshold: 0.3, HoldTime: -time.Second},
	}
	for i, tun := range bad {
		if err := tun.Validate(); err == nil {
			t.Errorf("bad tunables %d accepted", i)
		}
	}
}

func TestLoadAddsCoreOnHighLoad(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0.9, 0.9, 0, 0}, []bool{true, true, false, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("high load target = %d, want 3 (one more core)", got)
	}
}

func TestLoadRemovesCoreOnLowLoad(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0.1, 0.1, 0.1, 0}, []bool{true, true, true, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("low load target = %d, want 2", got)
	}
}

func TestLoadNeverBelowOne(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0, 0, 0, 0}, []bool{true, false, false, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("idle single core target = %d, want 1 (cannot offline the last core)", got)
	}
}

func TestLoadHoldTimeDampsOscillation(t *testing.T) {
	tun := DefaultLoadTunables()
	tun.HoldTime = 100 * time.Millisecond
	p, err := NewLoad(tun)
	if err != nil {
		t.Fatal(err)
	}
	high := input([]float64{0.9, 0.9, 0, 0}, []bool{true, true, false, false}, 50*time.Millisecond)
	got, err := p.TargetCores(high)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("first decision = %d, want 3", got)
	}
	// 50 ms later — inside the hold window — another change is denied.
	high3 := input([]float64{0.9, 0.9, 0.9, 0}, []bool{true, true, true, false}, 100*time.Millisecond)
	got, err = p.TargetCores(high3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("inside hold window target = %d, want hold at 3", got)
	}
	// Past the hold window the policy may act again.
	high3.Now = 200 * time.Millisecond
	got, err = p.TargetCores(high3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("post-hold target = %d, want 4", got)
	}
}

func TestOfflinerTunablesValidate(t *testing.T) {
	if err := DefaultOfflinerTunables().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := []OfflinerTunables{
		{TargetUtil: 0, MinOnline: 1, HoldTime: 0},
		{TargetUtil: 1.2, MinOnline: 1, HoldTime: 0},
		{TargetUtil: 0.6, MinOnline: 0, HoldTime: 0},
		{TargetUtil: 0.6, MinOnline: 1, HoldTime: -time.Second},
	}
	for i, tun := range bad {
		if err := tun.Validate(); err == nil {
			t.Errorf("bad tunables %d accepted", i)
		}
	}
	if _, err := NewOffliner(OfflinerTunables{}); err == nil {
		t.Error("NewOffliner with zero tunables accepted")
	}
}

// TestOfflinerJumpsDirect: unlike the ±1 load policy, the offliner sizes
// the online set from aggregate demand in one decision — screen-off on four
// cores goes straight to the floor.
func TestOfflinerJumpsDirect(t *testing.T) {
	p, err := NewOffliner(DefaultOfflinerTunables())
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.TargetCores(input([]float64{0.05, 0.05, 0.05, 0.05}, allOnline(4), time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("near-idle 4-core target = %d, want direct jump to 1", got)
	}
	p.Reset()
	// Aggregate load 2.0 at 60% per-core target needs ceil(2/0.6) = 4.
	got, err = p.TargetCores(input([]float64{1, 1, 0, 0}, []bool{true, true, false, false}, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("saturated 2-core target = %d, want 4", got)
	}
}

// TestOfflinerSingleCoreFloor: with one core online and zero demand the
// policy must hold the single-online-core floor, never 0.
func TestOfflinerSingleCoreFloor(t *testing.T) {
	p, err := NewOffliner(DefaultOfflinerTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0, 0, 0, 0}, []bool{true, false, false, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("idle single-core target = %d, want 1 (cannot offline the last core)", got)
	}
	// A raised floor is honored even when demand would pack tighter.
	tun := DefaultOfflinerTunables()
	tun.MinOnline = 2
	p2, err := NewOffliner(tun)
	if err != nil {
		t.Fatal(err)
	}
	got, err = p2.TargetCores(input([]float64{0, 0, 0, 0}, allOnline(4), time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("idle target with MinOnline=2 = %d, want 2", got)
	}
}

// TestOfflinerClampsToPhysicalCores: demand beyond the chip caps at the
// core count.
func TestOfflinerClampsToPhysicalCores(t *testing.T) {
	tun := DefaultOfflinerTunables()
	tun.TargetUtil = 0.10
	p, err := NewOffliner(tun)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.TargetCores(input([]float64{1, 1}, allOnline(2), time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("overloaded target = %d, want clamp to 2", got)
	}
}

// TestOfflinerHoldTimeDampsOscillation mirrors the load policy's hold
// semantics.
func TestOfflinerHoldTimeDampsOscillation(t *testing.T) {
	p, err := NewOffliner(DefaultOfflinerTunables())
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.TargetCores(input([]float64{0, 0, 0, 0}, allOnline(4), 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("first decision = %d, want 1", got)
	}
	// Inside the hold window a burst is ignored.
	burst := input([]float64{1, 0, 0, 0}, []bool{true, false, false, false}, 100*time.Millisecond)
	got, err = p.TargetCores(burst)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("inside hold window target = %d, want hold at 1", got)
	}
	// Past the hold window the burst onlines cores again.
	burst.Now = 200 * time.Millisecond
	got, err = p.TargetCores(burst)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("post-hold target = %d, want 2 (ceil(1.0/0.6) = 2)", got)
	}
	p.Reset()
	// After reset the hold timer must not block an immediate action.
	got, err = p.TargetCores(input([]float64{0, 0, 0, 0}, allOnline(4), 210*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("post-reset target = %d, want 1", got)
	}
}

// TestMPDecisionDisabledHandoff: while mpdecision runs, idle cores stay
// protected; once it is disabled (the thesis does this over adb) a DCS
// policy taking over the same observations may offline them at its first
// decision.
func TestMPDecisionDisabledHandoff(t *testing.T) {
	idle := input([]float64{0.02, 0.02, 0.02, 0.02}, allOnline(4), time.Second)
	var mp MPDecision
	got, err := mp.TargetCores(idle)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("mpdecision idle target = %d, want 4", got)
	}
	successor, err := NewOffliner(DefaultOfflinerTunables())
	if err != nil {
		t.Fatal(err)
	}
	successor.Reset() // fresh takeover: no inherited hold timer
	got, err = successor.TargetCores(idle)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("handoff first decision = %d, want 1", got)
	}
}

func TestLoadReset(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0.9, 0.9}, allOnline(2), 10*time.Millisecond)
	if _, err := p.TargetCores(in); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	// After reset the hold timer must not block an immediate action.
	in = input([]float64{0.9, 0.9, 0.9, 0}, []bool{true, true, true, false}, 20*time.Millisecond)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("post-reset target = %d, want 4 (hold timer should be cleared)", got)
	}
}
