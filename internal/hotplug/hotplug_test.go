package hotplug

import (
	"math"
	"testing"
	"time"
)

func input(utils []float64, online []bool, now time.Duration) Input {
	return Input{Now: now, Util: utils, Online: online}
}

func allOnline(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestInputValidate(t *testing.T) {
	good := input([]float64{0.5, 0.5}, allOnline(2), 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	if err := input(nil, nil, 0).Validate(); err == nil {
		t.Error("empty input accepted")
	}
	if err := input([]float64{0.5}, allOnline(2), 0).Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := input([]float64{1.5}, allOnline(1), 0).Validate(); err == nil {
		t.Error("util > 1 accepted")
	}
}

func TestOverallUtilExcludesOffline(t *testing.T) {
	in := input([]float64{0.8, 0.4, 0, 0}, []bool{true, true, false, false}, 0)
	if got, want := in.OverallUtil(), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("overall = %v, want %v", got, want)
	}
	if got, want := in.OnlineCount(), 2; got != want {
		t.Errorf("online = %v, want %v", got, want)
	}
}

func TestMPDecisionKeepsAllCores(t *testing.T) {
	var p MPDecision
	got, err := p.TargetCores(input([]float64{0, 0, 0, 0}, allOnline(4), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("mpdecision target = %d, want 4 (it protects cores from offlining)", got)
	}
}

func TestFixed(t *testing.T) {
	if _, err := NewFixed(0); err == nil {
		t.Error("NewFixed(0) accepted")
	}
	p, err := NewFixed(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.TargetCores(input([]float64{1, 1, 1, 1}, allOnline(4), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("fixed-2 target = %d under full load, want 2", got)
	}
	// Fixed count clamps to the physical core count.
	big, err := NewFixed(9)
	if err != nil {
		t.Fatal(err)
	}
	got, err = big.TargetCores(input([]float64{0, 0}, allOnline(2), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("fixed-9 on 2 cores = %d, want 2", got)
	}
}

func TestLoadTunablesValidate(t *testing.T) {
	if err := DefaultLoadTunables().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := []LoadTunables{
		{UpThreshold: 0, DownThreshold: 0.3, HoldTime: 0},
		{UpThreshold: 0.8, DownThreshold: 0.9, HoldTime: 0},
		{UpThreshold: 0.8, DownThreshold: 0.3, HoldTime: -time.Second},
	}
	for i, tun := range bad {
		if err := tun.Validate(); err == nil {
			t.Errorf("bad tunables %d accepted", i)
		}
	}
}

func TestLoadAddsCoreOnHighLoad(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0.9, 0.9, 0, 0}, []bool{true, true, false, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("high load target = %d, want 3 (one more core)", got)
	}
}

func TestLoadRemovesCoreOnLowLoad(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0.1, 0.1, 0.1, 0}, []bool{true, true, true, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("low load target = %d, want 2", got)
	}
}

func TestLoadNeverBelowOne(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0, 0, 0, 0}, []bool{true, false, false, false}, time.Second)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("idle single core target = %d, want 1 (cannot offline the last core)", got)
	}
}

func TestLoadHoldTimeDampsOscillation(t *testing.T) {
	tun := DefaultLoadTunables()
	tun.HoldTime = 100 * time.Millisecond
	p, err := NewLoad(tun)
	if err != nil {
		t.Fatal(err)
	}
	high := input([]float64{0.9, 0.9, 0, 0}, []bool{true, true, false, false}, 50*time.Millisecond)
	got, err := p.TargetCores(high)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("first decision = %d, want 3", got)
	}
	// 50 ms later — inside the hold window — another change is denied.
	high3 := input([]float64{0.9, 0.9, 0.9, 0}, []bool{true, true, true, false}, 100*time.Millisecond)
	got, err = p.TargetCores(high3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("inside hold window target = %d, want hold at 3", got)
	}
	// Past the hold window the policy may act again.
	high3.Now = 200 * time.Millisecond
	got, err = p.TargetCores(high3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("post-hold target = %d, want 4", got)
	}
}

func TestLoadReset(t *testing.T) {
	p, err := NewLoad(DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	in := input([]float64{0.9, 0.9}, allOnline(2), 10*time.Millisecond)
	if _, err := p.TargetCores(in); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	// After reset the hold timer must not block an immediate action.
	in = input([]float64{0.9, 0.9, 0.9, 0}, []bool{true, true, true, false}, 20*time.Millisecond)
	got, err := p.TargetCores(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("post-reset target = %d, want 4 (hold timer should be cleared)", got)
	}
}
