package hotplug

import (
	"errors"
	"math"
	"time"
)

// OfflinerTunables configure the load-packing offliner.
type OfflinerTunables struct {
	// TargetUtil is the per-core utilization the policy packs toward: the
	// online count is the smallest that keeps average load at or below it.
	TargetUtil float64
	// MinOnline is the floor on online cores, >= 1.
	MinOnline int
	// HoldTime is the minimum interval between consecutive hotplug
	// actions.
	HoldTime time.Duration
}

// DefaultOfflinerTunables pack toward 60% per-core load with a one-core
// floor and the usual 100 ms hold.
func DefaultOfflinerTunables() OfflinerTunables {
	return OfflinerTunables{TargetUtil: 0.60, MinOnline: 1, HoldTime: 100 * time.Millisecond}
}

// Validate rejects nonsensical tunables.
func (t OfflinerTunables) Validate() error {
	if t.TargetUtil <= 0 || t.TargetUtil > 1 {
		return errors.New("hotplug: TargetUtil must be in (0,1]")
	}
	if t.MinOnline < 1 {
		return errors.New("hotplug: MinOnline must be >= 1")
	}
	if t.HoldTime < 0 {
		return errors.New("hotplug: HoldTime must be non-negative")
	}
	return nil
}

// Offliner is a load-packing DCS policy: it sizes the online set directly
// from total demand instead of stepping one core at a time. Each sample it
// computes the aggregate load (overall utilization × online cores) and
// targets the fewest cores that keep average load at or below TargetUtil —
// jumping straight from 4 cores to 1 when the screen goes dark, the way
// energy-debugger core controllers offline whole banks at once rather than
// walking down through the ±1 thresholds.
type Offliner struct {
	tun        OfflinerTunables
	lastChange time.Duration
	armed      bool
}

var _ Policy = (*Offliner)(nil)

// NewOffliner builds the load-packing offliner.
func NewOffliner(tun OfflinerTunables) (*Offliner, error) {
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	return &Offliner{tun: tun}, nil
}

// Name implements Policy.
func (g *Offliner) Name() string { return "offline" }

// TargetCores implements Policy.
func (g *Offliner) TargetCores(in Input) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	cur := in.OnlineCount()
	if g.armed && in.Now-g.lastChange < g.tun.HoldTime {
		return cur, nil
	}
	// Aggregate demand in core-equivalents, then the fewest cores that
	// carry it at TargetUtil each.
	load := in.OverallUtil() * float64(cur)
	target := int(math.Ceil(load / g.tun.TargetUtil))
	if floor := g.tun.MinOnline; target < floor {
		target = floor
	}
	if n := len(in.Online); target > n {
		target = n
	}
	if target != cur {
		g.lastChange = in.Now
		g.armed = true
	}
	return target, nil
}

// Reset implements Policy.
func (g *Offliner) Reset() {
	g.lastChange = 0
	g.armed = false
}
