package metrics

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// This file is the uncertainty half of the toolkit: confidence intervals on
// means (analytic Student-t and seeded percentile bootstrap) and paired-
// difference summaries for matched-seed policy comparisons. Point estimates
// from a handful of seeds are exactly where governor comparisons flip sign;
// distribution-grade studies report mean ± CI instead.
//
// Every function here is deterministic — the bootstrap draws from a caller-
// seeded rng — and NaN-free for finite inputs: degenerate inputs (one
// sample, zero spread) collapse to a zero-width interval rather than
// propagating 0/0.

// CI is a two-sided confidence interval around a mean.
type CI struct {
	// Level is the coverage (e.g. 0.95 for a 95% interval).
	Level float64 `json:"level"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
}

// HalfWidth returns half the interval's width — the "±" figure.
func (c CI) HalfWidth() float64 { return (c.Hi - c.Lo) / 2 }

// errBadLevel rejects confidence levels outside (0,1).
var errBadLevel = errors.New("metrics: confidence level must be in (0,1)")

// PercentileOf returns the p-th percentile (0 <= p <= 100) of vals using
// the same nearest-rank rule as Series.Percentile, without mutating vals.
func PercentileOf(vals []float64, p float64) (float64, error) {
	if len(vals) == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 || p > 100 {
		return 0, errors.New("metrics: percentile out of range")
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], nil
}

// SummaryOf folds vals into a Summary.
func SummaryOf(vals []float64) Summary {
	var s Summary
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

// sampleStdDev is the n-1 (Bessel-corrected) standard deviation the
// analytic intervals use; 0 for fewer than two samples.
func sampleStdDev(s Summary) float64 { return s.SampleStdDev() }

// MeanCI returns the analytic two-sided confidence interval on the mean of
// vals at the given level: mean ± t(level, n-1) · s/√n with the sample
// (n-1) standard deviation. One sample — or zero spread — yields a
// zero-width interval at the mean; no samples is an error. The result is
// NaN-free for finite inputs.
func MeanCI(vals []float64, level float64) (CI, error) {
	if len(vals) == 0 {
		return CI{}, ErrNoSamples
	}
	if level <= 0 || level >= 1 {
		return CI{}, errBadLevel
	}
	sum := SummaryOf(vals)
	mean := sum.Mean()
	sd := sampleStdDev(sum)
	if len(vals) == 1 || sd == 0 {
		return CI{Level: level, Lo: mean, Hi: mean}, nil
	}
	t := StudentTQuantile(1-(1-level)/2, len(vals)-1)
	h := t * sd / math.Sqrt(float64(len(vals)))
	return CI{Level: level, Lo: mean - h, Hi: mean + h}, nil
}

// BootstrapMeanCI returns the percentile-bootstrap confidence interval on
// the mean of vals: resamples bootstrap means (n draws with replacement
// each), with the interval's bounds read off their nearest-rank
// percentiles. The rng is seeded by the caller, so equal inputs always
// produce equal intervals. resamples <= 0 selects the default 1000.
func BootstrapMeanCI(vals []float64, level float64, resamples int, seed int64) (CI, error) {
	if len(vals) == 0 {
		return CI{}, ErrNoSamples
	}
	if level <= 0 || level >= 1 {
		return CI{}, errBadLevel
	}
	if resamples <= 0 {
		resamples = 1000
	}
	mean := SummaryOf(vals).Mean()
	if len(vals) == 1 {
		return CI{Level: level, Lo: mean, Hi: mean}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(vals)
	means := make([]float64, resamples)
	for r := range means {
		var acc float64
		for i := 0; i < n; i++ {
			acc += vals[rng.Intn(n)]
		}
		means[r] = acc / float64(n)
	}
	alpha := (1 - level) / 2
	lo, err := PercentileOf(means, alpha*100)
	if err != nil {
		return CI{}, err
	}
	hi, err := PercentileOf(means, (1-alpha)*100)
	if err != nil {
		return CI{}, err
	}
	return CI{Level: level, Lo: lo, Hi: hi}, nil
}

// PairedSummary is the matched-sample comparison of two conditions — the
// same seeds run under policy A and policy B. The interval is on the mean
// of the per-seed differences (B−A), which is the statistic that decides
// "does B beat A" when per-seed variance dwarfs the between-policy gap.
type PairedSummary struct {
	// N is the number of matched pairs.
	N int `json:"n"`
	// MeanA and MeanB are the per-condition means.
	MeanA float64 `json:"mean_a"`
	MeanB float64 `json:"mean_b"`
	// MeanDelta is the mean per-pair difference (B−A).
	MeanDelta float64 `json:"mean_delta"`
	// StdDev is the sample (n-1) standard deviation of the differences.
	StdDev float64 `json:"stddev"`
	// CI bounds MeanDelta at the requested level.
	CI CI `json:"ci"`
	// Rel is MeanDelta/MeanA — the "X% savings" arithmetic, 0 when the
	// baseline mean is 0.
	Rel float64 `json:"rel"`
}

// PairedDiff summarizes the matched differences b[i]−a[i] with an analytic
// confidence interval at the given level. The slices must be equal-length
// and non-empty, with a[i] and b[i] from the same matched unit (seed).
func PairedDiff(a, b []float64, level float64) (PairedSummary, error) {
	if len(a) == 0 {
		return PairedSummary{}, ErrNoSamples
	}
	if len(a) != len(b) {
		return PairedSummary{}, errors.New("metrics: paired samples must be equal-length")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = b[i] - a[i]
	}
	ci, err := MeanCI(diffs, level)
	if err != nil {
		return PairedSummary{}, err
	}
	sum := SummaryOf(diffs)
	meanA := SummaryOf(a).Mean()
	out := PairedSummary{
		N:         len(a),
		MeanA:     meanA,
		MeanB:     SummaryOf(b).Mean(),
		MeanDelta: sum.Mean(),
		StdDev:    sampleStdDev(sum),
		CI:        ci,
	}
	if meanA != 0 {
		out.Rel = out.MeanDelta / meanA
	}
	return out, nil
}

// StudentTQuantile returns the p-th quantile (0 < p < 1) of Student's t
// distribution with df degrees of freedom, computed by inverting the exact
// CDF (regularized incomplete beta) with bisection — accurate at the tiny
// df where series approximations drift and seed counts actually live.
// Out-of-range p or df < 1 returns 0.
func StudentTQuantile(p float64, df int) float64 {
	if df < 1 || p <= 0 || p >= 1 {
		return 0
	}
	if p == 0.5 {
		return 0
	}
	// By symmetry solve for the upper tail and mirror.
	if p < 0.5 {
		return -StudentTQuantile(1-p, df)
	}
	lo, hi := 0.0, 1.0
	for studentTCDF(hi, df) < p && hi < 1e12 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if studentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// studentTCDF is the CDF of Student's t with df degrees of freedom:
// for t >= 0, F(t) = 1 − I_x(df/2, 1/2)/2 with x = df/(df+t²).
func studentTCDF(t float64, df int) float64 {
	if t == 0 {
		return 0.5
	}
	x := float64(df) / (float64(df) + t*t)
	tail := regIncBeta(float64(df)/2, 0.5, x) / 2
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// regIncBeta is the regularized incomplete beta function I_x(a,b),
// evaluated by the standard continued fraction (converges fast on the side
// x < (a+1)/(a+b+2); the other side uses the symmetry I_x(a,b) =
// 1 − I_{1−x}(b,a)).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction by the modified
// Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
