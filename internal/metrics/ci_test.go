package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// tTable holds two-sided 95% critical values t(0.975, df) from standard
// tables — the independent reference the inverse-CDF implementation is
// checked against.
var tTable = map[int]float64{
	1:   12.7062,
	2:   4.3027,
	3:   3.1824,
	4:   2.7764,
	5:   2.5706,
	9:   2.2622,
	10:  2.2281,
	29:  2.0452,
	30:  2.0423,
	99:  1.9842,
	100: 1.9840,
}

func TestStudentTQuantileAgainstTable(t *testing.T) {
	for df, want := range tTable {
		got := StudentTQuantile(0.975, df)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("t(0.975, %d) = %.5f, want %.4f", df, got, want)
		}
	}
	// Symmetry and the median.
	if got := StudentTQuantile(0.025, 5); math.Abs(got+StudentTQuantile(0.975, 5)) > 1e-9 {
		t.Errorf("lower-tail quantile not symmetric: %v", got)
	}
	if got := StudentTQuantile(0.5, 7); got != 0 {
		t.Errorf("median quantile = %v, want 0", got)
	}
	// Large df approaches the normal 1.95996.
	if got := StudentTQuantile(0.975, 100000); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("t(0.975, 1e5) = %v, want ~1.96", got)
	}
	// Out-of-domain inputs are zeros, not NaNs.
	for _, got := range []float64{
		StudentTQuantile(0.975, 0), StudentTQuantile(0, 5), StudentTQuantile(1, 5),
	} {
		if got != 0 {
			t.Errorf("out-of-domain quantile = %v, want 0", got)
		}
	}
}

// naivePercentile is the independent sort-based nearest-rank reference.
func naivePercentile(vals []float64, p float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestPercentileOfProperty: PercentileOf agrees with the naive reference on
// randomized inputs (fixed quick seed), leaves the input unmutated, and
// matches Series.Percentile.
func TestPercentileOfProperty(t *testing.T) {
	prop := func(raw []uint32, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r%1_000_000)/100 - 5000
		}
		p := float64(pRaw) / 255 * 100
		orig := append([]float64(nil), vals...)
		got, err := PercentileOf(vals, p)
		if err != nil {
			return false
		}
		for i := range vals {
			if vals[i] != orig[i] {
				return false // mutated its input
			}
		}
		var ser Series
		for i, v := range vals {
			ser.Append(time.Duration(i), v)
		}
		fromSeries, err := ser.Percentile(p)
		if err != nil {
			return false
		}
		return got == naivePercentile(vals, p) && got == fromSeries
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestPercentileOfDegenerate(t *testing.T) {
	if _, err := PercentileOf(nil, 50); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := PercentileOf([]float64{1}, 101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	if got, _ := PercentileOf([]float64{7}, 50); got != 7 {
		t.Errorf("single-sample percentile = %v, want 7", got)
	}
	if got, _ := PercentileOf([]float64{3, 3, 3}, 95); got != 3 {
		t.Errorf("all-equal percentile = %v, want 3", got)
	}
}

// TestMeanCIProperty: the analytic interval matches the naive reference
// (mean ± t·s/√n computed from scratch), is centered on the mean, ordered,
// and NaN-free on randomized inputs.
func TestMeanCIProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r%2_000_000)/1000 - 1000
		}
		ci, err := MeanCI(vals, 0.95)
		if err != nil {
			return false
		}
		// Naive reference from first principles.
		n := float64(len(vals))
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= n
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		sd := math.Sqrt(ss / (n - 1))
		var want CI
		if sd == 0 {
			want = CI{Level: 0.95, Lo: mean, Hi: mean}
		} else {
			h := StudentTQuantile(0.975, len(vals)-1) * sd / math.Sqrt(n)
			want = CI{Level: 0.95, Lo: mean - h, Hi: mean + h}
		}
		tol := 1e-9 * (1 + math.Abs(mean) + sd)
		return !math.IsNaN(ci.Lo) && !math.IsNaN(ci.Hi) &&
			ci.Lo <= ci.Hi &&
			math.Abs(ci.Lo-want.Lo) < tol && math.Abs(ci.Hi-want.Hi) < tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	if _, err := MeanCI(nil, 0.95); err == nil {
		t.Error("empty input accepted")
	}
	for _, lvl := range []float64{0, 1, -0.5, 1.5} {
		if _, err := MeanCI([]float64{1, 2}, lvl); err == nil {
			t.Errorf("level %v accepted", lvl)
		}
	}
	// n = 1: zero-width at the sample.
	ci, err := MeanCI([]float64{42}, 0.95)
	if err != nil || ci.Lo != 42 || ci.Hi != 42 {
		t.Errorf("single-sample CI = %+v (%v), want [42,42]", ci, err)
	}
	// All-equal: zero-width at the mean, no NaN from 0/0.
	ci, err = MeanCI([]float64{5, 5, 5, 5}, 0.95)
	if err != nil || ci.Lo != 5 || ci.Hi != 5 || ci.HalfWidth() != 0 {
		t.Errorf("all-equal CI = %+v (%v), want [5,5]", ci, err)
	}
}

// TestMeanCIShrinksWithN: quadrupling the sample count of an i.i.d. draw
// roughly halves the interval width — the 1/√n law the seed-count bump
// tests at the fleet layer rely on.
func TestMeanCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := make([]float64, 400)
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	small, _ := MeanCI(big[:100], 0.95)
	full, _ := MeanCI(big, 0.95)
	if full.HalfWidth() >= small.HalfWidth() {
		t.Errorf("CI did not shrink: n=100 ±%.4f, n=400 ±%.4f", small.HalfWidth(), full.HalfWidth())
	}
	if ratio := full.HalfWidth() / small.HalfWidth(); ratio > 0.75 {
		t.Errorf("CI shrink ratio %.3f, want near 0.5", ratio)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	vals := []float64{3, 5, 7, 9, 11, 13, 15, 17}
	a, err := BootstrapMeanCI(vals, 0.95, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMeanCI(vals, 0.95, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different intervals: %+v vs %+v", a, b)
	}
	mean := SummaryOf(vals).Mean()
	if a.Lo > mean || a.Hi < mean {
		t.Errorf("bootstrap CI %+v excludes the sample mean %v", a, mean)
	}
	if math.IsNaN(a.Lo) || math.IsNaN(a.Hi) || a.Lo > a.Hi {
		t.Errorf("malformed bootstrap CI %+v", a)
	}
	// Degenerates mirror the analytic interval.
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty input accepted")
	}
	one, err := BootstrapMeanCI([]float64{4}, 0.95, 100, 1)
	if err != nil || one.Lo != 4 || one.Hi != 4 {
		t.Errorf("single-sample bootstrap CI = %+v (%v)", one, err)
	}
	eq, err := BootstrapMeanCI([]float64{2, 2, 2}, 0.95, 100, 1)
	if err != nil || eq.Lo != 2 || eq.Hi != 2 {
		t.Errorf("all-equal bootstrap CI = %+v (%v)", eq, err)
	}
	// The analytic and bootstrap intervals agree to first order on a
	// well-behaved sample.
	analytic, _ := MeanCI(vals, 0.95)
	if math.Abs(a.Lo-analytic.Lo) > analytic.HalfWidth() ||
		math.Abs(a.Hi-analytic.Hi) > analytic.HalfWidth() {
		t.Errorf("bootstrap %+v far from analytic %+v", a, analytic)
	}
}

// TestPairedDiffProperty: the paired summary equals MeanCI applied to the
// elementwise differences, with the means and relative change consistent.
func TestPairedDiffProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r%1000) + 1 // keep MeanA away from 0
			b[i] = float64((r/7)%1500) + 1
		}
		ps, err := PairedDiff(a, b, 0.95)
		if err != nil {
			return false
		}
		diffs := make([]float64, len(a))
		for i := range a {
			diffs[i] = b[i] - a[i]
		}
		want, err := MeanCI(diffs, 0.95)
		if err != nil {
			return false
		}
		tol := 1e-9 * (1 + math.Abs(want.Hi) + math.Abs(want.Lo))
		return ps.N == len(a) &&
			math.Abs(ps.CI.Lo-want.Lo) < tol && math.Abs(ps.CI.Hi-want.Hi) < tol &&
			math.Abs(ps.MeanDelta-SummaryOf(diffs).Mean()) < tol &&
			math.Abs(ps.MeanDelta-(ps.MeanB-ps.MeanA)) < 1e-9*(1+math.Abs(ps.MeanDelta)) &&
			math.Abs(ps.Rel-ps.MeanDelta/ps.MeanA) < 1e-12*(1+math.Abs(ps.Rel)) &&
			!math.IsNaN(ps.StdDev)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestPairedDiffDegenerate(t *testing.T) {
	if _, err := PairedDiff(nil, nil, 0.95); err == nil {
		t.Error("empty pairs accepted")
	}
	if _, err := PairedDiff([]float64{1, 2}, []float64{1}, 0.95); err == nil {
		t.Error("length mismatch accepted")
	}
	// Identical conditions: zero delta, zero-width interval, zero Rel.
	ps, err := PairedDiff([]float64{4, 6, 8}, []float64{4, 6, 8}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ps.MeanDelta != 0 || ps.CI.Lo != 0 || ps.CI.Hi != 0 || ps.Rel != 0 {
		t.Errorf("identical-condition summary = %+v, want all-zero deltas", ps)
	}
	// Zero baseline mean: Rel stays 0 instead of dividing by zero.
	ps, err = PairedDiff([]float64{-1, 1}, []float64{2, 4}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Rel != 0 || math.IsNaN(ps.Rel) {
		t.Errorf("zero-baseline Rel = %v, want 0", ps.Rel)
	}
}
