// Package metrics provides the small statistics toolkit every experiment in
// the reproduction uses: online summaries (Welford), time series, and
// percentile extraction. Only what the thesis' plots need — means, minima,
// maxima, standard deviations, and sampled traces.
package metrics

import (
	"encoding/json"
	"errors"
	"math"
	"sort"
	"time"
)

// Summary accumulates scalar samples using Welford's online algorithm,
// giving numerically stable mean and variance without retaining samples.
// The zero value is ready to use.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddWeighted incorporates a sample with integer weight w (w samples of x).
func (s *Summary) AddWeighted(x float64, w uint64) {
	for i := uint64(0); i < w; i++ {
		s.Add(x)
	}
}

// Count returns the number of samples.
func (s Summary) Count() uint64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min returns the smallest sample, or 0 with no samples.
func (s Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s Summary) Max() float64 { return s.max }

// Variance returns the population variance.
func (s Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// SampleStdDev returns the sample (n-1, Bessel-corrected) standard
// deviation — the spread estimate the confidence intervals are built on;
// 0 for fewer than two samples.
func (s Summary) SampleStdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Merge folds other into s, as if every sample of other had been Added.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Reset clears the summary.
func (s *Summary) Reset() { *s = Summary{} }

// Point is one timestamped sample in a Series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only timestamped sample log. The zero value is ready
// to use. Not safe for concurrent use.
type Series struct {
	points []Point
	sum    Summary
}

// Append records a sample at time at.
func (s *Series) Append(at time.Duration, v float64) {
	s.points = append(s.points, Point{At: at, Value: v})
	s.sum.Add(v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th point.
func (s *Series) At(i int) Point { return s.points[i] }

// Points returns a copy of all points in append order.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Values returns a copy of the sample values in append order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.Value
	}
	return out
}

// MarshalJSON emits the series as its point list, so reports carrying
// Series fields export their traces instead of opaque empty objects
// (Series has only unexported fields and would otherwise marshal as {}).
// An empty series renders as [] rather than null, so consumers can always
// iterate the array.
func (s Series) MarshalJSON() ([]byte, error) {
	if len(s.points) == 0 {
		return []byte("[]"), nil
	}
	return json.Marshal(s.points)
}

// Summary returns the running summary of all appended values.
func (s *Series) Summary() Summary { return s.sum }

// Mean is shorthand for Summary().Mean().
func (s *Series) Mean() float64 { return s.sum.Mean() }

// ErrNoSamples is returned by Percentile on an empty series.
var ErrNoSamples = errors.New("metrics: no samples")

// Percentile returns the p-th percentile (0 <= p <= 100) using the
// nearest-rank method on a sorted copy.
func (s *Series) Percentile(p float64) (float64, error) {
	if len(s.points) == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 || p > 100 {
		return 0, errors.New("metrics: percentile out of range")
	}
	vals := s.Values()
	sort.Float64s(vals)
	if p == 0 {
		return vals[0], nil
	}
	rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vals) {
		rank = len(vals) - 1
	}
	return vals[rank], nil
}

// Reset clears the series.
func (s *Series) Reset() {
	s.points = s.points[:0]
	s.sum.Reset()
}

// Reserve grows the series' capacity to hold at least n points without
// further allocation, keeping any points already appended. Arenas call it
// once per session so steady-state appends never reallocate.
func (s *Series) Reserve(n int) {
	if cap(s.points) >= n {
		return
	}
	grown := make([]Point, len(s.points), n)
	copy(grown, s.points)
	s.points = grown
}

// Clone returns a deep copy of the series: same points and summary, its own
// exact-size backing array. Reports clone their series so the sampled traces
// survive the producing Sim's buffers being reused for the next session.
func (s *Series) Clone() Series {
	out := Series{sum: s.sum}
	if len(s.points) > 0 {
		out.points = make([]Point, len(s.points))
		copy(out.points, s.points)
	}
	return out
}

// RelativeChange returns (b-a)/a as a fraction; it is the "X% savings /
// X% higher" arithmetic used throughout the thesis' evaluation.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}
