package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("zero-value summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got, want := s.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if got, want := s.StdDev(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Count() != 8 {
		t.Errorf("count = %d, want 8", s.Count())
	}
}

func TestSummaryAddWeighted(t *testing.T) {
	var a, b Summary
	a.AddWeighted(3, 4)
	for i := 0; i < 4; i++ {
		b.Add(3)
	}
	if a.Mean() != b.Mean() || a.Count() != b.Count() || a.Variance() != b.Variance() {
		t.Errorf("weighted add diverges from repeated add: %+v vs %+v", a, b)
	}
}

// TestSummaryMergeProperty: merging two summaries equals summarizing the
// concatenation.
func TestSummaryMergeProperty(t *testing.T) {
	prop := func(rawXs, rawYs []uint32) bool {
		scale := func(raw []uint32) []float64 {
			out := make([]float64, len(raw))
			for i, r := range raw {
				out[i] = float64(r%2_000_000)/1000 - 1000 // [-1000, 1000)
			}
			return out
		}
		var a, b, all Summary
		for _, x := range scale(rawXs) {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range scale(rawYs) {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(b)
		if a.Count() != all.Count() {
			return false
		}
		if a.Count() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(a.Variance()-all.Variance()) < 1e-4*(1+all.Variance()) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(42)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 {
		t.Error("reset summary not empty")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 5; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d, want 5", s.Len())
	}
	if got := s.At(2); got.At != 2*time.Second || got.Value != 2 {
		t.Errorf("At(2) = %+v", got)
	}
	if got, want := s.Mean(), 2.0; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Points and Values return copies.
	pts := s.Points()
	pts[0].Value = 99
	if s.At(0).Value == 99 {
		t.Error("Points leaked internal state")
	}
	vals := s.Values()
	vals[0] = 99
	if s.At(0).Value == 99 {
		t.Error("Values leaked internal state")
	}
	s.Reset()
	if s.Len() != 0 || s.Summary().Count() != 0 {
		t.Error("reset series not empty")
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Append(time.Duration(i), float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 50},
		{90, 90},
		{100, 100},
	}
	for _, tt := range tests {
		got, err := s.Percentile(tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	var empty Series
	if _, err := empty.Percentile(50); err == nil {
		t.Error("Percentile on empty series should fail")
	}
	if _, err := s.Percentile(-1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
	if _, err := s.Percentile(101); err == nil {
		t.Error("Percentile(101) should fail")
	}
}

func TestRelativeChange(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{100, 110, 0.10},
		{100, 90, -0.10},
		{0, 50, 0},
		{200, 200, 0},
	}
	for _, tt := range tests {
		if got := RelativeChange(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("RelativeChange(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestSeriesMarshalJSON: a series marshals as its point array — [] when
// empty (never null), the full point list otherwise — so JSON consumers
// can always iterate the trace.
func TestSeriesMarshalJSON(t *testing.T) {
	var s Series
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[]" {
		t.Errorf("empty series marshals as %s, want []", b)
	}
	s.Append(time.Second, 1.5)
	s.Append(2*time.Second, 2.5)
	b, err = json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point
	if err := json.Unmarshal(b, &pts); err != nil {
		t.Fatalf("series did not marshal as a point array: %v (%s)", err, b)
	}
	if len(pts) != 2 || pts[1].Value != 2.5 || pts[0].At != time.Second {
		t.Errorf("round-trip = %+v", pts)
	}
}

// TestSeriesReserve: reserving capacity keeps existing points and makes
// subsequent appends allocation-free up to the reservation.
func TestSeriesReserve(t *testing.T) {
	var s Series
	s.Append(time.Second, 1)
	s.Append(2*time.Second, 2)
	s.Reserve(100)
	if s.Len() != 2 || s.At(0).Value != 1 || s.At(1).Value != 2 {
		t.Fatal("Reserve dropped existing points")
	}
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 90; i++ {
			s.Append(time.Duration(i), float64(i))
		}
		s.Reset()
		s.Append(0, 0) // Reset keeps capacity
	})
	if allocs > 0 {
		t.Errorf("appends within reserved capacity allocate %.1f objects/op", allocs)
	}
	// Shrinking reservations are no-ops.
	before := s.Len()
	s.Reserve(1)
	if s.Len() != before {
		t.Error("shrinking Reserve mutated the series")
	}
}

// TestSeriesClone: a clone must carry the same points and summary and be
// fully detached from the original's backing array.
func TestSeriesClone(t *testing.T) {
	var s Series
	for i := 0; i < 5; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i*i))
	}
	c := s.Clone()
	if c.Len() != s.Len() || c.Summary() != s.Summary() {
		t.Fatal("clone differs from original")
	}
	for i := 0; i < s.Len(); i++ {
		if c.At(i) != s.At(i) {
			t.Fatalf("point %d differs", i)
		}
	}
	// Mutating the original (reset + refill, the arena lifecycle) must not
	// disturb the clone.
	s.Reset()
	s.Append(0, 999)
	if c.Len() != 5 || c.At(0).Value != 0 || c.At(4).Value != 16 {
		t.Error("clone shares storage with the original")
	}
	// Cloning an empty series yields an empty series.
	var empty Series
	if ec := empty.Clone(); ec.Len() != 0 {
		t.Error("empty clone not empty")
	}
}
