// Package monsoon simulates the external power meter the thesis uses — a
// Monsoon Power Monitor wired to the phone's battery pins (§3.1). It samples
// the modelled power rail at a fixed rate, records the trace, and produces
// the session summaries (average and peak power) every experiment reports.
package monsoon

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"mobicore/internal/metrics"
)

// Config sets up a monitor.
type Config struct {
	// SampleEvery is the sampling interval; the hardware samples at
	// 5 kHz, but experiment-scale traces use a coarser default of 10 ms.
	SampleEvery time.Duration
	// MaxSamples bounds trace memory; 0 means unlimited. When the bound
	// is hit, sampling keeps updating the summary but stops appending to
	// the trace.
	MaxSamples int
}

// DefaultConfig returns the experiment-scale configuration.
func DefaultConfig() Config {
	return Config{SampleEvery: 10 * time.Millisecond}
}

// Monitor integrates rail power and records a sampled trace. Feed it every
// simulation tick with Observe; it emits one trace point per SampleEvery.
// Not safe for concurrent use.
type Monitor struct {
	cfg Config

	series  metrics.Series
	joules  float64
	elapsed time.Duration

	sinceSample time.Duration
	accJoules   float64 // energy within the current sample window
	accTime     time.Duration
	truncated   bool
}

// New builds a monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.SampleEvery <= 0 {
		return nil, errors.New("monsoon: SampleEvery must be positive")
	}
	if cfg.MaxSamples < 0 {
		return nil, errors.New("monsoon: MaxSamples must be non-negative")
	}
	return &Monitor{cfg: cfg}, nil
}

// Observe integrates watts held for dt at simulation time now.
func (m *Monitor) Observe(now time.Duration, watts float64, dt time.Duration) error {
	if watts < 0 {
		return fmt.Errorf("monsoon: negative power sample %v at %v", watts, now)
	}
	if dt <= 0 {
		return errors.New("monsoon: non-positive observation window")
	}
	j := watts * dt.Seconds()
	m.joules += j
	m.elapsed += dt
	m.accJoules += j
	m.accTime += dt
	m.sinceSample += dt
	if m.sinceSample >= m.cfg.SampleEvery {
		avg := 0.0
		if m.accTime > 0 {
			avg = m.accJoules / m.accTime.Seconds()
		}
		if m.cfg.MaxSamples == 0 || m.series.Len() < m.cfg.MaxSamples {
			m.series.Append(now, avg)
		} else {
			m.truncated = true
		}
		m.sinceSample = 0
		m.accJoules = 0
		m.accTime = 0
	}
	return nil
}

// AverageWatts is total energy over total time — the "total average power
// consumption" number the thesis reports.
func (m *Monitor) AverageWatts() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return m.joules / m.elapsed.Seconds()
}

// Joules returns total integrated energy.
func (m *Monitor) Joules() float64 { return m.joules }

// Elapsed returns total observed time.
func (m *Monitor) Elapsed() time.Duration { return m.elapsed }

// Trace returns the sampled power trace.
func (m *Monitor) Trace() []metrics.Point { return m.series.Points() }

// TraceSummary returns summary statistics over the sampled trace.
func (m *Monitor) TraceSummary() metrics.Summary { return m.series.Summary() }

// Truncated reports whether MaxSamples clipped the trace.
func (m *Monitor) Truncated() bool { return m.truncated }

// Reuse reinitializes the monitor for a new session under cfg, validating
// it exactly like New but keeping the trace buffer's capacity — the arena
// path, where one monitor serves many consecutive cells.
func (m *Monitor) Reuse(cfg Config) error {
	if cfg.SampleEvery <= 0 {
		return errors.New("monsoon: SampleEvery must be positive")
	}
	if cfg.MaxSamples < 0 {
		return errors.New("monsoon: MaxSamples must be non-negative")
	}
	m.cfg = cfg
	m.Reset()
	return nil
}

// Reserve grows the trace buffer to hold at least n samples without further
// allocation, keeping any samples already recorded.
func (m *Monitor) Reserve(n int) { m.series.Reserve(n) }

// Reset clears all accumulated state.
func (m *Monitor) Reset() {
	m.series.Reset()
	m.joules, m.elapsed = 0, 0
	m.sinceSample, m.accJoules, m.accTime = 0, 0, 0
	m.truncated = false
}

// WriteCSV writes the trace as "seconds,watts" rows with a header.
func (m *Monitor) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "watts"}); err != nil {
		return fmt.Errorf("monsoon: writing csv header: %w", err)
	}
	for _, p := range m.series.Points() {
		row := []string{
			strconv.FormatFloat(p.At.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(p.Value, 'f', 6, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("monsoon: writing csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("monsoon: flushing csv: %w", err)
	}
	return nil
}

// traceJSON is the JSON export schema.
type traceJSON struct {
	AverageWatts float64      `json:"average_watts"`
	Joules       float64      `json:"joules"`
	Seconds      float64      `json:"seconds"`
	Samples      []sampleJSON `json:"samples"`
	Summary      summaryJSON  `json:"summary"`
}

type sampleJSON struct {
	Seconds float64 `json:"seconds"`
	Watts   float64 `json:"watts"`
}

type summaryJSON struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
}

// WriteJSON writes the trace and its summary as a JSON document.
func (m *Monitor) WriteJSON(w io.Writer) error {
	sum := m.series.Summary()
	doc := traceJSON{
		AverageWatts: m.AverageWatts(),
		Joules:       m.joules,
		Seconds:      m.elapsed.Seconds(),
		Summary: summaryJSON{
			Mean: sum.Mean(), Min: sum.Min(), Max: sum.Max(), StdDev: sum.StdDev(),
		},
	}
	points := m.series.Points()
	doc.Samples = make([]sampleJSON, len(points))
	for i, p := range points {
		doc.Samples[i] = sampleJSON{Seconds: p.At.Seconds(), Watts: p.Value}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("monsoon: encoding json: %w", err)
	}
	return nil
}
