package monsoon

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func newMon(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SampleEvery: 0}); err == nil {
		t.Error("zero sample interval accepted")
	}
	if _, err := New(Config{SampleEvery: time.Millisecond, MaxSamples: -1}); err == nil {
		t.Error("negative max samples accepted")
	}
}

func TestObserveIntegration(t *testing.T) {
	m := newMon(t, Config{SampleEvery: 10 * time.Millisecond})
	for i := 0; i < 100; i++ {
		if err := m.Observe(time.Duration(i)*time.Millisecond, 2.0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := m.AverageWatts(), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("average = %v, want %v", got, want)
	}
	if got, want := m.Joules(), 0.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("joules = %v, want %v", got, want)
	}
	if got, want := m.Elapsed(), 100*time.Millisecond; got != want {
		t.Errorf("elapsed = %v, want %v", got, want)
	}
	if got, want := len(m.Trace()), 10; got != want {
		t.Errorf("trace samples = %d, want %d", got, want)
	}
}

func TestObserveValidation(t *testing.T) {
	m := newMon(t, DefaultConfig())
	if err := m.Observe(0, -1, time.Millisecond); err == nil {
		t.Error("negative power accepted")
	}
	if err := m.Observe(0, 1, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMaxSamplesTruncation(t *testing.T) {
	m := newMon(t, Config{SampleEvery: time.Millisecond, MaxSamples: 5})
	for i := 0; i < 100; i++ {
		if err := m.Observe(time.Duration(i)*time.Millisecond, 1.0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Trace()); got != 5 {
		t.Errorf("trace = %d samples, want capped 5", got)
	}
	if !m.Truncated() {
		t.Error("truncation not flagged")
	}
	// The summary keeps integrating past the cap.
	if got, want := m.Elapsed(), 100*time.Millisecond; got != want {
		t.Errorf("elapsed = %v, want %v", got, want)
	}
}

func TestSampleAveragesWindow(t *testing.T) {
	m := newMon(t, Config{SampleEvery: 2 * time.Millisecond})
	// 1 W then 3 W within one sample window → sample of 2 W.
	if err := m.Observe(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(time.Millisecond, 3, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	trace := m.Trace()
	if len(trace) != 1 {
		t.Fatalf("trace = %d samples, want 1", len(trace))
	}
	if math.Abs(trace[0].Value-2.0) > 1e-9 {
		t.Errorf("sample = %v, want window average 2.0", trace[0].Value)
	}
}

func TestWriteCSV(t *testing.T) {
	m := newMon(t, Config{SampleEvery: time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := m.Observe(time.Duration(i)*time.Millisecond, float64(i), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 samples
		t.Fatalf("csv rows = %d, want 4", len(rows))
	}
	if rows[0][0] != "seconds" || rows[0][1] != "watts" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestWriteJSON(t *testing.T) {
	m := newMon(t, Config{SampleEvery: time.Millisecond})
	if err := m.Observe(0, 1.5, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		AverageWatts float64 `json:"average_watts"`
		Samples      []struct {
			Watts float64 `json:"watts"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doc.AverageWatts-1.5) > 1e-9 {
		t.Errorf("json average = %v, want 1.5", doc.AverageWatts)
	}
	if len(doc.Samples) != 1 {
		t.Errorf("json samples = %d, want 1", len(doc.Samples))
	}
}

func TestReset(t *testing.T) {
	m := newMon(t, DefaultConfig())
	if err := m.Observe(0, 2, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Joules() != 0 || m.Elapsed() != 0 || len(m.Trace()) != 0 || m.Truncated() {
		t.Error("reset monitor retains state")
	}
}

// TestMonitorReuse: Reuse must validate like New, then behave exactly like
// a fresh monitor while keeping the trace buffer's capacity.
func TestMonitorReuse(t *testing.T) {
	m, err := New(Config{SampleEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Reserve(64)
	for i := 0; i < 50; i++ {
		if err := m.Observe(time.Duration(i)*10*time.Millisecond, 1.5, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if m.Joules() == 0 || len(m.Trace()) == 0 {
		t.Fatal("first session recorded nothing")
	}
	if err := m.Reuse(Config{SampleEvery: 0}); err == nil {
		t.Error("Reuse accepted SampleEvery 0")
	}
	if err := m.Reuse(Config{SampleEvery: 10 * time.Millisecond, MaxSamples: -1}); err == nil {
		t.Error("Reuse accepted negative MaxSamples")
	}
	if err := m.Reuse(Config{SampleEvery: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if m.Joules() != 0 || m.Elapsed() != 0 || len(m.Trace()) != 0 || m.Truncated() {
		t.Error("Reuse left state from the previous session")
	}
	fresh, err := New(Config{SampleEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		now := time.Duration(i) * 20 * time.Millisecond
		if err := m.Observe(now, 2.0, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Observe(now, 2.0, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if m.Joules() != fresh.Joules() || m.AverageWatts() != fresh.AverageWatts() {
		t.Errorf("reused monitor diverged: %v J vs fresh %v J", m.Joules(), fresh.Joules())
	}
	a, b := m.Trace(), fresh.Trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("trace sample %d: %+v != %+v", i, a[i], b[i])
		}
	}
}
