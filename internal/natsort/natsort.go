// Package natsort provides the natural string ordering the reproduction
// uses wherever ids with embedded numbers are listed: experiment ids
// (fig2 before fig10), platform aliases (nexus5 before nexus6p), seed
// labels (seed2 before seed10). Letters compare bytewise; maximal digit
// runs compare as integers, ignoring leading zeros.
package natsort

import "sort"

// Less reports whether a orders before b naturally: digit runs compare
// numerically, ties fall back to the shorter string.
func Less(a, b string) bool {
	isDigit := func(c byte) bool { return '0' <= c && c <= '9' }
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		if isDigit(ca) && isDigit(cb) {
			ia, jb := i, j
			for ia < len(a) && isDigit(a[ia]) {
				ia++
			}
			for jb < len(b) && isDigit(b[jb]) {
				jb++
			}
			na, nb := trimZeros(a[i:ia]), trimZeros(b[j:jb])
			if len(na) != len(nb) {
				return len(na) < len(nb)
			}
			if na != nb {
				return na < nb
			}
			i, j = ia, jb
			continue
		}
		if ca != cb {
			return ca < cb
		}
		i++
		j++
	}
	return len(a)-i < len(b)-j
}

func trimZeros(s string) string {
	for len(s) > 0 && s[0] == '0' {
		s = s[1:]
	}
	return s
}

// Strings sorts ss in place into a stable total natural order: naturally
// equal ids ("fig01" vs "fig1") tie-break bytewise so the result is
// deterministic regardless of input order.
func Strings(ss []string) {
	sort.Slice(ss, func(i, j int) bool {
		if Less(ss[i], ss[j]) {
			return true
		}
		if Less(ss[j], ss[i]) {
			return false
		}
		return ss[i] < ss[j]
	})
}
