package natsort

import (
	"reflect"
	"testing"
)

func TestLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"fig2", "fig10", true},
		{"fig10", "fig2", false},
		{"fig9a", "fig10", true},
		{"fig9a", "fig9b", true},
		{"fig1", "fig1", false},
		{"fig01", "fig1", false}, // leading zeros tie numerically: equal rank
		{"fig1", "fig01", false},
		{"a", "b", true},
		{"nexus5", "nexus6p", true},
		{"seed2", "seed10", true},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	got := []string{"fig10", "fig9a", "fig2", "fig01", "fig1", "table2", "table1"}
	Strings(got)
	want := []string{"fig01", "fig1", "fig2", "fig9a", "fig10", "table1", "table2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Strings = %v, want %v", got, want)
	}
}
