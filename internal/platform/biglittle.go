package platform

import (
	"time"

	"mobicore/internal/power"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
)

// Nexus6P returns a Snapdragon 810-class big.LITTLE profile: 4× Cortex-A53
// (LITTLE, 384 MHz – 1.555 GHz) plus 4× Cortex-A57 (big, 384 MHz –
// 1.958 GHz), each cluster a separate frequency domain with its own power
// calibration. The numbers follow the Nexus 5 methodology (§3.1/§4.1):
// leakage curves fitted through two (voltage, watts) anchors per cluster
// and C_eff set so each cluster's full-blast draw lands on published
// device-level measurements:
//
//   - big cluster, 4 cores at f_max ≈ 3.2 W before throttling — the
//     Snapdragon 810's well-documented thermal envelope problem,
//   - LITTLE cluster, 4 cores at f_max ≈ 0.9 W — the efficiency island
//     that lets the phone idle all big cores most of the day,
//   - per-core leakage roughly 150/45 mW (big, f_max/f_min) and
//     35/12 mW (LITTLE), the ~4× static-power gap between the 20 nm A57
//     and A53 implementations.
func Nexus6P() Platform {
	littleLeakCoeff, littleLeakExp, err := power.FitLeak(1.0, 0.035, 0.8, 0.012)
	if err != nil {
		panic(err) // anchors are compile-time constants; cannot fail
	}
	bigLeakCoeff, bigLeakExp, err := power.FitLeak(1.165, 0.150, 0.85, 0.045)
	if err != nil {
		panic(err)
	}
	little := ClusterSpec{
		Name:     "LITTLE",
		NumCores: 4,
		Table:    soc.MSM8994LittleTable(),
		Power: power.Params{
			// ~160 mW dynamic per A53 core flat out: 4×(160+35) mW
			// + uncore ≈ 0.9 W cluster budget.
			CeffFarads:      1.00e-10,
			LeakCoeffWatts:  littleLeakCoeff,
			LeakExponent:    littleLeakExp,
			OfflineWatts:    0.001,
			CacheBaseWatts:  0.025,
			CacheSlopeWatts: 0.025,
			BaseWatts:       0.110, // informational; the floor is paid once at platform level
		},
	}
	big := ClusterSpec{
		Name:     "big",
		NumCores: 4,
		Table:    soc.MSM8994BigTable(),
		Power: power.Params{
			// ~600 mW dynamic per A57 core at the 1.958 GHz / 1.165 V
			// bin: 4×(600+150) mW + uncore ≈ 3.2 W cluster budget.
			CeffFarads:      2.30e-10,
			LeakCoeffWatts:  bigLeakCoeff,
			LeakExponent:    bigLeakExp,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.060,
			CacheSlopeWatts: 0.060,
			BaseWatts:       0.110,
		},
	}
	return Platform{
		Name:     "Nexus 6P",
		Year:     2015,
		NumCores: little.NumCores + big.NumCores,
		// Representative view for pre-cluster code paths: the
		// performance cluster, as Linux exposes policy0's sibling.
		Table: big.Table,
		Power: big.Power,
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// The 810's skin-limited envelope: ~3.4 W sustained drives
			// the zone to its 44 °C trip, R = 22/3.4 ≈ 6.5 K/W.
			ResistanceKPerW: 6.5,
			TimeConstant:    12 * time.Second,
			TripC:           44,
			ReleaseC:        41,
			StepPeriod:      time.Second,
		},
		Clusters: []ClusterSpec{little, big},
	}
}
