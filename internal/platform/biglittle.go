package platform

import (
	"time"

	"mobicore/internal/power"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
)

// Nexus6P returns a Snapdragon 810-class big.LITTLE profile: 4× Cortex-A53
// (LITTLE, 384 MHz – 1.555 GHz) plus 4× Cortex-A57 (big, 384 MHz –
// 1.958 GHz), each cluster a separate frequency domain with its own power
// calibration. The numbers follow the Nexus 5 methodology (§3.1/§4.1):
// leakage curves fitted through two (voltage, watts) anchors per cluster
// and C_eff set so each cluster's full-blast draw lands on published
// device-level measurements:
//
//   - big cluster, 4 cores at f_max ≈ 3.2 W before throttling — the
//     Snapdragon 810's well-documented thermal envelope problem,
//   - LITTLE cluster, 4 cores at f_max ≈ 0.9 W — the efficiency island
//     that lets the phone idle all big cores most of the day,
//   - per-core leakage roughly 150/45 mW (big, f_max/f_min) and
//     35/12 mW (LITTLE), the ~4× static-power gap between the 20 nm A57
//     and A53 implementations.
func Nexus6P() Platform {
	littleLeakCoeff, littleLeakExp, err := power.FitLeak(1.0, 0.035, 0.8, 0.012)
	if err != nil {
		panic(err) // anchors are compile-time constants; cannot fail
	}
	bigLeakCoeff, bigLeakExp, err := power.FitLeak(1.165, 0.150, 0.85, 0.045)
	if err != nil {
		panic(err)
	}
	little := ClusterSpec{
		Name:     "LITTLE",
		NumCores: 4,
		Table:    soc.MSM8994LittleTable(),
		Power: power.Params{
			// ~160 mW dynamic per A53 core flat out: 4×(160+35) mW
			// + uncore ≈ 0.9 W cluster budget.
			CeffFarads:      1.00e-10,
			LeakCoeffWatts:  littleLeakCoeff,
			LeakExponent:    littleLeakExp,
			OfflineWatts:    0.001,
			CacheBaseWatts:  0.025,
			CacheSlopeWatts: 0.025,
			BaseWatts:       0.110, // informational; the floor is paid once at platform level
		},
	}
	big := ClusterSpec{
		Name:     "big",
		NumCores: 4,
		Table:    soc.MSM8994BigTable(),
		Power: power.Params{
			// ~600 mW dynamic per A57 core at the 1.958 GHz / 1.165 V
			// bin: 4×(600+150) mW + uncore ≈ 3.2 W cluster budget.
			CeffFarads:      2.30e-10,
			LeakCoeffWatts:  bigLeakCoeff,
			LeakExponent:    bigLeakExp,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.060,
			CacheSlopeWatts: 0.060,
			BaseWatts:       0.110,
		},
	}
	// Per-cluster junction-temperature zones. The A57 cluster sits on a
	// hotter corner of the die with ~3.5× the power density: its zone
	// reaches trip under any sustained multi-core load, while the A53
	// zone's steady state stays tens of degrees below its own trip even
	// with full coupling from a flat-out big cluster — the asymmetric
	// throttling the Snapdragon 810 is infamous for.
	little.Thermal = thermal.Params{
		AmbientC: labAmbientC,
		// 0.9 W full blast → 22 + 8.1 ≈ 30 °C own heating; coupling from
		// a 3.2 W big cluster adds ≈ 13 °C. Trip far above both.
		ResistanceKPerW: 9.0,
		TimeConstant:    10 * time.Second,
		TripC:           70,
		ReleaseC:        66,
		StepPeriod:      time.Second,
	}
	big.Thermal = thermal.Params{
		AmbientC: labAmbientC,
		// 3.2 W full blast → 22 + 45 ≈ 67 °C own heating before the
		// LITTLE cluster's contribution, and even a realistic sustained
		// game (~1.7 W on the A57s) settles near 50 °C — both far above
		// the 45 °C trip, so sustained load always clips while short
		// bursts ride the thermal mass — the mechanism behind the 810's
		// throttle-to-1.5GHz behaviour in long gaming sessions.
		ResistanceKPerW: 14.0,
		TimeConstant:    8 * time.Second,
		TripC:           45,
		ReleaseC:        41,
		StepPeriod:      time.Second,
	}
	return Platform{
		Name:     "Nexus 6P",
		Year:     2015,
		NumCores: little.NumCores + big.NumCores,
		// Representative view for pre-cluster code paths: the
		// performance cluster, as Linux exposes policy0's sibling.
		Table: big.Table,
		Power: big.Power,
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// The 810's skin-limited envelope: ~3.4 W sustained drives
			// the zone to its 44 °C trip, R = 22/3.4 ≈ 6.5 K/W.
			ResistanceKPerW: 6.5,
			TimeConstant:    12 * time.Second,
			TripC:           44,
			ReleaseC:        41,
			StepPeriod:      time.Second,
		},
		// Lateral heat spread through the shared 20 nm die: each cluster's
		// zone sees ~30% of its neighbor's dissipation.
		ThermalCoupling: 0.30,
		Clusters:        []ClusterSpec{little, big},
	}
}
