package platform

import (
	"testing"

	"mobicore/internal/power"
	"mobicore/internal/soc"
)

func TestNexus6PProfile(t *testing.T) {
	p := Nexus6P()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() {
		t.Fatal("Nexus 6P should be heterogeneous")
	}
	specs := p.ClusterSpecs()
	if len(specs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(specs))
	}
	if specs[0].Name != "LITTLE" || specs[1].Name != "big" {
		t.Errorf("cluster order = %s,%s; want LITTLE first so it owns the low core ids",
			specs[0].Name, specs[1].Name)
	}
	if specs[0].Table.Max().Freq >= specs[1].Table.Max().Freq {
		t.Error("LITTLE top frequency should be below the big cluster's")
	}
	if specs[0].NumCores+specs[1].NumCores != p.NumCores {
		t.Error("cluster cores must sum to NumCores")
	}
	// The big cluster burns far more than LITTLE at its respective top bin.
	littleModel, err := power.NewModel(specs[0].Power, specs[0].Table)
	if err != nil {
		t.Fatal(err)
	}
	bigModel, err := power.NewModel(specs[1].Power, specs[1].Table)
	if err != nil {
		t.Fatal(err)
	}
	littleW := littleModel.CoreWatts(soc.StateActive, specs[0].Table.Max(), 1)
	bigW := bigModel.CoreWatts(soc.StateActive, specs[1].Table.Max(), 1)
	if bigW < 2*littleW {
		t.Errorf("big core full blast %.3f W vs LITTLE %.3f W: want a clear efficiency gap", bigW, littleW)
	}
}

func TestClusterSumValidation(t *testing.T) {
	p := Nexus6P()
	p.NumCores = 7 // clusters still sum to 8
	if err := p.Validate(); err == nil {
		t.Error("cluster/core-count mismatch accepted")
	}
}

func TestHomogeneousClusterSpecs(t *testing.T) {
	p := Nexus5()
	if p.Heterogeneous() {
		t.Fatal("Nexus 5 should be homogeneous")
	}
	specs := p.ClusterSpecs()
	if len(specs) != 1 {
		t.Fatalf("clusters = %d, want 1 synthesized", len(specs))
	}
	if specs[0].NumCores != p.NumCores || specs[0].Table != p.Table {
		t.Error("synthesized cluster must mirror the top-level fields")
	}
}

// TestSystemModelMatchesFlatModel locks the refactor invariant: on a
// homogeneous platform the per-cluster SystemModel reproduces the original
// single-Model evaluation bit for bit.
func TestSystemModelMatchesFlatModel(t *testing.T) {
	p := Nexus5()
	flat, err := power.NewModel(p.Power, p.Table)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.SystemModel()
	if err != nil {
		t.Fatal(err)
	}
	loads := []power.CoreLoad{
		{State: soc.StateActive, OPP: p.Table.Max(), Util: 0.8},
		{State: soc.StateActive, OPP: p.Table.Min(), Util: 0.2},
		{State: soc.StateIdle, OPP: p.Table.Min(), Util: 0},
		{State: soc.StateOffline},
	}
	if got, want := sys.SystemWatts(loads), flat.SystemWatts(loads); got != want {
		t.Errorf("SystemModel %.9f W, flat Model %.9f W: must match exactly", got, want)
	}
}

// TestAliasAndByNameAgree locks the two platform spellings together so the
// CLI aliases and display names cannot drift again: every profile resolves
// through ByName under both its alias and its display name, and Alias is
// the inverse of the display name.
func TestAliasAndByNameAgree(t *testing.T) {
	for alias, f := range Profiles() {
		display := f().Name
		byAlias, err := ByName(alias)
		if err != nil {
			t.Errorf("ByName(%q): %v", alias, err)
			continue
		}
		byDisplay, err := ByName(display)
		if err != nil {
			t.Errorf("ByName(%q): %v", display, err)
			continue
		}
		if byAlias.Name != display || byDisplay.Name != display {
			t.Errorf("alias %q and display %q resolve to %q / %q", alias, display, byAlias.Name, byDisplay.Name)
		}
		if got := Alias(display); got != alias {
			t.Errorf("Alias(%q) = %q, want %q", display, got, alias)
		}
	}
	// Every Figure 1 handset must be reachable by alias.
	for _, p := range All() {
		if Alias(p.Name) == "" {
			t.Errorf("platform %q has no CLI alias", p.Name)
		}
	}
	if _, err := ByName("warp-phone"); err == nil {
		t.Error("unknown name accepted")
	}
}
