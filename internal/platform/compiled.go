package platform

import (
	"fmt"
	"sync"

	"mobicore/internal/em"
	"mobicore/internal/power"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
)

// Compiled is the immutable, shareable precompute of one platform profile:
// everything session construction used to rebuild per cell that is in fact
// static per platform — the resolved cluster specs, the per-cluster power
// models with their per-OPP leak tables, the kernel-EM-style energy model,
// the thermal-zone parameter set, the core→cluster mapping, and the boot
// frequency ladder. A Compiled is built once per process per distinct
// profile (see Platform.Compiled) and then shared by every session and
// fleet worker concurrently: all fields are read-only after construction,
// and the shared *power.Model / *em.Model values are documented
// concurrent-safe. Mutable per-session state (power.SystemModel scratch,
// thermal.Network zones, the soc.CPU) is still constructed per Sim — but
// from these shared parts, which is cheap.
type Compiled struct {
	// Platform is the exact profile this precompute was built from; the
	// cache compares against it to tell same-name variants (for example
	// WithoutThrottle copies) apart.
	Platform Platform

	// Specs is the resolved ClusterSpecs() view: one entry per frequency
	// domain, with the homogeneous single-cluster synthesis applied.
	Specs []ClusterSpec
	// ClusterCoreIDs lists each cluster's core ids in cluster order;
	// CoreCluster is the inverse map (core id → cluster index). Both are
	// shared — callers must not mutate them.
	ClusterCoreIDs [][]int
	CoreCluster    []int
	// BootFreqs is each cluster's boot operating point (its ladder top —
	// where the kernel leaves a policy domain before a governor attaches).
	BootFreqs []soc.Hz
	// ClusterFmaxHz is each cluster's ladder top as a float, the
	// denominator of headroom-aware capacity scales.
	ClusterFmaxHz []float64
	// ThermalParams is each cluster's zone parameter set with the
	// inherit-from-platform default resolved; Tables is each cluster's OPP
	// ladder.
	ThermalParams []thermal.Params
	Tables        []*soc.OPPTable
	// Models holds the per-cluster power models (immutable, shared);
	// BaseWatts is the platform floor paid once per system.
	Models    []*power.Model
	BaseWatts float64
	// EM is the shared kernel-EM-style energy model (immutable,
	// concurrent-safe) consumed by EAS placement and the clustered
	// MobiCore gate.
	EM *em.Model
}

// Compile builds a platform's precompute from scratch, bypassing the
// process-wide cache. Most callers want Platform.Compiled instead.
func Compile(p Platform) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	specs := p.ClusterSpecs()
	c := &Compiled{
		Platform:       p,
		Specs:          specs,
		ClusterCoreIDs: make([][]int, len(specs)),
		CoreCluster:    make([]int, 0, p.NumCores),
		BootFreqs:      make([]soc.Hz, len(specs)),
		ClusterFmaxHz:  make([]float64, len(specs)),
		ThermalParams:  p.ClusterThermalParams(),
		Tables:         make([]*soc.OPPTable, len(specs)),
		Models:         make([]*power.Model, len(specs)),
		BaseWatts:      p.Power.BaseWatts,
	}
	next := 0
	domains := make([]em.DomainSpec, len(specs))
	for ci, cs := range specs {
		ids := make([]int, cs.NumCores)
		for i := range ids {
			ids[i] = next
			next++
			c.CoreCluster = append(c.CoreCluster, ci)
		}
		c.ClusterCoreIDs[ci] = ids
		c.BootFreqs[ci] = cs.Table.Max().Freq
		c.ClusterFmaxHz[ci] = float64(cs.Table.Max().Freq)
		c.Tables[ci] = cs.Table
		m, err := power.NewModel(cs.Power, cs.Table)
		if err != nil {
			return nil, fmt.Errorf("platform %s: cluster %s: %w", p.Name, cs.Name, err)
		}
		c.Models[ci] = m
		domains[ci] = em.DomainSpec{Name: cs.Name, CoreIDs: ids, Table: cs.Table, Params: cs.Power}
	}
	emod, err := em.New(domains)
	if err != nil {
		return nil, fmt.Errorf("platform %s: %w", p.Name, err)
	}
	c.EM = emod
	return c, nil
}

// compiledCache maps platform name → *compiledVariants. Profiles are keyed
// by name for the fast path, but a name can legitimately describe several
// distinct profiles in one process (WithoutThrottle clears trip points
// without renaming), so each entry holds every variant seen and lookups
// verify full profile equality before sharing.
var compiledCache sync.Map

type compiledVariants struct {
	mu       sync.RWMutex
	variants []*Compiled
}

// Compiled returns the process-wide shared precompute for the profile,
// building it on first use. Two calls with equal profiles return the same
// *Compiled; a same-name profile with different parameters (for example a
// WithoutThrottle copy) gets its own entry rather than a wrong shared one.
// Safe for concurrent use from any number of fleet workers. The warm path
// — cache hit on an already-compiled profile — allocates nothing.
//
//mobicore:hotpath
func (p Platform) Compiled() (*Compiled, error) {
	v, ok := compiledCache.Load(p.Name)
	if !ok {
		// First sighting of this name; LoadOrStore races benignly with
		// other first-sighters — exactly one variants entry survives.
		//mobilint:ignore hotalloc one variants entry per platform name per process
		v, _ = compiledCache.LoadOrStore(p.Name, &compiledVariants{})
	}
	entry := v.(*compiledVariants)

	entry.mu.RLock()
	for _, c := range entry.variants {
		if equalPlatform(c.Platform, p) {
			entry.mu.RUnlock()
			return c, nil
		}
	}
	entry.mu.RUnlock()

	c, err := Compile(p)
	if err != nil {
		return nil, err
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	// Another worker may have compiled the same variant while we did;
	// prefer the stored one so every session shares a single instance.
	for _, existing := range entry.variants {
		if equalPlatform(existing.Platform, p) {
			return existing, nil
		}
	}
	//mobilint:ignore hotalloc cold miss path — one append per distinct profile per process
	entry.variants = append(entry.variants, c)
	return c, nil
}

// equalPlatform reports whether two profiles are the same in every field
// the precompute depends on. Platform is not ==-comparable (table pointers
// and the cluster slice), so this walks the structure by hand: the power
// and thermal parameter structs are plain value types compared directly,
// and OPP tables compare by content because profile constructors build a
// fresh table on every call. Allocation-free by design — it runs on the
// cache's warm path for every session construction.
//
//mobicore:hotpath
func equalPlatform(a, b Platform) bool {
	if a.Name != b.Name || a.Year != b.Year || a.NumCores != b.NumCores ||
		a.Power != b.Power || a.Thermal != b.Thermal ||
		a.ThermalCoupling != b.ThermalCoupling ||
		len(a.Clusters) != len(b.Clusters) || !tableEqual(a.Table, b.Table) {
		return false
	}
	for i := range a.Clusters {
		ca, cb := &a.Clusters[i], &b.Clusters[i]
		if ca.Name != cb.Name || ca.NumCores != cb.NumCores ||
			ca.Power != cb.Power || ca.Thermal != cb.Thermal ||
			!tableEqual(ca.Table, cb.Table) {
			return false
		}
	}
	return true
}

// tableEqual compares two OPP ladders by pointer, then by content.
//
//mobicore:hotpath
func tableEqual(a, b *soc.OPPTable) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// NewCPU constructs a fresh soc.CPU on the compiled topology. The CPU is
// mutable per-session state and is never shared.
func (c *Compiled) NewCPU() (*soc.CPU, error) {
	clusters := make([]soc.Cluster, len(c.Specs))
	for i, cs := range c.Specs {
		clusters[i] = soc.Cluster{Name: cs.Name, NumCores: cs.NumCores, Table: cs.Table}
	}
	return soc.NewClusteredCPU(clusters)
}

// NewSystemModel builds a per-session system power model over the shared
// per-cluster models. The SystemModel's evaluation scratch makes it
// single-session; the cluster models behind it stay shared and immutable.
func (c *Compiled) NewSystemModel() (*power.SystemModel, error) {
	return power.NewSystemModel(c.BaseWatts, c.Models, c.CoreCluster)
}

// NewThermalNetwork builds a fresh per-session thermal network from the
// compiled zone parameters (zones integrate state, so they cannot be
// shared).
func (c *Compiled) NewThermalNetwork() (*thermal.Network, error) {
	net, err := thermal.NewNetwork(c.ThermalParams, c.Tables, c.Platform.ThermalCoupling)
	if err != nil {
		return nil, fmt.Errorf("platform %s: %w", c.Platform.Name, err)
	}
	return net, nil
}
