package platform

import (
	"sync"
	"testing"
)

// TestCompiledCacheSharing: equal profiles share one *Compiled; the cache
// key is the name but sharing requires full profile equality.
func TestCompiledCacheSharing(t *testing.T) {
	a, err := Nexus5().Compiled()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Nexus5().Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("two Compiled calls on equal profiles returned distinct instances")
	}
	if a.EM == nil || len(a.Models) == 0 {
		t.Fatal("compiled profile missing energy or power models")
	}
}

// TestCompiledCacheVariants: a same-name profile with different parameters
// (WithoutThrottle keeps the name) must get its own precompute — sharing by
// name alone would silently re-enable throttling.
func TestCompiledCacheVariants(t *testing.T) {
	base, err := Nexus5().Compiled()
	if err != nil {
		t.Fatal(err)
	}
	noThrottle, err := Nexus5().WithoutThrottle().Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if base == noThrottle {
		t.Fatal("throttled and unthrottled variants share one precompute")
	}
	if base.Platform.Name != noThrottle.Platform.Name {
		t.Fatalf("variant names diverged: %q vs %q", base.Platform.Name, noThrottle.Platform.Name)
	}
	if noThrottle.ThermalParams[0].TripC != 0 {
		t.Errorf("unthrottled variant kept trip point %v", noThrottle.ThermalParams[0].TripC)
	}
	if base.ThermalParams[0].TripC == 0 {
		t.Error("throttled variant lost its trip point")
	}
	// Hitting the cache again still resolves each variant to its own entry.
	again, err := Nexus5().WithoutThrottle().Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if again != noThrottle {
		t.Error("second unthrottled lookup missed the cached variant")
	}
}

// TestCompiledCacheConcurrent hammers one profile from many goroutines;
// everyone must land on the same instance (run under -race in CI).
func TestCompiledCacheConcurrent(t *testing.T) {
	const n = 32
	got := make([]*Compiled, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Nexus6P().Compiled()
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d received a different precompute", i)
		}
	}
}

// TestCompileMatchesDirectConstruction: the precompute's parts must be the
// same objects the pre-cache construction path produced — same EM domains,
// same boot ladder, same core→cluster map.
func TestCompileMatchesDirectConstruction(t *testing.T) {
	for _, p := range []Platform{Nexus5(), Nexus6P(), SD855()} {
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		specs := p.ClusterSpecs()
		if len(c.Specs) != len(specs) {
			t.Fatalf("%s: %d compiled specs, want %d", p.Name, len(c.Specs), len(specs))
		}
		next := 0
		for ci, cs := range specs {
			if c.BootFreqs[ci] != cs.Table.Max().Freq {
				t.Errorf("%s cluster %s: boot freq %v, want ladder top %v",
					p.Name, cs.Name, c.BootFreqs[ci], cs.Table.Max().Freq)
			}
			if c.ClusterFmaxHz[ci] != float64(cs.Table.Max().Freq) {
				t.Errorf("%s cluster %s: fmax %v", p.Name, cs.Name, c.ClusterFmaxHz[ci])
			}
			for _, id := range c.ClusterCoreIDs[ci] {
				if id != next {
					t.Fatalf("%s: non-contiguous core id %d, want %d", p.Name, id, next)
				}
				if c.CoreCluster[id] != ci {
					t.Fatalf("%s: core %d mapped to cluster %d, want %d", p.Name, id, c.CoreCluster[id], ci)
				}
				next++
			}
		}
		if next != p.NumCores {
			t.Fatalf("%s: %d cores mapped, want %d", p.Name, next, p.NumCores)
		}
		cpu, err := c.NewCPU()
		if err != nil {
			t.Fatalf("%s: NewCPU: %v", p.Name, err)
		}
		if cpu.NumCores() != p.NumCores {
			t.Errorf("%s: CPU has %d cores, want %d", p.Name, cpu.NumCores(), p.NumCores)
		}
		if _, err := c.NewSystemModel(); err != nil {
			t.Fatalf("%s: NewSystemModel: %v", p.Name, err)
		}
		net, err := c.NewThermalNetwork()
		if err != nil {
			t.Fatalf("%s: NewThermalNetwork: %v", p.Name, err)
		}
		if net.Zones() != len(specs) {
			t.Errorf("%s: %d thermal zones, want %d", p.Name, net.Zones(), len(specs))
		}
	}
}

// TestEqualPlatform walks the by-hand equality against each field that
// matters, including content-compared OPP tables from separate constructor
// calls.
func TestEqualPlatform(t *testing.T) {
	if !equalPlatform(Nexus5(), Nexus5()) {
		t.Error("two fresh Nexus5 profiles compare unequal (table content comparison broken?)")
	}
	if !equalPlatform(Nexus6P(), Nexus6P()) {
		t.Error("two fresh Nexus6P profiles compare unequal")
	}
	if equalPlatform(Nexus5(), Nexus5().WithoutThrottle()) {
		t.Error("throttle variant compares equal to base")
	}
	if equalPlatform(Nexus6P(), Nexus6P().WithoutThrottle()) {
		t.Error("clustered throttle variant compares equal to base")
	}
	if equalPlatform(Nexus5(), Nexus4()) {
		t.Error("distinct platforms compare equal")
	}
	mutated := Nexus5()
	mutated.Power.CeffFarads *= 1.0000001
	if equalPlatform(Nexus5(), mutated) {
		t.Error("power-parameter change not detected")
	}
	shuffled := Nexus6P()
	shuffled.Clusters = append([]ClusterSpec(nil), shuffled.Clusters...)
	shuffled.Clusters[0].NumCores++
	if equalPlatform(Nexus6P(), shuffled) {
		t.Error("cluster topology change not detected")
	}
}

// TestCompiledWarmPathAllocs: the cache hit must be allocation-free — it
// runs once per cell across an entire fleet.
func TestCompiledWarmPathAllocs(t *testing.T) {
	p := Nexus5()
	if _, err := p.Compiled(); err != nil { // prime
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Compiled(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm Compiled lookup allocates %.1f objects/op, want 0", allocs)
	}
}
