// Package platform bundles per-device profiles: core count, OPP table,
// power-model parameters, and thermal parameters. The six profiles mirror
// the handsets stressed for Figure 1 of the thesis (Motorola mb810, Samsung
// Nexus S, Samsung Galaxy S II, LG Nexus 4, LG Nexus 5, LG G3), calibrated
// to every absolute number the paper reports:
//
//   - Nexus 5 full blast (4 cores, 100%, f_max) ≈ 2.40 W (§1.2, with the
//     paper's swapped Nexus S/Nexus 5 values corrected),
//   - Nexus S full blast ≈ 0.98 W,
//   - Nexus 5 per-core leakage 120 mW at f_max / 47 mW at f_min (§4.1.2),
//   - IR temperatures 42.1 °C (Nexus 5) vs 26.9 °C (Nexus S) at 22 °C
//     ambient (Figure 2a).
package platform

import (
	"errors"
	"fmt"
	"time"

	"mobicore/internal/em"
	"mobicore/internal/power"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
)

// ClusterSpec describes one frequency domain of a device: a named group of
// identical cores with their own OPP table and power calibration. big.LITTLE
// parts carry one spec per cluster; homogeneous profiles leave
// Platform.Clusters empty and the single-cluster view is synthesized from
// the top-level fields.
type ClusterSpec struct {
	Name     string
	NumCores int
	Table    *soc.OPPTable
	Power    power.Params
	// Thermal holds the cluster's own zone parameters (trip, release, RC
	// constants) for the per-cluster thermal network. The zero value means
	// "inherit the platform-level Thermal params" so homogeneous profiles
	// and pre-existing cluster specs need not repeat them.
	Thermal thermal.Params
}

// HasThermal reports whether the spec carries its own zone parameters
// (ResistanceKPerW is mandatory for any valid Params, so it doubles as the
// presence flag).
func (cs ClusterSpec) HasThermal() bool { return cs.Thermal.ResistanceKPerW != 0 }

// Validate rejects malformed cluster specs.
func (cs ClusterSpec) Validate() error {
	if cs.Name == "" {
		return errors.New("platform: cluster needs a name")
	}
	if cs.NumCores < 1 {
		return fmt.Errorf("platform: cluster %s core count %d", cs.Name, cs.NumCores)
	}
	if cs.Table == nil || cs.Table.Len() == 0 {
		return fmt.Errorf("platform: cluster %s missing OPP table", cs.Name)
	}
	if err := cs.Power.Validate(); err != nil {
		return fmt.Errorf("platform: cluster %s: %w", cs.Name, err)
	}
	if cs.HasThermal() {
		if err := cs.Thermal.Validate(); err != nil {
			return fmt.Errorf("platform: cluster %s: %w", cs.Name, err)
		}
	}
	return nil
}

// Platform is one device profile. Treat values as immutable.
//
// On heterogeneous profiles (len(Clusters) > 1) the top-level Table and
// Power fields hold the performance cluster's values as a representative
// view for code paths that predate clusters; cluster-aware consumers must
// go through ClusterSpecs.
type Platform struct {
	Name     string
	Year     int
	NumCores int
	Table    *soc.OPPTable
	Power    power.Params
	Thermal  thermal.Params
	// ThermalCoupling is the shared-die coupling fraction of the thermal
	// network: each cluster's zone integrates its own power plus this
	// fraction of its neighbors'. Irrelevant (and conventionally zero) on
	// single-cluster profiles.
	ThermalCoupling float64
	// Clusters lists the frequency domains, efficiency cluster first (so
	// its cores get the low ids and lowest-id-first hotplug prefers them).
	// Empty means homogeneous: one implied cluster from the fields above.
	Clusters []ClusterSpec
}

// Validate checks the profile for internal consistency.
func (p Platform) Validate() error {
	if p.Name == "" {
		return errors.New("platform: empty name")
	}
	if p.NumCores < 1 {
		return fmt.Errorf("platform %s: core count %d", p.Name, p.NumCores)
	}
	if p.Table == nil || p.Table.Len() == 0 {
		return fmt.Errorf("platform %s: missing OPP table", p.Name)
	}
	if err := p.Power.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if err := p.Thermal.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if p.ThermalCoupling < 0 || p.ThermalCoupling > 1 {
		return fmt.Errorf("platform %s: thermal coupling %v outside [0,1]", p.Name, p.ThermalCoupling)
	}
	if len(p.Clusters) > 0 {
		sum := 0
		for _, cs := range p.Clusters {
			if err := cs.Validate(); err != nil {
				return fmt.Errorf("platform %s: %w", p.Name, err)
			}
			sum += cs.NumCores
		}
		if sum != p.NumCores {
			return fmt.Errorf("platform %s: cluster cores sum to %d, NumCores is %d", p.Name, sum, p.NumCores)
		}
	}
	return nil
}

// Heterogeneous reports whether the profile spans more than one frequency
// domain.
func (p Platform) Heterogeneous() bool { return len(p.Clusters) > 1 }

// ClusterSpecs returns the profile's frequency domains. Homogeneous
// profiles yield a single synthesized cluster named "cpu" carrying the
// top-level table and power parameters, so every consumer can treat all
// platforms uniformly.
func (p Platform) ClusterSpecs() []ClusterSpec {
	if len(p.Clusters) > 0 {
		out := make([]ClusterSpec, len(p.Clusters))
		copy(out, p.Clusters)
		return out
	}
	return []ClusterSpec{{Name: "cpu", NumCores: p.NumCores, Table: p.Table, Power: p.Power}}
}

// SocClusters converts the profile's domains to the soc package's topology
// type, ready for soc.NewClusteredCPU.
func (p Platform) SocClusters() []soc.Cluster {
	specs := p.ClusterSpecs()
	out := make([]soc.Cluster, len(specs))
	for i, cs := range specs {
		out[i] = soc.Cluster{Name: cs.Name, NumCores: cs.NumCores, Table: cs.Table}
	}
	return out
}

// ClusterTables returns each domain's OPP table in cluster order — the
// list a per-domain governor stack is built against.
func (p Platform) ClusterTables() []*soc.OPPTable {
	specs := p.ClusterSpecs()
	out := make([]*soc.OPPTable, len(specs))
	for i, cs := range specs {
		out[i] = cs.Table
	}
	return out
}

// ClusterThermalParams returns each domain's zone parameters in cluster
// order, resolving the inherit-from-platform default: a spec without its
// own Thermal block (including the synthesized homogeneous cluster) uses
// the platform-level params.
func (p Platform) ClusterThermalParams() []thermal.Params {
	specs := p.ClusterSpecs()
	out := make([]thermal.Params, len(specs))
	for i, cs := range specs {
		if cs.HasThermal() {
			out[i] = cs.Thermal
		} else {
			out[i] = p.Thermal
		}
	}
	return out
}

// ThermalNetwork builds the profile's per-cluster thermal network: one zone
// per frequency domain on the domain's own ladder, joined by the platform's
// shared-die coupling. Homogeneous profiles yield a single-zone network
// that reproduces the flat Zone model bit for bit.
func (p Platform) ThermalNetwork() (*thermal.Network, error) {
	params := p.ClusterThermalParams()
	tables := p.ClusterTables()
	net, err := thermal.NewNetwork(params, tables, p.ThermalCoupling)
	if err != nil {
		return nil, fmt.Errorf("platform %s: %w", p.Name, err)
	}
	return net, nil
}

// SystemModel builds the per-cluster power model for the profile, paying
// the platform floor (top-level Power.BaseWatts) exactly once.
func (p Platform) SystemModel() (*power.SystemModel, error) {
	specs := p.ClusterSpecs()
	models := make([]*power.Model, len(specs))
	coreCluster := make([]int, 0, p.NumCores)
	for i, cs := range specs {
		m, err := power.NewModel(cs.Power, cs.Table)
		if err != nil {
			return nil, fmt.Errorf("platform %s: cluster %s: %w", p.Name, cs.Name, err)
		}
		models[i] = m
		for c := 0; c < cs.NumCores; c++ {
			coreCluster = append(coreCluster, i)
		}
	}
	return power.NewSystemModel(p.Power.BaseWatts, models, coreCluster)
}

// EnergyModel returns the kernel-EM-style energy model for the profile: one
// performance domain per frequency cluster with capacity, cost-per-cycle,
// and energy-at-OPP tables precomputed. Core ids are assigned contiguously
// in cluster order, matching soc.NewClusteredCPU's numbering. The model is
// immutable and concurrent-safe, and comes from the process-wide compiled
// cache: every session on the same profile shares one instance.
func (p Platform) EnergyModel() (*em.Model, error) {
	c, err := p.Compiled()
	if err != nil {
		return nil, err
	}
	return c.EM, nil
}

// WithoutThrottle returns a copy of the platform with thermal throttling
// disabled (trip point cleared). The temperature model still integrates.
// Used by experiments that force the "highest computing state" (Fig. 1/2).
func (p Platform) WithoutThrottle() Platform {
	p.Thermal.TripC = 0
	p.Thermal.ReleaseC = 0
	if len(p.Clusters) > 0 {
		// Copy before clearing: the receiver is a value but the cluster
		// slice shares its backing array with the original profile.
		cl := make([]ClusterSpec, len(p.Clusters))
		copy(cl, p.Clusters)
		for i := range cl {
			cl[i].Thermal.TripC = 0
			cl[i].Thermal.ReleaseC = 0
		}
		p.Clusters = cl
	}
	return p
}

// ambient temperature of the paper's lab, inferred from Figure 2a.
const labAmbientC = 22.0

// Nexus5 returns the primary evaluation platform: LG Nexus 5, Snapdragon 800
// (MSM8974), 4× Krait 400, 14 OPPs from 300 MHz to 2.2656 GHz (Table 1).
func Nexus5() Platform {
	// Leakage fitted through the paper's two anchors (§4.1.2).
	leakCoeff, leakExp, err := power.FitLeak(1.2, 0.120, 0.9, 0.047)
	if err != nil {
		panic(err) // anchors are compile-time constants; cannot fail
	}
	return Platform{
		Name:     "Nexus 5",
		Year:     2013,
		NumCores: 4,
		Table:    soc.MSM8974Table(),
		Power: power.Params{
			// 440 mW dynamic at f_max: with 120 mW leak per core,
			// 80 mW base and 80 mW uncore, four cores flat out land
			// on the paper's 2.40 W.
			CeffFarads:      1.35e-10,
			LeakCoeffWatts:  leakCoeff,
			LeakExponent:    leakExp,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.040,
			CacheSlopeWatts: 0.040,
			BaseWatts:       0.080,
		},
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// 2.40 W sustained → 42.1 °C: R = 20.1/2.40 ≈ 8.4 K/W.
			ResistanceKPerW: 8.4,
			TimeConstant:    15 * time.Second,
			// msm_thermal skin trip: sustained multi-core turbo is
			// clipped well before the die-limit — the mechanism
			// behind Figure 4's marginal core power collapse.
			TripC:      36,
			ReleaseC:   34,
			StepPeriod: time.Second,
		},
	}
}

// NexusS returns the Samsung Nexus S: single Hummingbird core at 1 GHz.
func NexusS() Platform {
	table := mustUniform(5, 200*soc.MHz, 1000*soc.MHz, 0.95, 1.25)
	return Platform{
		Name:     "Nexus S",
		Year:     2010,
		NumCores: 1,
		Table:    table,
		Power: power.Params{
			// 45 nm-class core: large C_eff, modest leakage.
			CeffFarads:      4.65e-10,
			LeakCoeffWatts:  0.046,
			LeakExponent:    2.5,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.040,
			CacheSlopeWatts: 0.030,
			BaseWatts:       0.100,
		},
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// 0.98 W sustained → 26.9 °C: R = 4.9/0.98 = 5.0 K/W.
			ResistanceKPerW: 5.0,
			TimeConstant:    30 * time.Second,
			TripC:           0, // no thermal driver on this generation
		},
	}
}

// MotorolaMB810 returns the Motorola Droid X (mb810): single OMAP3630 core.
func MotorolaMB810() Platform {
	table := mustUniform(4, 300*soc.MHz, 1000*soc.MHz, 1.00, 1.35)
	return Platform{
		Name:     "Motorola mb810",
		Year:     2010,
		NumCores: 1,
		Table:    table,
		Power: power.Params{
			CeffFarads:      3.40e-10,
			LeakCoeffWatts:  0.033,
			LeakExponent:    2.5,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.030,
			CacheSlopeWatts: 0.030,
			BaseWatts:       0.100,
		},
		Thermal: thermal.Params{
			AmbientC:        labAmbientC,
			ResistanceKPerW: 5.5,
			TimeConstant:    30 * time.Second,
			TripC:           0,
		},
	}
}

// GalaxyS2 returns the Samsung Galaxy S II: dual Exynos 4210 cores.
func GalaxyS2() Platform {
	table := mustUniform(5, 200*soc.MHz, 1200*soc.MHz, 0.95, 1.20)
	return Platform{
		Name:     "Galaxy S II",
		Year:     2011,
		NumCores: 2,
		Table:    table,
		Power: power.Params{
			CeffFarads:      3.10e-10,
			LeakCoeffWatts:  0.058,
			LeakExponent:    2.8,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.040,
			CacheSlopeWatts: 0.040,
			BaseWatts:       0.120,
		},
		Thermal: thermal.Params{
			AmbientC:        labAmbientC,
			ResistanceKPerW: 6.0,
			TimeConstant:    28 * time.Second,
			TripC:           0,
		},
	}
}

// Nexus4 returns the LG Nexus 4: quad Krait 200 (Snapdragon S4 Pro).
func Nexus4() Platform {
	table := mustUniform(8, 384*soc.MHz, 1512*soc.MHz, 0.90, 1.15)
	return Platform{
		Name:     "Nexus 4",
		Year:     2012,
		NumCores: 4,
		Table:    table,
		Power: power.Params{
			CeffFarads:      1.90e-10,
			LeakCoeffWatts:  0.070,
			LeakExponent:    3.0,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.040,
			CacheSlopeWatts: 0.040,
			BaseWatts:       0.100,
		},
		Thermal: thermal.Params{
			AmbientC:        labAmbientC,
			ResistanceKPerW: 7.5,
			TimeConstant:    25 * time.Second,
			TripC:           42,
			ReleaseC:        40,
			StepPeriod:      time.Second,
		},
	}
}

// LGG3 returns the LG G3: quad Krait 400 (Snapdragon 801) at 2.46 GHz.
func LGG3() Platform {
	table := mustUniform(12, 300*soc.MHz, 2457600*soc.KHz, 0.90, 1.21)
	return Platform{
		Name:     "LG G3",
		Year:     2014,
		NumCores: 4,
		Table:    table,
		Power: power.Params{
			CeffFarads:      1.29e-10,
			LeakCoeffWatts:  0.072,
			LeakExponent:    3.1,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.045,
			CacheSlopeWatts: 0.045,
			BaseWatts:       0.100,
		},
		Thermal: thermal.Params{
			AmbientC:        labAmbientC,
			ResistanceKPerW: 8.0,
			TimeConstant:    25 * time.Second,
			TripC:           41,
			ReleaseC:        39,
			StepPeriod:      time.Second,
		},
	}
}

// Nexus5SharedRail returns the counterfactual platform of §4.1.2: the same
// silicon with all cores on one voltage supply. Idle cores retain state at
// a fraction of active leakage ("if we consider a platform where all cores
// are connected to the same voltage supply, there are fewer sources of
// power leakage"), but per-core DVFS is impossible, so hotplug matters
// less and race-to-idle becomes competitive. Used by the race-to-idle
// ablation to reproduce the thesis' conditional argument.
func Nexus5SharedRail() Platform {
	p := Nexus5()
	p.Name = "Nexus 5 (shared rail)"
	p.Power.IdleLeakFraction = 0.30
	return p
}

// All returns the six Figure 1 handsets ordered as the paper plots them:
// by release year, oldest first. The post-thesis big.LITTLE profile
// (Nexus6P) is not part of the Figure 1 set; find it via Profiles/ByName.
func All() []Platform {
	return []Platform{
		NexusS(),
		MotorolaMB810(),
		GalaxyS2(),
		Nexus4(),
		Nexus5(),
		LGG3(),
	}
}

// Profiles maps every canonical CLI alias to its profile constructor — the
// single source of truth the root package and ByName both resolve against,
// so the two spellings of each platform cannot drift apart.
func Profiles() map[string]func() Platform {
	return map[string]func() Platform{
		"nexus5":    Nexus5,
		"nexus-s":   NexusS,
		"mb810":     MotorolaMB810,
		"galaxy-s2": GalaxyS2,
		"nexus4":    Nexus4,
		"lg-g3":     LGG3,
		"nexus6p":   Nexus6P,
		"sd855":     SD855,
	}
}

// Alias returns the canonical CLI alias for a display name ("Nexus 5" ->
// "nexus5"), or "" if the name is unknown.
func Alias(displayName string) string {
	for alias, f := range Profiles() {
		if f().Name == displayName {
			return alias
		}
	}
	return ""
}

// ByName resolves a profile by display name ("Nexus 5") or CLI alias
// ("nexus5") — both lookup paths accept both spellings.
func ByName(name string) (Platform, error) {
	if f, ok := Profiles()[name]; ok {
		return f(), nil
	}
	for _, f := range Profiles() {
		if p := f(); p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown platform %q", name)
}

func mustUniform(n int, lo, hi soc.Hz, vlo, vhi soc.Volt) *soc.OPPTable {
	t, err := soc.UniformTable(n, lo, hi, vlo, vhi)
	if err != nil {
		panic(err) // static platform definitions; cannot fail
	}
	return t
}
