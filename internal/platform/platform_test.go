package platform

import (
	"math"
	"testing"

	"mobicore/internal/power"
	"mobicore/internal/soc"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAllOrderedByYear(t *testing.T) {
	profiles := All()
	if len(profiles) != 6 {
		t.Fatalf("profile count = %d, want the 6 Figure-1 handsets", len(profiles))
	}
	for i := 1; i < len(profiles); i++ {
		if profiles[i].Year < profiles[i-1].Year {
			t.Errorf("profiles out of year order: %s (%d) after %s (%d)",
				profiles[i].Name, profiles[i].Year, profiles[i-1].Name, profiles[i-1].Year)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Nexus 5")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores != 4 {
		t.Errorf("Nexus 5 cores = %d, want 4", p.NumCores)
	}
	if _, err := ByName("iPhone"); err == nil {
		t.Error("unknown platform accepted")
	}
}

// TestNexus5Table1Anchors checks the Table 1 specification.
func TestNexus5Table1Anchors(t *testing.T) {
	p := Nexus5()
	if p.Table.Len() != 14 {
		t.Errorf("OPP count = %d, want 14", p.Table.Len())
	}
	if got, want := p.Table.Min().Freq, 300*soc.MHz; got != want {
		t.Errorf("f_min = %v, want %v", got, want)
	}
	if got, want := p.Table.Max().Freq, 2_265_600*soc.KHz; got != want {
		t.Errorf("f_max = %v, want %v", got, want)
	}
	if p.Table.Min().Volt != 0.9 || p.Table.Max().Volt != 1.2 {
		t.Errorf("voltage range = [%v,%v], want [0.9,1.2]", p.Table.Min().Volt, p.Table.Max().Volt)
	}
}

// TestNexus5LeakAnchors checks the §4.1.2 static power measurement.
func TestNexus5LeakAnchors(t *testing.T) {
	p := Nexus5()
	m, err := power.NewModel(p.Power, p.Table)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LeakWatts(p.Table.Max().Volt); math.Abs(got-0.120) > 1e-6 {
		t.Errorf("leak at f_max = %.4f W, want 0.120", got)
	}
	if got := m.LeakWatts(p.Table.Min().Volt); math.Abs(got-0.047) > 1e-6 {
		t.Errorf("leak at f_min = %.4f W, want 0.047", got)
	}
}

// TestFullBlastPowerOrdering reproduces the Figure 1 relation: full-stress
// power grows with core count across generations, and the two single-core
// phones sit near 0.85–0.98 W while the quad-cores sit above 2 W.
func TestFullBlastPowerOrdering(t *testing.T) {
	blast := func(p Platform) float64 {
		m, err := power.NewModel(p.Power, p.Table)
		if err != nil {
			t.Fatal(err)
		}
		loads := make([]power.CoreLoad, p.NumCores)
		for i := range loads {
			loads[i] = power.CoreLoad{State: soc.StateActive, OPP: p.Table.Max(), Util: 1}
		}
		return m.SystemWatts(loads)
	}
	nexusS := blast(NexusS())
	nexus5 := blast(Nexus5())
	if math.Abs(nexusS-0.9806) > 0.05 {
		t.Errorf("Nexus S full blast = %.3f W, want ≈0.981 (paper §1.2)", nexusS)
	}
	if math.Abs(nexus5-2.4038) > 0.08 {
		t.Errorf("Nexus 5 full blast = %.3f W, want ≈2.404 (paper §1.2, values un-swapped)", nexus5)
	}
	// "The Nexus 5 is 140% more power consuming than the Nexus S."
	if ratio := nexus5/nexusS - 1; math.Abs(ratio-1.40) > 0.15 {
		t.Errorf("Nexus 5 vs Nexus S = +%.0f%%, want ≈+140%%", ratio*100)
	}
	// Monotone-ish growth with core count across the lineup.
	prev := 0.0
	for _, p := range []Platform{MotorolaMB810(), GalaxyS2(), Nexus4(), Nexus5()} {
		w := blast(p)
		if w <= prev {
			t.Errorf("%s full blast %.2f W not above previous %.2f W", p.Name, w, prev)
		}
		prev = w
	}
}

// TestThermalAnchors reproduces the Figure 2a temperatures at steady state.
func TestThermalAnchors(t *testing.T) {
	checks := []struct {
		plat  Platform
		watts float64
		wantC float64
	}{
		{Nexus5(), 2.404, 42.1},
		{NexusS(), 0.981, 26.9},
	}
	for _, c := range checks {
		steady := c.plat.Thermal.AmbientC + c.watts*c.plat.Thermal.ResistanceKPerW
		if math.Abs(steady-c.wantC) > 1.0 {
			t.Errorf("%s steady state = %.1f C, want %.1f (Fig. 2a)", c.plat.Name, steady, c.wantC)
		}
	}
}

func TestNexus5SharedRail(t *testing.T) {
	p := Nexus5SharedRail()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Power.IdleLeakFraction >= 1 || p.Power.IdleLeakFraction <= 0 {
		t.Errorf("shared rail idle fraction = %v, want in (0,1)", p.Power.IdleLeakFraction)
	}
	if Nexus5().Power.IdleLeakFraction != 0 {
		t.Error("counterfactual leaked into the calibrated profile")
	}
}

func TestWithoutThrottle(t *testing.T) {
	p := Nexus5().WithoutThrottle()
	if p.Thermal.TripC != 0 {
		t.Error("WithoutThrottle left the trip point set")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("throttle-free profile invalid: %v", err)
	}
	if Nexus5().Thermal.TripC == 0 {
		t.Error("WithoutThrottle mutated the base profile")
	}
}
