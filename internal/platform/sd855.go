package platform

import (
	"time"

	"mobicore/internal/power"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
)

// SD855 returns a Snapdragon 855-class three-cluster prime-core profile:
// 4× Kryo 485 Silver (A55-class, 300 MHz – 1.786 GHz), 3× Kryo 485 Gold
// (A76-class, 710 MHz – 2.419 GHz), and a single Kryo 485 Prime core
// (825 MHz – 2.842 GHz) — each its own frequency domain with a private OPP
// ladder, power calibration, and thermal zone. It is the N-domain proof for
// the cluster plumbing: every subsystem (energy model, thermal network,
// per-domain governors, EAS placement, the clustered oracle) must work for
// three domains, not just big.LITTLE's two.
//
// Calibration follows the Nexus 5 methodology (§3.1/§4.1), leakage curves
// fitted through two (voltage, watts) anchors per cluster:
//
//   - silver cluster, 4 cores flat out ≈ 0.8 W — the 7 nm efficiency
//     island, but its top bins ride the rail to 1.02 V, so a cycle at the
//     top of the silver ladder costs MORE energy than the same cycle on a
//     gold core at its low bins (~1.10e-10 J vs ~1.00e-10 J). That
//     convexity crossover (arXiv:1401.4655) is what the EAS placer
//     exploits and LITTLE-first greedy placement cannot see.
//   - gold cluster, 3 cores flat out ≈ 1.1 W, per-core leakage roughly
//     65/15 mW at f_max/f_min rails,
//   - prime core ≈ 0.8 W alone at 2.84 GHz with the steepest leakage on
//     the die (105/18 mW) — a sprint core that pays dearly for residency.
func SD855() Platform {
	silverLeakCoeff, silverLeakExp, err := power.FitLeak(1.02, 0.020, 0.60, 0.004)
	if err != nil {
		panic(err) // anchors are compile-time constants; cannot fail
	}
	goldLeakCoeff, goldLeakExp, err := power.FitLeak(1.00, 0.065, 0.65, 0.015)
	if err != nil {
		panic(err)
	}
	primeLeakCoeff, primeLeakExp, err := power.FitLeak(1.12, 0.105, 0.68, 0.018)
	if err != nil {
		panic(err)
	}
	silver := ClusterSpec{
		Name:     "silver",
		NumCores: 4,
		Table:    soc.SM8150SilverTable(),
		Power: power.Params{
			// ~176 mW dynamic per A55-class core flat out.
			CeffFarads:      0.95e-10,
			LeakCoeffWatts:  silverLeakCoeff,
			LeakExponent:    silverLeakExp,
			OfflineWatts:    0.001,
			CacheBaseWatts:  0.020,
			CacheSlopeWatts: 0.020,
			BaseWatts:       0.120, // informational; the floor is paid once at platform level
		},
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// 0.8 W full blast → ~6 °C own heating; the silver zone's
			// steady state never approaches its trip even with full
			// coupling from the performance clusters.
			ResistanceKPerW: 7.0,
			TimeConstant:    12 * time.Second,
			TripC:           70,
			ReleaseC:        66,
			StepPeriod:      time.Second,
		},
	}
	gold := ClusterSpec{
		Name:     "gold",
		NumCores: 3,
		Table:    soc.SM8150GoldTable(),
		Power: power.Params{
			// ~315 mW dynamic per A76-class core at the 2.419 GHz / 1.0 V
			// bin; the 7 nm node keeps C_eff well under the 20 nm A57's.
			CeffFarads:      1.30e-10,
			LeakCoeffWatts:  goldLeakCoeff,
			LeakExponent:    goldLeakExp,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.040,
			CacheSlopeWatts: 0.040,
			BaseWatts:       0.120,
		},
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// ~1.1 W full blast → ~12 °C own heating: the gold zone only
			// trips when the whole die sustains load.
			ResistanceKPerW: 10.0,
			TimeConstant:    9 * time.Second,
			TripC:           46,
			ReleaseC:        43,
			StepPeriod:      time.Second,
		},
	}
	prime := ClusterSpec{
		Name:     "prime",
		NumCores: 1,
		Table:    soc.SM8150PrimeTable(),
		Power: power.Params{
			// ~680 mW dynamic at the 2.842 GHz / 1.12 V sprint bin.
			CeffFarads:      1.90e-10,
			LeakCoeffWatts:  primeLeakCoeff,
			LeakExponent:    primeLeakExp,
			OfflineWatts:    0.002,
			CacheBaseWatts:  0.045,
			CacheSlopeWatts: 0.045,
			BaseWatts:       0.120,
		},
		Thermal: thermal.Params{
			AmbientC: labAmbientC,
			// The prime core sits on the hottest corner of the die with
			// the smallest thermal mass: ~0.8 W sustained plus coupling
			// from a busy gold cluster drives it past its 42 °C trip, so
			// sustained sprints always clip while bursts ride the mass.
			ResistanceKPerW: 20.0,
			TimeConstant:    6 * time.Second,
			TripC:           42,
			ReleaseC:        39,
			StepPeriod:      time.Second,
		},
	}
	return Platform{
		Name:     "Snapdragon 855",
		Year:     2019,
		NumCores: silver.NumCores + gold.NumCores + prime.NumCores,
		// Representative view for pre-cluster code paths: the prime
		// (performance) domain.
		Table: prime.Table,
		Power: prime.Power,
		Thermal: thermal.Params{
			AmbientC:        labAmbientC,
			ResistanceKPerW: 6.0,
			TimeConstant:    10 * time.Second,
			TripC:           44,
			ReleaseC:        41,
			StepPeriod:      time.Second,
		},
		// Lateral heat spread through the 7 nm die: each cluster's zone
		// sees a quarter of its neighbors' dissipation.
		ThermalCoupling: 0.25,
		// Efficiency cluster first so its cores get the low ids.
		Clusters: []ClusterSpec{silver, gold, prime},
	}
}
