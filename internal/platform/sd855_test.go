package platform

import (
	"testing"
	"time"
)

func TestSD855Profile(t *testing.T) {
	p := SD855()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() {
		t.Error("sd855 should be heterogeneous")
	}
	specs := p.ClusterSpecs()
	if len(specs) != 3 {
		t.Fatalf("clusters = %d, want 3", len(specs))
	}
	wantNames := []string{"silver", "gold", "prime"}
	wantCores := []int{4, 3, 1}
	for i, cs := range specs {
		if cs.Name != wantNames[i] || cs.NumCores != wantCores[i] {
			t.Errorf("cluster %d = %s/%d, want %s/%d", i, cs.Name, cs.NumCores, wantNames[i], wantCores[i])
		}
		if !cs.HasThermal() {
			t.Errorf("cluster %s missing its own thermal params", cs.Name)
		}
	}
	// Efficiency ordering: ascending ladder tops so silver gets rank 0.
	for i := 1; i < len(specs); i++ {
		if specs[i].Table.Max().Freq <= specs[i-1].Table.Max().Freq {
			t.Errorf("cluster %s top %v not above %s top %v",
				specs[i].Name, specs[i].Table.Max().Freq, specs[i-1].Name, specs[i-1].Table.Max().Freq)
		}
	}
	if p.NumCores != 8 {
		t.Errorf("NumCores = %d, want 8", p.NumCores)
	}
}

// TestSD855WithoutThrottle: clearing the trips must cover all three
// clusters and must not mutate the original profile (the cluster slice is
// copied, not shared).
func TestSD855WithoutThrottle(t *testing.T) {
	orig := SD855()
	cleared := orig.WithoutThrottle()
	if cleared.Thermal.TripC != 0 || cleared.Thermal.ReleaseC != 0 {
		t.Error("platform-level trip not cleared")
	}
	for i, cs := range cleared.Clusters {
		if cs.Thermal.TripC != 0 || cs.Thermal.ReleaseC != 0 {
			t.Errorf("cluster %d (%s) trip not cleared: trip=%v release=%v",
				i, cs.Name, cs.Thermal.TripC, cs.Thermal.ReleaseC)
		}
	}
	// The original must be untouched — every cluster keeps its trip.
	for i, cs := range orig.Clusters {
		if cs.Thermal.TripC == 0 {
			t.Errorf("WithoutThrottle mutated original cluster %d (%s)", i, cs.Name)
		}
	}
	net, err := cleared.ThermalNetwork()
	if err != nil {
		t.Fatal(err)
	}
	// A throttle-free network never caps, whatever power it integrates.
	for tick := 0; tick < 200; tick++ {
		if err := net.Step([]float64{5, 5, 5}, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if net.AnyThrottling() {
		t.Error("throttle-disabled sd855 network engaged a cap")
	}
}

// TestSD855ThermalNetwork: three zones on their own ladders, with
// shared-die coupling — heating only the gold cluster must warm the other
// two zones, and sustained prime-cluster power must trip the prime zone
// first (smallest mass, tightest trip) while silver never trips.
func TestSD855ThermalNetwork(t *testing.T) {
	p := SD855()
	net, err := p.ThermalNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.Zones() != 3 {
		t.Fatalf("zones = %d, want 3", net.Zones())
	}
	if net.Coupling() != p.ThermalCoupling {
		t.Errorf("coupling = %v, want %v", net.Coupling(), p.ThermalCoupling)
	}
	// Gold-only heating: all three zones rise above ambient, gold most.
	for tick := 0; tick < 600; tick++ {
		if err := net.Step([]float64{0, 2.0, 0}, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	ambient := p.Thermal.AmbientC
	for zi := 0; zi < 3; zi++ {
		if net.TempC(zi) <= ambient {
			t.Errorf("zone %d stayed at ambient despite gold coupling", zi)
		}
	}
	if net.TempC(1) <= net.TempC(0) || net.TempC(1) <= net.TempC(2) {
		t.Errorf("gold zone %.1f C not the hottest (silver %.1f, prime %.1f)",
			net.TempC(1), net.TempC(0), net.TempC(2))
	}
	// Sustained realistic load: prime trips, silver never does.
	net.Reset()
	for tick := 0; tick < 1200; tick++ {
		if err := net.Step([]float64{0.5, 0.9, 0.8}, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if !net.Throttling(2) {
		t.Errorf("prime zone at %.1f C never engaged its cap", net.TempC(2))
	}
	if net.Throttling(0) {
		t.Errorf("silver zone at %.1f C engaged its cap", net.TempC(0))
	}
	// Each zone caps on its own ladder: the prime cap must name a prime OPP.
	if capFreq := net.CapFreq(2); !p.Clusters[2].Table.Contains(capFreq) {
		t.Errorf("prime cap %v is not a prime operating point", capFreq)
	}
}

// TestSD855EnergyModel locks the EM construction: three domains with
// contiguous core ids in cluster order and silver-first efficiency order.
func TestSD855EnergyModel(t *testing.T) {
	m, err := SD855().EnergyModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDomains() != 3 || m.NumCores() != 8 {
		t.Fatalf("domains=%d cores=%d, want 3/8", m.NumDomains(), m.NumCores())
	}
	wantDomain := []int{0, 0, 0, 0, 1, 1, 1, 2}
	for id, want := range wantDomain {
		if got := m.DomainOf(id); got != want {
			t.Errorf("core %d in domain %d, want %d", id, got, want)
		}
	}
	order := m.EfficiencyOrder()
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("efficiency order = %v, want [0 1 2]", order)
	}
}
