package policy

import (
	"testing"
	"time"

	"mobicore/internal/cpufreq"
	"mobicore/internal/hotplug"
	"mobicore/internal/soc"
)

func clusterViews(t *testing.T) ([]ClusterView, *soc.OPPTable, *soc.OPPTable) {
	t.Helper()
	little, err := soc.UniformTable(4, 200*soc.MHz, 1000*soc.MHz, 0.80, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	big, err := soc.UniformTable(5, 300*soc.MHz, 2000*soc.MHz, 0.85, 1.20)
	if err != nil {
		t.Fatal(err)
	}
	views := []ClusterView{
		{Name: "LITTLE", Table: little, CoreIDs: []int{0, 1}},
		{Name: "big", Table: big, CoreIDs: []int{2, 3}},
	}
	return views, little, big
}

func TestValidateClustered(t *testing.T) {
	views, little, big := clusterViews(t)
	ok := Decision{
		TargetFreq: []soc.Hz{little.Min().Freq, little.Max().Freq, big.Min().Freq, big.Max().Freq},
		OnlineVec:  []int{2, 0},
		Quota:      1,
	}
	if err := ok.ValidateClustered(views, 4); err != nil {
		t.Fatalf("valid clustered decision rejected: %v", err)
	}

	bad := ok
	bad.TargetFreq = []soc.Hz{big.Max().Freq, little.Max().Freq, big.Min().Freq, big.Max().Freq}
	if err := bad.ValidateClustered(views, 4); err == nil {
		t.Error("big-only frequency on a LITTLE core accepted")
	}

	bad = ok
	bad.OnlineVec = []int{0, 0}
	if err := bad.ValidateClustered(views, 4); err == nil {
		t.Error("all-parked online vector accepted")
	}

	bad = ok
	bad.OnlineVec = []int{3, 0}
	if err := bad.ValidateClustered(views, 4); err == nil {
		t.Error("online count beyond cluster size accepted")
	}

	bad = ok
	bad.OnlineVec = []int{2}
	if err := bad.ValidateClustered(views, 4); err == nil {
		t.Error("short online vector accepted")
	}

	// Flat decisions still validate through the clustered path.
	flat := Decision{
		TargetFreq:  []soc.Hz{little.Min().Freq, little.Min().Freq, big.Min().Freq, big.Min().Freq},
		OnlineCores: 4,
		Quota:       1,
	}
	if err := flat.ValidateClustered(views, 4); err != nil {
		t.Errorf("flat decision rejected: %v", err)
	}
}

func TestComposeClusteredPerDomainGovernors(t *testing.T) {
	views, little, big := clusterViews(t)
	plug, err := hotplug.NewFixed(4)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ComposeClustered("performance",
		func(tab *soc.OPPTable) (cpufreq.Governor, error) { return cpufreq.New("performance", tab) },
		plug, []*soc.OPPTable{little, big})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{
		Now:      time.Second,
		Period:   50 * time.Millisecond,
		Util:     []float64{0.5, 0.5, 0.5, 0.5},
		Online:   []bool{true, true, true, true},
		CurFreq:  []soc.Hz{little.Min().Freq, little.Min().Freq, big.Min().Freq, big.Min().Freq},
		Quota:    1,
		Table:    big,
		Clusters: views,
	}
	dec, err := mgr.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.ValidateClustered(views, 4); err != nil {
		t.Fatalf("clustered composite produced invalid decision: %v", err)
	}
	// The performance governor pins each domain to its own maximum — the
	// proof that each cluster got its own governor instance and table.
	if dec.TargetFreq[0] != little.Max().Freq || dec.TargetFreq[1] != little.Max().Freq {
		t.Errorf("LITTLE targets = %v, want cluster max %v", dec.TargetFreq[:2], little.Max().Freq)
	}
	if dec.TargetFreq[2] != big.Max().Freq || dec.TargetFreq[3] != big.Max().Freq {
		t.Errorf("big targets = %v, want cluster max %v", dec.TargetFreq[2:], big.Max().Freq)
	}
}
