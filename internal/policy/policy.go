// Package policy defines the unified CPU-management interface the simulator
// drives. The thesis' central observation is that DVFS (governors) and DCS
// (hotplug) "are neither unified nor coordinated in the real implementation
// as they both have two different interfaces" (§1.1). This package is that
// pair of interfaces joined into one: a Manager decides frequency, online
// cores, and CPU bandwidth quota in a single step. Stock Android behaviour
// is recovered by composing a cpufreq.Governor with a hotplug.Policy
// (Compose); MobiCore implements Manager natively in internal/core.
package policy

import (
	"errors"
	"fmt"
	"time"

	"mobicore/internal/cpufreq"
	"mobicore/internal/hotplug"
	"mobicore/internal/soc"
)

// Input is the unified observation a Manager receives every sampling
// period. Slices are indexed by core id and must not be mutated.
type Input struct {
	// Now is the simulation time; Period the time since the last sample.
	Now    time.Duration
	Period time.Duration
	// Util is per-core busy fraction over the period in [0,1]; offline
	// cores carry 0.
	Util []float64
	// Online flags each core's hotplug state.
	Online []bool
	// CurFreq is each core's programmed frequency.
	CurFreq []soc.Hz
	// Quota is the currently programmed global CPU bandwidth in (0,1].
	Quota float64
	// Table is the platform OPP table.
	Table *soc.OPPTable
}

// Validate rejects malformed inputs.
func (in Input) Validate() error {
	if in.Table == nil || in.Table.Len() == 0 {
		return errors.New("policy: input missing OPP table")
	}
	n := len(in.Util)
	if n == 0 || len(in.Online) != n || len(in.CurFreq) != n {
		return fmt.Errorf("policy: inconsistent input lengths util=%d online=%d freq=%d",
			len(in.Util), len(in.Online), len(in.CurFreq))
	}
	if in.Quota <= 0 || in.Quota > 1 {
		return fmt.Errorf("policy: quota %v outside (0,1]", in.Quota)
	}
	for i, u := range in.Util {
		if u < 0 || u > 1 {
			return fmt.Errorf("policy: core %d utilization %v outside [0,1]", i, u)
		}
	}
	return nil
}

// OverallUtil averages utilization over online cores (§2.2's definition).
func (in Input) OverallUtil() float64 {
	sum, n := 0.0, 0
	for i, u := range in.Util {
		if in.Online[i] {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Decision is a Manager's complete resource allocation for the next period.
type Decision struct {
	// TargetFreq is the desired frequency per core id; entries for cores
	// that end up offline are ignored. Frequencies must be operating
	// points of the platform table.
	TargetFreq []soc.Hz
	// OnlineCores is the desired number of online cores in [1, numCores].
	OnlineCores int
	// Quota is the CPU bandwidth for the next period in (0,1].
	Quota float64
}

// Validate checks a decision against the table and core count.
func (d Decision) Validate(table *soc.OPPTable, numCores int) error {
	if len(d.TargetFreq) != numCores {
		return fmt.Errorf("policy: decision has %d frequencies for %d cores", len(d.TargetFreq), numCores)
	}
	for i, f := range d.TargetFreq {
		if !table.Contains(f) {
			return fmt.Errorf("policy: core %d target %v is not an operating point", i, f)
		}
	}
	if d.OnlineCores < 1 || d.OnlineCores > numCores {
		return fmt.Errorf("policy: online core target %d outside [1,%d]", d.OnlineCores, numCores)
	}
	if d.Quota <= 0 || d.Quota > 1 {
		return fmt.Errorf("policy: quota %v outside (0,1]", d.Quota)
	}
	return nil
}

// Manager is a complete CPU management policy: one decision covering DVFS,
// DCS, and bandwidth. Implementations must be deterministic.
type Manager interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide maps one observation to one allocation.
	Decide(in Input) (Decision, error)
	// Reset clears internal state between runs.
	Reset()
}

// Composite adapts a (governor, hotplug) pair into a Manager — the stock
// Android arrangement where the two mechanisms run independently. The
// governor is consulted after the hotplug policy, but neither sees the
// other's decision, reproducing the lack of coordination the thesis
// criticizes. Quota is always 1: stock Android leaves bandwidth alone.
type Composite struct {
	name     string
	governor cpufreq.Governor
	plug     hotplug.Policy
}

var _ Manager = (*Composite)(nil)

// Compose builds a Composite manager.
func Compose(governor cpufreq.Governor, plug hotplug.Policy) (*Composite, error) {
	if governor == nil || plug == nil {
		return nil, errors.New("policy: Compose requires a governor and a hotplug policy")
	}
	return &Composite{
		name:     governor.Name() + "+" + plug.Name(),
		governor: governor,
		plug:     plug,
	}, nil
}

// Name implements Manager.
func (c *Composite) Name() string { return c.name }

// Governor exposes the wrapped governor (used by experiments that need to
// program a userspace speed).
func (c *Composite) Governor() cpufreq.Governor { return c.governor }

// Decide implements Manager: hotplug and governor each act on the same
// observation without coordination.
func (c *Composite) Decide(in Input) (Decision, error) {
	if err := in.Validate(); err != nil {
		return Decision{}, err
	}
	cores, err := c.plug.TargetCores(hotplug.Input{Now: in.Now, Util: in.Util, Online: in.Online})
	if err != nil {
		return Decision{}, fmt.Errorf("policy: hotplug %s: %w", c.plug.Name(), err)
	}
	freqs, err := c.governor.Target(cpufreq.Input{
		Now:     in.Now,
		Period:  in.Period,
		Util:    in.Util,
		Online:  in.Online,
		CurFreq: in.CurFreq,
		Table:   in.Table,
	})
	if err != nil {
		return Decision{}, fmt.Errorf("policy: governor %s: %w", c.governor.Name(), err)
	}
	return Decision{TargetFreq: freqs, OnlineCores: cores, Quota: 1}, nil
}

// Reset implements Manager.
func (c *Composite) Reset() {
	c.governor.Reset()
	c.plug.Reset()
}

// AndroidDefault builds the baseline the thesis evaluates against: the
// ondemand governor combined with the default load-threshold hotplug
// (mpdecision disabled so DCS can act, §3.1/§6).
func AndroidDefault(table *soc.OPPTable) (*Composite, error) {
	gov, err := cpufreq.New("ondemand", table)
	if err != nil {
		return nil, err
	}
	plug, err := hotplug.NewLoad(hotplug.DefaultLoadTunables())
	if err != nil {
		return nil, err
	}
	return Compose(gov, plug)
}

// Pinned builds a manager that fixes both the frequency and the online core
// count — the measurement configuration of Figures 3–7 (userspace governor
// plus a fixed hotplug).
func Pinned(table *soc.OPPTable, freq soc.Hz, cores int) (*Composite, error) {
	gov, err := cpufreq.NewUserspace(table)
	if err != nil {
		return nil, err
	}
	if err := gov.SetSpeed(freq); err != nil {
		return nil, err
	}
	plug, err := hotplug.NewFixed(cores)
	if err != nil {
		return nil, err
	}
	return Compose(gov, plug)
}
