// Package policy defines the unified CPU-management interface the simulator
// drives. The thesis' central observation is that DVFS (governors) and DCS
// (hotplug) "are neither unified nor coordinated in the real implementation
// as they both have two different interfaces" (§1.1). This package is that
// pair of interfaces joined into one: a Manager decides frequency, online
// cores, and CPU bandwidth quota in a single step. Stock Android behaviour
// is recovered by composing a cpufreq.Governor with a hotplug.Policy
// (Compose); MobiCore implements Manager natively in internal/core.
package policy

import (
	"errors"
	"fmt"
	"time"

	"mobicore/internal/cpufreq"
	"mobicore/internal/hotplug"
	"mobicore/internal/soc"
)

// ClusterView describes one frequency domain of the platform as a Manager
// sees it: the domain's OPP table and the core ids it owns. Homogeneous
// platforms present a single view covering every core.
type ClusterView struct {
	Name    string
	Table   *soc.OPPTable
	CoreIDs []int
}

// ThermalSignal is one frequency domain's thermal-pressure view: where its
// zone sits relative to its trip point and what cap, if any, the thermal
// driver currently enforces. Managers use it to avoid decisions the
// thermal driver would immediately claw back — e.g. waking a big cluster
// whose zone is already above trip.
type ThermalSignal struct {
	// TempC is the zone's current temperature.
	TempC float64
	// HeadroomC is the margin to the trip point in °C: positive while
	// cool, negative above trip, +Inf when the zone's throttle is
	// disabled.
	HeadroomC float64
	// Throttling reports whether the zone's frequency cap is engaged.
	Throttling bool
	// CapFreq is the highest frequency the thermal driver currently
	// allows on the domain's own ladder.
	CapFreq soc.Hz
}

// Input is the unified observation a Manager receives every sampling
// period. Slices are indexed by core id and must not be mutated. They are
// also only valid for the duration of the Decide call: the engine pools
// and refills them between samples, so a manager that needs history must
// copy values out (Slice already copies; see core/mobicore.go for the
// scalar-retention idiom).
type Input struct {
	// Now is the simulation time; Period the time since the last sample.
	Now    time.Duration
	Period time.Duration
	// Util is per-core busy fraction over the period in [0,1]; offline
	// cores carry 0.
	Util []float64
	// Online flags each core's hotplug state.
	Online []bool
	// CurFreq is each core's programmed frequency.
	CurFreq []soc.Hz
	// Quota is the currently programmed global CPU bandwidth in (0,1].
	Quota float64
	// Table is the platform OPP table. On heterogeneous platforms it is
	// the representative (performance-cluster) table; cluster-aware
	// managers must resolve tables through Clusters.
	Table *soc.OPPTable
	// Clusters lists the platform's frequency domains. Nil means one
	// domain: Table covering every core.
	Clusters []ClusterView
	// Thermal lists per-domain thermal pressure, indexed like the views
	// ClusterViews returns. Nil means no thermal telemetry is available
	// (managers must then assume unbounded headroom).
	Thermal []ThermalSignal
}

// Slice returns the observation restricted to one frequency domain: core
// indices local to the domain, the domain's table installed, no nested
// cluster views, and — when the input carries thermal telemetry — the
// domain's own ThermalSignal as the slice's single entry, so per-domain
// managers see their cluster's thermal pressure.
func (in Input) Slice(v ClusterView) Input {
	sub := Input{
		Now:     in.Now,
		Period:  in.Period,
		Util:    make([]float64, len(v.CoreIDs)),
		Online:  make([]bool, len(v.CoreIDs)),
		CurFreq: make([]soc.Hz, len(v.CoreIDs)),
		Quota:   in.Quota,
		Table:   v.Table,
	}
	for j, id := range v.CoreIDs {
		sub.Util[j] = in.Util[id]
		sub.Online[j] = in.Online[id]
		sub.CurFreq[j] = in.CurFreq[id]
	}
	if in.Thermal != nil {
		if ci := in.domainIndex(v); ci >= 0 && ci < len(in.Thermal) {
			sub.Thermal = []ThermalSignal{in.Thermal[ci]}
		}
	}
	return sub
}

// domainIndex locates v among the input's frequency domains. Core ids are
// disjoint across domains, so the first id identifies the owner uniquely.
func (in Input) domainIndex(v ClusterView) int {
	if len(v.CoreIDs) == 0 {
		return -1
	}
	for ci, w := range in.ClusterViews() {
		if len(w.CoreIDs) > 0 && w.CoreIDs[0] == v.CoreIDs[0] {
			return ci
		}
	}
	return -1
}

// ClusterViews returns the input's frequency domains, synthesizing the
// single-domain view from Table when Clusters is nil.
func (in Input) ClusterViews() []ClusterView {
	if len(in.Clusters) > 0 {
		return in.Clusters
	}
	ids := make([]int, len(in.Util))
	for i := range ids {
		ids[i] = i
	}
	return []ClusterView{{Name: "cpu", Table: in.Table, CoreIDs: ids}}
}

// Validate rejects malformed inputs.
func (in Input) Validate() error {
	if in.Table == nil || in.Table.Len() == 0 {
		return errors.New("policy: input missing OPP table")
	}
	n := len(in.Util)
	if n == 0 || len(in.Online) != n || len(in.CurFreq) != n {
		return fmt.Errorf("policy: inconsistent input lengths util=%d online=%d freq=%d",
			len(in.Util), len(in.Online), len(in.CurFreq))
	}
	if in.Quota <= 0 || in.Quota > 1 {
		return fmt.Errorf("policy: quota %v outside (0,1]", in.Quota)
	}
	for i, u := range in.Util {
		if u < 0 || u > 1 {
			return fmt.Errorf("policy: core %d utilization %v outside [0,1]", i, u)
		}
	}
	if in.Thermal != nil {
		if want := len(in.ClusterViews()); len(in.Thermal) != want {
			return fmt.Errorf("policy: %d thermal signals for %d domains", len(in.Thermal), want)
		}
		for ci, ts := range in.Thermal {
			// Every zone cap names an operating point, so CapFreq == 0 can
			// only mean the entry was never filled in — reject it loudly
			// rather than letting a zero-valued signal (headroom 0) read
			// as "thermally pressured" and silently park big clusters.
			if ts.CapFreq == 0 {
				return fmt.Errorf("policy: thermal signal for domain %d is unfilled (zero CapFreq)", ci)
			}
		}
	}
	return nil
}

// OverallUtil averages utilization over online cores (§2.2's definition).
func (in Input) OverallUtil() float64 {
	sum, n := 0.0, 0
	for i, u := range in.Util {
		if in.Online[i] {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Decision is a Manager's complete resource allocation for the next period.
type Decision struct {
	// TargetFreq is the desired frequency per core id; entries for cores
	// that end up offline are ignored. Each frequency must be an
	// operating point of the owning cluster's table.
	TargetFreq []soc.Hz
	// OnlineCores is the desired number of online cores in [1, numCores],
	// applied lowest-id first. Ignored when OnlineVec is set.
	OnlineCores int
	// OnlineVec is the desired online-core count per cluster, indexed
	// like Input.Clusters. A cluster entry may be 0 (the whole domain
	// parked) as long as the vector sums to at least one core. Nil means
	// use the flat OnlineCores.
	OnlineVec []int
	// Quota is the CPU bandwidth for the next period in (0,1].
	Quota float64
}

// Validate checks a decision against the table and core count — the
// homogeneous single-domain check. Cluster-aware callers use
// ValidateClustered.
func (d Decision) Validate(table *soc.OPPTable, numCores int) error {
	ids := make([]int, numCores)
	for i := range ids {
		ids[i] = i
	}
	return d.ValidateClustered([]ClusterView{{Name: "cpu", Table: table, CoreIDs: ids}}, numCores)
}

// ValidateClustered checks a decision against the platform's frequency
// domains: every per-core target must be an operating point of the owning
// cluster's table, and the online allocation (flat or per-cluster) must
// keep at least one core up.
func (d Decision) ValidateClustered(views []ClusterView, numCores int) error {
	if len(views) == 0 {
		return errors.New("policy: no cluster views to validate against")
	}
	if len(d.TargetFreq) != numCores {
		return fmt.Errorf("policy: decision has %d frequencies for %d cores", len(d.TargetFreq), numCores)
	}
	for ci, v := range views {
		if v.Table == nil || v.Table.Len() == 0 {
			return fmt.Errorf("policy: cluster %d has no OPP table", ci)
		}
		for _, id := range v.CoreIDs {
			if id < 0 || id >= numCores {
				return fmt.Errorf("policy: cluster %s core id %d outside [0,%d)", v.Name, id, numCores)
			}
			if !v.Table.Contains(d.TargetFreq[id]) {
				return fmt.Errorf("policy: core %d target %v is not an operating point of cluster %s",
					id, d.TargetFreq[id], v.Name)
			}
		}
	}
	if d.OnlineVec != nil {
		if len(d.OnlineVec) != len(views) {
			return fmt.Errorf("policy: online vector has %d entries for %d clusters", len(d.OnlineVec), len(views))
		}
		total := 0
		for ci, n := range d.OnlineVec {
			if n < 0 || n > len(views[ci].CoreIDs) {
				return fmt.Errorf("policy: cluster %s online target %d outside [0,%d]",
					views[ci].Name, n, len(views[ci].CoreIDs))
			}
			total += n
		}
		if total < 1 {
			return errors.New("policy: online vector parks every core")
		}
	} else if d.OnlineCores < 1 || d.OnlineCores > numCores {
		return fmt.Errorf("policy: online core target %d outside [1,%d]", d.OnlineCores, numCores)
	}
	if d.Quota <= 0 || d.Quota > 1 {
		return fmt.Errorf("policy: quota %v outside (0,1]", d.Quota)
	}
	return nil
}

// Manager is a complete CPU management policy: one decision covering DVFS,
// DCS, and bandwidth. Implementations must be deterministic.
type Manager interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide maps one observation to one allocation.
	Decide(in Input) (Decision, error)
	// Reset clears internal state between runs.
	Reset()
}

// Composite adapts a (governor, hotplug) pair into a Manager — the stock
// Android arrangement where the two mechanisms run independently. The
// governor is consulted after the hotplug policy, but neither sees the
// other's decision, reproducing the lack of coordination the thesis
// criticizes. Quota is always 1: stock Android leaves bandwidth alone.
//
// On a multi-cluster platform (built via ComposeClustered) each cluster is
// an independent cpufreq policy domain with its own governor instance, as
// Linux runs one governor per policy; hotplug remains global.
type Composite struct {
	name       string
	domainGovs []cpufreq.Governor // one per frequency domain; len 1 when single-domain
	plug       hotplug.Policy
}

var _ Manager = (*Composite)(nil)

// Compose builds a single-domain Composite manager.
func Compose(governor cpufreq.Governor, plug hotplug.Policy) (*Composite, error) {
	if governor == nil || plug == nil {
		return nil, errors.New("policy: Compose requires a governor and a hotplug policy")
	}
	return &Composite{
		name:       governor.Name() + "+" + plug.Name(),
		domainGovs: []cpufreq.Governor{governor},
		plug:       plug,
	}, nil
}

// ComposeClustered builds a Composite manager with one governor instance
// per frequency domain, constructed by newGov against each domain's table —
// Linux's one-governor-per-cpufreq-policy arrangement on big.LITTLE.
func ComposeClustered(govName string, newGov func(*soc.OPPTable) (cpufreq.Governor, error), plug hotplug.Policy, tables []*soc.OPPTable) (*Composite, error) {
	if newGov == nil || plug == nil {
		return nil, errors.New("policy: ComposeClustered requires a governor factory and a hotplug policy")
	}
	if len(tables) == 0 {
		return nil, errors.New("policy: ComposeClustered requires at least one cluster table")
	}
	govs := make([]cpufreq.Governor, len(tables))
	for i, t := range tables {
		g, err := newGov(t)
		if err != nil {
			return nil, fmt.Errorf("policy: building %s for cluster %d: %w", govName, i, err)
		}
		govs[i] = g
	}
	return &Composite{
		name:       govName + "+" + plug.Name(),
		domainGovs: govs,
		plug:       plug,
	}, nil
}

// Name implements Manager.
func (c *Composite) Name() string { return c.name }

// Governor exposes the wrapped governor — the first domain's instance when
// clustered (used by experiments that need to program a userspace speed).
func (c *Composite) Governor() cpufreq.Governor { return c.domainGovs[0] }

// Decide implements Manager: hotplug and governor each act on the same
// observation without coordination. With per-domain governors installed,
// each cluster's governor sees only its own cores and table.
func (c *Composite) Decide(in Input) (Decision, error) {
	if err := in.Validate(); err != nil {
		return Decision{}, err
	}
	cores, err := c.plug.TargetCores(hotplug.Input{Now: in.Now, Util: in.Util, Online: in.Online})
	if err != nil {
		return Decision{}, fmt.Errorf("policy: hotplug %s: %w", c.plug.Name(), err)
	}
	if len(c.domainGovs) > 1 {
		freqs, err := c.domainTargets(in)
		if err != nil {
			return Decision{}, err
		}
		return Decision{TargetFreq: freqs, OnlineCores: cores, Quota: 1}, nil
	}
	gov := c.domainGovs[0]
	freqs, err := gov.Target(cpufreq.Input{
		Now:     in.Now,
		Period:  in.Period,
		Util:    in.Util,
		Online:  in.Online,
		CurFreq: in.CurFreq,
		Table:   in.Table,
	})
	if err != nil {
		return Decision{}, fmt.Errorf("policy: governor %s: %w", gov.Name(), err)
	}
	return Decision{TargetFreq: freqs, OnlineCores: cores, Quota: 1}, nil
}

// domainTargets runs each cluster's governor against the slice of the
// observation it owns and scatters the per-domain targets back to global
// core ids.
func (c *Composite) domainTargets(in Input) ([]soc.Hz, error) {
	views := in.ClusterViews()
	if len(views) != len(c.domainGovs) {
		return nil, fmt.Errorf("policy: %s built for %d clusters, input has %d",
			c.name, len(c.domainGovs), len(views))
	}
	out := make([]soc.Hz, len(in.Util))
	for ci, v := range views {
		s := in.Slice(v)
		freqs, err := c.domainGovs[ci].Target(cpufreq.Input{
			Now:     s.Now,
			Period:  s.Period,
			Util:    s.Util,
			Online:  s.Online,
			CurFreq: s.CurFreq,
			Table:   s.Table,
		})
		if err != nil {
			return nil, fmt.Errorf("policy: governor %s (cluster %s): %w", c.domainGovs[ci].Name(), v.Name, err)
		}
		for j, id := range v.CoreIDs {
			out[id] = freqs[j]
		}
	}
	return out, nil
}

// Reset implements Manager.
func (c *Composite) Reset() {
	for _, g := range c.domainGovs {
		g.Reset()
	}
	c.plug.Reset()
}

// AndroidDefault builds the baseline the thesis evaluates against: the
// ondemand governor combined with the default load-threshold hotplug
// (mpdecision disabled so DCS can act, §3.1/§6).
func AndroidDefault(table *soc.OPPTable) (*Composite, error) {
	gov, err := cpufreq.New("ondemand", table)
	if err != nil {
		return nil, err
	}
	plug, err := hotplug.NewLoad(hotplug.DefaultLoadTunables())
	if err != nil {
		return nil, err
	}
	return Compose(gov, plug)
}

// Pinned builds a manager that fixes both the frequency and the online core
// count — the measurement configuration of Figures 3–7 (userspace governor
// plus a fixed hotplug).
func Pinned(table *soc.OPPTable, freq soc.Hz, cores int) (*Composite, error) {
	gov, err := cpufreq.NewUserspace(table)
	if err != nil {
		return nil, err
	}
	if err := gov.SetSpeed(freq); err != nil {
		return nil, err
	}
	plug, err := hotplug.NewFixed(cores)
	if err != nil {
		return nil, err
	}
	return Compose(gov, plug)
}
