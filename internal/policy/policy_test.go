package policy

import (
	"testing"
	"time"

	"mobicore/internal/cpufreq"
	"mobicore/internal/hotplug"
	"mobicore/internal/soc"
)

func table(t *testing.T) *soc.OPPTable {
	t.Helper()
	return soc.MSM8974Table()
}

func goodInput(t *testing.T) Input {
	t.Helper()
	return Input{
		Now:     time.Second,
		Period:  50 * time.Millisecond,
		Util:    []float64{0.5, 0.5, 0.5, 0.5},
		Online:  []bool{true, true, true, true},
		CurFreq: []soc.Hz{300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz},
		Quota:   1,
		Table:   soc.MSM8974Table(),
	}
}

func TestInputValidate(t *testing.T) {
	good := goodInput(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Input)
	}{
		{"nil table", func(in *Input) { in.Table = nil }},
		{"no cores", func(in *Input) { in.Util = nil }},
		{"length mismatch", func(in *Input) { in.Online = in.Online[:2] }},
		{"quota zero", func(in *Input) { in.Quota = 0 }},
		{"quota above one", func(in *Input) { in.Quota = 1.1 }},
		{"util above one", func(in *Input) { in.Util[0] = 1.5 }},
		{"negative util", func(in *Input) { in.Util[0] = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := goodInput(t)
			tt.mutate(&in)
			if err := in.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestDecisionValidate(t *testing.T) {
	tbl := table(t)
	good := Decision{
		TargetFreq:  []soc.Hz{300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz},
		OnlineCores: 2,
		Quota:       1,
	}
	if err := good.Validate(tbl, 4); err != nil {
		t.Fatalf("good decision rejected: %v", err)
	}
	bad := good
	bad.TargetFreq = good.TargetFreq[:3]
	if err := bad.Validate(tbl, 4); err == nil {
		t.Error("wrong frequency count accepted")
	}
	bad = good
	bad.TargetFreq = []soc.Hz{301 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz, 300 * soc.MHz}
	if err := bad.Validate(tbl, 4); err == nil {
		t.Error("non-OPP frequency accepted")
	}
	bad = good
	bad.OnlineCores = 0
	if err := bad.Validate(tbl, 4); err == nil {
		t.Error("zero cores accepted")
	}
	bad = good
	bad.OnlineCores = 5
	if err := bad.Validate(tbl, 4); err == nil {
		t.Error("too many cores accepted")
	}
	bad = good
	bad.Quota = 0
	if err := bad.Validate(tbl, 4); err == nil {
		t.Error("zero quota accepted")
	}
}

func TestComposeValidation(t *testing.T) {
	gov, err := cpufreq.New("ondemand", table(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(nil, hotplug.MPDecision{}); err == nil {
		t.Error("nil governor accepted")
	}
	if _, err := Compose(gov, nil); err == nil {
		t.Error("nil hotplug accepted")
	}
	c, err := Compose(gov, hotplug.MPDecision{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Name(), "ondemand+mpdecision"; got != want {
		t.Errorf("name = %q, want %q", got, want)
	}
}

func TestCompositeQuotaAlwaysFull(t *testing.T) {
	mgr, err := AndroidDefault(table(t))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mgr.Decide(goodInput(t))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Quota != 1 {
		t.Errorf("stock Android quota = %v, want 1 (it never touches bandwidth)", dec.Quota)
	}
	if err := dec.Validate(table(t), 4); err != nil {
		t.Errorf("composite produced invalid decision: %v", err)
	}
}

func TestCompositeUncoordinated(t *testing.T) {
	// The point of the thesis: governor and hotplug act on the same
	// input without seeing each other's decision. A high-load input
	// must raise frequency AND add a core independently.
	mgr, err := AndroidDefault(table(t))
	if err != nil {
		t.Fatal(err)
	}
	in := goodInput(t)
	in.Util = []float64{0.9, 0.9, 0.9, 0}
	in.Online = []bool{true, true, true, false}
	dec, err := mgr.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineCores != 4 {
		t.Errorf("high load should online the 4th core, got %d", dec.OnlineCores)
	}
	if dec.TargetFreq[0] != table(t).Max().Freq {
		t.Errorf("high load should burst to f_max, got %v", dec.TargetFreq[0])
	}
}

func TestPinned(t *testing.T) {
	tbl := table(t)
	mgr, err := Pinned(tbl, 960_000*soc.KHz, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mgr.Decide(goodInput(t))
	if err != nil {
		t.Fatal(err)
	}
	if dec.OnlineCores != 2 {
		t.Errorf("pinned cores = %d, want 2", dec.OnlineCores)
	}
	for i, f := range dec.TargetFreq {
		if f != 960_000*soc.KHz {
			t.Errorf("pinned freq core %d = %v, want 960MHz", i, f)
		}
	}
	if _, err := Pinned(tbl, 961*soc.MHz, 2); err == nil {
		t.Error("non-OPP pin accepted")
	}
	if _, err := Pinned(tbl, 960_000*soc.KHz, 0); err == nil {
		t.Error("zero-core pin accepted")
	}
}

func TestCompositeReset(t *testing.T) {
	mgr, err := AndroidDefault(table(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Decide(goodInput(t)); err != nil {
		t.Fatal(err)
	}
	mgr.Reset() // must not panic and must leave the manager usable
	if _, err := mgr.Decide(goodInput(t)); err != nil {
		t.Fatalf("post-reset decide failed: %v", err)
	}
}

// TestInputValidateThermal: a thermal-signal slice must match the domain
// count; nil means no telemetry and is always acceptable.
func TestInputValidateThermal(t *testing.T) {
	in := goodInput(t)
	if err := in.Validate(); err != nil {
		t.Fatalf("input without thermal telemetry rejected: %v", err)
	}
	fill := func(n int) []ThermalSignal {
		out := make([]ThermalSignal, n)
		for i := range out {
			out[i] = ThermalSignal{TempC: 30, HeadroomC: 10, CapFreq: in.Table.Max().Freq}
		}
		return out
	}
	in.Thermal = fill(len(in.ClusterViews()))
	if err := in.Validate(); err != nil {
		t.Fatalf("matching thermal telemetry rejected: %v", err)
	}
	in.Thermal = fill(len(in.ClusterViews()) + 1)
	if err := in.Validate(); err == nil {
		t.Error("mismatched thermal telemetry accepted")
	}
}

// TestInputValidateRejectsUnfilledThermal: a zero-valued signal (which
// would read as "zero headroom" and park big clusters) must be rejected.
func TestInputValidateRejectsUnfilledThermal(t *testing.T) {
	in := goodInput(t)
	in.Thermal = make([]ThermalSignal, len(in.ClusterViews())) // never filled
	if err := in.Validate(); err == nil {
		t.Error("unfilled thermal signals accepted")
	}
}

// TestSlicePropagatesThermal: a sliced domain input carries its own
// cluster's thermal signal, so per-domain managers see thermal pressure.
func TestSlicePropagatesThermal(t *testing.T) {
	tbl := table(t)
	views := []ClusterView{
		{Name: "LITTLE", Table: tbl, CoreIDs: []int{0, 1}},
		{Name: "big", Table: tbl, CoreIDs: []int{2, 3}},
	}
	in := Input{
		Now:      time.Second,
		Period:   50 * time.Millisecond,
		Util:     make([]float64, 4),
		Online:   []bool{true, true, true, true},
		CurFreq:  make([]soc.Hz, 4),
		Quota:    1,
		Table:    tbl,
		Clusters: views,
		Thermal: []ThermalSignal{
			{TempC: 30, HeadroomC: 40, CapFreq: tbl.Max().Freq},
			{TempC: 46, HeadroomC: -1, Throttling: true, CapFreq: tbl.Min().Freq},
		},
	}
	sub := in.Slice(views[1])
	if len(sub.Thermal) != 1 || !sub.Thermal[0].Throttling {
		t.Fatalf("sliced big domain thermal = %+v, want the big cluster's signal", sub.Thermal)
	}
	sub = in.Slice(views[0])
	if len(sub.Thermal) != 1 || sub.Thermal[0].Throttling {
		t.Fatalf("sliced LITTLE domain thermal = %+v, want the LITTLE cluster's signal", sub.Thermal)
	}
	// No telemetry on the parent: none on the slice either.
	in.Thermal = nil
	if sub := in.Slice(views[0]); sub.Thermal != nil {
		t.Error("slice invented thermal telemetry")
	}
}
