package power

import (
	"errors"
	"time"
)

// Meter integrates power over time into energy (Eq. 5–7: E = ∫P dt) and
// tracks the running average — the quantity the thesis reports for every
// experiment ("total average power consumption"). Meter is not safe for
// concurrent use; the simulation loop owns it.
type Meter struct {
	joules  float64
	elapsed time.Duration
	peak    float64
}

// ErrNegativePower guards the integrator against model bugs: a negative
// sample would silently corrupt every downstream average.
var ErrNegativePower = errors.New("power: negative power sample")

// Accumulate adds a sample of watts held for dt.
func (m *Meter) Accumulate(watts float64, dt time.Duration) error {
	if watts < 0 {
		return ErrNegativePower
	}
	if dt < 0 {
		return errors.New("power: negative duration")
	}
	m.joules += watts * dt.Seconds()
	m.elapsed += dt
	if watts > m.peak {
		m.peak = watts
	}
	return nil
}

// Joules returns total accumulated energy.
func (m *Meter) Joules() float64 { return m.joules }

// Elapsed returns total integrated time.
func (m *Meter) Elapsed() time.Duration { return m.elapsed }

// AverageWatts returns energy divided by elapsed time, or 0 before any
// sample has been accumulated.
func (m *Meter) AverageWatts() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return m.joules / m.elapsed.Seconds()
}

// PeakWatts returns the highest sample seen.
func (m *Meter) PeakWatts() float64 { return m.peak }

// Reset clears the meter.
func (m *Meter) Reset() {
	m.joules = 0
	m.elapsed = 0
	m.peak = 0
}
