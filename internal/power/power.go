// Package power implements the CPU energy model of §4.1 of the thesis:
//
//	P_total = P_base + P_cache(f) + Σ_cores [ P_dyn + P_static ]
//	P_dyn    = C_eff · f · V²   (scaled by the fraction of time busy)
//	P_static = leak(V)          (paid whenever a core's rail is up)
//
// The leakage curve is anchored to the paper's own measurement on the
// Nexus 5: 120 mW per idle core at f_max (1.2 V) and 47 mW at f_min (0.9 V)
// (§4.1.2). A pure P = I·V line cannot pass through both points, so we use
// leak(V) = k·V^γ with γ fitted to the two anchors, which is also the more
// physical shape (sub-threshold leakage grows super-linearly with V).
package power

import (
	"errors"
	"fmt"
	"math"

	"mobicore/internal/soc"
)

// Params describes one platform's power characteristics. The zero value is
// not useful; construct via a platform profile or fill every field.
type Params struct {
	// CeffFarads is the effective switched capacitance C_eff in P_dyn =
	// C_eff · f · V².
	CeffFarads float64

	// LeakCoeffWatts and LeakExponent define per-core static power
	// leak(V) = LeakCoeffWatts · V^LeakExponent for an online core.
	LeakCoeffWatts float64
	LeakExponent   float64

	// OfflineWatts is the residual draw of a power-gated (offline) core —
	// "almost nothing" per §2.1, but not exactly zero.
	OfflineWatts float64

	// IdleLeakFraction scales leakage for an online-but-idle core
	// relative to an active one. On the Nexus 5's per-core rails the
	// paper measures idle leakage at essentially the full static power
	// (the 120/47 mW anchors are idle cores — §4.1.2: "idling cores in
	// that configuration brings more power leakage as each core is a
	// source of leakage"), so the calibrated profile uses 1.0. A
	// shared-rail platform with retention states would sit well below 1;
	// §4.1.2 argues race-to-idle only pays off there. Zero means 1.0.
	IdleLeakFraction float64

	// CacheBaseWatts and CacheSlopeWatts model P_cache, the shared uncore
	// (L2, bus, memory interface). It burns CacheBaseWatts whenever any
	// core is busy plus CacheSlopeWatts scaled by the highest online
	// frequency relative to f_max, since the uncore clock follows the CPU.
	CacheBaseWatts  float64
	CacheSlopeWatts float64

	// BaseWatts is the platform floor: rails, PMIC, idle peripherals with
	// the screen off and airplane mode on (§3.1's measurement setup).
	BaseWatts float64
}

// Validate reports the first nonsensical field.
func (p Params) Validate() error {
	switch {
	case p.CeffFarads <= 0:
		return errors.New("power: CeffFarads must be positive")
	case p.LeakCoeffWatts <= 0:
		return errors.New("power: LeakCoeffWatts must be positive")
	case p.LeakExponent < 1:
		return errors.New("power: LeakExponent must be >= 1")
	case p.OfflineWatts < 0:
		return errors.New("power: OfflineWatts must be non-negative")
	case p.IdleLeakFraction < 0 || p.IdleLeakFraction > 1:
		return errors.New("power: IdleLeakFraction must be in [0,1] (0 means default 1.0)")
	case p.CacheBaseWatts < 0 || p.CacheSlopeWatts < 0:
		return errors.New("power: cache power terms must be non-negative")
	case p.BaseWatts < 0:
		return errors.New("power: BaseWatts must be non-negative")
	}
	return nil
}

// Model evaluates the energy model for one platform. Model is immutable and
// safe for concurrent use.
type Model struct {
	params Params
	table  *soc.OPPTable

	// leakAt precomputes LeakWatts at every table operating point, so the
	// per-tick CoreWatts path answers table OPPs without calling math.Pow.
	// leakAt[i] is computed by the exact expression LeakWatts evaluates, so
	// the cached value is bit-identical to the live one.
	leakAt []float64
	// fmaxHz caches the table's top frequency for the cache-power ratio.
	fmaxHz float64
}

// NewModel validates params and binds them to the platform's OPP table
// (needed to resolve f_max for the cache term).
func NewModel(params Params, table *soc.OPPTable) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	m := &Model{params: params, table: table, fmaxHz: float64(table.Max().Freq)}
	m.leakAt = make([]float64, table.Len())
	for i := range m.leakAt {
		m.leakAt[i] = m.LeakWatts(table.At(i).Volt)
	}
	return m, nil
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.params }

// LeakWatts returns per-core static power at supply voltage v.
//
//mobicore:hotpath
func (m *Model) LeakWatts(v soc.Volt) float64 {
	return m.params.LeakCoeffWatts * math.Pow(float64(v), m.params.LeakExponent)
}

// DynamicWatts returns per-core dynamic power at operating point opp with
// the core busy fraction util in [0,1] (Eq. 1: P_d ∝ C·f·V²).
//
//mobicore:hotpath
func (m *Model) DynamicWatts(opp soc.OPP, util float64) float64 {
	util = clamp01(util)
	return util * m.params.CeffFarads * float64(opp.Freq) * float64(opp.Volt) * float64(opp.Volt)
}

// CoreWatts returns the total draw of one core: leakage while the rail is
// up plus utilization-scaled dynamic power, or the gated floor when
// offline. A fully idle core pays IdleLeakFraction of the leakage; any
// active fraction pays in full (the rail must hold the operating voltage
// while instructions retire).
//
//mobicore:hotpath
func (m *Model) CoreWatts(state soc.CoreState, opp soc.OPP, util float64) float64 {
	if state == soc.StateOffline {
		return m.params.OfflineWatts
	}
	leak := m.leakAtOPP(opp)
	if state == soc.StateIdle && util == 0 {
		leak *= m.idleLeakFraction()
	}
	return leak + m.DynamicWatts(opp, util)
}

// leakAtOPP resolves an operating point's static power from the
// precomputed per-OPP table when the point matches a table entry exactly,
// falling back to the live curve for off-ladder points (a caller-supplied
// OPP with a nonstandard voltage). Table hits — the entire per-tick path —
// skip math.Pow.
//
//mobicore:hotpath
func (m *Model) leakAtOPP(opp soc.OPP) float64 {
	if i := m.table.IndexOf(opp.Freq); i >= 0 && m.table.At(i).Volt == opp.Volt {
		return m.leakAt[i]
	}
	return m.LeakWatts(opp.Volt)
}

func (m *Model) idleLeakFraction() float64 {
	if m.params.IdleLeakFraction == 0 {
		return 1.0
	}
	return m.params.IdleLeakFraction
}

// CacheWatts returns the shared uncore power. busyFrac is the fraction of
// the window during which at least one core was executing; topFreq is the
// highest frequency among online cores.
//
//mobicore:hotpath
func (m *Model) CacheWatts(busyFrac float64, topFreq soc.Hz) float64 {
	busyFrac = clamp01(busyFrac)
	fmax := m.fmaxHz
	ratio := 0.0
	if fmax > 0 {
		ratio = float64(topFreq) / fmax
	}
	return busyFrac * (m.params.CacheBaseWatts + m.params.CacheSlopeWatts*ratio)
}

// CoreLoad is one core's contribution to a system power evaluation.
type CoreLoad struct {
	State soc.CoreState
	OPP   soc.OPP
	Util  float64 // busy fraction in [0,1]
}

// SystemWatts evaluates Eq. 3/4: platform base + cache + per-core terms.
func (m *Model) SystemWatts(cores []CoreLoad) float64 {
	return m.params.BaseWatts + m.ClusterWatts(cores)
}

// ClusterWatts evaluates the per-cluster share of Eq. 3/4 — cache plus
// per-core terms, without the platform base. SystemModel sums this across
// clusters so the floor is paid once, not once per cluster.
//
//mobicore:hotpath
func (m *Model) ClusterWatts(cores []CoreLoad) float64 {
	total := 0.0
	anyBusy := 0.0
	var topFreq soc.Hz
	for _, c := range cores {
		total += m.CoreWatts(c.State, c.OPP, c.Util)
		if c.State != soc.StateOffline {
			if c.Util > anyBusy {
				anyBusy = c.Util
			}
			if c.OPP.Freq > topFreq {
				topFreq = c.OPP.Freq
			}
		}
	}
	total += m.CacheWatts(anyBusy, topFreq)
	return total
}

// PredictWatts answers the operating-point question of §4.2: the system
// power if n cores run at operating point opp serving a total demand of
// demandCyclesPerSec. Demand is spread evenly (the balanced-scheduler
// assumption of §3.2); per-core utilization clamps at 1.
func (m *Model) PredictWatts(n int, opp soc.OPP, demandCyclesPerSec float64, totalCores int) (float64, error) {
	return m.PredictWattsInto(nil, n, opp, demandCyclesPerSec, totalCores)
}

// PredictWattsInto is PredictWatts evaluating through the caller's CoreLoad
// buffer when it has the capacity, so a governor scanning many candidate
// operating points allocates nothing per evaluation. The buffer is scratch:
// every entry is rewritten and nothing is retained past the call. A nil or
// undersized buffer falls back to a fresh allocation, reproducing
// PredictWatts.
func (m *Model) PredictWattsInto(cores []CoreLoad, n int, opp soc.OPP, demandCyclesPerSec float64, totalCores int) (float64, error) {
	if n < 1 || n > totalCores {
		return 0, fmt.Errorf("power: core count %d outside [1,%d]", n, totalCores)
	}
	if demandCyclesPerSec < 0 {
		return 0, errors.New("power: negative demand")
	}
	util := demandCyclesPerSec / (float64(n) * float64(opp.Freq))
	util = clamp01(util)
	if cap(cores) < totalCores {
		cores = make([]CoreLoad, totalCores)
	}
	cores = cores[:totalCores]
	for i := 0; i < n; i++ {
		cores[i] = CoreLoad{State: soc.StateActive, OPP: opp, Util: util}
	}
	for i := n; i < totalCores; i++ {
		cores[i] = CoreLoad{State: soc.StateOffline}
	}
	return m.SystemWatts(cores), nil
}

// CapacityMet reports whether n cores at opp can serve the demand.
func CapacityMet(n int, opp soc.OPP, demandCyclesPerSec float64) bool {
	return float64(n)*float64(opp.Freq) >= demandCyclesPerSec
}

// FitLeak solves leak(V) = k·V^γ through two anchor measurements, as we do
// for the paper's (1.2 V, 120 mW) and (0.9 V, 47 mW) points.
func FitLeak(v1 soc.Volt, w1 float64, v2 soc.Volt, w2 float64) (coeff, exponent float64, err error) {
	if v1 <= 0 || v2 <= 0 || w1 <= 0 || w2 <= 0 {
		return 0, 0, errors.New("power: leak anchors must be positive")
	}
	if v1 == v2 {
		return 0, 0, errors.New("power: leak anchors need distinct voltages")
	}
	exponent = math.Log(w1/w2) / math.Log(float64(v1)/float64(v2))
	coeff = w1 / math.Pow(float64(v1), exponent)
	return coeff, exponent, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
