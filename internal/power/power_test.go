package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobicore/internal/soc"
)

// nexus5Params mirrors the calibrated Nexus 5 profile without importing the
// platform package (which would create an import cycle in tests).
func nexus5Params(t *testing.T) Params {
	t.Helper()
	coeff, exp, err := FitLeak(1.2, 0.120, 0.9, 0.047)
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		CeffFarads:      1.35e-10,
		LeakCoeffWatts:  coeff,
		LeakExponent:    exp,
		OfflineWatts:    0.002,
		CacheBaseWatts:  0.040,
		CacheSlopeWatts: 0.040,
		BaseWatts:       0.080,
	}
}

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(nexus5Params(t), soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	base := nexus5Params(t)
	mutations := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero ceff", func(p *Params) { p.CeffFarads = 0 }},
		{"negative leak", func(p *Params) { p.LeakCoeffWatts = -1 }},
		{"sub-linear leak exponent", func(p *Params) { p.LeakExponent = 0.5 }},
		{"negative offline", func(p *Params) { p.OfflineWatts = -0.1 }},
		{"negative cache", func(p *Params) { p.CacheBaseWatts = -0.1 }},
		{"negative base", func(p *Params) { p.BaseWatts = -0.1 }},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("calibrated params should validate: %v", err)
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

// TestLeakAnchors is the §4.1.2 measurement: 120 mW per core at f_max,
// 47 mW at f_min.
func TestLeakAnchors(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	if got := m.LeakWatts(table.Max().Volt); math.Abs(got-0.120) > 1e-9 {
		t.Errorf("leak at f_max voltage = %.4f W, want 0.120 (paper anchor)", got)
	}
	if got := m.LeakWatts(table.Min().Volt); math.Abs(got-0.047) > 1e-9 {
		t.Errorf("leak at f_min voltage = %.4f W, want 0.047 (paper anchor)", got)
	}
}

// TestFullBlastAnchor checks the §1.2 absolute: 4 cores at 100% and f_max
// draw ≈ 2.40 W on the Nexus 5 profile.
func TestFullBlastAnchor(t *testing.T) {
	m := newModel(t)
	opp := soc.MSM8974Table().Max()
	loads := make([]CoreLoad, 4)
	for i := range loads {
		loads[i] = CoreLoad{State: soc.StateActive, OPP: opp, Util: 1}
	}
	got := m.SystemWatts(loads)
	if math.Abs(got-2.404) > 0.05 {
		t.Errorf("full blast = %.3f W, want ≈2.40 W (paper's 2403.82 mW)", got)
	}
}

func TestFitLeak(t *testing.T) {
	coeff, exp, err := FitLeak(1.2, 0.120, 0.9, 0.047)
	if err != nil {
		t.Fatal(err)
	}
	if exp < 3.0 || exp > 3.5 {
		t.Errorf("fitted exponent = %.3f, expected ≈3.26", exp)
	}
	if got := coeff * math.Pow(1.2, exp); math.Abs(got-0.120) > 1e-12 {
		t.Errorf("anchor 1 reproduces %.6f, want 0.120", got)
	}
	bad := []struct{ v1, w1, v2, w2 float64 }{
		{0, 0.1, 0.9, 0.05},
		{1.2, 0, 0.9, 0.05},
		{1.2, 0.1, 1.2, 0.05},
		{1.2, 0.1, -0.9, 0.05},
	}
	for _, b := range bad {
		if _, _, err := FitLeak(soc.Volt(b.v1), b.w1, soc.Volt(b.v2), b.w2); err == nil {
			t.Errorf("FitLeak(%v) should fail", b)
		}
	}
}

// TestPowerMonotoneInFrequency: at fixed utilization, a higher OPP never
// draws less power (the Fig. 3 ordering).
func TestPowerMonotoneInFrequency(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	for _, util := range []float64{0, 0.1, 0.5, 1.0} {
		prev := -1.0
		for _, opp := range table.Points() {
			got := m.CoreWatts(soc.StateActive, opp, util)
			if got < prev {
				t.Errorf("util %.1f: power decreased from %.4f to %.4f at %v", util, prev, got, opp.Freq)
			}
			prev = got
		}
	}
}

// TestPowerMonotoneInUtilization: at a fixed OPP, more utilization never
// draws less power.
func TestPowerMonotoneInUtilization(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	prop := func(rawU1, rawU2 uint16, oppIdx uint8) bool {
		u1 := float64(rawU1) / math.MaxUint16
		u2 := float64(rawU2) / math.MaxUint16
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		opp := table.At(int(oppIdx) % table.Len())
		return m.CoreWatts(soc.StateActive, opp, u1) <= m.CoreWatts(soc.StateActive, opp, u2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// TestOfflineCheaperThanIdle encodes the §4.1.2 argument for off-lining
// over race-to-idle: an offline core must always beat an idle one.
func TestOfflineCheaperThanIdle(t *testing.T) {
	m := newModel(t)
	for _, opp := range soc.MSM8974Table().Points() {
		idle := m.CoreWatts(soc.StateIdle, opp, 0)
		off := m.CoreWatts(soc.StateOffline, opp, 0)
		if off >= idle {
			t.Errorf("at %v offline (%.4f W) not cheaper than idle (%.4f W)", opp.Freq, off, idle)
		}
	}
}

// TestIdleLeakFraction: per-core-rail platforms (fraction unset → 1.0) pay
// full leakage when idle — the paper's 120 mW measurement — while
// shared-rail platforms discount it.
func TestIdleLeakFraction(t *testing.T) {
	table := soc.MSM8974Table()
	opp := table.Max()

	perRail := newModel(t)
	if got, want := perRail.CoreWatts(soc.StateIdle, opp, 0), perRail.LeakWatts(opp.Volt); math.Abs(got-want) > 1e-12 {
		t.Errorf("per-core rail idle = %v, want full leak %v", got, want)
	}

	params := nexus5Params(t)
	params.IdleLeakFraction = 0.3
	shared, err := NewModel(params, table)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := shared.CoreWatts(soc.StateIdle, opp, 0), 0.3*shared.LeakWatts(opp.Volt); math.Abs(got-want) > 1e-12 {
		t.Errorf("shared rail idle = %v, want %v", got, want)
	}
	// An active core pays full leakage regardless of the fraction.
	if got, want := shared.CoreWatts(soc.StateActive, opp, 0.5),
		shared.LeakWatts(opp.Volt)+shared.DynamicWatts(opp, 0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("active core = %v, want %v", got, want)
	}
	params.IdleLeakFraction = 1.5
	if err := params.Validate(); err == nil {
		t.Error("IdleLeakFraction above 1 accepted")
	}
}

func TestSystemWattsNonNegativeProperty(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	prop := func(states [4]uint8, utils [4]uint16, opps [4]uint8) bool {
		loads := make([]CoreLoad, 4)
		for i := range loads {
			st := soc.CoreState(int(states[i])%3 + 1)
			loads[i] = CoreLoad{
				State: st,
				OPP:   table.At(int(opps[i]) % table.Len()),
				Util:  float64(utils[i]) / math.MaxUint16,
			}
		}
		watts := m.SystemWatts(loads)
		return watts >= m.Params().BaseWatts && !math.IsNaN(watts) && !math.IsInf(watts, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestPredictWatts(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	opp := table.At(5) // 960 MHz
	// Demand of half one core's capacity: util 0.5 on one core.
	w1, err := m.PredictWatts(1, opp, float64(opp.Freq)/2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SystemWatts([]CoreLoad{
		{State: soc.StateActive, OPP: opp, Util: 0.5},
		{State: soc.StateOffline},
		{State: soc.StateOffline},
		{State: soc.StateOffline},
	})
	if math.Abs(w1-want) > 1e-12 {
		t.Errorf("PredictWatts = %.6f, want %.6f", w1, want)
	}
	if _, err := m.PredictWatts(0, opp, 1e9, 4); err == nil {
		t.Error("PredictWatts with 0 cores should fail")
	}
	if _, err := m.PredictWatts(5, opp, 1e9, 4); err == nil {
		t.Error("PredictWatts with too many cores should fail")
	}
	if _, err := m.PredictWatts(1, opp, -1, 4); err == nil {
		t.Error("PredictWatts with negative demand should fail")
	}
}

// TestMoreCoresLowerFreqTradeoff reproduces the §4.2 trade-off structure:
// for a mid demand, the model must prefer neither always-one-core nor
// always-max-cores; specific crossovers depend on calibration, but spreading
// a high demand over more cores at lower frequency must beat one core at max
// frequency at equal capacity.
func TestMoreCoresLowerFreqTradeoff(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	fmax := table.Max()
	// Demand = exactly one core flat out.
	demand := float64(fmax.Freq)
	oneCore, err := m.PredictWatts(1, fmax, demand, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two cores at ~0.63·fmax (1497.6 MHz ×2 ≥ demand) — lower voltage.
	half := table.At(9)
	twoCores, err := m.PredictWatts(2, half, demand, 4)
	if err != nil {
		t.Fatal(err)
	}
	if twoCores >= oneCore {
		t.Errorf("2×%v (%.3f W) should beat 1×%v (%.3f W) at this demand (voltage quadratic advantage)",
			half.Freq, twoCores, fmax.Freq, oneCore)
	}
}

func TestCapacityMet(t *testing.T) {
	opp := soc.OPP{Freq: 1 * soc.GHz, Volt: 1.0}
	if !CapacityMet(2, opp, 2e9) {
		t.Error("2×1GHz should meet 2e9 cycles/s")
	}
	if CapacityMet(1, opp, 2e9) {
		t.Error("1×1GHz should not meet 2e9 cycles/s")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if err := m.Accumulate(2.0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Accumulate(4.0, time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Joules(), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("joules = %v, want %v", got, want)
	}
	if got, want := m.AverageWatts(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("average = %v, want %v", got, want)
	}
	if got, want := m.PeakWatts(), 4.0; got != want {
		t.Errorf("peak = %v, want %v", got, want)
	}
	if err := m.Accumulate(-1, time.Second); err == nil {
		t.Error("negative power should fail")
	}
	if err := m.Accumulate(1, -time.Second); err == nil {
		t.Error("negative duration should fail")
	}
	m.Reset()
	if m.Joules() != 0 || m.AverageWatts() != 0 || m.PeakWatts() != 0 {
		t.Error("reset meter should be zero")
	}
}

// TestLeakTableMatchesLiveCurve: the per-OPP leak precompute must be
// bit-identical to the live LeakWatts curve at every ladder point — it is
// built by the exact same expression — and off-ladder operating points
// (table frequency at a nonstandard voltage) must fall back to the curve.
func TestLeakTableMatchesLiveCurve(t *testing.T) {
	m := newModel(t)
	table := soc.MSM8974Table()
	for i := 0; i < table.Len(); i++ {
		opp := table.At(i)
		got := m.leakAtOPP(opp)
		want := m.LeakWatts(opp.Volt)
		if got != want {
			t.Errorf("OPP %v: table leak %v != live %v", opp.Freq, got, want)
		}
	}
	// Off-ladder voltage at an on-ladder frequency must not hit the table.
	odd := soc.OPP{Freq: table.Max().Freq, Volt: table.Max().Volt + 0.01}
	if got, want := m.leakAtOPP(odd), m.LeakWatts(odd.Volt); got != want {
		t.Errorf("off-ladder point: %v != %v", got, want)
	}
	// CoreWatts through the table path equals the hand-assembled sum.
	for i := 0; i < table.Len(); i++ {
		opp := table.At(i)
		got := m.CoreWatts(soc.StateActive, opp, 0.5)
		want := m.LeakWatts(opp.Volt) + m.DynamicWatts(opp, 0.5)
		if got != want {
			t.Errorf("CoreWatts at %v: %v != leak+dyn %v", opp.Freq, got, want)
		}
	}
}
