package power

import (
	"errors"
	"fmt"

	"mobicore/internal/soc"
)

// SystemModel prices a whole SoC that may span several clusters with
// different silicon: each cluster has its own calibrated Model (C_eff,
// leakage curve, uncore), and the platform floor (rails, PMIC, idle
// peripherals) is paid exactly once. The homogeneous case is one cluster
// and reproduces Model.SystemWatts bit for bit. Evaluation reuses internal
// scratch buffers, so a SystemModel is not safe for concurrent use; each
// Sim owns its own instance.
type SystemModel struct {
	baseWatts   float64
	clusters    []*Model
	coreCluster []int // core id -> cluster index

	// per-call scratch for SystemWattsByCluster and SystemWatts (the
	// per-tick hot path)
	anyBusy    []float64
	topFreq    []soc.Hz
	scratchPer []float64
}

// NewSystemModel binds per-cluster models to a core->cluster mapping.
// baseWatts is the platform floor shared by all clusters; the per-cluster
// Params.BaseWatts fields are ignored here (ClusterWatts excludes them) so
// a profile can reuse a single-cluster calibration unchanged.
func NewSystemModel(baseWatts float64, clusters []*Model, coreCluster []int) (*SystemModel, error) {
	if baseWatts < 0 {
		return nil, errors.New("power: base watts must be non-negative")
	}
	if len(clusters) == 0 {
		return nil, errors.New("power: system model needs at least one cluster model")
	}
	if len(coreCluster) == 0 {
		return nil, errors.New("power: system model needs at least one core")
	}
	for id, ci := range coreCluster {
		if ci < 0 || ci >= len(clusters) {
			return nil, fmt.Errorf("power: core %d mapped to cluster %d outside [0,%d)", id, ci, len(clusters))
		}
		if clusters[ci] == nil {
			return nil, fmt.Errorf("power: nil model for cluster %d", ci)
		}
	}
	cs := make([]*Model, len(clusters))
	copy(cs, clusters)
	cc := make([]int, len(coreCluster))
	copy(cc, coreCluster)
	return &SystemModel{
		baseWatts:   baseWatts,
		clusters:    cs,
		coreCluster: cc,
		anyBusy:     make([]float64, len(cs)),
		topFreq:     make([]soc.Hz, len(cs)),
		scratchPer:  make([]float64, len(cs)),
	}, nil
}

// NumCores returns the number of cores the model covers.
func (m *SystemModel) NumCores() int { return len(m.coreCluster) }

// Cluster returns the model of cluster ci, for policies that price one
// domain at a time.
func (m *SystemModel) Cluster(ci int) (*Model, error) {
	if ci < 0 || ci >= len(m.clusters) {
		return nil, fmt.Errorf("power: cluster %d outside [0,%d)", ci, len(m.clusters))
	}
	return m.clusters[ci], nil
}

// SystemWatts evaluates total SoC power for per-core loads indexed by core
// id: platform base + Σ_clusters (cache + per-core terms).
func (m *SystemModel) SystemWatts(loads []CoreLoad) float64 {
	if len(m.clusters) == 1 {
		// Homogeneous fast path: no buffer traffic on the hot tick.
		return m.baseWatts + m.clusters[0].ClusterWatts(loads)
	}
	base, per := m.SystemWattsByCluster(loads, m.scratchPer)
	total := base
	for _, w := range per {
		total += w
	}
	return total
}

// SystemWattsByCluster evaluates the same sum as SystemWatts but keeps the
// terms separate: the platform floor and each cluster's share (per-core +
// cache terms, no floor), indexed like the cluster models. The per-cluster
// thermal network integrates these shares into its zones; summing
// base + Σ perCluster reproduces SystemWatts bit for bit. perCluster is
// reused as the output buffer when it has the right length (the per-tick
// hot path allocates nothing).
//
//mobicore:hotpath
func (m *SystemModel) SystemWattsByCluster(loads []CoreLoad, perCluster []float64) (base float64, out []float64) {
	if len(perCluster) != len(m.clusters) {
		//mobilint:ignore defensive resize for short buffers; the sim tick always passes a full-size one
		perCluster = make([]float64, len(m.clusters))
	}
	if len(m.clusters) == 1 {
		// Homogeneous fast path: no per-cluster regrouping on the hot tick.
		perCluster[0] = m.clusters[0].ClusterWatts(loads)
		return m.baseWatts, perCluster
	}
	// Single pass over cores with per-cluster accumulators; the per-core
	// and cache terms stay behind Model.CoreWatts/CacheWatts so the
	// multi-cluster path cannot drift from the homogeneous one.
	anyBusy, topFreq := m.anyBusy, m.topFreq
	for i := range perCluster {
		perCluster[i] = 0
		anyBusy[i] = 0
		topFreq[i] = 0
	}
	for id, ci := range m.coreCluster {
		if id >= len(loads) {
			break
		}
		c := loads[id]
		perCluster[ci] += m.clusters[ci].CoreWatts(c.State, c.OPP, c.Util)
		if c.State != soc.StateOffline {
			if c.Util > anyBusy[ci] {
				anyBusy[ci] = c.Util
			}
			if c.OPP.Freq > topFreq[ci] {
				topFreq[ci] = c.OPP.Freq
			}
		}
	}
	for ci, cm := range m.clusters {
		perCluster[ci] += cm.CacheWatts(anyBusy[ci], topFreq[ci])
	}
	return m.baseWatts, perCluster
}
