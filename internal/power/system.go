package power

import (
	"errors"
	"fmt"

	"mobicore/internal/soc"
)

// SystemModel prices a whole SoC that may span several clusters with
// different silicon: each cluster has its own calibrated Model (C_eff,
// leakage curve, uncore), and the platform floor (rails, PMIC, idle
// peripherals) is paid exactly once. The homogeneous case is one cluster
// and reproduces Model.SystemWatts bit for bit.
type SystemModel struct {
	baseWatts   float64
	clusters    []*Model
	coreCluster []int // core id -> cluster index
}

// NewSystemModel binds per-cluster models to a core->cluster mapping.
// baseWatts is the platform floor shared by all clusters; the per-cluster
// Params.BaseWatts fields are ignored here (ClusterWatts excludes them) so
// a profile can reuse a single-cluster calibration unchanged.
func NewSystemModel(baseWatts float64, clusters []*Model, coreCluster []int) (*SystemModel, error) {
	if baseWatts < 0 {
		return nil, errors.New("power: base watts must be non-negative")
	}
	if len(clusters) == 0 {
		return nil, errors.New("power: system model needs at least one cluster model")
	}
	if len(coreCluster) == 0 {
		return nil, errors.New("power: system model needs at least one core")
	}
	for id, ci := range coreCluster {
		if ci < 0 || ci >= len(clusters) {
			return nil, fmt.Errorf("power: core %d mapped to cluster %d outside [0,%d)", id, ci, len(clusters))
		}
		if clusters[ci] == nil {
			return nil, fmt.Errorf("power: nil model for cluster %d", ci)
		}
	}
	cs := make([]*Model, len(clusters))
	copy(cs, clusters)
	cc := make([]int, len(coreCluster))
	copy(cc, coreCluster)
	return &SystemModel{baseWatts: baseWatts, clusters: cs, coreCluster: cc}, nil
}

// NumCores returns the number of cores the model covers.
func (m *SystemModel) NumCores() int { return len(m.coreCluster) }

// Cluster returns the model of cluster ci, for policies that price one
// domain at a time.
func (m *SystemModel) Cluster(ci int) (*Model, error) {
	if ci < 0 || ci >= len(m.clusters) {
		return nil, fmt.Errorf("power: cluster %d outside [0,%d)", ci, len(m.clusters))
	}
	return m.clusters[ci], nil
}

// SystemWatts evaluates total SoC power for per-core loads indexed by core
// id: platform base + Σ_clusters (cache + per-core terms).
func (m *SystemModel) SystemWatts(loads []CoreLoad) float64 {
	if len(m.clusters) == 1 {
		// Homogeneous fast path: no per-cluster regrouping on the hot tick.
		return m.baseWatts + m.clusters[0].ClusterWatts(loads)
	}
	// Single pass over cores with per-cluster accumulators; the per-core
	// and cache terms stay behind Model.CoreWatts/CacheWatts so the
	// multi-cluster path cannot drift from the homogeneous one.
	coreSum := make([]float64, len(m.clusters))
	anyBusy := make([]float64, len(m.clusters))
	topFreq := make([]soc.Hz, len(m.clusters))
	for id, ci := range m.coreCluster {
		if id >= len(loads) {
			break
		}
		c := loads[id]
		coreSum[ci] += m.clusters[ci].CoreWatts(c.State, c.OPP, c.Util)
		if c.State != soc.StateOffline {
			if c.Util > anyBusy[ci] {
				anyBusy[ci] = c.Util
			}
			if c.OPP.Freq > topFreq[ci] {
				topFreq[ci] = c.OPP.Freq
			}
		}
	}
	total := m.baseWatts
	for ci, cm := range m.clusters {
		total += coreSum[ci] + cm.CacheWatts(anyBusy[ci], topFreq[ci])
	}
	return total
}
