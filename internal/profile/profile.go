// Package profile wires the standard -cpuprofile/-memprofile flags into
// the CLI commands: pprof output suitable for `go tool pprof`, with the
// heap profile taken after a final GC so live-set numbers are stable.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to path when path is non-empty and returns
// the stop function. A profiling failure is an error — a silently missing
// profile after a long fleet run wastes the run.
func Start(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profile: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profile: starting CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocs-space heap profile to path when path is
// non-empty, running a GC first so the profile reflects the final live
// set rather than collection timing.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profile: creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("profile: writing heap profile: %w", err)
	}
	return nil
}
