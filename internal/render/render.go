// Package render is the frame pipeline that turns executed CPU cycles into
// frames per second — the performance metric of the thesis' evaluation
// (§5.1: "The performance of MobiCore is measured in frames per second").
// The GPU is pinned at its maximum frequency and assumed not to bottleneck
// (§3.2), so frame completion is gated purely by CPU throughput: each frame
// carries a serial chunk (the game's main thread) and parallel chunks (its
// worker threads), and the frame completes when every chunk has executed.
package render

import (
	"errors"
	"fmt"
	"time"

	"mobicore/internal/metrics"
	"mobicore/internal/sched"
)

// Config shapes a pipeline.
type Config struct {
	// TargetFPS is the engine's frame pacing — how often it submits new
	// frames. Mobile titles of the era paced between 20 and 60.
	TargetFPS float64
	// MaxQueue caps frames in flight; when the CPU falls behind, the
	// engine skips frames rather than queueing unboundedly (frame drop).
	MaxQueue int
	// Workers is the number of worker threads in addition to the main
	// thread. Zero means a single-threaded game.
	Workers int
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.TargetFPS <= 0 {
		return errors.New("render: TargetFPS must be positive")
	}
	if c.MaxQueue < 1 {
		return errors.New("render: MaxQueue must be >= 1")
	}
	if c.Workers < 0 {
		return errors.New("render: Workers must be non-negative")
	}
	return nil
}

// chunk is one thread's share of a frame.
type chunk struct {
	frame  *frame
	cycles float64
}

// frame is one in-flight frame.
type frame struct {
	emittedAt time.Duration
	remaining int // chunks not yet fully executed
}

// Pipeline drives frames through scheduler threads. Not safe for concurrent
// use; the owning workload serializes access.
type Pipeline struct {
	cfg      Config
	interval time.Duration
	threads  []*sched.Thread // index 0 is the main thread
	fifo     [][]chunk       // per-thread outstanding chunks, FIFO order
	lastExec []float64       // executed-cycles watermark per thread

	sinceEmit time.Duration
	inFlight  int
	emitted   int
	completed int
	dropped   int
	latency   metrics.Summary // seconds from emit to completion
}

// New builds a pipeline and its threads. namePrefix labels the threads for
// deterministic scheduling and diagnostics.
func New(namePrefix string, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := 1 + cfg.Workers
	threads := make([]*sched.Thread, n)
	threads[0] = sched.NewThread(namePrefix + "-main")
	for i := 1; i < n; i++ {
		threads[i] = sched.NewThread(fmt.Sprintf("%s-worker%d", namePrefix, i-1))
	}
	return &Pipeline{
		cfg:      cfg,
		interval: time.Duration(float64(time.Second) / cfg.TargetFPS),
		threads:  threads,
		fifo:     make([][]chunk, n),
		lastExec: make([]float64, n),
	}, nil
}

// Threads returns the pipeline's threads (main first).
func (p *Pipeline) Threads() []*sched.Thread { return p.threads }

// Tick advances the pipeline: it retires executed chunks, then paces new
// frames. frameCycles is the CPU cost of a frame emitted this tick and
// parallelFrac the fraction of that cost spread over the worker threads
// (Amdahl split); with no workers everything lands on the main thread.
func (p *Pipeline) Tick(now, dt time.Duration, frameCycles, parallelFrac float64) {
	p.retire(now)

	p.sinceEmit += dt
	for p.sinceEmit >= p.interval {
		p.sinceEmit -= p.interval
		if p.inFlight >= p.cfg.MaxQueue {
			p.dropped++
			continue
		}
		p.emit(now, frameCycles, parallelFrac)
	}
}

// emit splits one frame into chunks and deposits the work.
func (p *Pipeline) emit(now time.Duration, frameCycles, parallelFrac float64) {
	if frameCycles < 0 {
		frameCycles = 0
	}
	if parallelFrac < 0 {
		parallelFrac = 0
	}
	if parallelFrac > 1 {
		parallelFrac = 1
	}
	workers := len(p.threads) - 1
	if workers == 0 {
		parallelFrac = 0
	}

	f := &frame{emittedAt: now}
	serial := frameCycles * (1 - parallelFrac)
	if serial > 0 {
		p.fifo[0] = append(p.fifo[0], chunk{frame: f, cycles: serial})
		p.threads[0].AddWork(serial)
		f.remaining++
	}
	if workers > 0 {
		share := frameCycles * parallelFrac / float64(workers)
		if share > 0 {
			for i := 1; i < len(p.threads); i++ {
				p.fifo[i] = append(p.fifo[i], chunk{frame: f, cycles: share})
				p.threads[i].AddWork(share)
				f.remaining++
			}
		}
	}
	if f.remaining == 0 {
		// Degenerate zero-cost frame: completes instantly.
		p.completed++
		p.latency.Add(0)
		p.emitted++
		return
	}
	p.inFlight++
	p.emitted++
}

// retire drains executed cycles through each thread's chunk FIFO and
// completes frames whose chunks have all run.
func (p *Pipeline) retire(now time.Duration) {
	for i, th := range p.threads {
		delta := th.Executed() - p.lastExec[i]
		p.lastExec[i] = th.Executed()
		q := p.fifo[i]
		for delta > 0 && len(q) > 0 {
			c := &q[0]
			if delta < c.cycles {
				c.cycles -= delta
				delta = 0
				break
			}
			delta -= c.cycles
			c.frame.remaining--
			if c.frame.remaining == 0 {
				p.inFlight--
				p.completed++
				p.latency.Add((now - c.frame.emittedAt).Seconds())
			}
			q = q[1:]
		}
		p.fifo[i] = q
	}
}

// CompletedFrames returns frames fully rendered.
func (p *Pipeline) CompletedFrames() int { return p.completed }

// DroppedFrames returns frames skipped because the queue was full.
func (p *Pipeline) DroppedFrames() int { return p.dropped }

// EmittedFrames returns frames submitted to the pipeline.
func (p *Pipeline) EmittedFrames() int { return p.emitted }

// DropRate returns the fraction of paced frames the engine skipped because
// the CPU fell behind — the user-visible cost of sustained throttling in a
// long session. Zero when nothing was paced yet.
func (p *Pipeline) DropRate() float64 {
	paced := p.emitted + p.dropped
	if paced == 0 {
		return 0
	}
	return float64(p.dropped) / float64(paced)
}

// AvgFPS returns completed frames per second over the elapsed session.
func (p *Pipeline) AvgFPS(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(p.completed) / elapsed.Seconds()
}

// LatencySummary returns emit-to-completion latency statistics in seconds.
func (p *Pipeline) LatencySummary() metrics.Summary { return p.latency }
