package render

import (
	"math"
	"testing"
	"time"

	"mobicore/internal/sched"
)

func newPipe(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := New("test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := Config{TargetFPS: 30, MaxQueue: 3, Workers: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{TargetFPS: 0, MaxQueue: 3},
		{TargetFPS: 30, MaxQueue: 0},
		{TargetFPS: 30, MaxQueue: 3, Workers: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestThreadNaming(t *testing.T) {
	p := newPipe(t, Config{TargetFPS: 30, MaxQueue: 3, Workers: 2})
	threads := p.Threads()
	if len(threads) != 3 {
		t.Fatalf("thread count = %d, want 3 (main + 2 workers)", len(threads))
	}
	if threads[0].Name() != "test-main" {
		t.Errorf("main thread name = %q", threads[0].Name())
	}
}

// execute stands in for the scheduler: it runs up to cycles of the
// thread's pending work on core 0.
func execute(th *sched.Thread, cycles float64) {
	th.Execute(cycles, 0)
}

func TestFramePacingAndCompletion(t *testing.T) {
	p := newPipe(t, Config{TargetFPS: 20, MaxQueue: 3, Workers: 1})
	const frameCycles = 1000.0
	// Run one second of ticks; execute everything promptly by consuming
	// through a fake scheduler: pull work off threads as if run.
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		p.Tick(now, time.Millisecond, frameCycles, 0.5)
		for _, th := range p.Threads() {
			execute(th, th.Pending())
		}
		now += time.Millisecond
	}
	// Final retire to credit the last frames.
	p.Tick(now, time.Millisecond, frameCycles, 0.5)
	want := 20 // one second at 20 FPS
	if got := p.CompletedFrames(); got < want-2 || got > want+2 {
		t.Errorf("completed = %d, want ≈%d", got, want)
	}
	if p.DroppedFrames() != 0 {
		t.Errorf("dropped = %d with instant execution", p.DroppedFrames())
	}
	if fps := p.AvgFPS(now); math.Abs(fps-20) > 1 {
		t.Errorf("avg fps = %.1f, want ≈20", fps)
	}
}

func TestFrameDropUnderStarvation(t *testing.T) {
	p := newPipe(t, Config{TargetFPS: 30, MaxQueue: 2, Workers: 0})
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		// Never execute anything: the queue fills, frames drop.
		p.Tick(now, time.Millisecond, 1e9, 0)
		now += time.Millisecond
	}
	if p.CompletedFrames() != 0 {
		t.Errorf("completed = %d with no execution", p.CompletedFrames())
	}
	if p.DroppedFrames() == 0 {
		t.Error("starved pipeline dropped nothing")
	}
	// In-flight is bounded by MaxQueue: emitted − dropped − completed.
	inFlight := p.EmittedFrames() - p.DroppedFrames() - p.CompletedFrames()
	if inFlight > 2 {
		t.Errorf("in-flight = %d, want <= MaxQueue (2)", inFlight)
	}
}

func TestZeroCostFramesCompleteInstantly(t *testing.T) {
	p := newPipe(t, Config{TargetFPS: 10, MaxQueue: 3, Workers: 0})
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		p.Tick(now, time.Millisecond, 0, 0)
		now += time.Millisecond
	}
	if got, want := p.CompletedFrames(), 10; got < want-1 || got > want+1 {
		t.Errorf("zero-cost completed = %d, want ≈%d", got, want)
	}
}

func TestSerialBottleneckGatesFPS(t *testing.T) {
	// parallelFrac 0 puts every frame entirely on the main thread, so
	// the main thread's execution rate gates FPS no matter how many
	// workers exist.
	p := newPipe(t, Config{TargetFPS: 50, MaxQueue: 3, Workers: 3})
	now := time.Duration(0)
	const perTick = 500.0
	for i := 0; i < 2000; i++ {
		p.Tick(now, time.Millisecond, 40_000, 0) // parallelFrac 0: all serial
		execute(p.Threads()[0], perTick)
		now += time.Millisecond
	}
	// Main executes 5e5 cycles/s; frames cost 4e4: ~12.5 fps.
	fps := p.AvgFPS(now)
	if math.Abs(fps-12.5) > 1.5 {
		t.Errorf("serial-bound fps = %.1f, want ≈12.5", fps)
	}
	// Workers must have received nothing.
	for _, th := range p.Threads()[1:] {
		if th.Pending() != 0 || th.Executed() != 0 {
			t.Errorf("worker %s received serial work", th.Name())
		}
	}
}

func TestLatencyTracked(t *testing.T) {
	p := newPipe(t, Config{TargetFPS: 10, MaxQueue: 3, Workers: 0})
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		p.Tick(now, time.Millisecond, 1000, 0)
		execute(p.Threads()[0], 1000)
		now += time.Millisecond
	}
	sum := p.LatencySummary()
	if sum.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if sum.Max() > 0.01 {
		t.Errorf("prompt execution latency max = %v s, want ≈1 tick", sum.Max())
	}
}
