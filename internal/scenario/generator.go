package scenario

import (
	"math/rand"
	"time"
)

// walk is the deterministic phase walk shared by the Generator (which
// materializes a Trace up front) and the generator-mode Workload (which
// draws the same sequence live from the engine's seeded rng). One segment
// costs exactly two draws — duration, then next phase — so a Trace
// generated at seed s and a live walk over a session rng seeded s agree
// segment for segment.
type walk struct {
	prof Profile
	cur  Phase
}

func newWalk(prof Profile) walk {
	return walk{prof: prof, cur: prof.Start}
}

// next draws the current phase's segment and advances the walk.
func (w *walk) next(rng *rand.Rand) Segment {
	spec := w.prof.Phases[w.cur]
	dur := spec.MinDur
	if span := int64(spec.MaxDur - spec.MinDur); span > 0 {
		dur += time.Duration(rng.Int63n(span + 1))
	}
	seg := Segment{Phase: w.cur, Duration: dur, Rate: spec.Rate, Threads: spec.Threads}
	w.cur = w.prof.pick(w.cur, rng)
	return seg
}

// Generator materializes seeded deterministic traces from a profile.
type Generator struct {
	prof Profile
	seed int64
}

// NewGenerator builds a generator for one profile and seed.
func NewGenerator(prof Profile, seed int64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Generator{prof: prof, seed: seed}, nil
}

// Generate walks the phase graph until total simulated time is covered,
// truncating the final segment so TotalDuration is exactly total. The same
// profile, seed, and total always produce the identical trace.
func (g *Generator) Generate(total time.Duration) Trace {
	rng := rand.New(rand.NewSource(g.seed))
	w := newWalk(g.prof)
	tr := Trace{Name: g.prof.Name, Seed: g.seed}
	var elapsed time.Duration
	for elapsed < total {
		seg := w.next(rng)
		if elapsed+seg.Duration > total {
			seg.Duration = total - elapsed
		}
		elapsed += seg.Duration
		tr.Segments = append(tr.Segments, seg)
	}
	return tr
}
