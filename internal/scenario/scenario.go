// Package scenario models a phone user's day as a phase-switching demand
// process: interactive bursts, app switches, steady foreground use,
// screen-off idle, and ephemeral background wakeups — the bursty
// many-short-task regime MobiCore's dynamic core scaling story (§2.2.2)
// targets, rather than the steady game/benchmark loops the rest of the
// workload package provides. A seeded Generator walks a Profile's phase
// graph into a replayable Trace (JSONL on disk, see trace.go), and
// Workload drives either a stored trace or a live generator walk through
// the engine's workload interface.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Phase is one of the five user-behavior states.
type Phase uint8

const (
	// PhaseInteractive is a touch-driven burst: high demand fanned over
	// several threads for a short spell (scrolling, typing, launching).
	PhaseInteractive Phase = iota
	// PhaseAppSwitch is the cold/warm app-switch transient: near-peak
	// demand for well under a second.
	PhaseAppSwitch
	// PhaseForeground is steady foreground use: moderate demand, the
	// reading/watching plateau between interactions.
	PhaseForeground
	// PhaseIdle is screen-off idle: zero demand, the only phase a
	// scenario workload may hint steady in.
	PhaseIdle
	// PhaseWakeup is an ephemeral background wakeup inside an idle
	// stretch: a sync or push notification on one or two threads.
	PhaseWakeup

	numPhases = 5
)

var phaseNames = [numPhases]string{
	PhaseInteractive: "interactive",
	PhaseAppSwitch:   "appswitch",
	PhaseForeground:  "foreground",
	PhaseIdle:        "idle",
	PhaseWakeup:      "wakeup",
}

// String returns the phase's trace-format name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// ParsePhase resolves a trace-format phase name.
func ParsePhase(s string) (Phase, error) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown phase %q", s)
}

// PhaseSpec shapes one phase: its demand level, duration distribution, and
// thread fan-out.
type PhaseSpec struct {
	// Rate is the total demand across the phase's threads, cycles/sec.
	Rate float64
	// MinDur and MaxDur bound the uniformly drawn phase duration.
	MinDur, MaxDur time.Duration
	// Threads is the fan-out: how many threads share the phase's demand.
	// Zero is allowed only for zero-rate phases.
	Threads int
}

func (s PhaseSpec) validate(p Phase) error {
	if s.Rate < 0 {
		return fmt.Errorf("scenario: phase %s: negative rate", p)
	}
	if s.MinDur <= 0 || s.MaxDur < s.MinDur {
		return fmt.Errorf("scenario: phase %s: want 0 < MinDur <= MaxDur, got [%v, %v]", p, s.MinDur, s.MaxDur)
	}
	if s.Threads < 0 || (s.Rate > 0 && s.Threads < 1) {
		return fmt.Errorf("scenario: phase %s: %d threads cannot carry rate %g", p, s.Threads, s.Rate)
	}
	return nil
}

// Profile is a complete user model: every phase's spec plus the Markov
// transition weights between phases. Weights are integers so the walk's
// draws stay in integer space and reproduce bit-for-bit everywhere.
type Profile struct {
	// Name labels the profile in traces and reports.
	Name string
	// Phases holds one spec per phase, indexed by Phase.
	Phases [numPhases]PhaseSpec
	// Next[p][q] is the relative weight of transitioning p → q once
	// phase p's drawn duration elapses. Each row must have positive sum.
	Next [numPhases][numPhases]int
	// Start is the walk's initial phase.
	Start Phase
}

// Validate rejects malformed profiles.
func (p Profile) Validate() error {
	if p.Name == "" {
		return errors.New("scenario: profile needs a name")
	}
	if int(p.Start) >= numPhases {
		return fmt.Errorf("scenario: start phase %d out of range", p.Start)
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		if err := p.Phases[ph].validate(ph); err != nil {
			return err
		}
		sum := 0
		for q, w := range p.Next[ph] {
			if w < 0 {
				return fmt.Errorf("scenario: negative transition weight %s → %s", ph, Phase(q))
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("scenario: phase %s has no outgoing transitions", ph)
		}
	}
	return nil
}

// pick draws the next phase from cur's weighted row.
func (p Profile) pick(cur Phase, rng *rand.Rand) Phase {
	sum := 0
	for _, w := range p.Next[cur] {
		sum += w
	}
	n := int(rng.Int63n(int64(sum)))
	for q, w := range p.Next[cur] {
		if n < w {
			return Phase(q)
		}
		n -= w
	}
	return cur // unreachable: weights sum to sum
}

// DayInTheLife is the canonical profile: wake, interact, switch apps,
// settle into foreground use, let the screen go dark, and surface for
// background syncs — cycles per second sized for a Nexus 5-class device
// (2.27 GHz × 4 cores peak).
func DayInTheLife() Profile {
	p := Profile{Name: "dayinlife", Start: PhaseInteractive}
	p.Phases[PhaseInteractive] = PhaseSpec{Rate: 3.2e9, MinDur: 400 * time.Millisecond, MaxDur: 2 * time.Second, Threads: 4}
	p.Phases[PhaseAppSwitch] = PhaseSpec{Rate: 4.5e9, MinDur: 250 * time.Millisecond, MaxDur: 700 * time.Millisecond, Threads: 6}
	p.Phases[PhaseForeground] = PhaseSpec{Rate: 9e8, MinDur: 2 * time.Second, MaxDur: 8 * time.Second, Threads: 2}
	p.Phases[PhaseIdle] = PhaseSpec{Rate: 0, MinDur: 2 * time.Second, MaxDur: 12 * time.Second, Threads: 0}
	p.Phases[PhaseWakeup] = PhaseSpec{Rate: 4e8, MinDur: 200 * time.Millisecond, MaxDur: 600 * time.Millisecond, Threads: 1}
	p.Next = [numPhases][numPhases]int{
		PhaseInteractive: {0, 3, 5, 2, 0},
		PhaseAppSwitch:   {4, 0, 6, 0, 0},
		PhaseForeground:  {4, 2, 0, 4, 0},
		PhaseIdle:        {2, 0, 0, 0, 5},
		PhaseWakeup:      {1, 0, 0, 9, 0},
	}
	return p
}

// Standby is the mostly-dark variant: long idle stretches punctuated by
// background wakeups and the occasional glance — the regime where core
// offlining policies should shine.
func Standby() Profile {
	p := Profile{Name: "standby", Start: PhaseIdle}
	p.Phases[PhaseInteractive] = PhaseSpec{Rate: 2.4e9, MinDur: 300 * time.Millisecond, MaxDur: 1200 * time.Millisecond, Threads: 3}
	p.Phases[PhaseAppSwitch] = PhaseSpec{Rate: 4e9, MinDur: 250 * time.Millisecond, MaxDur: 600 * time.Millisecond, Threads: 5}
	p.Phases[PhaseForeground] = PhaseSpec{Rate: 7e8, MinDur: 1 * time.Second, MaxDur: 4 * time.Second, Threads: 2}
	p.Phases[PhaseIdle] = PhaseSpec{Rate: 0, MinDur: 5 * time.Second, MaxDur: 25 * time.Second, Threads: 0}
	p.Phases[PhaseWakeup] = PhaseSpec{Rate: 3e8, MinDur: 200 * time.Millisecond, MaxDur: 500 * time.Millisecond, Threads: 2}
	p.Next = [numPhases][numPhases]int{
		PhaseInteractive: {0, 2, 3, 5, 0},
		PhaseAppSwitch:   {2, 0, 5, 3, 0},
		PhaseForeground:  {2, 1, 0, 7, 0},
		PhaseIdle:        {1, 0, 0, 0, 9},
		PhaseWakeup:      {1, 0, 0, 19, 0},
	}
	return p
}

// Profiles lists the built-in profiles in stable order.
func Profiles() []Profile {
	return []Profile{DayInTheLife(), Standby()}
}

// ProfileNames lists the built-in profile names in stable order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("scenario: unknown profile %q (have %v)", name, ProfileNames())
}
