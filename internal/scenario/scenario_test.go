package scenario_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mobicore/internal/scenario"
)

// TestProfilesValidate: every built-in profile passes its own validation.
func TestProfilesValidate(t *testing.T) {
	for _, p := range scenario.Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(scenario.ProfileNames()) != len(scenario.Profiles()) {
		t.Error("ProfileNames and Profiles disagree")
	}
	if _, err := scenario.ProfileByName("dayinlife"); err != nil {
		t.Error(err)
	}
	if _, err := scenario.ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestGeneratorDeterministic: equal seeds produce byte-identical JSONL
// exports; different seeds diverge.
func TestGeneratorDeterministic(t *testing.T) {
	export := func(seed int64) []byte {
		t.Helper()
		g, err := scenario.NewGenerator(scenario.DayInTheLife(), seed)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Generate(time.Minute).WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(7), export(7)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different traces")
	}
	if bytes.Equal(a, export(8)) {
		t.Error("different seeds produced identical traces")
	}
}

// TestGenerateCoversDuration: the trace covers exactly the asked total.
func TestGenerateCoversDuration(t *testing.T) {
	g, err := scenario.NewGenerator(scenario.Standby(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Generate(30 * time.Second)
	if got := tr.TotalDuration(); got != 30*time.Second {
		t.Errorf("TotalDuration = %v, want 30s", got)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestTraceJSONLByteRoundTrip: export → parse → export is byte-identical.
func TestTraceJSONLByteRoundTrip(t *testing.T) {
	g, err := scenario.NewGenerator(scenario.DayInTheLife(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Generate(2 * time.Minute)
	var first bytes.Buffer
	if err := tr.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := scenario.ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := parsed.WriteJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("export→parse→export not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
			first.Bytes(), second.Bytes())
	}
}

// TestReadJSONLErrors: malformed traces are rejected with line numbers.
func TestReadJSONLErrors(t *testing.T) {
	hdr := `{"format":"mobicore-scenario/1","name":"x","seed":1}`
	cases := map[string]struct {
		in      string
		wantErr string
	}{
		"empty":        {"", "empty trace"},
		"bad header":   {"not json\n", "line 1"},
		"wrong format": {`{"format":"other/9","name":"x","seed":1}` + "\n", "format"},
		"no segments":  {hdr + "\n", "no segments"},
		"bad phase":    {hdr + "\n" + `{"phase":"nap","dur_ns":5,"rate":1,"threads":1}` + "\n", "line 2"},
		"zero dur":     {hdr + "\n" + `{"phase":"idle","dur_ns":0,"rate":0,"threads":0}` + "\n", "row 2"},
		"neg rate":     {hdr + "\n" + `{"phase":"idle","dur_ns":5,"rate":-1,"threads":1}` + "\n", "row 2"},
		"rate no threads": {hdr + "\n" + `{"phase":"wakeup","dur_ns":5,"rate":1,"threads":0}` + "\n" +
			`{"phase":"idle","dur_ns":5,"rate":0,"threads":0}` + "\n", "row 2"},
		"bad row json": {hdr + "\n" + `{"phase":"idle","dur_ns":5,"rate":0,"threads":0}` + "\nnope\n", "line 3"},
	}
	for name, c := range cases {
		_, err := scenario.ReadJSONL(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.wantErr)
		}
	}
}

// handTrace builds a small fixed trace exercising spawn, retire, idle, and
// wakeup transitions.
func handTrace() scenario.Trace {
	return scenario.Trace{
		Name: "hand",
		Segments: []scenario.Segment{
			{Phase: scenario.PhaseInteractive, Duration: 10 * time.Millisecond, Rate: 1e9, Threads: 2},
			{Phase: scenario.PhaseIdle, Duration: 20 * time.Millisecond, Rate: 0, Threads: 0},
			{Phase: scenario.PhaseWakeup, Duration: 5 * time.Millisecond, Rate: 1e8, Threads: 1},
			{Phase: scenario.PhaseIdle, Duration: 10 * time.Millisecond, Rate: 0, Threads: 0},
		},
	}
}

// TestSteadyHintOnlyInQuiescentTicks: the hint must be false on every tick
// that deposits demand or spawns a thread, and true across idle stretches
// and after replay exhaustion.
func TestSteadyHintOnlyInQuiescentTicks(t *testing.T) {
	w, err := scenario.New(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	hints := make([]bool, 0, 50)
	for i := 0; i < 50; i++ {
		w.Tick(time.Duration(i)*time.Millisecond, time.Millisecond, rng)
		hints = append(hints, w.SteadyHint())
	}
	for i := 0; i < 10; i++ { // interactive: deposits every tick
		if hints[i] {
			t.Errorf("tick %d (interactive) hinted steady", i)
		}
	}
	for i := 10; i < 30; i++ { // screen-off idle
		if !hints[i] {
			t.Errorf("tick %d (idle) did not hint steady", i)
		}
	}
	for i := 30; i < 35; i++ { // wakeup deposits again
		if hints[i] {
			t.Errorf("tick %d (wakeup) hinted steady", i)
		}
	}
	for i := 35; i < 50; i++ { // trailing idle, then exhausted
		if !hints[i] {
			t.Errorf("tick %d (post-trace) did not hint steady", i)
		}
	}
}

// TestThreadsSpawnAtPhaseBoundaries: fan-out threads appear exactly when a
// phase first needs them, stay for accounting, and drain after retirement.
func TestThreadsSpawnAtPhaseBoundaries(t *testing.T) {
	w, err := scenario.New(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if len(w.Threads()) != 0 {
		t.Fatalf("threads before first tick = %d, want 0", len(w.Threads()))
	}
	w.Tick(0, time.Millisecond, rng)
	if len(w.Threads()) != 2 {
		t.Fatalf("threads in interactive phase = %d, want 2", len(w.Threads()))
	}
	// One tick past the 45ms trace so the replay notices exhaustion.
	for i := 1; i < 46; i++ {
		w.Tick(time.Duration(i)*time.Millisecond, time.Millisecond, rng)
	}
	// The widest fan-out of the trace is 2; the wakeup reuses thread 0.
	if len(w.Threads()) != 2 {
		t.Errorf("threads after full replay = %d, want 2", len(w.Threads()))
	}
	if !w.Done() {
		// Done also needs drained threads; drain them by executing.
		for _, th := range w.Threads() {
			if th.Pending() > 0 {
				th.Execute(th.Pending(), 0)
			}
		}
		if !w.Done() {
			t.Error("replay not done after exhaustion and drain")
		}
	}
}

// TestReplayDemandIntegratesToTrace: replaying a generated trace to the end
// deposits exactly the trace's integrated cycles (within float rounding).
func TestReplayDemandIntegratesToTrace(t *testing.T) {
	for _, prof := range scenario.Profiles() {
		g, err := scenario.NewGenerator(prof, 11)
		if err != nil {
			t.Fatal(err)
		}
		tr := g.Generate(45 * time.Second)
		w, err := scenario.New(tr)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for now := time.Duration(0); now < 46*time.Second; now += time.Millisecond {
			w.Tick(now, time.Millisecond, rng)
		}
		want := tr.TotalCycles()
		got := w.DepositedCycles()
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Errorf("%s: deposited %v cycles, trace integrates to %v (rel err %g)", prof.Name, got, want, rel)
		}
	}
}

// TestGeneratorModeRecordsItsWalk: a generator-mode workload's recorded
// segments reproduce the stand-alone generator's trace for the same seed —
// the record half of the record/replay pipeline.
func TestGeneratorModeRecordsItsWalk(t *testing.T) {
	prof := scenario.DayInTheLife()
	w, err := scenario.FromProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 21
	rng := rand.New(rand.NewSource(seed))
	for now := time.Duration(0); now < 30*time.Second; now += time.Millisecond {
		w.Tick(now, time.Millisecond, rng)
	}
	rec := w.Recorded(seed)
	g, err := scenario.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Generate(30 * time.Second)
	// The recorded walk's final segment keeps its full drawn duration;
	// Generate truncates it at the horizon. Compare the shared prefix.
	if len(rec.Segments) != len(want.Segments) {
		t.Fatalf("recorded %d segments, generator produced %d", len(rec.Segments), len(want.Segments))
	}
	for i := range want.Segments {
		r, g := rec.Segments[i], want.Segments[i]
		if r.Phase != g.Phase || r.Rate != g.Rate || r.Threads != g.Threads {
			t.Fatalf("segment %d: recorded %+v, generated %+v", i, r, g)
		}
		if i < len(want.Segments)-1 && r.Duration != g.Duration {
			t.Fatalf("segment %d duration: recorded %v, generated %v", i, r.Duration, g.Duration)
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.ReadJSONL(&buf); err != nil {
		t.Errorf("recorded trace does not re-import: %v", err)
	}
}
