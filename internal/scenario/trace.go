package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TraceFormat is the JSONL header's format tag; bump on incompatible
// schema changes.
const TraceFormat = "mobicore-scenario/1"

// Segment is one resolved phase visit: the phase, how long it lasted, and
// the demand it carried.
type Segment struct {
	// Phase is the visited phase.
	Phase Phase
	// Duration is the drawn (or truncated) visit length.
	Duration time.Duration
	// Rate is the total demand across the segment's threads, cycles/sec.
	Rate float64
	// Threads is the fan-out carrying Rate.
	Threads int
}

func (s Segment) validate(row int) error {
	if int(s.Phase) >= numPhases {
		return fmt.Errorf("scenario: trace row %d: phase %d out of range", row, s.Phase)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: trace row %d: non-positive duration %v", row, s.Duration)
	}
	if s.Rate < 0 {
		return fmt.Errorf("scenario: trace row %d: negative rate", row)
	}
	if s.Threads < 0 || (s.Rate > 0 && s.Threads < 1) {
		return fmt.Errorf("scenario: trace row %d: %d threads cannot carry rate %g", row, s.Threads, s.Rate)
	}
	return nil
}

// Trace is a replayable scenario: the generating profile's name and seed
// plus the resolved segment sequence. Traces round-trip through the JSONL
// format byte-identically — export, parse, export again, same bytes.
type Trace struct {
	// Name is the generating profile's name (or any label for
	// hand-written traces).
	Name string
	// Seed is the generator seed the trace was drawn with; purely
	// informational on replay.
	Seed int64
	// Segments is the phase visit sequence.
	Segments []Segment
}

// Validate rejects malformed traces.
func (tr Trace) Validate() error {
	if tr.Name == "" {
		return fmt.Errorf("scenario: trace needs a name")
	}
	if len(tr.Segments) == 0 {
		return fmt.Errorf("scenario: trace has no segments")
	}
	for i, s := range tr.Segments {
		// Rows are 1-based physical JSONL lines; the header is line 1.
		if err := s.validate(i + 2); err != nil {
			return err
		}
	}
	return nil
}

// TotalDuration sums the segment durations.
func (tr Trace) TotalDuration() time.Duration {
	var d time.Duration
	for _, s := range tr.Segments {
		d += s.Duration
	}
	return d
}

// TotalCycles integrates the demand: Σ rate × duration over the segments.
func (tr Trace) TotalCycles() float64 {
	var c float64
	for _, s := range tr.Segments {
		c += s.Rate * s.Duration.Seconds()
	}
	return c
}

// MaxThreads is the widest fan-out any segment uses.
func (tr Trace) MaxThreads() int {
	max := 0
	for _, s := range tr.Segments {
		if s.Threads > max {
			max = s.Threads
		}
	}
	return max
}

// traceHeader is JSONL line 1.
type traceHeader struct {
	Format string `json:"format"`
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
}

// traceRow is one segment line. Durations are integer nanoseconds and
// rates shortest-round-trip floats, so marshal(unmarshal(line)) == line.
type traceRow struct {
	Phase   string  `json:"phase"`
	DurNS   int64   `json:"dur_ns"`
	Rate    float64 `json:"rate"`
	Threads int     `json:"threads"`
}

// WriteJSONL exports the trace: a header line, then one line per segment.
func (tr Trace) WriteJSONL(w io.Writer) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	writeLine := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("scenario: encoding trace: %w", err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := writeLine(traceHeader{Format: TraceFormat, Name: tr.Name, Seed: tr.Seed}); err != nil {
		return err
	}
	for _, s := range tr.Segments {
		row := traceRow{Phase: s.Phase.String(), DurNS: int64(s.Duration), Rate: s.Rate, Threads: s.Threads}
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL imports a trace written by WriteJSONL, validating the header
// and every segment with 1-based line numbers in errors.
func ReadJSONL(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Trace{}, fmt.Errorf("scenario: reading trace: %w", err)
		}
		return Trace{}, fmt.Errorf("scenario: empty trace")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Trace{}, fmt.Errorf("scenario: trace line 1: %w", err)
	}
	if hdr.Format != TraceFormat {
		return Trace{}, fmt.Errorf("scenario: trace line 1: format %q, want %q", hdr.Format, TraceFormat)
	}
	tr := Trace{Name: hdr.Name, Seed: hdr.Seed}
	for line := 2; sc.Scan(); line++ {
		var row traceRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return Trace{}, fmt.Errorf("scenario: trace line %d: %w", line, err)
		}
		ph, err := ParsePhase(row.Phase)
		if err != nil {
			return Trace{}, fmt.Errorf("scenario: trace line %d: %w", line, err)
		}
		seg := Segment{Phase: ph, Duration: time.Duration(row.DurNS), Rate: row.Rate, Threads: row.Threads}
		if err := seg.validate(line); err != nil {
			return Trace{}, err
		}
		tr.Segments = append(tr.Segments, seg)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("scenario: reading trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
