package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"mobicore/internal/sched"
	"mobicore/internal/workload"
)

// Workload drives a scenario through the engine: either replaying a stored
// Trace or walking a Profile live off the session's seeded rng (so a fleet
// seed sweep yields thousands of distinct synthetic users from one
// factory). Threads spawn lazily at the first phase boundary that needs
// them and retire when their phase ends — a retired thread stops receiving
// demand and leaves the runnable set once the scheduler drains it, but
// stays in Threads() so executed-cycle accounting survives the churn.
//
// The workload implements SteadyHinter and hints steady only on ticks that
// provably changed no demand: no deposit landed (screen-off idle, or a
// replay that ran out of segments) and no thread spawned. Every
// demand-carrying phase breaks the hint every tick, so the engine's memo
// fast path re-proves the runnable set across bursts, app switches, and
// wakeups — quiescence only fuses where the scenario is genuinely dark.
type Workload struct {
	name   string
	prefix string

	// Exactly one segment source: segs for replay, live for generation.
	segs     []Segment
	live     *walk
	recorded []Segment

	segIdx  int
	cur     Segment
	segLeft time.Duration
	haveSeg bool

	threads []*sched.Thread // grow-only: spawned threads are never removed
	active  int             // current fan-out: threads[:active] receive demand

	deposited float64
	steady    bool
	exhausted bool // replay consumed every segment
}

var (
	_ workload.Workload     = (*Workload)(nil)
	_ workload.SteadyHinter = (*Workload)(nil)
)

// New builds a replay workload over a stored trace.
func New(tr Trace) (*Workload, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &Workload{
		name:   "scenario-" + tr.Name,
		prefix: "scenario-" + tr.Name,
		segs:   tr.Segments,
	}, nil
}

// FromProfile builds a generator-mode workload: segments are drawn live
// from the rng the engine passes to Tick, with exactly the draw sequence
// NewGenerator(prof, seed).Generate uses — a session seeded s replays
// byte-identically to the trace generated at seed s.
func FromProfile(prof Profile) (*Workload, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	w := newWalk(prof)
	return &Workload{
		name:   "scenario-" + prof.Name,
		prefix: "scenario-" + prof.Name,
		live:   &w,
	}, nil
}

// Name implements Workload.
func (s *Workload) Name() string { return s.name }

// Threads implements Workload. The slice grows as phases spawn new
// threads; existing entries are stable.
func (s *Workload) Threads() []*sched.Thread { return s.threads }

// Done implements Workload: a replay is done when its trace is exhausted
// and every thread drained; generator-mode scenarios never finish.
func (s *Workload) Done() bool {
	if s.live != nil || !s.exhausted {
		return false
	}
	for _, th := range s.threads {
		if th.Pending() > 0 {
			return false
		}
	}
	return true
}

// SteadyHint implements SteadyHinter; see the type comment for when the
// hint is allowed to hold.
func (s *Workload) SteadyHint() bool { return s.steady }

// DepositedCycles reports the total demand deposited so far — the live
// integral the trace-replay property tests compare against TotalCycles.
func (s *Workload) DepositedCycles() float64 { return s.deposited }

// Recorded assembles the segments a generator-mode workload has drawn so
// far into an exportable Trace; seed labels the header (pass the session
// seed the workload ran under). The final segment carries its full drawn
// duration even if the session ended inside it.
func (s *Workload) Recorded(seed int64) Trace {
	name := s.name[len("scenario-"):]
	return Trace{Name: name, Seed: seed, Segments: append([]Segment(nil), s.recorded...)}
}

// Tick implements Workload: split dt across segment boundaries, deposit
// each slice's demand over the active fan-out, and advance the walk (or
// the stored segment cursor) whenever a segment ends inside the tick.
func (s *Workload) Tick(now, dt time.Duration, rng *rand.Rand) {
	s.steady = true
	for dt > 0 {
		if !s.haveSeg && !s.advance(rng) {
			return
		}
		slice := dt
		if slice > s.segLeft {
			slice = s.segLeft
		}
		if s.cur.Rate > 0 && s.active > 0 {
			per := s.cur.Rate * slice.Seconds() / float64(s.active)
			for _, th := range s.threads[:s.active] {
				th.AddWork(per)
			}
			s.deposited += per * float64(s.active)
			s.steady = false
		}
		s.segLeft -= slice
		dt -= slice
		if s.segLeft == 0 {
			s.haveSeg = false
		}
	}
}

// advance moves to the next segment, spawning threads the new fan-out
// needs. Returns false when a replay has no segments left.
func (s *Workload) advance(rng *rand.Rand) bool {
	var seg Segment
	switch {
	case s.live != nil:
		seg = s.live.next(rng)
		s.recorded = append(s.recorded, seg)
	case s.segIdx < len(s.segs):
		seg = s.segs[s.segIdx]
		s.segIdx++
	default:
		s.exhausted = true
		return false
	}
	s.cur, s.segLeft, s.haveSeg = seg, seg.Duration, true
	for len(s.threads) < seg.Threads {
		s.threads = append(s.threads, sched.NewThread(fmt.Sprintf("%s-%d", s.prefix, len(s.threads))))
		s.steady = false // the thread set changed this tick
	}
	s.active = seg.Threads
	return true
}
