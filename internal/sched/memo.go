package sched

import (
	"fmt"
	"time"

	"mobicore/internal/soc"
)

// MemoRing is how many recent scheduling windows a Memo retains. One
// retained window serves truly quiescent stretches; the ring exists for
// periodic schedules. Under oversubscription — more saturated runnable
// threads than online cores — the scheduler serves the top-debt threads
// each window, their debts fall behind the unserved ones, and the window
// rotates through the thread set with period N/gcd(N,K) for N threads on K
// cores. Each phase of the rotation is itself a fixed point (the affinity
// and order checks discriminate phases), so retaining the last few windows
// lets every phase replay against its own record. Four slots cover all
// rotations of the 4-thread reference workloads; longer periods fall back
// to the slow path, never to wrong output.
const MemoRing = 4

// memoEntry is one thread's recorded share of a scheduling window: where it
// stood when the window opened and what the window granted it.
type memoEntry struct {
	t        *Thread
	lastCore int     // affinity at window start (pre-placement)
	core     int     // placed core, -1 when no core had budget
	granted  float64 // cycles drained by the window
	pending  float64 // cycle debt at window start
	// saturated marks a debt above the capacity ceiling: every placer
	// comparison against pending ("does this candidate fully serve the
	// thread?") resolves the same way for any debt above the ceiling, so
	// the placement decision is debt-independent and the memo stays valid
	// while the thread keeps a deep backlog. Unsaturated entries instead
	// require an exactly unchanged debt.
	saturated bool
}

// memoWin is one retained scheduling window: per-thread grants, the
// busy-seconds vector, the batched cycle commit, plus the input fingerprint
// needed to prove a later window would reproduce it bit for bit.
type memoWin struct {
	valid   bool
	drained bool // starved-pool window: zero grants, every budget throttled
	limited bool // recorded against a finite bandwidth pool
	// verified is the window sequence number at which this slot's runnable
	// set was last proven equal to the live set (at record, and on every
	// successful match). A steady hint may skip the set comparison only
	// when every window since this verification carried the hint — each
	// hint vouches one tick of no demand change, so an unbroken streak of
	// them extends the proof from the verification point to now.
	verified  int64
	dtSec     float64 // recorded window length (seconds)
	satCycles float64 // saturation ceiling: capacity any core could offer
	poolUsed  float64
	executed  float64
	throttled float64 // quota-denied seconds (non-zero only for drained windows)
	entries   []memoEntry
	busySec   []float64
	nanos     []uint64 // clamped per-core busy nanos for the batched commit
	capped    []bool   // pressure fingerprint at record
	capScale  []float64
	prGen     uint64 // pressure generation tag at record (0 when untagged)
}

// Memo retains the last MemoRing scheduling windows' complete outcomes.
// The simulation's quiescent-tick fast path records a window on each full
// scheduling pass and replays a retained one (ReplayInto) on every
// subsequent tick whose inputs still match it (Match), skipping
// snapshotting, sorting, and placement entirely while leaving thread state,
// cycle accounting, and every float result byte-identical to the slow path.
//
// Validity is split between the Memo and its owner: Match proves the
// thread-side inputs (runnable set, debts, affinity, pressure caps, pool
// headroom) unchanged; the owner must separately guarantee that the
// CPU-side inputs — programmed frequencies and the online mask — have not
// moved since the record, which the simulation does by trusting its
// applied-frequency mirror and gating replay on a per-slot flag it clears
// on every reprogram, hotplug, and policy decision.
//
// The zero value is an empty memo ready for use. A Memo retains thread
// pointers and is not safe for concurrent use; each Scheduler owner keeps
// its own.
type Memo struct {
	next  int   // ring slot the next recording scribbles on
	last  int   // slot of the most recent armed recording
	hint  int   // ring slot of the most recent successful Match
	armed bool  // whether the latest begin..finish pass armed its slot
	seq   int64 // window sequence number, bumped once per Match call (one per tick)
	// steadySince is the first sequence number of the current unbroken run
	// of steady windows (0 while the run is broken). A slot verified at or
	// before the run's start has had every subsequent tick vouched
	// demand-free, so its runnable set is still proven current.
	steadySince int64
	wins        [MemoRing]memoWin
}

// Armed reports whether the most recent recording pass retained a
// replayable window; ArmedSlot identifies it. The owner captures its fused
// integration tail under the same slot index.
func (m *Memo) Armed() bool { return m.armed }

// ArmedSlot returns the ring slot of the most recent armed recording.
// Meaningful only while Armed reports true.
func (m *Memo) ArmedSlot() int { return m.last }

// Invalidate drops every retained window. The next ScheduleRecordInto call
// re-records.
//
//mobicore:hotpath
func (m *Memo) Invalidate() {
	for i := range m.wins {
		m.wins[i].valid = false
	}
	m.armed = false
}

// Recycle returns the memo reset for a new session, keeping every slot's
// buffer capacity.
func (m *Memo) Recycle() Memo {
	r := *m
	for i := range r.wins {
		w := &r.wins[i]
		w.valid, w.drained = false, false
		w.entries = w.entries[:0]
		w.busySec = w.busySec[:0]
		w.nanos = w.nanos[:0]
		w.capped = w.capped[:0]
		w.capScale = w.capScale[:0]
		w.dtSec, w.satCycles, w.poolUsed, w.executed, w.throttled = 0, 0, 0, 0, 0
		w.verified = 0
	}
	r.next, r.last, r.hint, r.armed, r.seq, r.steadySince = 0, 0, 0, false, 0, 0
	return r
}

// begin opens a recording in the next ring slot: that slot is invalid until
// finish arms it (evicting whatever window it held — the ring trades one
// retained phase for the fresher record). satRate is the capacity ceiling
// in cycles/sec — at least every core's programmed frequency and every
// domain's top capacity — above which a thread's placement is
// debt-independent (callers pass the platform's global ladder top).
//
//mobicore:hotpath
func (m *Memo) begin(dt time.Duration, satRate float64) {
	w := &m.wins[m.next]
	w.valid = false
	w.dtSec = dt.Seconds()
	w.satCycles = satRate * w.dtSec
	w.entries = w.entries[:0]
	m.armed = false
}

// record appends one placed (or passed-over) thread to the open recording.
//
//mobicore:hotpath
func (m *Memo) record(t *Thread, lastCore, core int, granted, pending float64) {
	w := &m.wins[m.next]
	//mobilint:ignore append into pooled memo entries; capacity amortizes across windows
	w.entries = append(w.entries, memoEntry{
		t:         t,
		lastCore:  lastCore,
		core:      core,
		granted:   granted,
		pending:   pending,
		saturated: pending > w.satCycles,
	})
}

// finish arms the open recording when the window is replayable, advancing
// the ring. Two regimes qualify: the granted window — the bandwidth pool
// never clamped a grant (a full window of slack remained, so any later pool
// at least that healthy grants identically) and no runnable time was
// throttled — and the starved window, where the pool was empty before the
// first grant, so nothing executed and every online budget was throttled,
// an outcome independent of debts, ordering, and pressure. It fingerprints
// the thermal-pressure view alongside.
//
//mobicore:hotpath
func (m *Memo) finish(res Result, nanos []uint64, pr Pressure, limited bool, poolLeft float64) {
	w := &m.wins[m.next]
	drained := false
	if res.ThrottledSeconds != 0 {
		// Throttling replays only in the fully starved regime: the pool
		// was exhausted at window start (nothing was granted, so poolLeft
		// is the untouched entry pool). A mid-window clamp leaves
		// PoolUsedSec non-zero and stays unarmed — replaying it under a
		// different pool would diverge.
		if !limited || poolLeft > 0 || res.PoolUsedSec != 0 {
			return
		}
		drained = true
	} else if limited && poolLeft < w.dtSec {
		// The pool influenced (or was one thread away from influencing)
		// the grants; replaying under a different pool could diverge.
		return
	}
	w.drained = drained
	w.limited = limited
	w.throttled = res.ThrottledSeconds
	w.poolUsed = res.PoolUsedSec
	w.executed = res.ExecutedCycles
	w.busySec = f64Into(w.busySec, res.BusySeconds)
	w.nanos = u64Into(w.nanos, nanos)
	w.capped = boolInto(w.capped, pr.Capped)
	w.capScale = f64Into(w.capScale, pr.CapScale)
	w.prGen = pr.Gen
	w.verified = m.seq
	w.valid = true
	m.armed = true
	m.last = m.next
	m.next = (m.next + 1) % MemoRing
}

// Match scans the retained windows and returns the ring slot of one that a
// fresh scheduling pass over threads would reproduce bit for bit under the
// given pool and pressure view, or -1. Call it exactly once per scheduling
// window: it advances the sequence clock the per-slot set verification
// leans on. steady asserts (on the workloads' authority — the SteadyHint
// contract) that no demand changed since the previous tick; a streak of
// such windows lets the runnable-set comparison be skipped for any slot
// verified before the streak began, because every tick separating the
// verification from now has been vouched demand-free. A slot verified
// before that must be re-proven by the counting scan. The caller separately
// guarantees unchanged core frequencies and online states.
//
// Probe order is a latency heuristic only: rotations advance one ring slot
// per window, so the slot after the last hit is tried first, then the last
// hit itself (the quiescent case), then the rest most recent first. When
// several slots match they hold byte-identical outcomes — each match is a
// proof that the slot equals the unique slow-path result — so any probe
// order returns an equally correct index.
//
//mobicore:hotpath
func (m *Memo) Match(threads []*Thread, steady bool, poolSec float64, pr Pressure) int {
	m.seq++
	if steady {
		if m.steadySince == 0 {
			m.steadySince = m.seq
		}
	} else {
		m.steadySince = 0
	}
	var order [MemoRing]int
	order[0] = (m.hint + 1) % MemoRing
	order[1] = m.hint
	n := 2
	for off := 1; off <= MemoRing; off++ {
		idx := (m.next - off + MemoRing) % MemoRing
		if idx != order[0] && idx != order[1] {
			order[n] = idx
			n++
		}
	}
	runnable := -1 // live runnable population, counted once on first need
	for _, idx := range order[:n] {
		w := &m.wins[idx]
		if !w.valid {
			continue
		}
		trusted := m.steadySince != 0 && w.verified >= m.steadySince-1
		if !trusted && runnable < 0 {
			runnable = 0
			for _, t := range threads {
				if t != nil && t.Runnable() {
					runnable++
				}
			}
		}
		if matchWin(w, threads, trusted, runnable, poolSec, pr) {
			w.verified = m.seq
			m.hint = idx
			return idx
		}
	}
	return -1
}

// matchWin checks one retained window against the current inputs. trusted
// reports that the window's runnable set is proven current — the steady
// hint combined with an unbroken verification chain — so the set scans can
// be skipped. runnable is the live runnable-thread count, shared across the
// ring scan (ignored while trusted).
//
//mobicore:hotpath
func matchWin(w *memoWin, threads []*Thread, trusted bool, runnable int, poolSec float64, pr Pressure) bool {
	if w.drained {
		// Starved pool: the recorded window granted nothing and throttled
		// every online budget. Any window whose pool is still exactly
		// empty reproduces that outcome whatever the debts, ordering, or
		// pressure — grants can't happen, so demand can't move — provided
		// runnable backlog remains (an empty runnable set throttles
		// nothing). steady freezes the runnable set by contract; without
		// it one live thread suffices.
		if poolSec != 0 {
			return false
		}
		return trusted || runnable > 0
	}
	// Pool regime must match before headroom means anything: a window
	// recorded against an unbounded pool reports zero consumption, so
	// replaying it under a finite pool would leave that pool undrained —
	// corrupting the accounting the next windows schedule against — and a
	// finite-pool record replayed unlimited would drain a pool that does
	// not exist.
	if w.limited != (poolSec >= 0) {
		return false
	}
	// Pool headroom: with a full window of slack beyond the recorded
	// consumption, no grant can hit the pool, so the grants replay exactly.
	if w.limited && poolSec < w.poolUsed+w.dtSec {
		return false
	}
	// Thermal pressure must be unchanged: a cap engaging, releasing, or
	// deepening re-derates capacity and can move placements. A matching
	// nonzero generation tag proves the tagged view untouched since the
	// record; otherwise compare the elements.
	if pr.Gen == 0 || pr.Gen != w.prGen {
		if len(pr.Capped) != len(w.capped) || len(pr.CapScale) != len(w.capScale) {
			return false
		}
		for i, c := range pr.Capped {
			if c != w.capped[i] {
				return false
			}
		}
		for i, v := range pr.CapScale {
			if v != w.capScale[i] {
				return false
			}
		}
	}
	// Set equality, half one: the runnable population must match the entry
	// count. The entry loop below proves the other half — every recorded
	// thread still runnable — and distinct entries plus equal counts force
	// the sets equal.
	if !trusted && runnable != len(w.entries) {
		return false
	}
	for i := range w.entries {
		e := &w.entries[i]
		t := e.t
		if !trusted && !t.Runnable() {
			return false
		}
		// Affinity input: a thread that migrated on the recorded window
		// resumes elsewhere, so the placement inputs changed.
		if t.lastCore != e.lastCore {
			return false
		}
		if e.core >= 0 {
			if e.saturated {
				// Deep backlog: any debt above the ceiling places and
				// grants identically (the grant was capacity-limited).
				if t.pending <= w.satCycles {
					return false
				}
			} else if t.pending != e.pending {
				return false
			}
		}
		// Order: the recorded sequence must remain the unique descending
		// debt order (names breaking ties strictly), so the stable sort
		// reproduces exactly this permutation from any gather order.
		if i+1 < len(w.entries) {
			n := w.entries[i+1].t
			if t.pending < n.pending || (t.pending == n.pending && t.name >= n.name) {
				return false
			}
		}
	}
	return true
}

// ReplayInto re-applies the retained window in ring slot idx: each thread
// drains its recorded grant on its recorded core, the busy-seconds vector
// is copied into busy, and the batched cycle commit runs against cpu —
// byte-identical side effects and Result to the full scheduling pass whose
// inputs Match verified. The returned Result aliases busy, like
// ScheduleThermalInto.
//
//mobicore:hotpath
func (m *Memo) ReplayInto(idx int, busy []float64, cpu *soc.CPU, dt time.Duration) (Result, error) {
	w := &m.wins[idx]
	if cap(busy) < len(w.busySec) {
		//mobilint:ignore one Result slice per window when the caller passes no buffer
		busy = make([]float64, len(w.busySec))
	}
	busy = busy[:len(w.busySec)]
	copy(busy, w.busySec)
	for i := range w.entries {
		e := &w.entries[i]
		if e.core >= 0 && e.granted > 0 {
			e.t.Execute(e.granted, e.core)
		}
	}
	if err := cpu.RunBatch(w.nanos, uint64(dt.Nanoseconds())); err != nil {
		return Result{}, fmt.Errorf("sched: committing window: %w", err)
	}
	return Result{
		BusySeconds:      busy,
		ExecutedCycles:   w.executed,
		ThrottledSeconds: w.throttled,
		PoolUsedSec:      w.poolUsed,
	}, nil
}

// The copy helpers below refresh a memo buffer from a source slice, keeping
// the backing array whenever it is large enough (the growth branches are
// cold; steady-state recording never allocates).

//mobicore:hotpath
func f64Into(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		//mobilint:ignore one-time memo growth; steady-state recording reuses capacity
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

//mobicore:hotpath
func u64Into(dst, src []uint64) []uint64 {
	if cap(dst) < len(src) {
		//mobilint:ignore one-time memo growth; steady-state recording reuses capacity
		dst = make([]uint64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

//mobicore:hotpath
func boolInto(dst, src []bool) []bool {
	if cap(dst) < len(src) {
		//mobilint:ignore one-time memo growth; steady-state recording reuses capacity
		dst = make([]bool, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}
