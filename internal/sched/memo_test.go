package sched

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mobicore/internal/soc"
)

// memoFixture builds a 4-core CPU at a mid-ladder frequency plus one thread
// per pending amount, named t0, t1, ... so name tiebreaks are deterministic.
func memoFixture(t *testing.T, pendings []float64) (*soc.CPU, []*Thread) {
	t.Helper()
	cpu := newCPU(t, 4)
	if err := cpu.SetFreqAll(1_036_800 * soc.KHz); err != nil {
		t.Fatal(err)
	}
	threads := make([]*Thread, len(pendings))
	for i, p := range pendings {
		th := NewThread(fmt.Sprintf("t%d", i))
		th.AddWork(p)
		threads[i] = th
	}
	return cpu, threads
}

func memoSatRate() float64 { return float64(soc.MSM8974Table().Max().Freq) }

// bitsEqual compares floats as bit patterns: the memo contract is
// byte-identical replay, not approximate replay.
func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func requireResultIdentical(t *testing.T, tick int, got, want Result) {
	t.Helper()
	if len(got.BusySeconds) != len(want.BusySeconds) {
		t.Fatalf("tick %d: busy len %d vs %d", tick, len(got.BusySeconds), len(want.BusySeconds))
	}
	for i := range got.BusySeconds {
		if !bitsEqual(got.BusySeconds[i], want.BusySeconds[i]) {
			t.Fatalf("tick %d: core %d busy %x vs %x", tick, i,
				math.Float64bits(got.BusySeconds[i]), math.Float64bits(want.BusySeconds[i]))
		}
	}
	if !bitsEqual(got.ExecutedCycles, want.ExecutedCycles) {
		t.Fatalf("tick %d: executed %v vs %v", tick, got.ExecutedCycles, want.ExecutedCycles)
	}
	if !bitsEqual(got.ThrottledSeconds, want.ThrottledSeconds) {
		t.Fatalf("tick %d: throttled %v vs %v", tick, got.ThrottledSeconds, want.ThrottledSeconds)
	}
	if !bitsEqual(got.PoolUsedSec, want.PoolUsedSec) {
		t.Fatalf("tick %d: pool used %v vs %v", tick, got.PoolUsedSec, want.PoolUsedSec)
	}
}

func requireUniversesIdentical(t *testing.T, tick int, cpuA, cpuB *soc.CPU, thA, thB []*Thread) {
	t.Helper()
	snapA, snapB := cpuA.Snapshot(), cpuB.Snapshot()
	for i := range snapA {
		if snapA[i] != snapB[i] {
			t.Fatalf("tick %d: core %d snapshot %+v vs %+v", tick, i, snapA[i], snapB[i])
		}
	}
	for i := range thA {
		a, b := thA[i], thB[i]
		if !bitsEqual(a.Pending(), b.Pending()) || !bitsEqual(a.Executed(), b.Executed()) || a.LastCore() != b.LastCore() {
			t.Fatalf("tick %d: thread %d state (%v %v %d) vs (%v %v %d)", tick, i,
				a.Pending(), a.Executed(), a.LastCore(), b.Pending(), b.Executed(), b.LastCore())
		}
	}
}

// runMemoVsSlow drives two identical universes for ticks windows: A takes the
// memo fast path whenever Match accepts, B always runs the full scheduler.
// Every tick's Result and both universes' complete state must stay
// bit-identical; it returns how many of A's ticks replayed, split into
// windows that had runnable backlog and idle (empty) windows.
func runMemoVsSlow(t *testing.T, pendings []float64, ticks int, poolSec float64) (fastBusy, fastIdle int) {
	t.Helper()
	cpuA, thA := memoFixture(t, pendings)
	cpuB, thB := memoFixture(t, pendings)
	var schedA, schedB Scheduler
	var memo Memo
	satRate := memoSatRate()
	dt := time.Millisecond
	busyA := make([]float64, cpuA.NumCores())
	busyB := make([]float64, cpuB.NumCores())
	for tick := 0; tick < ticks; tick++ {
		runnable := 0
		for _, th := range thA {
			if th.Runnable() {
				runnable++
			}
		}
		var resA Result
		var err error
		if idx := memo.Match(thA, false, poolSec, Pressure{}); idx >= 0 {
			resA, err = memo.ReplayInto(idx, busyA, cpuA, dt)
			if runnable > 0 {
				fastBusy++
			} else {
				fastIdle++
			}
		} else {
			resA, err = schedA.ScheduleRecordInto(&memo, satRate, busyA, nil, cpuA, thA, dt, poolSec, Pressure{})
		}
		if err != nil {
			t.Fatal(err)
		}
		resB, err := schedB.ScheduleThermalInto(busyB, cpuB, thB, dt, poolSec, Pressure{})
		if err != nil {
			t.Fatal(err)
		}
		requireResultIdentical(t, tick, resA, resB)
		requireUniversesIdentical(t, tick, cpuA, cpuB, thA, thB)
	}
	return fastBusy, fastIdle
}

// TestMemoReplayMatchesFreshSchedule proves the core contract: a replayed
// window leaves every Result field, thread, and core bit-identical to the
// full scheduling pass it stands in for.
func TestMemoReplayMatchesFreshSchedule(t *testing.T) {
	t.Run("saturated distinct debts", func(t *testing.T) {
		fast, _ := runMemoVsSlow(t, []float64{4e12, 3e12, 2e12, 1e12}, 50, Unlimited)
		if fast < 45 {
			t.Errorf("replayed %d of 50 ticks, want at least 45", fast)
		}
	})
	t.Run("saturated under wide pool", func(t *testing.T) {
		// A finite pool far above per-window consumption records limited
		// windows that keep replaying while headroom holds.
		fast, _ := runMemoVsSlow(t, []float64{4e12, 3e12, 2e12, 1e12}, 50, 1.0)
		if fast < 45 {
			t.Errorf("replayed %d of 50 ticks, want at least 45", fast)
		}
	})
	t.Run("oversubscribed alternation", func(t *testing.T) {
		// Eight equal saturated threads on four cores alternate between two
		// serving halves with stable affinities; once both phases are
		// recorded (tick 4 on) every tick replays from its own ring slot.
		fast, _ := runMemoVsSlow(t, []float64{1e13, 1e13, 1e13, 1e13, 1e13, 1e13, 1e13, 1e13}, 60, Unlimited)
		if fast < 50 {
			t.Errorf("replayed %d of 60 ticks, want at least 50", fast)
		}
	})
	t.Run("rotation longer than ring falls back", func(t *testing.T) {
		// Six equal saturated threads on four cores rotate affinities with a
		// period beyond MemoRing, so no retained window ever matches again —
		// the memo must fall back to the slow path, never to wrong output.
		fast, _ := runMemoVsSlow(t, []float64{1e13, 1e13, 1e13, 1e13, 1e13, 1e13}, 30, Unlimited)
		if fast != 0 {
			t.Errorf("replayed %d ticks of an unmemoizable rotation, want 0", fast)
		}
	})
	t.Run("unsaturated drain falls back", func(t *testing.T) {
		// Below the saturation ceiling every grant changes the exact debt
		// the record fingerprinted, so no busy tick may replay — correctness
		// comes from the identity comparison, the count just documents that
		// the memo never pretends a draining window is quiescent. Once the
		// threads empty out, the idle windows replay trivially.
		fastBusy, fastIdle := runMemoVsSlow(t, []float64{2e6, 1.5e6, 1e6, 0.5e6}, 10, Unlimited)
		if fastBusy != 0 {
			t.Errorf("replayed %d busy unsaturated ticks, want 0", fastBusy)
		}
		if fastIdle == 0 {
			t.Error("idle tail should replay its empty windows")
		}
	})
}

// recordSettled runs two recording passes and requires the second to have
// armed. Two are needed for a replayable record: entries fingerprint each
// thread's affinity at window start, and fresh threads only acquire one on
// their first placement — the sim's warmup ticks do the same settling.
func recordSettled(t *testing.T, m *Memo, cpu *soc.CPU, threads []*Thread, poolSec float64, pr Pressure) {
	t.Helper()
	var s Scheduler
	busy := make([]float64, cpu.NumCores())
	for pass := 0; pass < 2; pass++ {
		if _, err := s.ScheduleRecordInto(m, memoSatRate(), busy, nil, cpu, threads, time.Millisecond, poolSec, pr); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Armed() {
		t.Fatal("recording pass did not arm the memo")
	}
}

func boolvec(vals ...bool) []bool { return vals }

// TestMemoMatchInvalidation walks the input fingerprint one axis at a time:
// each case records a window, perturbs exactly one matching precondition, and
// checks Match's verdict.
func TestMemoMatchInvalidation(t *testing.T) {
	pendings := []float64{4e12, 3e12, 2e12, 1e12}
	zero := Pressure{}
	cases := []struct {
		name    string
		recPool float64
		recPr   Pressure
		mutate  func(t *testing.T, threads []*Thread) []*Thread
		pool    float64
		pr      Pressure
		want    bool
	}{
		{"unchanged inputs replay", Unlimited, zero, nil, Unlimited, zero, true},
		{"exact pool headroom boundary replays", 0.05, zero, nil, 0.005, zero, true},
		{"pool below recorded use plus window", 0.05, zero, nil, 0.0049, zero, false},
		{"unlimited record vs finite pool", Unlimited, zero, nil, 1.0, zero, false},
		{"finite record vs unlimited pool", 0.05, zero, nil, Unlimited, zero, false},
		{"thermal cap engages", Unlimited, Pressure{Capped: boolvec(false, false, false, false)},
			nil, Unlimited, Pressure{Capped: boolvec(true, false, false, false)}, false},
		{"cap scale moves", Unlimited, Pressure{Capped: boolvec(true, true, false, false), CapScale: []float64{0.8, 0.8, 1, 1}},
			nil, Unlimited, Pressure{Capped: boolvec(true, true, false, false), CapScale: []float64{0.7, 0.7, 1, 1}}, false},
		{"matching generation skips element compare", Unlimited, Pressure{Capped: boolvec(false, false, false, false), Gen: 7},
			nil, Unlimited, Pressure{Capped: boolvec(true, false, false, false), Gen: 7}, true},
		{"stale generation falls back to elements", Unlimited, Pressure{Capped: boolvec(false, false, false, false), Gen: 7},
			nil, Unlimited, Pressure{Capped: boolvec(false, false, false, false), Gen: 8}, true},
		{"desaturation", Unlimited, zero, func(t *testing.T, threads []*Thread) []*Thread {
			threads[0].DropWork(threads[0].Pending() - 1)
			return threads
		}, Unlimited, zero, false},
		{"affinity migration", Unlimited, zero, func(t *testing.T, threads []*Thread) []*Thread {
			// One cycle on a different core: debt stays saturated and the
			// order stands, only the placement input moved.
			th := threads[0]
			th.Execute(1, (th.LastCore()+1)%4)
			return threads
		}, Unlimited, zero, false},
		{"debt order flips", Unlimited, zero, func(t *testing.T, threads []*Thread) []*Thread {
			threads[3].AddWork(1.5e12) // overtakes threads[2], both stay saturated
			return threads
		}, Unlimited, zero, false},
		{"new runnable thread", Unlimited, zero, func(t *testing.T, threads []*Thread) []*Thread {
			th := NewThread("t9")
			th.AddWork(5e12)
			return append(threads, th)
		}, Unlimited, zero, false},
		{"thread drains away", Unlimited, zero, func(t *testing.T, threads []*Thread) []*Thread {
			threads[3].DropWork(threads[3].Pending())
			return threads
		}, Unlimited, zero, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cpu, threads := memoFixture(t, pendings)
			var m Memo
			recordSettled(t, &m, cpu, threads, tc.recPool, tc.recPr)
			if tc.mutate != nil {
				threads = tc.mutate(t, threads)
			}
			got := m.Match(threads, false, tc.pool, tc.pr) >= 0
			if got != tc.want {
				t.Errorf("Match = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestMemoDrainedRegime covers the starved-pool windows: they replay only
// while the pool is exactly empty and backlog remains.
func TestMemoDrainedRegime(t *testing.T) {
	cpu, threads := memoFixture(t, []float64{4e12, 3e12, 2e12, 1e12})
	var m Memo
	recordSettled(t, &m, cpu, threads, 0, Pressure{})
	if idx := m.Match(threads, false, 0, Pressure{}); idx < 0 {
		t.Fatal("empty pool should replay the drained window")
	}
	if idx := m.Match(threads, false, 0.001, Pressure{}); idx >= 0 {
		t.Error("replenished pool must not replay a drained window")
	}
	for _, th := range threads {
		th.DropWork(th.Pending())
	}
	if idx := m.Match(threads, false, 0, Pressure{}); idx >= 0 {
		t.Error("drained window must not replay once no thread is runnable")
	}
}

// TestMemoSteadyStreakTrust pins the steady-hint semantics: an unbroken
// streak of steady windows lets a slot verified before the streak skip the
// runnable-set scan, and one broken window retires that trust until the slot
// is re-proven the slow way.
func TestMemoSteadyStreakTrust(t *testing.T) {
	cpu, threads := memoFixture(t, []float64{4e12, 3e12, 2e12, 1e12})
	var m Memo
	recordSettled(t, &m, cpu, threads, Unlimited, Pressure{})

	if idx := m.Match(threads, true, Unlimited, Pressure{}); idx < 0 {
		t.Fatal("steady window immediately after record should replay")
	}

	// The steady hint is authoritative by contract: while the streak holds,
	// the set comparison is skipped entirely, so an extra runnable thread the
	// hint (wrongly) vouches absent goes unnoticed. This is exactly why the
	// simulation only raises the hint from workloads that implement it.
	extra := NewThread("t9")
	extra.AddWork(5e12)
	grown := append(append([]*Thread(nil), threads...), extra)
	if idx := m.Match(grown, true, Unlimited, Pressure{}); idx < 0 {
		t.Fatal("steady streak should skip the set scan")
	}

	// One non-steady window breaks the streak and forces the counting scan,
	// which sees five runnable threads against four entries.
	if idx := m.Match(grown, false, Unlimited, Pressure{}); idx >= 0 {
		t.Fatal("broken streak must fall back to the set scan and miss")
	}

	// A fresh steady window does not resurrect the old trust: the slot was
	// last verified before this streak began, so the scan still runs.
	if idx := m.Match(grown, true, Unlimited, Pressure{}); idx >= 0 {
		t.Fatal("trust must not survive a broken streak without re-verification")
	}

	// Back at the recorded population the scan proves the set again, and the
	// match re-verifies the slot for future streaks.
	if idx := m.Match(threads, true, Unlimited, Pressure{}); idx < 0 {
		t.Fatal("restored population should match via the full scan")
	}
}

// TestMemoInvalidateAndRecycle checks the two reset paths: Invalidate drops
// retained windows in place, Recycle returns a fresh memo that records again.
func TestMemoInvalidateAndRecycle(t *testing.T) {
	cpu, threads := memoFixture(t, []float64{4e12, 3e12, 2e12, 1e12})
	var m Memo
	recordSettled(t, &m, cpu, threads, Unlimited, Pressure{})
	m.Invalidate()
	if m.Armed() {
		t.Error("Invalidate should disarm the memo")
	}
	if idx := m.Match(threads, false, Unlimited, Pressure{}); idx >= 0 {
		t.Error("invalidated memo must not match")
	}

	recordSettled(t, &m, cpu, threads, Unlimited, Pressure{})
	m = m.Recycle()
	if m.Armed() {
		t.Error("Recycle should return a disarmed memo")
	}
	if idx := m.Match(threads, false, Unlimited, Pressure{}); idx >= 0 {
		t.Error("recycled memo must not match")
	}
	recordSettled(t, &m, cpu, threads, Unlimited, Pressure{})
	if idx := m.Match(threads, false, Unlimited, Pressure{}); idx < 0 {
		t.Error("recycled memo should record and replay again")
	}
}
