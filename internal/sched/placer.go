package sched

import (
	"errors"
	"math"

	"mobicore/internal/em"
)

// PlaceEnv is the per-window placement view a Placer decides against. The
// scheduler builds it once per window from the CPU snapshot and the
// caller's thermal-pressure report; placers must not mutate it.
type PlaceEnv struct {
	// Online flags each core's hotplug state.
	Online []bool
	// Budget is each core's remaining execution time this window (sec).
	Budget []float64
	// Freq is each core's currently programmed frequency in Hz.
	Freq []float64
	// RankOf maps core id to its cluster's efficiency rank (nil on
	// homogeneous CPUs, meaning every core is rank 0); NumRanks counts the
	// ranks.
	RankOf   []int
	NumRanks int
	// Capped flags cores whose cluster has a thermal frequency cap
	// engaged. May be nil (no pressure telemetry).
	Capped []bool
	// CapScale is the headroom-aware capacity scale of each core's
	// cluster: CapFreq/f_max in (0,1] while capped, 1 while cool. Nil when
	// the caller only knows the boolean cap state; placers then fall back
	// to the fixed thermalDerate.
	CapScale []float64
	// AnyCool reports whether any online core is currently uncapped —
	// the condition under which soft affinity to a capped core is
	// suspended.
	AnyCool bool
	// WindowSec is the scheduling window length in seconds.
	WindowSec float64
}

// isCapped reports core i's thermal-cap flag.
func (e *PlaceEnv) isCapped(i int) bool {
	return i < len(e.Capped) && e.Capped[i]
}

// thermalScale returns core i's headroom-aware capacity scale: CapScale
// when the caller supplied one, the fixed thermalDerate otherwise, 1 while
// cool. Placement capacity claimed on a capped cluster is likely gone by
// the end of the window (the throttle is still stepping down), so it is
// discounted in proportion to how deep the cap already sits.
func (e *PlaceEnv) thermalScale(i int) float64 {
	if !e.isCapped(i) {
		return 1
	}
	if i < len(e.CapScale) && e.CapScale[i] > 0 && e.CapScale[i] <= 1 {
		return e.CapScale[i]
	}
	return thermalDerate
}

// affinityCore returns the thread's previous core when soft affinity
// applies: online, with budget, and not a capped core while a cool one
// exists. Returns -1 when affinity does not decide the placement.
func (e *PlaceEnv) affinityCore(t *Thread) int {
	const eps = 1e-12
	if lc := t.lastCore; lc >= 0 && lc < len(e.Online) && e.Online[lc] && e.Budget[lc] > eps {
		if !(e.AnyCool && e.isCapped(lc)) {
			return lc
		}
	}
	return -1
}

// Placer decides which core a runnable thread executes on this window.
// Implementations must be deterministic and allocation-free on the per-tick
// hot path; they return -1 when no core has budget.
type Placer interface {
	// Name identifies the placer in reports and CLI flags.
	Name() string
	// Place picks the core for t, or -1.
	Place(env *PlaceEnv, t *Thread) int
}

// GreedyPlacer is the original placement rule: soft affinity, then walk
// clusters from most to least efficient picking the most-budget core,
// escalating to a bigger cluster only when the efficient candidate cannot
// fully serve the thread's pending cycles and the bigger cluster offers
// strictly more (thermally derated) capacity — "prefer LITTLE until demand
// justifies big". On homogeneous platforms it reduces exactly to the
// most-budget greedy.
type GreedyPlacer struct{}

// Name implements Placer.
func (GreedyPlacer) Name() string { return "greedy" }

// Place implements Placer.
//
//mobicore:hotpath
func (GreedyPlacer) Place(env *PlaceEnv, t *Thread) int {
	const eps = 1e-12
	if lc := env.affinityCore(t); lc >= 0 {
		return lc
	}
	best := -1
	var bestCap float64
	for r := 0; r < env.NumRanks; r++ {
		cand, candBudget := -1, eps
		for i := range env.Online {
			if env.RankOf != nil && env.RankOf[i] != r {
				continue
			}
			if env.Online[i] && env.Budget[i] > candBudget {
				cand, candBudget = i, env.Budget[i]
			}
		}
		if cand < 0 {
			continue
		}
		capCycles := env.Budget[cand] * env.Freq[cand]
		if env.isCapped(cand) {
			capCycles *= thermalDerate
		}
		if best < 0 || capCycles > bestCap {
			best, bestCap = cand, capCycles
		}
		if bestCap >= t.pending {
			break // efficient enough and fully serves the thread
		}
	}
	return best
}

// EASPlacer is a find_energy_efficient_cpu-style placement rule driven by
// the em energy model: for each runnable thread it estimates the energy of
// executing the thread's pending cycles on each candidate domain at the OPP
// that domain's governor would pick for the resulting per-core rate, and
// places the thread on the cheapest domain that can fully serve it. Unlike
// the greedy, soft affinity is a candidate rather than a short-circuit —
// the previous core wins ties and keeps overflow threads (the kernel also
// prefers prev_cpu at equal energy), but a strictly cheaper domain triggers
// a migration, which is exactly the wake-time cluster migration mainline
// EAS performs. Thermal pressure enters as headroom-aware capacity
// (PlaceEnv.CapScale) rather than a fixed derate. When no domain fits, it
// escalates to the largest derated capacity — the same overflow rule as
// the greedy, so a saturated SoC behaves identically. On homogeneous
// platforms every decision reproduces the greedy bit for bit: with one
// domain the previous core always ties for cheapest, so affinity holds
// whenever the greedy's would, and the fallback candidate is the same
// most-budget core.
type EASPlacer struct {
	model *em.Model
}

// NewEASPlacer builds the EAS placer on an energy model.
func NewEASPlacer(model *em.Model) (*EASPlacer, error) {
	if model == nil {
		return nil, errors.New("sched: EAS placer needs an energy model")
	}
	return &EASPlacer{model: model}, nil
}

// Name implements Placer.
func (p *EASPlacer) Name() string { return "eas" }

// Place implements Placer.
//
//mobicore:hotpath
func (p *EASPlacer) Place(env *PlaceEnv, t *Thread) int {
	const eps = 1e-12
	prev := env.affinityCore(t)
	prevDom := -1
	if prev >= 0 {
		prevDom = p.model.DomainOf(prev)
	}
	bestFit, bestFitDom, bestFitCost := -1, -1, math.Inf(1)
	bestAny := -1
	var bestAnyCap float64
	prevFits, prevCost := false, math.Inf(1)
	for _, di := range p.model.EfficiencyOrder() {
		dom := p.model.Domain(di)
		cand, candBudget := -1, eps
		domBusySec := 0.0
		for _, id := range dom.CoreIDs() {
			if id < len(env.Online) && env.Online[id] {
				domBusySec += env.WindowSec - env.Budget[id]
				if env.Budget[id] > candBudget {
					cand, candBudget = id, env.Budget[id]
				}
			}
		}
		if cand < 0 {
			continue
		}
		capCycles := env.Budget[cand] * env.Freq[cand] * env.thermalScale(cand)
		if bestAny < 0 || capCycles > bestAnyCap {
			bestAny, bestAnyCap = cand, capCycles
		}
		// Feasibility is judged at the domain's (thermally discounted)
		// capacity, not the candidate's currently programmed OPP: the
		// governor follows demand, so a cool idle cluster clocked at its
		// floor is still a valid target — exactly how the kernel sizes
		// candidates by capacity rather than current frequency.
		fitCycles := env.Budget[cand] * dom.Capacity() * env.thermalScale(cand)
		if di == prevDom {
			// Price the previous core itself, not the domain's most-budget
			// candidate: the thread would resume exactly there.
			prevFit := env.Budget[prev] * dom.Capacity() * env.thermalScale(prev)
			if prevFit >= t.pending {
				prevFits = true
				prevCost = p.costPerCycle(dom, p.rateOn(env, prev, t), domBusySec)
			}
		}
		if fitCycles < t.pending {
			continue // cannot fully serve; only an overflow candidate
		}
		if cost := p.costPerCycle(dom, p.rateOn(env, cand, t), domBusySec); cost < bestFitCost {
			bestFit, bestFitDom, bestFitCost = cand, di, cost
		}
	}
	if bestFit >= 0 {
		if prevDom == bestFitDom {
			return prev // cheapest domain is home: plain soft affinity
		}
		if prevFits && prevCost <= bestFitCost {
			return prev // home ties the cheapest alternative: stay put
		}
		return bestFit // strictly cheaper elsewhere: migrate
	}
	if prev >= 0 {
		return prev // nothing fits anywhere: overflow threads stay home
	}
	return bestAny
}

// rateOn estimates the per-core demand rate core i's governor would see
// with the thread placed on it: cycles already committed to the core this
// window plus the thread's debt, over the window.
//
//mobicore:hotpath
func (p *EASPlacer) rateOn(env *PlaceEnv, i int, t *Thread) float64 {
	return ((env.WindowSec-env.Budget[i])*env.Freq[i] + t.pending) / env.WindowSec
}

// costPerCycle prices one cycle of the thread on a domain at the OPP the
// governor would pick for rate. A domain with no work yet this window
// additionally charges its uncore share — waking an idle cluster's cache
// and bus is part of the placement's energy delta, while joining an
// already-busy cluster rides uncore power that is being paid anyway. This
// is the system-level term a bare cost-per-cycle comparison misses: a
// migration that saves a few mW of core power must still amortize the
// target cluster's uncore before it is worthwhile.
//
//mobicore:hotpath
func (p *EASPlacer) costPerCycle(dom *em.Domain, rate, domBusySec float64) float64 {
	const eps = 1e-12
	i := dom.OPPForRate(rate)
	cost := dom.CostPerCycleAt(i)
	if domBusySec <= eps {
		cost += dom.UncorePerCycleAt(i)
	}
	return cost
}
