package sched

import (
	"math/rand"
	"testing"
	"time"

	"mobicore/internal/em"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// crossoverModel builds a 2+2 energy model where the LITTLE ladder's top
// bin costs more per cycle than the big ladder's matching bin — the
// convexity crossover the EAS placer exists to exploit. LITTLE tops out at
// 1 GHz / 1.05 V with a modest C_eff; big reaches 2 GHz with a low-voltage
// 1 GHz bin, so a ~1 GHz thread is cheaper there despite the bigger C_eff.
func crossoverModel(t *testing.T) (*em.Model, *soc.CPU) {
	t.Helper()
	little := soc.MustOPPTable([]soc.OPP{
		{Freq: 400 * soc.MHz, Volt: 0.70},
		{Freq: 700 * soc.MHz, Volt: 0.85},
		{Freq: 1000 * soc.MHz, Volt: 1.05},
	})
	big := soc.MustOPPTable([]soc.OPP{
		{Freq: 500 * soc.MHz, Volt: 0.65},
		{Freq: 1000 * soc.MHz, Volt: 0.70},
		{Freq: 2000 * soc.MHz, Volt: 1.10},
	})
	params := func(ceff, cache float64) power.Params {
		return power.Params{
			CeffFarads:      ceff,
			LeakCoeffWatts:  0.01,
			LeakExponent:    2.5,
			OfflineWatts:    0.001,
			CacheBaseWatts:  cache,
			CacheSlopeWatts: cache,
			BaseWatts:       0.05,
		}
	}
	m, err := em.New([]em.DomainSpec{
		{Name: "LITTLE", CoreIDs: []int{0, 1}, Table: little, Params: params(1.0e-10, 0.010)},
		{Name: "big", CoreIDs: []int{2, 3}, Table: big, Params: params(1.3e-10, 0.030)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crossover sanity: at ~0.95 GHz the big domain's 1 GHz bin (0.70 V)
	// must beat LITTLE's top bin (1.05 V).
	if l, b := m.Domain(0).EnergyPerCycle(0.95e9), m.Domain(1).EnergyPerCycle(0.95e9); l <= b {
		t.Fatalf("fixture lacks the crossover: LITTLE %.3g <= big %.3g", l, b)
	}
	cpu, err := soc.NewClusteredCPU([]soc.Cluster{
		{Name: "LITTLE", NumCores: 2, Table: little},
		{Name: "big", NumCores: 2, Table: big},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clock both domains to their tops so placement capacity reflects the
	// ladders rather than the boot floors.
	for ci, f := range []soc.Hz{1000 * soc.MHz, 2000 * soc.MHz} {
		if err := cpu.SetClusterFreq(ci, f); err != nil {
			t.Fatal(err)
		}
	}
	return m, cpu
}

// TestEASMigratesAtCrossover: a thread whose rate sits just under the
// LITTLE ceiling fits both domains; the greedy keeps it on LITTLE (first
// rank that serves) while EAS migrates it to the big domain's cheaper bin.
func TestEASMigratesAtCrossover(t *testing.T) {
	model, cpu := crossoverModel(t)
	placer, err := NewEASPlacer(model)
	if err != nil {
		t.Fatal(err)
	}
	dt := time.Millisecond
	work := 0.95e6 // 0.95 GHz rate over 1 ms

	greedyCPU, easCPU := cpu, func() *soc.CPU { _, c := crossoverModel(t); return c }()
	var greedy, eas Scheduler
	eas.Placer = placer

	gth, eth := NewThread("hot"), NewThread("hot")
	gth.AddWork(work)
	eth.AddWork(work)
	if _, err := greedy.Schedule(greedyCPU, []*Thread{gth}, dt, Unlimited); err != nil {
		t.Fatal(err)
	}
	if _, err := eas.Schedule(easCPU, []*Thread{eth}, dt, Unlimited); err != nil {
		t.Fatal(err)
	}
	if lc := gth.LastCore(); lc >= 2 {
		t.Errorf("greedy placed crossover thread on big core %d, want LITTLE", lc)
	}
	if lc := eth.LastCore(); lc < 2 {
		t.Errorf("EAS placed crossover thread on LITTLE core %d, want big (cheaper bin)", lc)
	}
}

// TestEASKeepsLowRatesLittle: well under the crossover the efficiency
// island is cheapest and EAS must agree with the greedy.
func TestEASKeepsLowRatesLittle(t *testing.T) {
	model, cpu := crossoverModel(t)
	placer, err := NewEASPlacer(model)
	if err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	s.Placer = placer
	th := NewThread("calm")
	th.AddWork(0.3e6) // 300 MHz rate
	if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
		t.Fatal(err)
	}
	if lc := th.LastCore(); lc >= 2 {
		t.Errorf("EAS placed a 300 MHz thread on big core %d", lc)
	}
}

// TestEASMigratesHomeAgain: once a thread's demand falls back under the
// crossover, EAS moves it off the big domain even though soft affinity
// points there — the wake-time migration greedy never performs.
func TestEASMigratesHomeAgain(t *testing.T) {
	model, cpu := crossoverModel(t)
	placer, err := NewEASPlacer(model)
	if err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	s.Placer = placer
	th := NewThread("burst")
	th.AddWork(0.95e6)
	if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
		t.Fatal(err)
	}
	if th.LastCore() < 2 {
		t.Fatalf("setup: thread on core %d, want big", th.LastCore())
	}
	th.AddWork(0.3e6)
	if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
		t.Fatal(err)
	}
	if lc := th.LastCore(); lc >= 2 {
		t.Errorf("EAS left a 300 MHz thread on big core %d after its burst ended", lc)
	}
}

// TestEASHomogeneousEquivalence is the greedy-equivalence guarantee: on a
// single-domain platform the EAS placer reproduces the greedy's placement
// bit for bit across randomized workloads, windows, and pressure flags.
func TestEASHomogeneousEquivalence(t *testing.T) {
	table := soc.MSM8974Table()
	params := power.Params{
		CeffFarads:      1.35e-10,
		LeakCoeffWatts:  0.07,
		LeakExponent:    3.0,
		OfflineWatts:    0.002,
		CacheBaseWatts:  0.04,
		CacheSlopeWatts: 0.04,
		BaseWatts:       0.08,
	}
	model, err := em.New([]em.DomainSpec{{Name: "cpu", CoreIDs: []int{0, 1, 2, 3}, Table: table, Params: params}})
	if err != nil {
		t.Fatal(err)
	}
	placer, err := NewEASPlacer(model)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nThreads := 1 + rng.Intn(6)
		works := make([]float64, nThreads)
		for i := range works {
			works[i] = float64(rng.Intn(3_000_000))
		}
		capped := make([]bool, 4)
		for i := range capped {
			capped[i] = rng.Intn(4) == 0
		}
		online := 1 + rng.Intn(4)
		run := func(p Placer) []float64 {
			cpu, err := soc.NewCPU(4, table)
			if err != nil {
				t.Fatal(err)
			}
			if err := cpu.SetOnlineCount(online); err != nil {
				t.Fatal(err)
			}
			s := Scheduler{Placer: p}
			threads := make([]*Thread, nThreads)
			for i := range threads {
				threads[i] = NewThread("t" + string(rune('a'+i)))
				threads[i].AddWork(works[i])
			}
			// Two windows so soft affinity exercises both paths.
			for w := 0; w < 2; w++ {
				if _, err := s.ScheduleWithPressure(cpu, threads, time.Millisecond, Unlimited, capped); err != nil {
					t.Fatal(err)
				}
				for i := range threads {
					threads[i].AddWork(works[i] / 2)
				}
			}
			out := make([]float64, nThreads)
			for i, th := range threads {
				out[i] = float64(th.LastCore())
			}
			return out
		}
		g, e := run(GreedyPlacer{}), run(placer)
		for i := range g {
			if g[i] != e[i] {
				t.Fatalf("trial %d: thread %d placed on %v (greedy) vs %v (eas)", trial, i, g[i], e[i])
			}
		}
	}
}

// TestEASHeadroomAwareDerate: with CapScale supplied, a deep cap shrinks a
// big candidate's usable capacity below the LITTLE alternative, steering an
// overflow thread to the cool cluster — while a shallow cap (scale above
// the fixed derate) still lets the big cluster win.
func TestEASHeadroomAwareDerate(t *testing.T) {
	model, _ := crossoverModel(t)
	placer, err := NewEASPlacer(model)
	if err != nil {
		t.Fatal(err)
	}
	run := func(scale float64) int {
		_, cpu := crossoverModel(t)
		for ci, f := range []soc.Hz{1000 * soc.MHz, 2000 * soc.MHz} {
			if err := cpu.SetClusterFreq(ci, f); err != nil {
				t.Fatal(err)
			}
		}
		s := Scheduler{Placer: placer}
		th := NewThread("hog")
		th.AddWork(1e12) // fits nowhere: overflow path
		pr := Pressure{
			Capped:   []bool{false, false, true, true},
			CapScale: []float64{1, 1, scale, scale},
		}
		if _, err := s.ScheduleThermal(cpu, []*Thread{th}, 10*time.Millisecond, Unlimited, pr); err != nil {
			t.Fatal(err)
		}
		return th.LastCore()
	}
	// Deep cap: big capacity 2 GHz × 0.3 = 600 MHz < LITTLE's 1 GHz.
	if lc := run(0.3); lc >= 2 {
		t.Errorf("deep cap: hog on big core %d, want LITTLE", lc)
	}
	// Shallow cap: 2 GHz × 0.9 = 1.8 GHz still beats LITTLE.
	if lc := run(0.9); lc < 2 {
		t.Errorf("shallow cap: hog on LITTLE core %d, want big", lc)
	}
}

// TestPlacerNames locks the CLI-visible names.
func TestPlacerNames(t *testing.T) {
	if (GreedyPlacer{}).Name() != "greedy" {
		t.Error("greedy placer name changed")
	}
	model, _ := crossoverModel(t)
	p, err := NewEASPlacer(model)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "eas" {
		t.Error("eas placer name changed")
	}
	if _, err := NewEASPlacer(nil); err == nil {
		t.Error("nil model accepted")
	}
}
