package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobicore/internal/soc"
)

func newCPU(t *testing.T, cores int) *soc.CPU {
	t.Helper()
	cpu, err := soc.NewCPU(cores, soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestThreadLifecycle(t *testing.T) {
	th := NewThread("worker")
	if th.Runnable() {
		t.Error("fresh thread should not be runnable")
	}
	th.AddWork(100)
	th.AddWork(-5) // ignored
	if got := th.Pending(); got != 100 {
		t.Errorf("pending = %v, want 100", got)
	}
	if got := th.DropWork(30); got != 30 {
		t.Errorf("dropped = %v, want 30", got)
	}
	if got := th.DropWork(1000); got != 70 {
		t.Errorf("over-drop = %v, want 70", got)
	}
	if th.Runnable() {
		t.Error("drained thread should not be runnable")
	}
	if th.LastCore() != -1 {
		t.Errorf("unscheduled thread LastCore = %d, want -1", th.LastCore())
	}
}

func TestScheduleExecutesWork(t *testing.T) {
	cpu := newCPU(t, 4)
	if err := cpu.SetFreqAll(1_036_800 * soc.KHz); err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	th := NewThread("t0")
	th.AddWork(500_000) // ~0.48 ms at 1.0368 GHz
	res, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if th.Pending() != 0 {
		t.Errorf("pending = %v, want 0", th.Pending())
	}
	if math.Abs(res.ExecutedCycles-500_000) > 1 {
		t.Errorf("executed = %v, want 500000", res.ExecutedCycles)
	}
	wantSec := 500_000 / 1.0368e9
	if math.Abs(res.BusySeconds[th.LastCore()]-wantSec) > 1e-9 {
		t.Errorf("busy = %v, want %v", res.BusySeconds[th.LastCore()], wantSec)
	}
}

func TestScheduleBalancesThreads(t *testing.T) {
	cpu := newCPU(t, 4)
	if err := cpu.SetFreqAll(300 * soc.MHz); err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	threads := make([]*Thread, 4)
	for i := range threads {
		threads[i] = NewThread("t" + string(rune('0'+i)))
		threads[i].AddWork(1e9) // far more than one tick can serve
	}
	res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	// Each thread should land on its own core, each fully busy.
	cores := map[int]bool{}
	for _, th := range threads {
		cores[th.LastCore()] = true
	}
	if len(cores) != 4 {
		t.Errorf("4 heavy threads should spread over 4 cores, got %v", cores)
	}
	for i, b := range res.BusySeconds {
		if math.Abs(b-0.001) > 1e-9 {
			t.Errorf("core %d busy %v, want full tick", i, b)
		}
	}
}

func TestScheduleAffinity(t *testing.T) {
	cpu := newCPU(t, 4)
	var s Scheduler
	th := NewThread("sticky")
	th.AddWork(1000)
	if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
		t.Fatal(err)
	}
	home := th.LastCore()
	for i := 0; i < 5; i++ {
		th.AddWork(1000)
		if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
			t.Fatal(err)
		}
		if th.LastCore() != home {
			t.Errorf("iteration %d: thread migrated from %d to %d with no pressure", i, home, th.LastCore())
		}
	}
}

func TestScheduleSkipsOfflineCores(t *testing.T) {
	cpu := newCPU(t, 4)
	if err := cpu.SetOnlineCount(1); err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	threads := []*Thread{NewThread("a"), NewThread("b")}
	for _, th := range threads {
		th.AddWork(1e9)
	}
	res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if res.BusySeconds[i] != 0 {
			t.Errorf("offline core %d executed work", i)
		}
	}
	for _, th := range threads {
		if th.LastCore() > 0 {
			t.Errorf("thread placed on offline core %d", th.LastCore())
		}
	}
}

// TestBandwidthPoolCapsAggregate: the shared pool caps total busy seconds
// across cores — the §4.1.1 CPU bandwidth control.
func TestBandwidthPoolCapsAggregate(t *testing.T) {
	cpu := newCPU(t, 4)
	var s Scheduler
	threads := make([]*Thread, 4)
	for i := range threads {
		threads[i] = NewThread("t" + string(rune('0'+i)))
		threads[i].AddWork(1e9)
	}
	pool := 0.002 // two core-milliseconds across four cores
	res, err := s.Schedule(cpu, threads, time.Millisecond, pool)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, b := range res.BusySeconds {
		total += b
	}
	if total > pool+1e-9 {
		t.Errorf("total busy %v exceeds pool %v", total, pool)
	}
	if math.Abs(res.PoolUsedSec-total) > 1e-9 {
		t.Errorf("PoolUsedSec %v != total busy %v", res.PoolUsedSec, total)
	}
	if res.ThrottledSeconds == 0 {
		t.Error("pool exhaustion with pending work should report throttling")
	}
}

func TestZeroPoolRunsNothing(t *testing.T) {
	cpu := newCPU(t, 2)
	var s Scheduler
	th := NewThread("starved")
	th.AddWork(1000)
	res, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedCycles != 0 {
		t.Errorf("zero pool executed %v cycles", res.ExecutedCycles)
	}
	if th.Pending() != 1000 {
		t.Errorf("pending = %v, want untouched 1000", th.Pending())
	}
}

func TestScheduleValidation(t *testing.T) {
	var s Scheduler
	if _, err := s.Schedule(nil, nil, time.Millisecond, Unlimited); err == nil {
		t.Error("nil cpu accepted")
	}
	cpu := newCPU(t, 2)
	if _, err := s.Schedule(cpu, nil, 0, Unlimited); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := s.Schedule(cpu, nil, -time.Millisecond, Unlimited); err == nil {
		t.Error("negative window accepted")
	}
}

func TestScheduleDeterminism(t *testing.T) {
	run := func() []float64 {
		cpu := newCPU(t, 4)
		var s Scheduler
		threads := []*Thread{NewThread("b"), NewThread("a"), NewThread("c")}
		threads[0].AddWork(5e5)
		threads[1].AddWork(5e5)
		threads[2].AddWork(3e5)
		res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
		if err != nil {
			t.Fatal(err)
		}
		return res.BusySeconds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic schedule: %v vs %v", a, b)
		}
	}
}

// TestWorkConservationProperty: cycles executed never exceed cycles
// deposited, and executed + remaining pending == deposited.
func TestWorkConservationProperty(t *testing.T) {
	cpu, err := soc.NewCPU(4, soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	prop := func(amounts [4]uint32) bool {
		threads := make([]*Thread, 4)
		var deposited float64
		for i := range threads {
			threads[i] = NewThread("p" + string(rune('0'+i)))
			amt := float64(amounts[i] % 10_000_000)
			threads[i].AddWork(amt)
			deposited += amt
		}
		res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
		if err != nil {
			return false
		}
		remaining := TotalPending(threads)
		return math.Abs(res.ExecutedCycles+remaining-deposited) < 1e-3 &&
			res.ExecutedCycles <= deposited+1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// thermalTestCPU builds a 2+2 big.LITTLE CPU with the big cluster's ladder
// strictly faster, for the thermal-pressure placement tests.
func thermalTestCPU(t *testing.T) *soc.CPU {
	t.Helper()
	little, err := soc.UniformTable(3, 400*soc.MHz, 1000*soc.MHz, 0.80, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	big, err := soc.UniformTable(3, 500*soc.MHz, 1200*soc.MHz, 0.85, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := soc.NewClusteredCPU([]soc.Cluster{
		{Name: "LITTLE", NumCores: 2, Table: little},
		{Name: "big", NumCores: 2, Table: big},
	})
	if err != nil {
		t.Fatal(err)
	}
	for ci, f := range []soc.Hz{1000 * soc.MHz, 1200 * soc.MHz} {
		if err := cpu.SetClusterFreq(ci, f); err != nil {
			t.Fatal(err)
		}
	}
	return cpu
}

// TestThermalPressureSteersToCoolCluster: a backlog thread that would
// normally escalate onto the faster big cluster stays on the cool LITTLE
// cluster when the big cores are flagged thermally capped — the derated
// big capacity (1200 MHz × 0.75 = 900 MHz) no longer beats LITTLE's 1000.
func TestThermalPressureSteersToCoolCluster(t *testing.T) {
	var s Scheduler
	dt := 10 * time.Millisecond

	// Without pressure the huge thread escalates to a big core.
	cpu := thermalTestCPU(t)
	th := NewThread("hog")
	th.AddWork(1e12)
	if _, err := s.ScheduleWithPressure(cpu, []*Thread{th}, dt, Unlimited, nil); err != nil {
		t.Fatal(err)
	}
	if lc := th.LastCore(); lc < 2 {
		t.Fatalf("uncapped: hog placed on core %d, want a big core (2-3)", lc)
	}

	// With the big cluster capped, placement prefers the cool LITTLE one.
	cpu = thermalTestCPU(t)
	th = NewThread("hog")
	th.AddWork(1e12)
	capped := []bool{false, false, true, true}
	if _, err := s.ScheduleWithPressure(cpu, []*Thread{th}, dt, Unlimited, capped); err != nil {
		t.Fatal(err)
	}
	if lc := th.LastCore(); lc >= 2 {
		t.Fatalf("capped: hog placed on big core %d, want a LITTLE core", lc)
	}
}

// TestScheduleMatchesScheduleWithNilPressure locks the compatibility
// contract: Schedule is exactly ScheduleWithPressure with no flags.
func TestScheduleMatchesScheduleWithNilPressure(t *testing.T) {
	var s Scheduler
	dt := 10 * time.Millisecond
	run := func(viaPlain bool) []float64 {
		cpu := thermalTestCPU(t)
		threads := []*Thread{NewThread("a"), NewThread("b"), NewThread("c")}
		for _, th := range threads {
			th.AddWork(5e6)
		}
		var res Result
		var err error
		if viaPlain {
			res, err = s.Schedule(cpu, threads, dt, Unlimited)
		} else {
			res, err = s.ScheduleWithPressure(cpu, threads, dt, Unlimited, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.BusySeconds
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("core %d busy diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestThermalPressureBreaksAffinity: a persistent thread pinned to a big
// core by soft affinity must migrate once that cluster caps while a cool
// cluster exists — otherwise a game's render loop rides the throttled
// cluster for the whole session.
func TestThermalPressureBreaksAffinity(t *testing.T) {
	var s Scheduler
	dt := 10 * time.Millisecond
	cpu := thermalTestCPU(t)
	th := NewThread("render")
	th.AddWork(1e12)
	if _, err := s.ScheduleWithPressure(cpu, []*Thread{th}, dt, Unlimited, nil); err != nil {
		t.Fatal(err)
	}
	if lc := th.LastCore(); lc < 2 {
		t.Fatalf("setup: thread on core %d, want a big core", lc)
	}
	// Big cluster caps: the next window must move the thread to LITTLE.
	th.AddWork(1e12)
	capped := []bool{false, false, true, true}
	if _, err := s.ScheduleWithPressure(cpu, []*Thread{th}, dt, Unlimited, capped); err != nil {
		t.Fatal(err)
	}
	if lc := th.LastCore(); lc >= 2 {
		t.Errorf("thread stayed on capped big core %d, want migration to LITTLE", lc)
	}
	// With every cluster capped there is nowhere cooler: affinity holds.
	th.AddWork(1e12)
	lcBefore := th.LastCore()
	allCapped := []bool{true, true, true, true}
	if _, err := s.ScheduleWithPressure(cpu, []*Thread{th}, dt, Unlimited, allCapped); err != nil {
		t.Fatal(err)
	}
	if th.LastCore() != lcBefore {
		t.Errorf("uniformly capped SoC broke affinity: %d -> %d", lcBefore, th.LastCore())
	}
}

// TestScheduleThermalIntoReusesBuffer: the Into variant must return results
// identical to ScheduleThermal while writing busy seconds into the caller's
// buffer — including zeroing stale entries from the previous window.
func TestScheduleThermalIntoReusesBuffer(t *testing.T) {
	fresh := newCPU(t, 4)
	pooled := newCPU(t, 4)
	for _, cpu := range []*soc.CPU{fresh, pooled} {
		if err := cpu.SetFreqAll(1_036_800 * soc.KHz); err != nil {
			t.Fatal(err)
		}
	}
	mkThreads := func() []*Thread {
		ths := make([]*Thread, 3)
		for i := range ths {
			ths[i] = NewThread("t" + string(rune('0'+i)))
			ths[i].AddWork(400_000)
		}
		return ths
	}
	var sa, sb Scheduler
	// Poison the reused buffer so a missing zeroing pass shows up.
	buf := []float64{99, 99, 99, 99}
	for window := 0; window < 3; window++ {
		ra, err := sa.ScheduleThermal(fresh, mkThreads(), time.Millisecond, Unlimited, Pressure{})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sb.ScheduleThermalInto(buf, pooled, mkThreads(), time.Millisecond, Unlimited, Pressure{})
		if err != nil {
			t.Fatal(err)
		}
		buf = rb.BusySeconds
		if ra.ExecutedCycles != rb.ExecutedCycles {
			t.Fatalf("window %d: executed %v != %v", window, ra.ExecutedCycles, rb.ExecutedCycles)
		}
		if len(ra.BusySeconds) != len(rb.BusySeconds) {
			t.Fatalf("window %d: busy lengths differ", window)
		}
		for i := range ra.BusySeconds {
			if ra.BusySeconds[i] != rb.BusySeconds[i] {
				t.Errorf("window %d core %d: busy %v != %v", window, i, ra.BusySeconds[i], rb.BusySeconds[i])
			}
		}
	}
	// A too-small buffer still works (the Into path grows it).
	var sc Scheduler
	rc, err := sc.ScheduleThermalInto(make([]float64, 1), newCPU(t, 4), mkThreads(), time.Millisecond, Unlimited, Pressure{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.BusySeconds) != 4 {
		t.Errorf("grown buffer length = %d, want 4", len(rc.BusySeconds))
	}
}
