package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobicore/internal/soc"
)

func newCPU(t *testing.T, cores int) *soc.CPU {
	t.Helper()
	cpu, err := soc.NewCPU(cores, soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestThreadLifecycle(t *testing.T) {
	th := NewThread("worker")
	if th.Runnable() {
		t.Error("fresh thread should not be runnable")
	}
	th.AddWork(100)
	th.AddWork(-5) // ignored
	if got := th.Pending(); got != 100 {
		t.Errorf("pending = %v, want 100", got)
	}
	if got := th.DropWork(30); got != 30 {
		t.Errorf("dropped = %v, want 30", got)
	}
	if got := th.DropWork(1000); got != 70 {
		t.Errorf("over-drop = %v, want 70", got)
	}
	if th.Runnable() {
		t.Error("drained thread should not be runnable")
	}
	if th.LastCore() != -1 {
		t.Errorf("unscheduled thread LastCore = %d, want -1", th.LastCore())
	}
}

func TestScheduleExecutesWork(t *testing.T) {
	cpu := newCPU(t, 4)
	if err := cpu.SetFreqAll(1_036_800 * soc.KHz); err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	th := NewThread("t0")
	th.AddWork(500_000) // ~0.48 ms at 1.0368 GHz
	res, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if th.Pending() != 0 {
		t.Errorf("pending = %v, want 0", th.Pending())
	}
	if math.Abs(res.ExecutedCycles-500_000) > 1 {
		t.Errorf("executed = %v, want 500000", res.ExecutedCycles)
	}
	wantSec := 500_000 / 1.0368e9
	if math.Abs(res.BusySeconds[th.LastCore()]-wantSec) > 1e-9 {
		t.Errorf("busy = %v, want %v", res.BusySeconds[th.LastCore()], wantSec)
	}
}

func TestScheduleBalancesThreads(t *testing.T) {
	cpu := newCPU(t, 4)
	if err := cpu.SetFreqAll(300 * soc.MHz); err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	threads := make([]*Thread, 4)
	for i := range threads {
		threads[i] = NewThread("t" + string(rune('0'+i)))
		threads[i].AddWork(1e9) // far more than one tick can serve
	}
	res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	// Each thread should land on its own core, each fully busy.
	cores := map[int]bool{}
	for _, th := range threads {
		cores[th.LastCore()] = true
	}
	if len(cores) != 4 {
		t.Errorf("4 heavy threads should spread over 4 cores, got %v", cores)
	}
	for i, b := range res.BusySeconds {
		if math.Abs(b-0.001) > 1e-9 {
			t.Errorf("core %d busy %v, want full tick", i, b)
		}
	}
}

func TestScheduleAffinity(t *testing.T) {
	cpu := newCPU(t, 4)
	var s Scheduler
	th := NewThread("sticky")
	th.AddWork(1000)
	if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
		t.Fatal(err)
	}
	home := th.LastCore()
	for i := 0; i < 5; i++ {
		th.AddWork(1000)
		if _, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, Unlimited); err != nil {
			t.Fatal(err)
		}
		if th.LastCore() != home {
			t.Errorf("iteration %d: thread migrated from %d to %d with no pressure", i, home, th.LastCore())
		}
	}
}

func TestScheduleSkipsOfflineCores(t *testing.T) {
	cpu := newCPU(t, 4)
	if err := cpu.SetOnlineCount(1); err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	threads := []*Thread{NewThread("a"), NewThread("b")}
	for _, th := range threads {
		th.AddWork(1e9)
	}
	res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if res.BusySeconds[i] != 0 {
			t.Errorf("offline core %d executed work", i)
		}
	}
	for _, th := range threads {
		if th.LastCore() > 0 {
			t.Errorf("thread placed on offline core %d", th.LastCore())
		}
	}
}

// TestBandwidthPoolCapsAggregate: the shared pool caps total busy seconds
// across cores — the §4.1.1 CPU bandwidth control.
func TestBandwidthPoolCapsAggregate(t *testing.T) {
	cpu := newCPU(t, 4)
	var s Scheduler
	threads := make([]*Thread, 4)
	for i := range threads {
		threads[i] = NewThread("t" + string(rune('0'+i)))
		threads[i].AddWork(1e9)
	}
	pool := 0.002 // two core-milliseconds across four cores
	res, err := s.Schedule(cpu, threads, time.Millisecond, pool)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, b := range res.BusySeconds {
		total += b
	}
	if total > pool+1e-9 {
		t.Errorf("total busy %v exceeds pool %v", total, pool)
	}
	if math.Abs(res.PoolUsedSec-total) > 1e-9 {
		t.Errorf("PoolUsedSec %v != total busy %v", res.PoolUsedSec, total)
	}
	if res.ThrottledSeconds == 0 {
		t.Error("pool exhaustion with pending work should report throttling")
	}
}

func TestZeroPoolRunsNothing(t *testing.T) {
	cpu := newCPU(t, 2)
	var s Scheduler
	th := NewThread("starved")
	th.AddWork(1000)
	res, err := s.Schedule(cpu, []*Thread{th}, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedCycles != 0 {
		t.Errorf("zero pool executed %v cycles", res.ExecutedCycles)
	}
	if th.Pending() != 1000 {
		t.Errorf("pending = %v, want untouched 1000", th.Pending())
	}
}

func TestScheduleValidation(t *testing.T) {
	var s Scheduler
	if _, err := s.Schedule(nil, nil, time.Millisecond, Unlimited); err == nil {
		t.Error("nil cpu accepted")
	}
	cpu := newCPU(t, 2)
	if _, err := s.Schedule(cpu, nil, 0, Unlimited); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := s.Schedule(cpu, nil, -time.Millisecond, Unlimited); err == nil {
		t.Error("negative window accepted")
	}
}

func TestScheduleDeterminism(t *testing.T) {
	run := func() []float64 {
		cpu := newCPU(t, 4)
		var s Scheduler
		threads := []*Thread{NewThread("b"), NewThread("a"), NewThread("c")}
		threads[0].AddWork(5e5)
		threads[1].AddWork(5e5)
		threads[2].AddWork(3e5)
		res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
		if err != nil {
			t.Fatal(err)
		}
		return res.BusySeconds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic schedule: %v vs %v", a, b)
		}
	}
}

// TestWorkConservationProperty: cycles executed never exceed cycles
// deposited, and executed + remaining pending == deposited.
func TestWorkConservationProperty(t *testing.T) {
	cpu, err := soc.NewCPU(4, soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	var s Scheduler
	prop := func(amounts [4]uint32) bool {
		threads := make([]*Thread, 4)
		var deposited float64
		for i := range threads {
			threads[i] = NewThread("p" + string(rune('0'+i)))
			amt := float64(amounts[i] % 10_000_000)
			threads[i].AddWork(amt)
			deposited += amt
		}
		res, err := s.Schedule(cpu, threads, time.Millisecond, Unlimited)
		if err != nil {
			return false
		}
		remaining := TotalPending(threads)
		return math.Abs(res.ExecutedCycles+remaining-deposited) < 1e-3 &&
			res.ExecutedCycles <= deposited+1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}
