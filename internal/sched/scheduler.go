package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobicore/internal/soc"
)

// Result reports what one scheduling window executed.
type Result struct {
	// BusySeconds is per-core execution time, indexed by core id.
	BusySeconds []float64
	// ExecutedCycles is the total cycles drained from all threads.
	ExecutedCycles float64
	// ThrottledSeconds is runnable time denied by the bandwidth quota:
	// time cores could have executed pending work but the quota forbade.
	ThrottledSeconds float64
	// PoolUsedSec is the bandwidth-pool time consumed this window.
	PoolUsedSec float64
}

// Utilization returns per-core busy fraction for a window of dt.
func (r Result) Utilization(dt time.Duration) []float64 {
	return r.UtilizationInto(nil, dt)
}

// UtilizationInto is Utilization writing into dst when it has the
// capacity, so per-tick callers can reuse one buffer. It returns the
// filled slice.
//
//mobicore:hotpath
func (r Result) UtilizationInto(dst []float64, dt time.Duration) []float64 {
	if cap(dst) < len(r.BusySeconds) {
		//mobilint:ignore one-time buffer growth; steady-state callers pass a full-size buffer
		dst = make([]float64, len(r.BusySeconds))
	}
	dst = dst[:len(r.BusySeconds)]
	if dt <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, b := range r.BusySeconds {
		dst[i] = b / dt.Seconds()
		if dst[i] > 1 {
			dst[i] = 1
		}
	}
	return dst
}

// Scheduler load-balances threads across online cores each window. It keeps
// soft affinity (a thread prefers its previous core while that core has
// budget) and otherwise delegates placement to its Placer — by default the
// deterministic longest-processing-time greedy that stands in for the
// kernel's balancer; install an EASPlacer for energy-aware placement. The
// zero value is ready to use and places greedily.
//
// A Scheduler reuses per-window scratch buffers across calls and is
// therefore not safe for concurrent use; each Sim owns its own instance
// (the fleet driver gives every cell its own Sim).
type Scheduler struct {
	// Placer decides per-thread core placement. Nil means GreedyPlacer.
	Placer Placer

	// Per-window scratch, reused to keep the per-tick path allocation-free.
	snap      []soc.CoreSnapshot
	budget    []float64
	online    []bool
	freq      []float64
	busyNanos []uint64
	runnable  byDebt
	env       PlaceEnv
}

// byDebt orders threads largest pending debt first, name breaking ties,
// so runs are deterministic. Pointer-receiver methods let sort.Stable
// take &s.runnable without boxing a fresh slice header per window.
type byDebt []*Thread

func (r *byDebt) Len() int           { return len(*r) }
func (r *byDebt) Swap(i, j int)      { (*r)[i], (*r)[j] = (*r)[j], (*r)[i] }
func (r *byDebt) Less(i, j int) bool { return debtLess((*r)[i], (*r)[j]) }

//mobicore:hotpath
func debtLess(a, b *Thread) bool {
	if a.pending != b.pending {
		return a.pending > b.pending
	}
	return a.name < b.name
}

// ErrBadQuota rejects malformed bandwidth budgets.
var ErrBadQuota = errors.New("sched: invalid bandwidth budget")

// Unlimited disables the bandwidth pool for a scheduling window.
const Unlimited = -1.0

// thermalDerate scales the advertised capacity of a thermally capped core
// during placement when no headroom-aware scale is available. A capped
// cluster is not just slower now — its throttle is still stepping down, so
// capacity claimed at placement time is likely gone by the end of the
// window. Derating steers escalation and spillover toward the cool cluster
// at near-equal nominal capacity.
const thermalDerate = 0.75

// Pressure is the per-core thermal-pressure view a caller hands the
// scheduler: which cores sit behind an engaged cluster cap, and (optionally)
// how deep each cap is as a capacity fraction. Zero value means no
// pressure.
type Pressure struct {
	// Capped flags cores whose cluster currently has a thermal frequency
	// cap engaged.
	Capped []bool
	// CapScale is each core's headroom-aware capacity scale
	// (CapFreq/f_max, in (0,1] while capped, 1 while cool). Optional;
	// placers fall back to the fixed thermalDerate when nil.
	CapScale []float64
	// Gen optionally fingerprints the view: callers that rebuild Capped
	// and CapScale only when a monotonic cap generation moves can tag the
	// view with that generation, letting the memo prove "pressure
	// unchanged" with one integer compare. Zero means untagged, and
	// consumers fall back to comparing the elements.
	Gen uint64
}

// placer returns the installed Placer, defaulting to the greedy.
func (s *Scheduler) placer() Placer {
	if s.Placer != nil {
		return s.Placer
	}
	return GreedyPlacer{}
}

// Schedule executes up to one window dt of work from threads on cpu's
// online cores. poolSec is the shared CPU bandwidth remaining this
// enforcement period (CFS group-quota semantics, the §4.1.1 global CPU
// bandwidth): total busy seconds across all cores this window may not
// exceed it, but any single core may run at full speed while the pool
// lasts. Pass Unlimited (or any negative value) for no cap. Schedule
// updates cpu cycle accounting via soc.CPU.Run and returns per-core busy
// time plus the pool time actually consumed.
func (s *Scheduler) Schedule(cpu *soc.CPU, threads []*Thread, dt time.Duration, poolSec float64) (Result, error) {
	return s.ScheduleThermal(cpu, threads, dt, poolSec, Pressure{})
}

// ScheduleWithPressure is Schedule with a boolean per-core thermal-pressure
// view: capped[i] true means core i's cluster currently has a thermal
// frequency cap engaged, so placement treats its effective capacity as
// reduced (thermalDerate) and steers backlog toward cool clusters. nil
// capped (or a homogeneous platform, where derating is uniform) reproduces
// Schedule exactly.
func (s *Scheduler) ScheduleWithPressure(cpu *soc.CPU, threads []*Thread, dt time.Duration, poolSec float64, capped []bool) (Result, error) {
	return s.ScheduleThermal(cpu, threads, dt, poolSec, Pressure{Capped: capped})
}

// ScheduleThermal is the full-signal entry point: ScheduleWithPressure plus
// the optional headroom-aware capacity scale consumed by energy-aware
// placers. The returned Result owns a freshly allocated BusySeconds slice;
// per-tick callers that want a zero-allocation window pass their own buffer
// to ScheduleThermalInto instead.
func (s *Scheduler) ScheduleThermal(cpu *soc.CPU, threads []*Thread, dt time.Duration, poolSec float64, pr Pressure) (Result, error) {
	return s.ScheduleThermalInto(nil, cpu, threads, dt, poolSec, pr)
}

// ScheduleThermalInto is ScheduleThermal writing the per-core busy seconds
// into busy when it has the capacity (the slice is zeroed and resized to
// the core count), so a per-tick caller can reuse one buffer across windows
// and the scheduler allocates nothing in steady state. A nil or undersized
// busy falls back to a fresh allocation, reproducing ScheduleThermal. The
// returned Result aliases busy — the caller owns the buffer and must not
// reuse it until it is done with the Result.
//
//mobicore:hotpath
func (s *Scheduler) ScheduleThermalInto(busy []float64, cpu *soc.CPU, threads []*Thread, dt time.Duration, poolSec float64, pr Pressure) (Result, error) {
	return s.scheduleInto(nil, 0, busy, nil, cpu, threads, dt, poolSec, pr)
}

// ScheduleRecordInto is ScheduleThermalInto that additionally fingerprints
// the window into rec for the quiescent-tick fast path: the per-thread
// placements and grants, the busy vector, the batched commit, and the
// pressure view are retained, and rec arms (rec.Valid) when the window is
// replayable — no pool clamping and no throttling. satRate is the capacity
// ceiling for the saturation classing (see Memo.begin); callers pass the
// platform's top ladder frequency. A nil rec reproduces ScheduleThermalInto
// exactly.
//
// snap, when non-nil, is the caller's current view of the CPU — each core's
// online state and programmed frequency, exactly as SnapshotInto would
// report them — and the scheduler trusts it instead of taking its own
// locked snapshot (the per-tick caller already maintains such a mirror).
// Active/Idle distinctions in the view are ignored; only offline-ness and
// frequency feed scheduling. A nil snap reproduces the self-snapshotting
// behaviour.
//
//mobicore:hotpath
func (s *Scheduler) ScheduleRecordInto(rec *Memo, satRate float64, busy []float64, snap []soc.CoreSnapshot, cpu *soc.CPU, threads []*Thread, dt time.Duration, poolSec float64, pr Pressure) (Result, error) {
	return s.scheduleInto(rec, satRate, busy, snap, cpu, threads, dt, poolSec, pr)
}

// scheduleInto is the shared scheduling body; rec, when non-nil, records the
// window into the memo (see ScheduleRecordInto); snap, when non-nil, is the
// caller-maintained CPU view that replaces the locked snapshot.
//
//mobicore:hotpath
func (s *Scheduler) scheduleInto(rec *Memo, satRate float64, busy []float64, snap []soc.CoreSnapshot, cpu *soc.CPU, threads []*Thread, dt time.Duration, poolSec float64, pr Pressure) (Result, error) {
	if cpu == nil {
		return Result{}, errors.New("sched: nil cpu")
	}
	if dt <= 0 {
		return Result{}, errors.New("sched: non-positive window")
	}

	mirror := snap != nil
	if !mirror {
		snap = cpu.SnapshotInto(s.snap)
		s.snap = snap
	}
	dts := dt.Seconds()
	if cap(busy) < len(snap) {
		// Without a caller buffer the Result escapes with its own slice —
		// the pre-arena API's ownership contract.
		//mobilint:ignore one Result slice per window when the caller passes no buffer
		busy = make([]float64, len(snap))
	}
	busy = busy[:len(snap)]
	for i := range busy {
		busy[i] = 0
	}
	res := Result{BusySeconds: busy}

	if rec != nil {
		rec.begin(dt, satRate)
	}

	pool := poolSec
	limited := pool >= 0

	budget, online, freq := s.budget, s.online, s.freq
	if cap(budget) < len(snap) {
		//mobilint:ignore one-time scratch growth on first window or topology change
		budget, online, freq = make([]float64, len(snap)), make([]bool, len(snap)), make([]float64, len(snap))
	}
	budget, online, freq = budget[:len(snap)], online[:len(snap)], freq[:len(snap)]
	s.budget, s.online, s.freq = budget, online, freq
	for i, c := range snap {
		if c.State != soc.StateOffline {
			online[i] = true
			budget[i] = dts
			freq[i] = float64(c.Freq)
		} else {
			online[i] = false
			budget[i] = 0
			freq[i] = 0
		}
	}

	// Efficiency ranks for cluster-aware placement: clusters ordered by
	// ascending top frequency, so rank 0 is the LITTLE (cheapest) domain.
	// Homogeneous CPUs collapse to a single rank (nil slice) and the
	// greedy placement reduces exactly to the original most-budget greedy.
	// The ranks are cached on the CPU at construction — this is the
	// per-tick hot path.
	rankOf, numRanks := cpu.ClusterRanks()

	// Soft affinity is suspended for threads whose last core is capped
	// while a cool online core exists: a persistent thread (a game's
	// render loop) would otherwise stay pinned to the throttled cluster
	// for the whole session and the derate below would never apply. On a
	// homogeneous platform the clusters cap together, so anyCool is false
	// whenever the last core is capped and affinity behaves exactly as
	// before.
	anyCool := false
	for i := range online {
		if online[i] && (i >= len(pr.Capped) || !pr.Capped[i]) {
			anyCool = true
			break
		}
	}

	// The env lives on the scheduler so taking its address for the
	// placer's interface call does not force a per-window heap escape.
	s.env = PlaceEnv{
		Online:    online,
		Budget:    budget,
		Freq:      freq,
		RankOf:    rankOf,
		NumRanks:  numRanks,
		Capped:    pr.Capped,
		CapScale:  pr.CapScale,
		AnyCool:   anyCool,
		WindowSec: dts,
	}
	placer := s.placer()

	runnable := s.runnable[:0]
	for _, t := range threads {
		if t != nil && t.Runnable() {
			//mobilint:ignore append into pooled scratch; capacity amortizes across windows
			runnable = append(runnable, t)
		}
	}
	s.runnable = runnable
	// Largest debt first; name breaks ties so runs are deterministic.
	// Small sets — the per-tick norm — use a direct insertion sort on the
	// concrete slice, skipping interface dispatch; both branches are
	// stable sorts under the same strict order, so they yield the one
	// permutation the determinism contract pins.
	if len(runnable) <= 16 {
		for i := 1; i < len(runnable); i++ {
			for j := i; j > 0 && debtLess(runnable[j], runnable[j-1]); j-- {
				runnable[j], runnable[j-1] = runnable[j-1], runnable[j]
			}
		}
	} else {
		sort.Stable(&s.runnable)
	}

	for _, t := range runnable {
		if limited && pool <= 0 {
			break // bandwidth exhausted for this window
		}
		startLast, startPending := t.lastCore, t.pending
		core := placer.Place(&s.env, t)
		if core < 0 {
			if rec != nil {
				rec.record(t, startLast, core, 0, startPending)
			}
			continue // no core time anywhere
		}
		allowedSec := budget[core]
		if limited && pool < allowedSec {
			allowedSec = pool
		}
		maxCycles := allowedSec * freq[core]
		done := t.Execute(maxCycles, core)
		sec := 0.0
		if freq[core] > 0 {
			sec = done / freq[core]
		}
		budget[core] -= sec
		if limited {
			pool -= sec
		}
		res.BusySeconds[core] += sec
		res.ExecutedCycles += done
		res.PoolUsedSec += sec
		if rec != nil {
			rec.record(t, startLast, core, done, startPending)
		}
	}

	// Throttled time: capacity withheld by the bandwidth pool while
	// runnable work remained.
	var leftover float64
	for _, t := range runnable {
		leftover += t.pending
	}
	if leftover > 0 && limited && pool <= 1e-12 {
		for i := range snap {
			if online[i] && budget[i] > 0 {
				res.ThrottledSeconds += budget[i]
			}
		}
	}

	// Commit busy time to the SoC's cycle accounting in one batch, so the
	// whole window pays a single CPU mutex round-trip instead of one per
	// online core.
	nanos := s.busyNanos
	if cap(nanos) < len(snap) {
		//mobilint:ignore one-time scratch growth on first window or topology change
		nanos = make([]uint64, len(snap))
	}
	nanos = nanos[:len(snap)]
	s.busyNanos = nanos
	windowNanos := uint64(dt.Nanoseconds())
	for i := range snap {
		if !online[i] {
			nanos[i] = 0
			continue
		}
		b := uint64(res.BusySeconds[i] * 1e9)
		if b > windowNanos {
			b = windowNanos
		}
		nanos[i] = b
	}
	if err := cpu.RunBatch(nanos, windowNanos); err != nil {
		return Result{}, fmt.Errorf("sched: committing window: %w", err)
	}
	if mirror {
		// Keep the caller's CPU view current without another locked
		// snapshot: RunBatch just set each online core Active or Idle by
		// exactly this rule. (BusyCycles is not maintained — the mirror
		// contract covers online state and operating point only.)
		for i := range snap {
			if !online[i] {
				continue
			}
			if nanos[i] > 0 {
				snap[i].State = soc.StateActive
			} else {
				snap[i].State = soc.StateIdle
			}
		}
	}
	if rec != nil {
		rec.finish(res, nanos, pr, limited, pool)
	}
	return res, nil
}

// TotalPending sums pending cycles across threads — the backlog.
func TotalPending(threads []*Thread) float64 {
	var total float64
	for _, t := range threads {
		if t != nil {
			total += t.Pending()
		}
	}
	return total
}
