// Package sched is the task-scheduling substrate: runnable threads carrying
// cycle debt, a deterministic load-balancing scheduler in the spirit of the
// default Linux balancer (§3.2: "the default Linux task scheduler is
// splitting the workload over a certain number of processes"), and the
// global CPU bandwidth quota MobiCore manipulates (the cgroup cpu.cfs_quota
// analogue the thesis calls "a value which stands for the global CPU
// bandwidth", §4.1.1).
package sched

import "fmt"

// Thread is a schedulable entity accumulating cycle debt. Workloads deposit
// work with AddWork; the scheduler drains it. Not safe for concurrent use;
// the simulation loop serializes workload and scheduler access.
type Thread struct {
	name     string
	pending  float64 // cycles waiting to execute
	executed float64 // cumulative cycles executed
	lastCore int     // affinity hint; -1 before first placement
}

// NewThread creates an idle thread. Name is used for deterministic
// tie-breaking and diagnostics.
func NewThread(name string) *Thread {
	return &Thread{name: name, lastCore: -1}
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// AddWork deposits cycles of demand. Negative amounts are ignored.
func (t *Thread) AddWork(cycles float64) {
	if cycles > 0 {
		t.pending += cycles
	}
}

// DropWork removes up to cycles of pending demand (work shedding, e.g. a
// game skipping a frame) and returns the amount actually dropped.
func (t *Thread) DropWork(cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	if cycles > t.pending {
		cycles = t.pending
	}
	t.pending -= cycles
	return cycles
}

// Pending returns cycles queued but not yet executed.
func (t *Thread) Pending() float64 { return t.pending }

// Executed returns cumulative executed cycles.
func (t *Thread) Executed() float64 { return t.executed }

// Runnable reports whether the thread has pending work.
func (t *Thread) Runnable() bool { return t.pending > 0 }

// LastCore returns the core the thread last ran on, or -1.
func (t *Thread) LastCore() int { return t.lastCore }

// Execute runs up to cycles of pending work on the given core, returning
// the amount executed. The package scheduler is the normal caller; custom
// harnesses may drive threads directly.
func (t *Thread) Execute(cycles float64, core int) float64 {
	if cycles <= 0 || t.pending <= 0 {
		return 0
	}
	if cycles > t.pending {
		cycles = t.pending
	}
	t.pending -= cycles
	t.executed += cycles
	t.lastCore = core
	return cycles
}

// String implements fmt.Stringer for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("thread(%s pending=%.0f executed=%.0f)", t.name, t.pending, t.executed)
}
