package sim

import (
	"mobicore/internal/metrics"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// Arena is a cross-session reuse pool for the engine's buffers: the sampled
// series, CPU snapshots, scheduler scratch, policy-input slices, the power
// monitor's trace, and every per-cluster accumulator. A fleet worker owns
// one arena and threads it through consecutive cells, so steady-state cell
// execution allocates almost nothing — buffers are reset to length zero
// between sessions but keep their capacity, and series capacity is
// preallocated from the session duration (SessionSpec.NewIn) so appends
// never grow.
//
// Ownership contract: an arena backs at most one live Sim at a time.
// Constructing the next Sim from the arena reuses the previous one's
// buffers, so the caller must be completely done with the previous Sim
// first. Reports are safe to retain across that boundary — Sim.report deep
// copies every series — but the Sim itself (and its Monitor) must not be
// touched after the arena moves on. An Arena is not safe for concurrent
// use; give each worker goroutine its own.
type Arena struct {
	sim Sim
}

// NewArena returns an empty arena. The first session built in it allocates
// its buffers normally; later sessions reuse them.
func NewArena() *Arena {
	return &Arena{}
}

// take hands the arena's embedded Sim to a new session. The previous
// session's buffers ride along inside it; newSim resets every field,
// keeping only capacity.
func (a *Arena) take() *Sim {
	return &a.sim
}

// Reset drops the arena's association with the previous session's
// configuration (manager, workloads, hooks) while keeping every buffer's
// capacity. Construction via NewIn resets state anyway, so calling Reset
// between cells is optional — it exists for callers that want to release
// references (for garbage collection) without building the next session
// yet.
//
//mobicore:hotpath
func (a *Arena) Reset() {
	s := &a.sim
	s.cfg = Config{}
	s.cpu = nil
	s.model = nil
	s.net = nil
	s.sch.Placer = nil
	s.rng = nil
	s.views = s.views[:0]
	s.coreCluster = nil
	s.clusterFmax = nil
	s.threads = s.threads[:0]
	s.hinters = s.hinters[:0]
	s.memo = s.memo.Recycle()
	s.invalidateFast()
}

// The buffer helpers below resize a pooled slice to length n, zeroing the
// contents but keeping the backing array whenever it is large enough — the
// arena-reset primitive newSim applies to every Sim field. Each grows only
// on first use or when a larger topology arrives (the growth branches are
// cold; steady-state arena reuse never allocates).

//mobicore:hotpath
func f64Buf(b []float64, n int) []float64 {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]float64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

//mobicore:hotpath
func hzBuf(b []soc.Hz, n int) []soc.Hz {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]soc.Hz, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

//mobicore:hotpath
func boolBuf(b []bool, n int) []bool {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

//mobicore:hotpath
func intBuf(b []int, n int) []int {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]int, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

//mobicore:hotpath
func snapBuf(b []soc.CoreSnapshot, n int) []soc.CoreSnapshot {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]soc.CoreSnapshot, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = soc.CoreSnapshot{}
	}
	return b
}

//mobicore:hotpath
func loadBuf(b []power.CoreLoad, n int) []power.CoreLoad {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]power.CoreLoad, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = power.CoreLoad{}
	}
	return b
}

//mobicore:hotpath
func thermalBuf(b []policy.ThermalSignal, n int) []policy.ThermalSignal {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]policy.ThermalSignal, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = policy.ThermalSignal{}
	}
	return b
}

//mobicore:hotpath
func sumBuf(b []metrics.Summary, n int) []metrics.Summary {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]metrics.Summary, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = metrics.Summary{}
	}
	return b
}

//mobicore:hotpath
func viewsBuf(b []policy.ClusterView, n int) []policy.ClusterView {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]policy.ClusterView, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = policy.ClusterView{}
	}
	return b
}

//mobicore:hotpath
func hinterBuf(b []workload.SteadyHinter, n int) []workload.SteadyHinter {
	if cap(b) < n {
		//mobilint:ignore one-time arena growth; steady-state reuse hits the resize path
		return make([]workload.SteadyHinter, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = nil
	}
	return b
}

// seriesBuf resizes a pooled series slice, resetting each entry (length
// zero, points capacity kept). Growth copies the old entries' structs so
// their accumulated point buffers survive a cluster-count change.
func seriesBuf(b []metrics.Series, n int) []metrics.Series {
	if cap(b) < n {
		grown := make([]metrics.Series, n)
		copy(grown, b)
		b = grown
	}
	b = b[:n]
	for i := range b {
		b[i].Reset()
	}
	return b
}
