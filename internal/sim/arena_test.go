package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/workload"
)

// arenaSpec builds one complete SessionSpec with fresh manager and
// workloads — specs are single-use, so every run needs a new one.
func arenaSpec(t *testing.T, plat platform.Platform, placer string, seed int64) SessionSpec {
	t.Helper()
	var mgr policy.Manager
	if plat.Heterogeneous() {
		mgr = clusteredGov(t, plat, "ondemand")
	} else {
		var err error
		mgr, err = policy.AndroidDefault(plat.Table)
		if err != nil {
			t.Fatal(err)
		}
	}
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.5, Threads: 4, RefFreq: plat.ClusterSpecs()[0].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	return SessionSpec{
		Platform:  plat,
		Manager:   mgr,
		Workloads: []workload.Workload{wl},
		Duration:  500 * time.Millisecond,
		Seed:      seed,
		Placer:    placer,
	}
}

// TestArenaReuseMatchesFresh runs a heterogeneous sequence of sessions —
// different platforms, topologies, and placers back to back — through ONE
// arena and checks every report deep-equals its fresh-allocation twin. This
// is the arena's core contract: reuse is invisible in the output.
func TestArenaReuseMatchesFresh(t *testing.T) {
	runs := []struct {
		name   string
		plat   platform.Platform
		placer string
		seed   int64
	}{
		{"nexus5", platform.Nexus5(), "", 1},
		{"nexus6p", platform.Nexus6P(), "", 2},     // grows: 4 → 8 cores, 1 → 2 clusters
		{"nexus5-again", platform.Nexus5(), "", 3}, // shrinks back
		{"sd855-eas", platform.SD855(), PlacerEAS, 4},
		{"nexus5-eas", platform.Nexus5(), PlacerEAS, 5},
	}
	a := NewArena()
	for _, run := range runs {
		fresh, doneF, err := arenaSpec(t, run.plat, run.placer, run.seed).RunDone(context.Background())
		if err != nil {
			t.Fatalf("%s fresh: %v", run.name, err)
		}
		pooled, doneP, err := arenaSpec(t, run.plat, run.placer, run.seed).RunDoneIn(context.Background(), a)
		if err != nil {
			t.Fatalf("%s arena: %v", run.name, err)
		}
		if doneF != doneP {
			t.Errorf("%s: done %v vs %v", run.name, doneF, doneP)
		}
		if !reflect.DeepEqual(fresh, pooled) {
			t.Errorf("%s: arena report differs from fresh report", run.name)
		}
	}
}

// TestArenaReportsSurviveReuse: a report retained from an earlier arena
// session must not change when the arena runs its next cell — series are
// deep copied at report time.
func TestArenaReportsSurviveReuse(t *testing.T) {
	a := NewArena()
	first, _, err := arenaSpec(t, platform.Nexus6P(), "", 11).RunDoneIn(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := arenaSpec(t, platform.Nexus6P(), "", 11).RunDone(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Churn the arena with different-shaped sessions.
	for seed := int64(20); seed < 23; seed++ {
		if _, _, err := arenaSpec(t, platform.Nexus5(), PlacerEAS, seed).RunDoneIn(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(first, want) {
		t.Error("retained report was corrupted by subsequent arena sessions")
	}
}

// TestArenaSteadyStateAllocs: after one warm-up session, a repeated
// same-shape session should construct and run with near-zero steady-state
// growth — the arena's reason to exist. The budget is deliberately loose
// (managers and workloads still allocate at construction); what it guards
// is the engine's own per-session footprint staying flat instead of
// re-growing series and scratch every cell.
func TestArenaSteadyStateAllocs(t *testing.T) {
	a := NewArena()
	run := func() {
		if _, _, err := arenaSpec(t, platform.Nexus5(), "", 9).RunDoneIn(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up: size every buffer
	fresh := testing.AllocsPerRun(3, func() {
		if _, _, err := arenaSpec(t, platform.Nexus5(), "", 9).RunDone(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	pooled := testing.AllocsPerRun(3, run)
	if pooled >= fresh {
		t.Errorf("arena session allocates %.0f objects, fresh %.0f — reuse is not paying", pooled, fresh)
	}
	t.Logf("allocs/session: fresh %.0f, arena %.0f", fresh, pooled)
}
