package sim

import (
	"strings"
	"testing"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/cpufreq"
	"mobicore/internal/hotplug"
	"mobicore/internal/metrics"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// clusteredMobi builds the per-cluster MobiCore manager for a platform.
func clusteredMobi(t *testing.T, plat platform.Platform) policy.Manager {
	t.Helper()
	mgr, err := core.NewClusteredForPlatform(plat, core.DefaultTunables(), core.DefaultClusterTunables(), true)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// clusteredGov builds "<gov>+load" with one governor instance per cluster.
func clusteredGov(t *testing.T, plat platform.Platform, gov string) policy.Manager {
	t.Helper()
	plug, err := hotplug.NewLoad(hotplug.DefaultLoadTunables())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := policy.ComposeClustered(gov,
		func(tab *soc.OPPTable) (cpufreq.Governor, error) { return cpufreq.New(gov, tab) },
		plug, plat.ClusterTables())
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func bigLittleRun(t *testing.T, mgr policy.Manager, seed int64) *Report {
	t.Helper()
	plat := platform.Nexus6P()
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.35,
		Threads:    4,
		RefFreq:    plat.ClusterSpecs()[0].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  plat,
		Manager:   mgr,
		Workloads: []workload.Workload{wl},
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func sameSeries(a, b metrics.Series) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// TestBigLittleDeterminism is the acceptance gate: equal seeds must produce
// identical traces on the heterogeneous platform under MobiCore and at
// least three stock governors.
func TestBigLittleDeterminism(t *testing.T) {
	plat := platform.Nexus6P()
	builders := map[string]func() policy.Manager{
		"mobicore":    func() policy.Manager { return clusteredMobi(t, plat) },
		"ondemand":    func() policy.Manager { return clusteredGov(t, plat, "ondemand") },
		"interactive": func() policy.Manager { return clusteredGov(t, plat, "interactive") },
		"schedutil":   func() policy.Manager { return clusteredGov(t, plat, "schedutil") },
	}
	for name, build := range builders {
		a := bigLittleRun(t, build(), 77)
		b := bigLittleRun(t, build(), 77)
		if a.AvgPowerW != b.AvgPowerW || a.ExecutedCycles != b.ExecutedCycles ||
			a.AvgFreqHz != b.AvgFreqHz || a.AvgOnlineCores != b.AvgOnlineCores {
			t.Errorf("%s: same seed diverged: %v/%v vs %v/%v",
				name, a.AvgPowerW, a.ExecutedCycles, b.AvgPowerW, b.ExecutedCycles)
		}
		for ci := range a.ClusterNames {
			if !sameSeries(a.ClusterFreqSeries[ci], b.ClusterFreqSeries[ci]) ||
				!sameSeries(a.ClusterCoreSeries[ci], b.ClusterCoreSeries[ci]) {
				t.Errorf("%s: cluster %s series diverged across identical seeds", name, a.ClusterNames[ci])
			}
		}
	}
}

// TestBigLittleClusterSeries checks the per-cluster telemetry: two named
// clusters, populated series, and the LITTLE-first placement keeping the
// big cluster mostly parked under a light load.
func TestBigLittleClusterSeries(t *testing.T) {
	rep := bigLittleRun(t, clusteredMobi(t, platform.Nexus6P()), 7)
	if len(rep.ClusterNames) != 2 || rep.ClusterNames[0] != "LITTLE" || rep.ClusterNames[1] != "big" {
		t.Fatalf("cluster names = %v, want [LITTLE big]", rep.ClusterNames)
	}
	for ci, name := range rep.ClusterNames {
		if rep.ClusterFreqSeries[ci].Len() == 0 || rep.ClusterCoreSeries[ci].Len() == 0 {
			t.Errorf("cluster %s series empty", name)
		}
	}
	if rep.AvgClusterCores[0] < 1 {
		t.Errorf("LITTLE avg cores = %.2f, want >= 1", rep.AvgClusterCores[0])
	}
	// A 4-thread 35% load fits comfortably on the LITTLE cluster: MobiCore
	// should keep the big cores parked nearly the whole session.
	if rep.AvgClusterCores[1] > 0.5 {
		t.Errorf("big avg cores = %.2f under light load, want mostly parked", rep.AvgClusterCores[1])
	}
	var sb strings.Builder
	if err := rep.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cluster LITTLE") || !strings.Contains(out, "cluster big") {
		t.Errorf("summary missing per-cluster lines:\n%s", out)
	}
}

// migrateManager moves every core to one cluster — the whole-SoC migration
// that exercises the grow-before-shrink hotplug ordering.
type migrateManager struct {
	target int // cluster index that gets all the cores
}

func (m *migrateManager) Name() string { return "migrate" }
func (m *migrateManager) Decide(in policy.Input) (policy.Decision, error) {
	views := in.ClusterViews()
	freqs := make([]soc.Hz, len(in.Util))
	vec := make([]int, len(views))
	for ci, v := range views {
		for _, id := range v.CoreIDs {
			freqs[id] = v.Table.Min().Freq
		}
		if ci == m.target {
			vec[ci] = len(v.CoreIDs)
		}
	}
	return policy.Decision{TargetFreq: freqs, OnlineVec: vec, Quota: 1}, nil
}
func (m *migrateManager) Reset() {}

// TestOnlineVecClusterMigration: a valid decision may park the only
// currently-online cluster while waking another; the sim must apply the
// growth first instead of dying on the no-online-core invariant.
func TestOnlineVecClusterMigration(t *testing.T) {
	plat := platform.Nexus6P()
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.3, Threads: 2, RefFreq: plat.ClusterSpecs()[0].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:     plat,
		Manager:      &migrateManager{target: 1},
		Workloads:    []workload.Workload{wl},
		InitialCores: 4, // LITTLE only: cores 0-3
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(200 * time.Millisecond); err != nil {
		t.Fatalf("whole-SoC migration to the big cluster failed: %v", err)
	}
	little, _ := s.CPU().ClusterOnlineCount(0)
	big, _ := s.CPU().ClusterOnlineCount(1)
	if little != 0 || big != 4 {
		t.Errorf("after migration LITTLE=%d big=%d, want 0/4", little, big)
	}
}

// TestHeterogeneousInitialFreqRejected locks the per-cluster boot rule.
func TestHeterogeneousInitialFreqRejected(t *testing.T) {
	plat := platform.Nexus6P()
	mgr := clusteredMobi(t, plat)
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.3, Threads: 2, RefFreq: plat.ClusterSpecs()[0].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Platform:    plat,
		Manager:     mgr,
		Workloads:   []workload.Workload{wl},
		InitialFreq: plat.ClusterSpecs()[1].Table.Max().Freq,
	})
	if err == nil {
		t.Error("explicit InitialFreq accepted on a heterogeneous platform")
	}
}

// TestPerClusterThermalResidency is the asymmetric-throttling acceptance
// test: under sustained full blast on the Nexus 6P profile the big
// cluster's zone engages its cap while the LITTLE cluster never does, the
// report carries per-cluster residency and temperature series, and the
// aggregate ThermalCappedSec remains the sum of the per-cluster figures.
func TestPerClusterThermalResidency(t *testing.T) {
	plat := platform.Nexus6P()
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 1.0,
		Threads:    8,
		RefFreq:    plat.ClusterSpecs()[1].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  plat,
		Manager:   clusteredGov(t, plat, "performance"),
		Workloads: []workload.Workload{wl},
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(40 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClusterThermalSec[1] <= 0 {
		t.Fatalf("big cluster never thermally capped (max temp %.1f C)", rep.MaxClusterTempC[1])
	}
	if rep.ClusterThermalSec[0] != 0 {
		t.Errorf("LITTLE cluster capped for %.2f s, want 0 (max temp %.1f C)",
			rep.ClusterThermalSec[0], rep.MaxClusterTempC[0])
	}
	sum := 0.0
	for _, v := range rep.ClusterThermalSec {
		sum += v
	}
	if rep.ThermalCappedSec != sum {
		t.Errorf("aggregate residency %.4f != per-cluster sum %.4f", rep.ThermalCappedSec, sum)
	}
	if rep.MaxClusterTempC[1] <= rep.MaxClusterTempC[0] {
		t.Errorf("big max temp %.1f C not above LITTLE's %.1f C", rep.MaxClusterTempC[1], rep.MaxClusterTempC[0])
	}
	for ci, name := range rep.ClusterNames {
		if rep.ClusterTempSeries[ci].Len() == 0 {
			t.Errorf("cluster %s temperature series empty", name)
		}
	}
	var sb strings.Builder
	if err := rep.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "thermal capped") {
		t.Errorf("summary missing per-cluster thermal lines:\n%s", sb.String())
	}
}

// TestHomogeneousSingleZoneAggregates locks the backward-compatibility
// contract on a single-cluster platform: one thermal zone, per-cluster
// residency equal to the aggregate, temperature series mirroring TempSeries.
func TestHomogeneousSingleZoneAggregates(t *testing.T) {
	plat := platform.Nexus5()
	mgr, err := policy.AndroidDefault(plat.Table)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 1.0,
		Threads:    4,
		RefFreq:    plat.Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  plat,
		Manager:   mgr,
		Workloads: []workload.Workload{wl},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ClusterThermalSec) != 1 {
		t.Fatalf("homogeneous platform carries %d thermal residencies, want 1", len(rep.ClusterThermalSec))
	}
	if rep.ClusterThermalSec[0] != rep.ThermalCappedSec {
		t.Errorf("cluster residency %.4f != aggregate %.4f", rep.ClusterThermalSec[0], rep.ThermalCappedSec)
	}
	if rep.ThermalCappedSec <= 0 {
		t.Error("sustained full blast on Nexus 5 should engage the throttle")
	}
	if !sameSeries(rep.ClusterTempSeries[0], rep.TempSeries) {
		t.Error("single-zone cluster temp series should mirror the aggregate TempSeries")
	}
}
