package sim

import (
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// pinManager pins frequency, online count, and quota — a deterministic
// stub for exercising the quota-pool machinery.
type pinManager struct {
	freq  soc.Hz
	cores int
	quota float64
}

func (p *pinManager) Name() string { return "pin" }
func (p *pinManager) Decide(in policy.Input) (policy.Decision, error) {
	freqs := make([]soc.Hz, len(in.Util))
	for i := range freqs {
		freqs[i] = p.freq
	}
	return policy.Decision{TargetFreq: freqs, OnlineCores: p.cores, Quota: p.quota}, nil
}
func (p *pinManager) Reset() {}

// TestFillDefaults locks the zero-value behavior of Config: every optional
// knob takes its documented default.
func TestFillDefaults(t *testing.T) {
	c := Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
	}
	if err := c.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if c.Tick != time.Millisecond {
		t.Errorf("default tick = %v, want 1ms", c.Tick)
	}
	if c.SamplePeriod != 50*time.Millisecond {
		t.Errorf("default sample period = %v, want 50ms", c.SamplePeriod)
	}
	if c.InitialFreq != c.Platform.Table.Max().Freq {
		t.Errorf("default initial freq = %v, want table max", c.InitialFreq)
	}
	if c.InitialCores != c.Platform.NumCores {
		t.Errorf("default initial cores = %d, want all %d", c.InitialCores, c.Platform.NumCores)
	}
	if c.InitialQuota != 1 {
		t.Errorf("default quota = %v, want 1", c.InitialQuota)
	}
	if c.Monitor.SampleEvery == 0 {
		t.Error("monitor config not defaulted")
	}
}

// TestFillDefaultsErrors covers the negative paths the general config test
// does not reach.
func TestFillDefaultsErrors(t *testing.T) {
	good := func() Config {
		return Config{
			Platform:  platform.Nexus5(),
			Manager:   androidDefault(t),
			Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
		}
	}

	c := good()
	c.Platform = platform.Platform{} // fails Platform.Validate
	if err := c.fillDefaults(); err == nil {
		t.Error("invalid platform accepted")
	}

	c = good()
	c.InitialCores = -2
	if err := c.fillDefaults(); err == nil {
		t.Error("negative initial cores accepted")
	}

	c = good()
	c.InitialQuota = -0.5
	if err := c.fillDefaults(); err == nil {
		t.Error("negative initial quota accepted")
	}

	c = good()
	c.Tick = 100 * time.Millisecond
	c.SamplePeriod = 10 * time.Millisecond
	if err := c.fillDefaults(); err == nil {
		t.Error("sample period below tick accepted")
	}
}

// TestQuotaPoolRefill pins a 50% quota and checks the CFS-style pool
// arithmetic: each enforcement period grants quota×numCores×SamplePeriod
// seconds, consumption drains it monotonically, and the clamp keeps it
// from going negative even under saturating demand.
func TestQuotaPoolRefill(t *testing.T) {
	plat := platform.Nexus5()
	mgr := &pinManager{freq: plat.Table.Max().Freq, cores: plat.NumCores, quota: 0.5}
	s, err := New(Config{
		Platform:  plat,
		Manager:   mgr,
		Workloads: []workload.Workload{busyLoop(t, 1.0, 4)},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Boot pool: InitialQuota (1.0) over a full period.
	wantBoot := 1.0 * float64(plat.NumCores) * s.cfg.SamplePeriod.Seconds()
	if s.quotaPool != wantBoot {
		t.Fatalf("boot pool = %v, want %v", s.quotaPool, wantBoot)
	}

	// Run one full enforcement period plus one tick: the sample fires,
	// the 0.5 quota lands, and the pool is refilled to its grant.
	ticks := int(s.cfg.SamplePeriod/s.cfg.Tick) + 1
	for i := 0; i < ticks; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if s.quotaPool < 0 {
			t.Fatalf("quota pool went negative: %v", s.quotaPool)
		}
	}
	if s.quota != 0.5 {
		t.Fatalf("programmed quota = %v, want 0.5", s.quota)
	}
	wantGrant := 0.5 * float64(plat.NumCores) * s.cfg.SamplePeriod.Seconds()
	// One tick of a saturating 4-thread load has already drained up to
	// 4 core-ticks from the fresh grant.
	maxDrain := 4 * s.cfg.Tick.Seconds()
	if s.quotaPool > wantGrant || s.quotaPool < wantGrant-maxDrain {
		t.Errorf("pool after refill+1 tick = %v, want within [%v,%v]",
			s.quotaPool, wantGrant-maxDrain, wantGrant)
	}

	// Saturating demand must drain the halved pool to (clamped) zero
	// before the next refill and record quota-throttled time.
	for i := 0; i < ticks; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.report()
	if rep.QuotaThrottledSec <= 0 {
		t.Error("saturating load under a 0.5 quota recorded no throttled time")
	}
}

// TestQuotaPoolUnlimited: at quota 1 the pool is bypassed (sched.Unlimited)
// and no throttling is recorded even under full load.
func TestQuotaPoolUnlimited(t *testing.T) {
	plat := platform.Nexus5()
	mgr := &pinManager{freq: plat.Table.Max().Freq, cores: plat.NumCores, quota: 1}
	s, err := New(Config{
		Platform:  plat,
		Manager:   mgr,
		Workloads: []workload.Workload{busyLoop(t, 1.0, 4)},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuotaThrottledSec != 0 {
		t.Errorf("full quota recorded %v throttled seconds, want 0", rep.QuotaThrottledSec)
	}
}
