package sim

import (
	"math"
	"strings"
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/workload"
)

func easLoop(t *testing.T, plat platform.Platform, util float64, threads int) workload.Workload {
	t.Helper()
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: util,
		Threads:    threads,
		RefFreq:    plat.ClusterSpecs()[0].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func easManager(t *testing.T, plat platform.Platform) policy.Manager {
	t.Helper()
	return clusteredGov(t, plat, "schedutil")
}

func TestConfigRejectsUnknownPlacer(t *testing.T) {
	plat := platform.Nexus5()
	_, err := New(Config{
		Platform:  plat,
		Manager:   clusteredMobi(t, plat),
		Workloads: []workload.Workload{easLoop(t, plat, 0.3, 2)},
		Placer:    "quantum",
	})
	if err == nil || !strings.Contains(err.Error(), "placer") {
		t.Fatalf("unknown placer accepted: %v", err)
	}
}

// TestEASMatchesGreedyOnHomogeneous is the sim-level greedy-equivalence
// guarantee: a homogeneous session under the EAS placer reproduces the
// greedy session's report exactly (every aggregate, every series sample).
func TestEASMatchesGreedyOnHomogeneous(t *testing.T) {
	run := func(placer string) *Report {
		plat := platform.Nexus5()
		s, err := New(Config{
			Platform:  plat,
			Manager:   clusteredMobi(t, plat),
			Workloads: []workload.Workload{easLoop(t, plat, 0.6, 4)},
			Seed:      3,
			Placer:    placer,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	g, e := run(PlacerGreedy), run(PlacerEAS)
	if g.EnergyJ != e.EnergyJ || g.ExecutedCycles != e.ExecutedCycles ||
		g.AvgFreqHz != e.AvgFreqHz || g.AvgOnlineCores != e.AvgOnlineCores {
		t.Errorf("homogeneous EAS diverged from greedy: energy %v vs %v, cycles %v vs %v",
			g.EnergyJ, e.EnergyJ, g.ExecutedCycles, e.ExecutedCycles)
	}
	if g.Placer != PlacerGreedy || e.Placer != PlacerEAS {
		t.Errorf("placer labels %q/%q, want greedy/eas", g.Placer, e.Placer)
	}
}

// TestClusterEnergyAttribution: per-cluster attributed joules plus the
// platform floor reproduce the monitor's total energy, and the sampled
// cumulative series is monotone ending at the total.
func TestClusterEnergyAttribution(t *testing.T) {
	plat := platform.SD855()
	dur := 2 * time.Second
	s, err := New(Config{
		Platform:  plat,
		Manager:   easManager(t, plat),
		Workloads: []workload.Workload{easLoop(t, plat, 0.5, 4)},
		Seed:      7,
		Placer:    PlacerEAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ClusterEnergyJ) != 3 || len(rep.ClusterEnergySeries) != 3 {
		t.Fatalf("attribution arity %d/%d, want 3/3", len(rep.ClusterEnergyJ), len(rep.ClusterEnergySeries))
	}
	sum := 0.0
	for ci, j := range rep.ClusterEnergyJ {
		if j < 0 {
			t.Errorf("cluster %d attributed negative energy %v", ci, j)
		}
		sum += j
	}
	floor := plat.Power.BaseWatts * dur.Seconds()
	if math.Abs(sum+floor-rep.EnergyJ) > 1e-6*rep.EnergyJ+1e-9 {
		t.Errorf("Σ cluster %.6f + floor %.6f != total %.6f J", sum, floor, rep.EnergyJ)
	}
	for ci, series := range rep.ClusterEnergySeries {
		if series.Len() == 0 {
			t.Fatalf("cluster %d energy series empty", ci)
		}
		prev := -1.0
		for i := 0; i < series.Len(); i++ {
			v := series.At(i).Value
			if v < prev {
				t.Fatalf("cluster %d energy series not monotone at %d", ci, i)
			}
			prev = v
		}
		if last := series.At(series.Len() - 1).Value; math.Abs(last-rep.ClusterEnergyJ[ci]) > 1e-9+1e-6*rep.ClusterEnergyJ[ci] {
			t.Errorf("cluster %d series ends at %v, total %v", ci, last, rep.ClusterEnergyJ[ci])
		}
	}
}

// TestSD855EndToEnd drives the three-cluster profile under the EAS placer
// and checks the summary renders one section per cluster plus the placer
// line.
func TestSD855EndToEnd(t *testing.T) {
	plat := platform.SD855()
	s, err := New(Config{
		Platform:  plat,
		Manager:   clusteredMobi(t, plat),
		Workloads: []workload.Workload{easLoop(t, plat, 0.5, 6)},
		Seed:      1,
		Placer:    PlacerEAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"placer:          eas", "cluster silver:", "cluster gold:", "cluster prime:", "energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
