package sim

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// failingManager errors after a set number of decisions.
type failingManager struct {
	after int
	calls int
}

func (f *failingManager) Name() string { return "failing" }
func (f *failingManager) Decide(in policy.Input) (policy.Decision, error) {
	f.calls++
	if f.calls > f.after {
		return policy.Decision{}, errors.New("synthetic policy failure")
	}
	freqs := make([]soc.Hz, len(in.Util))
	for i := range freqs {
		freqs[i] = in.Table.Min().Freq
	}
	return policy.Decision{TargetFreq: freqs, OnlineCores: len(in.Util), Quota: 1}, nil
}
func (f *failingManager) Reset() { f.calls = 0 }

// rogueManager returns structurally invalid decisions.
type rogueManager struct {
	decision policy.Decision
}

func (r *rogueManager) Name() string                                 { return "rogue" }
func (r *rogueManager) Decide(policy.Input) (policy.Decision, error) { return r.decision, nil }
func (r *rogueManager) Reset()                                       {}

func TestPolicyErrorSurfaces(t *testing.T) {
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   &failingManager{after: 2},
		Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(time.Second)
	if err == nil {
		t.Fatal("policy failure swallowed")
	}
	if !strings.Contains(err.Error(), "synthetic policy failure") {
		t.Errorf("error lost its cause: %v", err)
	}
}

// TestRogueDecisionsRejected: the engine must reject every class of
// invalid decision rather than corrupting the SoC state.
func TestRogueDecisionsRejected(t *testing.T) {
	table := soc.MSM8974Table()
	legal := make([]soc.Hz, 4)
	for i := range legal {
		legal[i] = table.Min().Freq
	}
	cases := map[string]policy.Decision{
		"non-OPP frequency": {TargetFreq: []soc.Hz{301 * soc.MHz, legal[1], legal[2], legal[3]}, OnlineCores: 4, Quota: 1},
		"zero cores":        {TargetFreq: legal, OnlineCores: 0, Quota: 1},
		"too many cores":    {TargetFreq: legal, OnlineCores: 9, Quota: 1},
		"zero quota":        {TargetFreq: legal, OnlineCores: 4, Quota: 0},
		"quota above one":   {TargetFreq: legal, OnlineCores: 4, Quota: 1.5},
		"short freq slice":  {TargetFreq: legal[:2], OnlineCores: 4, Quota: 1},
	}
	for name, dec := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := New(Config{
				Platform:  platform.Nexus5(),
				Manager:   &rogueManager{decision: dec},
				Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
				Seed:      1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(200 * time.Millisecond); err == nil {
				t.Error("invalid decision accepted")
			}
		})
	}
}

// TestMinQuotaDoesNotDeadlock: a manager that pins the quota at the floor
// still lets the simulation make progress (the pool refills each period).
func TestMinQuotaDoesNotDeadlock(t *testing.T) {
	table := soc.MSM8974Table()
	legal := make([]soc.Hz, 4)
	for i := range legal {
		legal[i] = table.Max().Freq
	}
	s, err := New(Config{
		Platform:     platform.Nexus5(),
		Manager:      &rogueManager{decision: policy.Decision{TargetFreq: legal, OnlineCores: 4, Quota: 0.05}},
		Workloads:    []workload.Workload{busyLoop(t, 1.0, 4)},
		Seed:         1,
		InitialQuota: 0.05, // boot directly at the floor
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecutedCycles == 0 {
		t.Error("quota floor starved the system completely")
	}
	// Aggregate utilization must respect the quota (×4 cores ×5% ≈ 0.2
	// core-seconds per second).
	maxServed := 0.05 * 4 * rep.Duration.Seconds() * float64(table.Max().Freq) * 1.05
	if rep.ExecutedCycles > maxServed {
		t.Errorf("executed %.3g cycles, quota permits at most %.3g", rep.ExecutedCycles, maxServed)
	}
	if rep.QuotaThrottledSec == 0 {
		t.Error("hard quota with saturating load should report throttled time")
	}
}

// TestOverloadedSoC: demand far beyond capacity must not break accounting —
// utilization saturates at 1, power at the full-blast ceiling.
func TestOverloadedSoC(t *testing.T) {
	wl, err := workload.NewScripted("flood", 8, []workload.Step{
		{Duration: 2 * time.Second, CyclesPerSec: 1e12}, // ~100× capacity
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := policy.AndroidDefault(soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  platform.Nexus5().WithoutThrottle(),
		Manager:   mgr,
		Workloads: []workload.Workload{wl},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgUtil < 0.95 {
		t.Errorf("overloaded SoC utilization = %.2f, want ≈1", rep.AvgUtil)
	}
	if rep.AvgPowerW > 2.5 {
		t.Errorf("power %.3f W above the physical full-blast ceiling", rep.AvgPowerW)
	}
}

// TestEnergyConservation: EnergyJ must equal AvgPowerW × Duration for any
// run — the monitor and meter must agree with themselves.
func TestEnergyConservation(t *testing.T) {
	for _, util := range []float64{0.1, 0.5, 1.0} {
		s, err := New(Config{
			Platform:  platform.Nexus5(),
			Manager:   androidDefault(t),
			Workloads: []workload.Workload{busyLoop(t, util, 4)},
			Seed:      3,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		want := rep.AvgPowerW * rep.Duration.Seconds()
		if math.Abs(rep.EnergyJ-want)/want > 1e-9 {
			t.Errorf("util %.1f: energy %.6f J != avg power × time %.6f J", util, rep.EnergyJ, want)
		}
	}
}

// TestSeriesRecorded: the report's sampled series cover the session at the
// sampling period.
func TestSeriesRecorded(t *testing.T) {
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 20 // 1 s at 50 ms sampling
	for name, n := range map[string]int{
		"freq":  rep.FreqSeries.Len(),
		"cores": rep.CoreSeries.Len(),
		"util":  rep.UtilSeries.Len(),
		"quota": rep.QuotaSeries.Len(),
		"temp":  rep.TempSeries.Len(),
	} {
		if n < want-1 || n > want+1 {
			t.Errorf("%s series has %d samples, want ≈%d", name, n, want)
		}
	}
}
