package sim_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/sched"
	"mobicore/internal/sim"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

// pulseLoad deposits a fixed burst of work on every thread at scripted
// instants and hints steady everywhere else — the minimal demand source for
// pinning exactly when quiescence must break.
type pulseLoad struct {
	threads  []*sched.Thread
	deposits map[time.Duration]float64
	burst    int // threads receiving deposits after t=0; 0 means all
	steady   bool
}

func newPulseLoad(threads int, deposits map[time.Duration]float64) *pulseLoad {
	p := &pulseLoad{deposits: deposits}
	for i := 0; i < threads; i++ {
		p.threads = append(p.threads, sched.NewThread("pulse"+string(rune('0'+i))))
	}
	return p
}

func (p *pulseLoad) Name() string { return "pulse" }

func (p *pulseLoad) Tick(now, dt time.Duration, rng *rand.Rand) {
	if amt, ok := p.deposits[now]; ok {
		n := len(p.threads)
		if now > 0 && p.burst > 0 && p.burst < n {
			n = p.burst
		}
		for _, th := range p.threads[:n] {
			th.AddWork(amt)
		}
		p.steady = false
		return
	}
	p.steady = true
}

func (p *pulseLoad) Threads() []*sched.Thread { return p.threads }
func (p *pulseLoad) Done() bool               { return false }
func (p *pulseLoad) SteadyHint() bool         { return p.steady }

// mgrStep is one sampled allocation a scriptMgr hands out.
type mgrStep struct {
	freq  soc.Hz
	cores int
	quota float64
}

// scriptMgr replays a fixed decision sequence, repeating the last step —
// the deterministic stand-in for a governor when a test needs to cause (or
// withhold) exactly one reconfiguration.
type scriptMgr struct {
	steps []mgrStep
	calls int
}

func (m *scriptMgr) Name() string { return "script" }

func (m *scriptMgr) Decide(in policy.Input) (policy.Decision, error) {
	i := m.calls
	if i >= len(m.steps) {
		i = len(m.steps) - 1
	}
	m.calls++
	s := m.steps[i]
	tf := make([]soc.Hz, len(in.CurFreq))
	for c := range tf {
		tf[c] = s.freq
	}
	return policy.Decision{TargetFreq: tf, OnlineCores: s.cores, Quota: s.quota}, nil
}

func (m *scriptMgr) Reset() { m.calls = 0 }

// quiesceSim builds a Nexus 5 session around a scripted manager and a
// pulsed workload: one deep deposit at t=0 keeps four threads saturated for
// the whole run, so between events every tick is a candidate for replay.
func quiesceSim(t *testing.T, steps []mgrStep, deposits map[time.Duration]float64) *sim.Sim {
	t.Helper()
	if deposits == nil {
		deposits = map[time.Duration]float64{}
	}
	if _, ok := deposits[0]; !ok {
		deposits[0] = 1e12
	}
	return quiesceSimLoad(t, steps, newPulseLoad(4, deposits))
}

func quiesceSimLoad(t *testing.T, steps []mgrStep, p *pulseLoad) *sim.Sim {
	t.Helper()
	s, err := sim.New(sim.Config{
		Platform:  platform.Nexus5(),
		Manager:   &scriptMgr{steps: steps},
		Workloads: []workload.Workload{p},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// stepOne advances one tick and reports whether it took the fast path.
func stepOne(t *testing.T, s *sim.Sim) bool {
	t.Helper()
	before := s.FastTicks()
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	return s.FastTicks() != before
}

// runTicks advances n ticks.
func runTicks(t *testing.T, s *sim.Sim, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// TestFastPathEngages: a saturated steady workload under a constant
// allocation replays almost every tick — and a decision that changes
// nothing (same frequency, same core count, same quota) must not break the
// streak across the sample boundary.
func TestFastPathEngages(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	s := quiesceSim(t, []mgrStep{{freq: max, cores: 4, quota: 1}}, nil)
	runTicks(t, s, 100) // two sample periods, boot transient included
	start := s.FastTicks()
	for i := 0; i < 100; i++ {
		if !stepOne(t, s) {
			t.Fatalf("tick %d after warmup fell off the fast path", i)
		}
	}
	if got := s.FastTicks() - start; got != 100 {
		t.Fatalf("fast ticks = %d, want 100", got)
	}
}

// TestFreqChangeBreaksQuiescence: the first tick after a decision that
// reprograms frequencies must run the full pipeline; an identical session
// whose decision is a no-op stays on the fast path.
func TestFreqChangeBreaksQuiescence(t *testing.T) {
	tbl := platform.Nexus5().Table
	max, min := tbl.Max().Freq, tbl.Min().Freq
	changed := quiesceSim(t, []mgrStep{
		{freq: max, cores: 4, quota: 1},
		{freq: max, cores: 4, quota: 1},
		{freq: min, cores: 4, quota: 1},
	}, nil)
	control := quiesceSim(t, []mgrStep{{freq: max, cores: 4, quota: 1}}, nil)

	// Decisions land at the ends of ticks 49, 99, and 149; tick 149
	// applies the frequency drop, so tick 150 is the one that must
	// recompute.
	runTicks(t, changed, 150)
	runTicks(t, control, 150)
	if stepOne(t, changed) {
		t.Error("tick after a frequency reprogram replayed a stale window")
	}
	if !stepOne(t, control) {
		t.Error("control session (no-op decision) lost the fast path")
	}
}

// TestHotplugBreaksQuiescence: parking a core invalidates every retained
// window at the decision boundary.
func TestHotplugBreaksQuiescence(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	changed := quiesceSim(t, []mgrStep{
		{freq: max, cores: 4, quota: 1},
		{freq: max, cores: 4, quota: 1},
		{freq: max, cores: 3, quota: 1},
	}, nil)
	control := quiesceSim(t, []mgrStep{{freq: max, cores: 4, quota: 1}}, nil)
	runTicks(t, changed, 150)
	runTicks(t, control, 150)
	if stepOne(t, changed) {
		t.Error("tick after a hotplug replayed a stale window")
	}
	if !stepOne(t, control) {
		t.Error("control session lost the fast path")
	}
}

// TestQuotaRefillBreaksQuiescence walks the bandwidth-pool seams. The
// quota decision at tick 49 switches the pool from unlimited to 4 ms per
// period — exactly the aggregate the four saturated threads consume in one
// tick — so each period grants one full window, starves the rest, and
// refills. Every seam must recompute: the regime change (an
// unlimited-pool recording must never replay against a finite pool), the
// first starved tick, and the refill tick; while the starved mid-period
// stretch must replay as drained windows, including across periods.
func TestQuotaRefillBreaksQuiescence(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	s := quiesceSim(t, []mgrStep{{freq: max, cores: 4, quota: 0.02}}, nil)

	runTicks(t, s, 50)
	if stepOne(t, s) { // tick 50: first tick under a finite pool
		t.Error("unlimited-pool window replayed against a finite pool")
	}
	if stepOne(t, s) { // tick 51: pool exhausted, first drained recording
		t.Error("tick 51 replayed before any drained window existed")
	}
	drained := s.FastTicks()
	runTicks(t, s, 48) // ticks 52..99: starved tail of the period
	if s.FastTicks() == drained {
		t.Error("starved period tail never replayed as a drained window")
	}
	if stepOne(t, s) { // tick 100: sample at tick 99 refilled the pool
		t.Error("tick after a quota refill replayed a starved window against a live pool")
	}
	if !stepOne(t, s) { // tick 101: starved again; period 1's drained window serves
		t.Error("drained window did not replay across the period boundary")
	}
}

// TestDemandChangeBreaksQuiescence: a workload deposit between samples (a
// frame boundary, a burst arrival) must push the very next tick down the
// slow path even though no allocation changed. The initial burst drains
// within ~10 ticks, so the retained windows of the idle stretch are empty;
// the deposit then wakes two of the four threads — a runnable population no
// retained window has seen (the drain-phase records hold four, the idle
// records zero), so every match must fail. A four-thread rewake would
// legitimately replay a drain-phase window; the memo proves set equality,
// not recency.
func TestDemandChangeBreaksQuiescence(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	steps := []mgrStep{{freq: max, cores: 4, quota: 1}}
	burst := newPulseLoad(4, map[time.Duration]float64{
		0:                     2e7,
		77 * time.Millisecond: 5e8,
	})
	burst.burst = 2
	changed := quiesceSimLoad(t, steps, burst)
	control := quiesceSim(t, steps, map[time.Duration]float64{0: 2e7})
	runTicks(t, changed, 77)
	runTicks(t, control, 77)
	if stepOne(t, changed) { // tick 77 carries the deposit
		t.Error("deposit tick replayed a window recorded under the old demand")
	}
	if !stepOne(t, control) { // idle stretch keeps replaying empty windows
		t.Error("control session lost the fast path")
	}
}

// traceBits flattens a power-trace sample to its exact bit pattern, so two
// sessions can be compared for byte identity rather than tolerance.
func traceBits(buf *bytes.Buffer, now, dt time.Duration, systemW float64, clusterW []float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(now))
	buf.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(dt))
	buf.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(systemW))
	buf.Write(b[:])
	for _, w := range clusterW {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
		buf.Write(b[:])
	}
}

// TestFusedMatchesNoFuseLockstep is the equivalence contract at its
// strongest: a duty-cycled busy loop under the MobiCore manager runs once
// fused and once with NoFuse, and every tick's power sample must carry
// identical float bits — not close, identical. The fused run must actually
// exercise the fast path for the comparison to mean anything.
func TestFusedMatchesNoFuseLockstep(t *testing.T) {
	run := func(noFuse bool) (*sim.Report, uint64, []byte) {
		t.Helper()
		plat := platform.Nexus5()
		bl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
			TargetUtil: 0.5, Threads: 4, RefFreq: plat.Table.Max().Freq,
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := core.New(plat.Table, core.DefaultTunables())
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		s, err := sim.New(sim.Config{
			Platform:  plat,
			Manager:   mgr,
			Workloads: []workload.Workload{bl},
			Seed:      7,
			NoFuse:    noFuse,
			PowerTrace: func(now, dt time.Duration, systemW float64, clusterW []float64) {
				traceBits(&trace, now, dt, systemW, clusterW)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep, s.FastTicks(), trace.Bytes()
	}

	fusedRep, fastTicks, fusedTrace := run(false)
	slowRep, slowFast, slowTrace := run(true)
	if fastTicks == 0 {
		t.Fatal("fused run never took the fast path; the comparison is vacuous")
	}
	if slowFast != 0 {
		t.Fatalf("NoFuse run took %d fast ticks", slowFast)
	}
	if !bytes.Equal(fusedTrace, slowTrace) {
		for i := range fusedTrace {
			if fusedTrace[i] != slowTrace[i] {
				t.Fatalf("power traces diverge at byte %d of %d", i, len(fusedTrace))
			}
		}
		t.Fatalf("power trace lengths differ: %d vs %d", len(fusedTrace), len(slowTrace))
	}
	if fusedRep.EnergyJ != slowRep.EnergyJ || fusedRep.ExecutedCycles != slowRep.ExecutedCycles ||
		fusedRep.AvgPowerW != slowRep.AvgPowerW || fusedRep.ThermalCappedSec != slowRep.ThermalCappedSec ||
		fusedRep.QuotaThrottledSec != slowRep.QuotaThrottledSec {
		t.Errorf("reports diverge:\nfused: %+v\nnofuse: %+v", fusedRep, slowRep)
	}
}

// TestFusedMatchesNoFuseUnderQuota repeats the lockstep comparison across
// the bandwidth-pool regimes: a quota-only decision (no frequency or
// hotplug change) flips the pool from unlimited to starving, so the run
// spends most of its ticks in drained replays punctuated by refills. This
// is the scenario where replaying an unlimited-pool window against the
// finite pool would silently corrupt the pool accounting.
func TestFusedMatchesNoFuseUnderQuota(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	run := func(noFuse bool) (*sim.Report, uint64, []byte) {
		t.Helper()
		var trace bytes.Buffer
		p := newPulseLoad(4, map[time.Duration]float64{0: 1e12})
		s, err := sim.New(sim.Config{
			Platform:  platform.Nexus5(),
			Manager:   &scriptMgr{steps: []mgrStep{{freq: max, cores: 4, quota: 0.02}}},
			Workloads: []workload.Workload{p},
			Seed:      7,
			NoFuse:    noFuse,
			PowerTrace: func(now, dt time.Duration, systemW float64, clusterW []float64) {
				traceBits(&trace, now, dt, systemW, clusterW)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep, s.FastTicks(), trace.Bytes()
	}
	fusedRep, fastTicks, fusedTrace := run(false)
	slowRep, _, slowTrace := run(true)
	if fastTicks == 0 {
		t.Fatal("fused run never took the fast path; the comparison is vacuous")
	}
	if fusedRep.QuotaThrottledSec == 0 {
		t.Fatal("quota never throttled; the comparison does not cover the drained regime")
	}
	if !bytes.Equal(fusedTrace, slowTrace) {
		t.Fatal("power traces diverge under quota throttling")
	}
	if fusedRep.EnergyJ != slowRep.EnergyJ || fusedRep.QuotaThrottledSec != slowRep.QuotaThrottledSec ||
		fusedRep.ExecutedCycles != slowRep.ExecutedCycles {
		t.Errorf("reports diverge:\nfused: %+v\nnofuse: %+v", fusedRep, slowRep)
	}
}

// TestFusedMatchesNoFuseUnderHotplugChurn repeats the lockstep comparison
// across repeated hotplug events: a scripted manager cycles the online set
// 4 → 2 → 4 → 1 → 4 under a saturated load, so retained windows recorded on
// one topology are candidates for replay on another. Every online-state
// change must invalidate the fused slots — a stale window replayed across a
// core-count change would misattribute executed cycles — and the run must
// still find fast ticks in the steady stretches between events.
func TestFusedMatchesNoFuseUnderHotplugChurn(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	steps := []mgrStep{
		{freq: max, cores: 4, quota: 1}, {freq: max, cores: 4, quota: 1},
		{freq: max, cores: 2, quota: 1}, {freq: max, cores: 2, quota: 1},
		{freq: max, cores: 4, quota: 1}, {freq: max, cores: 4, quota: 1},
		{freq: max, cores: 1, quota: 1}, {freq: max, cores: 1, quota: 1},
		{freq: max, cores: 4, quota: 1},
	}
	run := func(noFuse bool) (*sim.Report, uint64, []byte) {
		t.Helper()
		var trace bytes.Buffer
		p := newPulseLoad(4, map[time.Duration]float64{0: 1e12})
		s, err := sim.New(sim.Config{
			Platform:  platform.Nexus5(),
			Manager:   &scriptMgr{steps: steps},
			Workloads: []workload.Workload{p},
			Seed:      7,
			NoFuse:    noFuse,
			PowerTrace: func(now, dt time.Duration, systemW float64, clusterW []float64) {
				traceBits(&trace, now, dt, systemW, clusterW)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep, s.FastTicks(), trace.Bytes()
	}
	fusedRep, fastTicks, fusedTrace := run(false)
	slowRep, _, slowTrace := run(true)
	if fastTicks == 0 {
		t.Fatal("fused run never took the fast path; the comparison is vacuous")
	}
	if fusedRep.AvgOnlineCores >= 4 {
		t.Fatal("hotplug never occurred; the comparison does not cover invalidation")
	}
	if !bytes.Equal(fusedTrace, slowTrace) {
		for i := range fusedTrace {
			if fusedTrace[i] != slowTrace[i] {
				t.Fatalf("power traces diverge at byte %d of %d under hotplug churn", i, len(fusedTrace))
			}
		}
		t.Fatalf("power trace lengths differ: %d vs %d", len(fusedTrace), len(slowTrace))
	}
	if fusedRep.EnergyJ != slowRep.EnergyJ || fusedRep.ExecutedCycles != slowRep.ExecutedCycles ||
		fusedRep.AvgOnlineCores != slowRep.AvgOnlineCores {
		t.Errorf("reports diverge:\nfused: %+v\nnofuse: %+v", fusedRep, slowRep)
	}
}

// TestFusedMatchesNoFuseUnderThermalTrips repeats the lockstep comparison
// in a regime where the thermal driver is active: everything pinned to
// f_max with a saturated workload heats the Nexus 5 past its 36 °C trip,
// so cap steps (and their invalidations) punctuate the run. Identity must
// survive them, and the caps must actually engage.
func TestFusedMatchesNoFuseUnderThermalTrips(t *testing.T) {
	max := platform.Nexus5().Table.Max().Freq
	run := func(noFuse bool) (*sim.Report, []byte) {
		t.Helper()
		var trace bytes.Buffer
		p := newPulseLoad(4, map[time.Duration]float64{0: 1e13})
		s, err := sim.New(sim.Config{
			Platform:  platform.Nexus5(),
			Manager:   &scriptMgr{steps: []mgrStep{{freq: max, cores: 4, quota: 1}}},
			Workloads: []workload.Workload{p},
			Seed:      7,
			NoFuse:    noFuse,
			PowerTrace: func(now, dt time.Duration, systemW float64, clusterW []float64) {
				traceBits(&trace, now, dt, systemW, clusterW)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep, trace.Bytes()
	}
	fusedRep, fusedTrace := run(false)
	slowRep, slowTrace := run(true)
	if fusedRep.ThermalCappedSec == 0 {
		t.Fatal("run never tripped thermal caps; the comparison does not cover invalidation")
	}
	if !bytes.Equal(fusedTrace, slowTrace) {
		t.Fatal("power traces diverge under thermal capping")
	}
	if fusedRep.EnergyJ != slowRep.EnergyJ || fusedRep.ThermalCappedSec != slowRep.ThermalCappedSec {
		t.Errorf("reports diverge:\nfused: %+v\nnofuse: %+v", fusedRep, slowRep)
	}
}
