package sim

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/metrics"
	"mobicore/internal/monsoon"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
	"mobicore/internal/workload"
)

// Report summarizes a simulation session — the quantities the thesis plots:
// average power, average per-core frequency, average online core count,
// average utilization, temperature, and execution volume.
type Report struct {
	Policy   string
	Platform string
	// Placer names the scheduler placement rule the session ran under
	// ("greedy" or "eas").
	Placer   string
	Duration time.Duration

	AvgPowerW  float64
	PeakPowerW float64
	EnergyJ    float64

	AvgFreqHz      float64
	AvgOnlineCores float64
	AvgUtil        float64
	AvgQuota       float64

	AvgTempC float64
	MaxTempC float64

	ExecutedCycles    float64
	QuotaThrottledSec float64
	// ThermalCappedSec is the aggregate thermal residency: the sum of
	// per-cluster capped time (a single-zone platform reports exactly the
	// old single-zone figure; on big.LITTLE two simultaneously capped
	// clusters both count).
	ThermalCappedSec   float64
	PerWorkloadCycles  map[string]float64
	PerWorkloadPending map[string]float64

	FreqSeries  metrics.Series
	CoreSeries  metrics.Series
	UtilSeries  metrics.Series
	QuotaSeries metrics.Series
	// TempSeries tracks the hottest zone — the die-wide view the flat
	// thermal model used to report.
	TempSeries metrics.Series

	// Per-cluster views, indexed like the platform's ClusterSpecs.
	// Homogeneous platforms carry a single entry mirroring the aggregate.
	ClusterNames      []string
	AvgClusterFreqHz  []float64
	AvgClusterCores   []float64
	AvgClusterTempC   []float64
	MaxClusterTempC   []float64
	ClusterThermalSec []float64 // per-cluster thermal-cap residency
	// ClusterEnergyJ attributes the session's energy to each cluster:
	// the integral of the cluster's own share of system power (cores +
	// uncore; the platform floor is excluded and accounted once in
	// EnergyJ). Summing ClusterEnergyJ plus floor×duration reproduces
	// EnergyJ.
	ClusterEnergyJ    []float64
	ClusterFreqSeries []metrics.Series
	ClusterCoreSeries []metrics.Series
	ClusterTempSeries []metrics.Series
	// ClusterEnergySeries tracks each cluster's cumulative attributed
	// joules at every policy sample — the energy-attribution trace the
	// EAS placement experiments plot.
	ClusterEnergySeries []metrics.Series
}

// report builds the session report from the current accumulators. Every
// series is deep copied (metrics.Series.Clone) so the report stays valid
// after the Sim's buffers are reused for the next arena session — reports
// outlive sims by design.
func (s *Sim) report() *Report {
	r := &Report{
		Policy:              s.cfg.Manager.Name(),
		Platform:            s.cfg.Platform.Name,
		Placer:              s.cfg.Placer,
		Duration:            s.now,
		AvgPowerW:           s.mon.AverageWatts(),
		PeakPowerW:          s.mon.TraceSummary().Max(),
		EnergyJ:             s.mon.Joules(),
		AvgFreqHz:           s.freqSum.Mean(),
		AvgOnlineCores:      s.coreSum.Mean(),
		AvgUtil:             s.utilSum.Mean(),
		AvgQuota:            s.quotaSum.Mean(),
		AvgTempC:            s.tempSum.Mean(),
		MaxTempC:            s.tempSum.Max(),
		ExecutedCycles:      s.executed,
		QuotaThrottledSec:   s.throttledSec,
		ThermalCappedSec:    s.thermalSec,
		PerWorkloadCycles:   make(map[string]float64, len(s.cfg.Workloads)),
		PerWorkloadPending:  make(map[string]float64, len(s.cfg.Workloads)),
		FreqSeries:          s.freqSeries.Clone(),
		CoreSeries:          s.coreSeries.Clone(),
		UtilSeries:          s.utilSeries.Clone(),
		QuotaSeries:         s.quotaSeries.Clone(),
		TempSeries:          s.tempSeries.Clone(),
		ClusterThermalSec:   append([]float64(nil), s.clusterThermalSec...),
		ClusterEnergyJ:      append([]float64(nil), s.clusterEnergyJ...),
		ClusterFreqSeries:   cloneSeries(s.clusterFreqSeries),
		ClusterCoreSeries:   cloneSeries(s.clusterCoreSeries),
		ClusterTempSeries:   cloneSeries(s.clusterTempSeries),
		ClusterEnergySeries: cloneSeries(s.clusterEnergySeries),
	}
	for ci, v := range s.views {
		r.ClusterNames = append(r.ClusterNames, v.Name)
		r.AvgClusterFreqHz = append(r.AvgClusterFreqHz, s.clusterFreqSum[ci].Mean())
		r.AvgClusterCores = append(r.AvgClusterCores, s.clusterCoreSum[ci].Mean())
		r.AvgClusterTempC = append(r.AvgClusterTempC, s.clusterTempSum[ci].Mean())
		r.MaxClusterTempC = append(r.MaxClusterTempC, s.clusterTempSum[ci].Max())
	}
	for _, w := range s.cfg.Workloads {
		r.PerWorkloadCycles[w.Name()] += workload.ExecutedCycles(w)
		r.PerWorkloadPending[w.Name()] += workload.PendingCycles(w)
	}
	return r
}

// cloneSeries deep copies a per-cluster series slice for a report.
func cloneSeries(in []metrics.Series) []metrics.Series {
	if len(in) == 0 {
		return nil
	}
	out := make([]metrics.Series, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}

// Monitor exposes the power meter for trace export.
func (s *Sim) Monitor() *monsoon.Monitor { return s.mon }

// WriteSummary renders the report as aligned human-readable text.
func (r *Report) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w, `policy:          %s
platform:        %s
duration:        %v
avg power:       %.1f mW
peak power:      %.1f mW
energy:          %.2f J
avg frequency:   %s
avg cores:       %.2f
avg utilization: %.1f%%
avg quota:       %.2f
avg temp:        %.1f C (max %.1f C)
executed:        %.3g cycles
quota throttled: %.2f core-s
thermal capped:  %.2f s
`,
		r.Policy, r.Platform, r.Duration,
		r.AvgPowerW*1000, r.PeakPowerW*1000, r.EnergyJ,
		soc.Hz(r.AvgFreqHz), r.AvgOnlineCores, r.AvgUtil*100, r.AvgQuota,
		r.AvgTempC, r.MaxTempC, r.ExecutedCycles,
		r.QuotaThrottledSec, r.ThermalCappedSec)
	if err != nil {
		return fmt.Errorf("sim: writing summary: %w", err)
	}
	// The placer line appears only for non-default placement, so greedy
	// sessions (the compatibility baseline) render byte-identically.
	if r.Placer != "" && r.Placer != "greedy" {
		if _, err := fmt.Fprintf(w, "placer:          %s\n", r.Placer); err != nil {
			return fmt.Errorf("sim: writing summary: %w", err)
		}
	}
	if len(r.ClusterNames) > 1 {
		for ci, name := range r.ClusterNames {
			energy := 0.0
			if ci < len(r.ClusterEnergyJ) {
				energy = r.ClusterEnergyJ[ci]
			}
			_, err := fmt.Fprintf(w, "cluster %-8s avg freq %s, avg cores %.2f, avg temp %.1f C (max %.1f C), thermal capped %.2f s, energy %.2f J\n",
				name+":", soc.Hz(r.AvgClusterFreqHz[ci]), r.AvgClusterCores[ci],
				r.AvgClusterTempC[ci], r.MaxClusterTempC[ci], r.ClusterThermalSec[ci], energy)
			if err != nil {
				return fmt.Errorf("sim: writing summary: %w", err)
			}
		}
	}
	return nil
}

// Network exposes the per-cluster thermal network for experiments that read
// zone temperatures and caps mid-run.
func (s *Sim) Network() *thermal.Network { return s.net }

// Zone exposes the currently hottest thermal zone — on a single-zone
// platform the whole die, on big.LITTLE the cluster that dominates the
// die's thermal story — for experiments that predate the per-cluster
// network.
func (s *Sim) Zone() *thermal.Zone {
	hottest := 0
	for i := 1; i < s.net.Zones(); i++ {
		if s.net.TempC(i) > s.net.TempC(hottest) {
			hottest = i
		}
	}
	return s.net.ZoneAt(hottest)
}
