package sim_test

import (
	"bytes"
	"testing"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/platform"
	"mobicore/internal/scenario"
	"mobicore/internal/sim"
	"mobicore/internal/workload"
)

// scenarioSim builds a Nexus 5 MobiCore session around one scenario
// workload, capturing the power trace bit-exactly.
func scenarioSim(t *testing.T, w workload.Workload, seed int64, noFuse bool, trace *bytes.Buffer) *sim.Sim {
	t.Helper()
	plat := platform.Nexus5()
	mgr, err := core.New(plat.Table, core.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Platform:  plat,
		Manager:   mgr,
		Workloads: []workload.Workload{w},
		Seed:      seed,
		NoFuse:    noFuse,
		PowerTrace: func(now, dt time.Duration, systemW float64, clusterW []float64) {
			traceBits(trace, now, dt, systemW, clusterW)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScenarioReplayMatchesGenerate is the record/replay contract: a
// generator-mode scenario running live off the session rng at seed s, and a
// replay of the trace Generate(s) materializes up front, must produce
// byte-identical power traces and identical reports. This is what lets a
// fleet sweep record thousands of synthetic users and replay any one of
// them exactly.
func TestScenarioReplayMatchesGenerate(t *testing.T) {
	const seed = 9
	const dur = 20 * time.Second
	prof := scenario.DayInTheLife()

	live, err := scenario.FromProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	var liveTrace bytes.Buffer
	liveSim := scenarioSim(t, live, seed, false, &liveTrace)
	liveRep, err := liveSim.Run(dur)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := scenario.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := scenario.New(gen.Generate(dur))
	if err != nil {
		t.Fatal(err)
	}
	var replayTrace bytes.Buffer
	replaySim := scenarioSim(t, replay, seed, false, &replayTrace)
	replayRep, err := replaySim.Run(dur)
	if err != nil {
		t.Fatal(err)
	}

	if live.DepositedCycles() != replay.DepositedCycles() {
		t.Errorf("deposited cycles diverge: live %v, replay %v",
			live.DepositedCycles(), replay.DepositedCycles())
	}
	if !bytes.Equal(liveTrace.Bytes(), replayTrace.Bytes()) {
		t.Error("power traces diverge between generator-mode and replay")
	}
	if liveRep.EnergyJ != replayRep.EnergyJ || liveRep.ExecutedCycles != replayRep.ExecutedCycles ||
		liveRep.AvgPowerW != replayRep.AvgPowerW {
		t.Errorf("reports diverge:\nlive: %+v\nreplay: %+v", liveRep, replayRep)
	}
}

// TestScenarioFusedMatchesNoFuse runs a phase-switching scenario fused and
// NoFuse in lockstep: thread fan-out at phase boundaries, retirement, and
// screen-off idle stretches must all preserve bit-exact equivalence, and
// the idle stretches must actually engage the fast path.
func TestScenarioFusedMatchesNoFuse(t *testing.T) {
	run := func(noFuse bool) (*sim.Report, uint64, []byte) {
		t.Helper()
		w, err := scenario.FromProfile(scenario.Standby())
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		s := scenarioSim(t, w, 13, noFuse, &trace)
		rep, err := s.Run(20 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep, s.FastTicks(), trace.Bytes()
	}
	fusedRep, fastTicks, fusedTrace := run(false)
	slowRep, slowFast, slowTrace := run(true)
	if fastTicks == 0 {
		t.Fatal("fused scenario never took the fast path; the comparison is vacuous")
	}
	if slowFast != 0 {
		t.Fatalf("NoFuse run took %d fast ticks", slowFast)
	}
	if !bytes.Equal(fusedTrace, slowTrace) {
		t.Fatal("power traces diverge between fused and NoFuse scenario runs")
	}
	if fusedRep.EnergyJ != slowRep.EnergyJ || fusedRep.ExecutedCycles != slowRep.ExecutedCycles ||
		fusedRep.AvgPowerW != slowRep.AvgPowerW {
		t.Errorf("reports diverge:\nfused: %+v\nnofuse: %+v", fusedRep, slowRep)
	}
}
