package sim

import (
	"context"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/workload"
)

// SessionSpec describes one complete simulation session as a value: the
// platform, the policy under test, the demand, and every knob that selects
// a run. A session is data — the same spec always constructs the same
// sim.Config, so higher layers (the experiment helpers, the fleet driver)
// share one construction path instead of each assembling a Config by hand.
//
// The zero values of the optional fields select the engine defaults (1 ms
// tick, 50 ms sampling, greedy placement), so a spec carrying only
// Platform, Manager, Workloads, and Duration is a valid session.
type SessionSpec struct {
	// Platform is the device profile; required.
	Platform platform.Platform
	// Manager is the CPU management policy under test; required. Managers
	// are stateful — a spec must carry a fresh instance, never one that
	// already ran.
	Manager policy.Manager
	// Workloads generate demand; at least one is required. Like Manager,
	// instances are stateful and single-session.
	Workloads []workload.Workload

	// Duration is how long the session runs (simulated time); required
	// for RunSession. UntilDone sessions treat it as the deadline.
	Duration time.Duration
	// UntilDone stops the session as soon as every workload reports Done,
	// with Duration as the cap — the RunUntilDone shape benchmarks use.
	UntilDone bool

	// Seed drives all workload randomness.
	Seed int64
	// PowerTrace, when non-nil, receives every integration tick's power
	// sample (see Config.PowerTrace); the fleet driver uses it for
	// per-cell trace export. The cluster slice is reused between ticks.
	PowerTrace func(now, dt time.Duration, systemW float64, clusterW []float64)
	// Placer selects the scheduler placement rule: "" or PlacerGreedy for
	// the default greedy, PlacerEAS for energy-aware placement.
	Placer string
	// Tick is the integration step (default 1 ms).
	Tick time.Duration
	// SamplePeriod is how often the manager runs (default 50 ms).
	SamplePeriod time.Duration
	// NoFuse disables the quiescent-tick fast path (see Config.NoFuse).
	// Output is byte-identical either way; equivalence tests set it.
	NoFuse bool
}

// Config lowers the spec to the engine's Config (defaults still unfilled;
// New applies them).
func (sp SessionSpec) Config() Config {
	return Config{
		Platform:     sp.Platform,
		Manager:      sp.Manager,
		Workloads:    sp.Workloads,
		Tick:         sp.Tick,
		SamplePeriod: sp.SamplePeriod,
		Seed:         sp.Seed,
		Placer:       sp.Placer,
		PowerTrace:   sp.PowerTrace,
		NoFuse:       sp.NoFuse,
	}
}

// New builds the session's simulation without running it, for callers that
// need mid-run access (FPS series, thermal zones).
func (sp SessionSpec) New() (*Sim, error) {
	return sp.NewIn(nil)
}

// NewIn is New drawing the simulation's buffers from the arena (nil means
// fresh allocation, exactly New). The spec's Duration sizes the sampled
// series up front, so a duration-shaped session appends without a single
// growth reallocation. See Arena for the one-live-Sim ownership contract.
func (sp SessionSpec) NewIn(a *Arena) (*Sim, error) {
	s, err := newSim(sp.Config(), a)
	if err != nil {
		return nil, err
	}
	s.reserve(sp.Duration)
	return s, nil
}

// Run builds and runs the session to completion (or until ctx is done) and
// returns the report. Cancellation surfaces as a partial report alongside
// ctx's error, exactly like Sim.RunCtx.
func (sp SessionSpec) Run(ctx context.Context) (*Report, error) {
	rep, _, err := sp.RunDone(ctx)
	return rep, err
}

// RunDone is Run for callers that need the finish flag: whether every
// workload reported Done within Duration. Duration-shaped sessions (the
// default) finish by definition when they run to the end; an UntilDone
// session reports what RunUntilDoneCtx observed.
func (sp SessionSpec) RunDone(ctx context.Context) (*Report, bool, error) {
	return sp.RunDoneIn(ctx, nil)
}

// RunDoneIn is RunDone executing the session in the arena: construction
// reuses the arena's buffers and the returned report is a deep copy, safe
// to retain after the arena moves on to its next session. A nil arena
// reproduces RunDone exactly — same physics, same report, fresh buffers.
func (sp SessionSpec) RunDoneIn(ctx context.Context, a *Arena) (*Report, bool, error) {
	s, err := sp.NewIn(a)
	if err != nil {
		return nil, false, err
	}
	if sp.UntilDone {
		return s.RunUntilDoneCtx(ctx, sp.Duration)
	}
	rep, err := s.RunCtx(ctx, sp.Duration)
	return rep, err == nil, err
}
