package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/workload"
)

// TestSessionSpecMatchesHandAssembledConfig: the spec construction path and
// a hand-built Config must produce byte-identical sessions — the property
// that lets the experiment helpers and the fleet driver share it.
func TestSessionSpecMatchesHandAssembledConfig(t *testing.T) {
	dur := 2 * time.Second
	specRep, err := SessionSpec{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.4, 4)},
		Duration:  dur,
		Seed:      7,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.4, 4)},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	handRep, err := s.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specRep, handRep) {
		t.Errorf("SessionSpec report differs from hand-assembled Config report:\nspec: %+v\nhand: %+v", specRep, handRep)
	}
}

// TestSessionSpecValidation: a spec lowers through the same fillDefaults
// gate as a raw Config.
func TestSessionSpecValidation(t *testing.T) {
	_, err := SessionSpec{Platform: platform.Nexus5(), Duration: time.Second}.Run(context.Background())
	if err == nil {
		t.Fatal("spec without manager/workloads should fail")
	}
	_, err = SessionSpec{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.4, 1)},
	}.Run(context.Background())
	if err == nil {
		t.Fatal("spec without duration should fail")
	}
}

// TestRunCtxCancel: a canceled context stops the loop between ticks and
// still hands back the partial report.
func TestRunCtxCancel(t *testing.T) {
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.4, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Advance a little, then cancel: the next RunCtx call must return the
	// partial report immediately.
	if _, err := s.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cancel()
	rep, err := s.RunCtx(ctx, time.Hour)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("canceled RunCtx should still return the partial report")
	}
	if rep.Duration != 100*time.Millisecond {
		t.Errorf("partial report duration = %v, want 100ms", rep.Duration)
	}

	// Same contract for the until-done variant.
	rep2, done, err := s.RunUntilDoneCtx(ctx, time.Hour)
	if !errors.Is(err, context.Canceled) || done {
		t.Fatalf("RunUntilDoneCtx = done %v err %v, want !done, context.Canceled", done, err)
	}
	if rep2 == nil {
		t.Fatal("canceled RunUntilDoneCtx should still return the partial report")
	}
}
